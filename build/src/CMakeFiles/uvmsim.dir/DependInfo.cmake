
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation_profile.cpp" "src/CMakeFiles/uvmsim.dir/core/allocation_profile.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/core/allocation_profile.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/CMakeFiles/uvmsim.dir/core/simulator.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/core/simulator.cpp.o.d"
  "/root/repo/src/core/uvm_driver.cpp" "src/CMakeFiles/uvmsim.dir/core/uvm_driver.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/core/uvm_driver.cpp.o.d"
  "/root/repo/src/gpu/gpu_model.cpp" "src/CMakeFiles/uvmsim.dir/gpu/gpu_model.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/gpu/gpu_model.cpp.o.d"
  "/root/repo/src/gpu/l2_cache.cpp" "src/CMakeFiles/uvmsim.dir/gpu/l2_cache.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/gpu/l2_cache.cpp.o.d"
  "/root/repo/src/mem/access_counters.cpp" "src/CMakeFiles/uvmsim.dir/mem/access_counters.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/mem/access_counters.cpp.o.d"
  "/root/repo/src/mem/address_space.cpp" "src/CMakeFiles/uvmsim.dir/mem/address_space.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/mem/address_space.cpp.o.d"
  "/root/repo/src/mem/block_table.cpp" "src/CMakeFiles/uvmsim.dir/mem/block_table.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/mem/block_table.cpp.o.d"
  "/root/repo/src/mem/eviction.cpp" "src/CMakeFiles/uvmsim.dir/mem/eviction.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/mem/eviction.cpp.o.d"
  "/root/repo/src/mitigation/thrash_throttle.cpp" "src/CMakeFiles/uvmsim.dir/mitigation/thrash_throttle.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/mitigation/thrash_throttle.cpp.o.d"
  "/root/repo/src/multigpu/multi_gpu.cpp" "src/CMakeFiles/uvmsim.dir/multigpu/multi_gpu.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/multigpu/multi_gpu.cpp.o.d"
  "/root/repo/src/policy/migration_policy.cpp" "src/CMakeFiles/uvmsim.dir/policy/migration_policy.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/policy/migration_policy.cpp.o.d"
  "/root/repo/src/prefetch/prefetcher.cpp" "src/CMakeFiles/uvmsim.dir/prefetch/prefetcher.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/prefetch/prefetcher.cpp.o.d"
  "/root/repo/src/report/run_csv.cpp" "src/CMakeFiles/uvmsim.dir/report/run_csv.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/report/run_csv.cpp.o.d"
  "/root/repo/src/report/run_json.cpp" "src/CMakeFiles/uvmsim.dir/report/run_json.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/report/run_json.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/uvmsim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/report/table.cpp.o.d"
  "/root/repo/src/report/variance.cpp" "src/CMakeFiles/uvmsim.dir/report/variance.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/report/variance.cpp.o.d"
  "/root/repo/src/sim/config.cpp" "src/CMakeFiles/uvmsim.dir/sim/config.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/sim/config.cpp.o.d"
  "/root/repo/src/sim/config_parse.cpp" "src/CMakeFiles/uvmsim.dir/sim/config_parse.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/sim/config_parse.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/uvmsim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/uvmsim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/trace/replay.cpp" "src/CMakeFiles/uvmsim.dir/trace/replay.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/trace/replay.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/CMakeFiles/uvmsim.dir/trace/timeline.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/trace/timeline.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/uvmsim.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/trace/trace.cpp.o.d"
  "/root/repo/src/workloads/common.cpp" "src/CMakeFiles/uvmsim.dir/workloads/common.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/common.cpp.o.d"
  "/root/repo/src/workloads/extra.cpp" "src/CMakeFiles/uvmsim.dir/workloads/extra.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/extra.cpp.o.d"
  "/root/repo/src/workloads/graph_gen.cpp" "src/CMakeFiles/uvmsim.dir/workloads/graph_gen.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/graph_gen.cpp.o.d"
  "/root/repo/src/workloads/irregular.cpp" "src/CMakeFiles/uvmsim.dir/workloads/irregular.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/irregular.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/uvmsim.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/regular.cpp" "src/CMakeFiles/uvmsim.dir/workloads/regular.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/workloads/regular.cpp.o.d"
  "/root/repo/src/xfer/pcie.cpp" "src/CMakeFiles/uvmsim.dir/xfer/pcie.cpp.o" "gcc" "src/CMakeFiles/uvmsim.dir/xfer/pcie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
