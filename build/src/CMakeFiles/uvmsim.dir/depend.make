# Empty dependencies file for uvmsim.
# This may be replaced when dependencies are built.
