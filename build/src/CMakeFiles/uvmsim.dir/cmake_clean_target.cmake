file(REMOVE_RECURSE
  "libuvmsim.a"
)
