# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_xfer[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_multigpu[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
