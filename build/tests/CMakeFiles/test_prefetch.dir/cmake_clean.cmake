file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch.dir/prefetch/test_other_prefetchers.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_other_prefetchers.cpp.o.d"
  "CMakeFiles/test_prefetch.dir/prefetch/test_tree_prefetcher.cpp.o"
  "CMakeFiles/test_prefetch.dir/prefetch/test_tree_prefetcher.cpp.o.d"
  "test_prefetch"
  "test_prefetch.pdb"
  "test_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
