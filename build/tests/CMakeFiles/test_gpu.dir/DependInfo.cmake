
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpu/test_gpu_model.cpp" "tests/CMakeFiles/test_gpu.dir/gpu/test_gpu_model.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/test_gpu_model.cpp.o.d"
  "/root/repo/tests/gpu/test_gpu_scheduling.cpp" "tests/CMakeFiles/test_gpu.dir/gpu/test_gpu_scheduling.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/test_gpu_scheduling.cpp.o.d"
  "/root/repo/tests/gpu/test_l2_cache.cpp" "tests/CMakeFiles/test_gpu.dir/gpu/test_l2_cache.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/test_l2_cache.cpp.o.d"
  "/root/repo/tests/gpu/test_tlb.cpp" "tests/CMakeFiles/test_gpu.dir/gpu/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/test_gpu.dir/gpu/test_tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uvmsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
