file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_model.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_model.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_scheduling.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_gpu_scheduling.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_l2_cache.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_l2_cache.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_tlb.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_tlb.cpp.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
