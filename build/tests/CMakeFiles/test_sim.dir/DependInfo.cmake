
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_config.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o.d"
  "/root/repo/tests/sim/test_config_parse.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_config_parse.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_config_parse.cpp.o.d"
  "/root/repo/tests/sim/test_event_queue.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_event_queue.cpp.o.d"
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uvmsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
