
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/test_access_counters.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_access_counters.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_access_counters.cpp.o.d"
  "/root/repo/tests/mem/test_address_space.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_address_space.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_address_space.cpp.o.d"
  "/root/repo/tests/mem/test_block_table.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_block_table.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_block_table.cpp.o.d"
  "/root/repo/tests/mem/test_device_memory.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_device_memory.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_device_memory.cpp.o.d"
  "/root/repo/tests/mem/test_eviction.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_eviction.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_eviction.cpp.o.d"
  "/root/repo/tests/mem/test_eviction_protection.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_eviction_protection.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_eviction_protection.cpp.o.d"
  "/root/repo/tests/mem/test_tree_eviction.cpp" "tests/CMakeFiles/test_mem.dir/mem/test_tree_eviction.cpp.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_tree_eviction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uvmsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
