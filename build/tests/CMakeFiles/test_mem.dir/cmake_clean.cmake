file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_access_counters.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_access_counters.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_address_space.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_address_space.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_block_table.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_block_table.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_device_memory.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_device_memory.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_eviction.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_eviction.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_eviction_protection.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_eviction_protection.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_tree_eviction.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_tree_eviction.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
