
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_advice_and_preload.cpp" "tests/CMakeFiles/test_core.dir/core/test_advice_and_preload.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_advice_and_preload.cpp.o.d"
  "/root/repo/tests/core/test_allocation_profile.cpp" "tests/CMakeFiles/test_core.dir/core/test_allocation_profile.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_allocation_profile.cpp.o.d"
  "/root/repo/tests/core/test_driver.cpp" "tests/CMakeFiles/test_core.dir/core/test_driver.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_driver.cpp.o.d"
  "/root/repo/tests/core/test_driver_edge.cpp" "tests/CMakeFiles/test_core.dir/core/test_driver_edge.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_driver_edge.cpp.o.d"
  "/root/repo/tests/core/test_host_memory.cpp" "tests/CMakeFiles/test_core.dir/core/test_host_memory.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_host_memory.cpp.o.d"
  "/root/repo/tests/core/test_launch_overhead.cpp" "tests/CMakeFiles/test_core.dir/core/test_launch_overhead.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_launch_overhead.cpp.o.d"
  "/root/repo/tests/core/test_simulator.cpp" "tests/CMakeFiles/test_core.dir/core/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/uvmsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
