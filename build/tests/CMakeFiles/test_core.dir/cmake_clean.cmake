file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_advice_and_preload.cpp.o"
  "CMakeFiles/test_core.dir/core/test_advice_and_preload.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_allocation_profile.cpp.o"
  "CMakeFiles/test_core.dir/core/test_allocation_profile.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_driver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_driver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_driver_edge.cpp.o"
  "CMakeFiles/test_core.dir/core/test_driver_edge.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_host_memory.cpp.o"
  "CMakeFiles/test_core.dir/core/test_host_memory.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_launch_overhead.cpp.o"
  "CMakeFiles/test_core.dir/core/test_launch_overhead.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_simulator.cpp.o"
  "CMakeFiles/test_core.dir/core/test_simulator.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
