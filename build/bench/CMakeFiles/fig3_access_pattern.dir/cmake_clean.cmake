file(REMOVE_RECURSE
  "CMakeFiles/fig3_access_pattern.dir/fig3_access_pattern.cpp.o"
  "CMakeFiles/fig3_access_pattern.dir/fig3_access_pattern.cpp.o.d"
  "fig3_access_pattern"
  "fig3_access_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
