# Empty dependencies file for fig3_access_pattern.
# This may be replaced when dependencies are built.
