file(REMOVE_RECURSE
  "CMakeFiles/ext_graph_inputs.dir/ext_graph_inputs.cpp.o"
  "CMakeFiles/ext_graph_inputs.dir/ext_graph_inputs.cpp.o.d"
  "ext_graph_inputs"
  "ext_graph_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_graph_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
