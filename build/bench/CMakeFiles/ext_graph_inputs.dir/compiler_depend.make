# Empty compiler generated dependencies file for ext_graph_inputs.
# This may be replaced when dependencies are built.
