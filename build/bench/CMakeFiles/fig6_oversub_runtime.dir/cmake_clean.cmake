file(REMOVE_RECURSE
  "CMakeFiles/fig6_oversub_runtime.dir/fig6_oversub_runtime.cpp.o"
  "CMakeFiles/fig6_oversub_runtime.dir/fig6_oversub_runtime.cpp.o.d"
  "fig6_oversub_runtime"
  "fig6_oversub_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_oversub_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
