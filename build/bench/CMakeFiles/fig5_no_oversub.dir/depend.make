# Empty dependencies file for fig5_no_oversub.
# This may be replaced when dependencies are built.
