file(REMOVE_RECURSE
  "CMakeFiles/fig5_no_oversub.dir/fig5_no_oversub.cpp.o"
  "CMakeFiles/fig5_no_oversub.dir/fig5_no_oversub.cpp.o.d"
  "fig5_no_oversub"
  "fig5_no_oversub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_no_oversub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
