file(REMOVE_RECURSE
  "CMakeFiles/fig8_penalty_sensitivity.dir/fig8_penalty_sensitivity.cpp.o"
  "CMakeFiles/fig8_penalty_sensitivity.dir/fig8_penalty_sensitivity.cpp.o.d"
  "fig8_penalty_sensitivity"
  "fig8_penalty_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_penalty_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
