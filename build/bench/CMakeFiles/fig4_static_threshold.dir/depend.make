# Empty dependencies file for fig4_static_threshold.
# This may be replaced when dependencies are built.
