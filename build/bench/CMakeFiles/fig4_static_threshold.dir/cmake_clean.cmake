file(REMOVE_RECURSE
  "CMakeFiles/fig4_static_threshold.dir/fig4_static_threshold.cpp.o"
  "CMakeFiles/fig4_static_threshold.dir/fig4_static_threshold.cpp.o.d"
  "fig4_static_threshold"
  "fig4_static_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_static_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
