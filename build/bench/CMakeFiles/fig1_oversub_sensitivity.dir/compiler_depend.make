# Empty compiler generated dependencies file for fig1_oversub_sensitivity.
# This may be replaced when dependencies are built.
