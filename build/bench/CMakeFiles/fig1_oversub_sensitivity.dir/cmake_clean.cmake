file(REMOVE_RECURSE
  "CMakeFiles/fig1_oversub_sensitivity.dir/fig1_oversub_sensitivity.cpp.o"
  "CMakeFiles/fig1_oversub_sensitivity.dir/fig1_oversub_sensitivity.cpp.o.d"
  "fig1_oversub_sensitivity"
  "fig1_oversub_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_oversub_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
