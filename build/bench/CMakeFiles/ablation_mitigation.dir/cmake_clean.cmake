file(REMOVE_RECURSE
  "CMakeFiles/ablation_mitigation.dir/ablation_mitigation.cpp.o"
  "CMakeFiles/ablation_mitigation.dir/ablation_mitigation.cpp.o.d"
  "ablation_mitigation"
  "ablation_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
