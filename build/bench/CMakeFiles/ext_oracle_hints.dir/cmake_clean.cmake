file(REMOVE_RECURSE
  "CMakeFiles/ext_oracle_hints.dir/ext_oracle_hints.cpp.o"
  "CMakeFiles/ext_oracle_hints.dir/ext_oracle_hints.cpp.o.d"
  "ext_oracle_hints"
  "ext_oracle_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_oracle_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
