# Empty compiler generated dependencies file for ext_oracle_hints.
# This may be replaced when dependencies are built.
