# Empty dependencies file for fig2_access_distribution.
# This may be replaced when dependencies are built.
