# Empty dependencies file for fig7_thrashing.
# This may be replaced when dependencies are built.
