file(REMOVE_RECURSE
  "CMakeFiles/fig7_thrashing.dir/fig7_thrashing.cpp.o"
  "CMakeFiles/fig7_thrashing.dir/fig7_thrashing.cpp.o.d"
  "fig7_thrashing"
  "fig7_thrashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
