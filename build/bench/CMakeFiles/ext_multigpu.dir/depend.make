# Empty dependencies file for ext_multigpu.
# This may be replaced when dependencies are built.
