file(REMOVE_RECURSE
  "CMakeFiles/ext_multigpu.dir/ext_multigpu.cpp.o"
  "CMakeFiles/ext_multigpu.dir/ext_multigpu.cpp.o.d"
  "ext_multigpu"
  "ext_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
