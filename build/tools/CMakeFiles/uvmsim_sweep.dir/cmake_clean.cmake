file(REMOVE_RECURSE
  "CMakeFiles/uvmsim_sweep.dir/uvmsim_sweep.cpp.o"
  "CMakeFiles/uvmsim_sweep.dir/uvmsim_sweep.cpp.o.d"
  "uvmsim-sweep"
  "uvmsim-sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvmsim_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
