# Empty compiler generated dependencies file for thrash_timeline.
# This may be replaced when dependencies are built.
