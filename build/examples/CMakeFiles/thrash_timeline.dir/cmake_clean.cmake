file(REMOVE_RECURSE
  "CMakeFiles/thrash_timeline.dir/thrash_timeline.cpp.o"
  "CMakeFiles/thrash_timeline.dir/thrash_timeline.cpp.o.d"
  "thrash_timeline"
  "thrash_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thrash_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
