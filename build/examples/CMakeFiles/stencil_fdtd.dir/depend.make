# Empty dependencies file for stencil_fdtd.
# This may be replaced when dependencies are built.
