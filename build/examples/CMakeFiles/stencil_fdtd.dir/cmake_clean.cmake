file(REMOVE_RECURSE
  "CMakeFiles/stencil_fdtd.dir/stencil_fdtd.cpp.o"
  "CMakeFiles/stencil_fdtd.dir/stencil_fdtd.cpp.o.d"
  "stencil_fdtd"
  "stencil_fdtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_fdtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
