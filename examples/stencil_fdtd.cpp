// Regular stencil workload (fdtd): shows that the adaptive driver does not
// regress dense, sequential applications — with or without memory pressure —
// and inspects where the time goes (migration vs writeback vs compute).
#include <cstdio>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

void report(const char* label, const SimConfig& cfg, const RunResult& r) {
  std::printf("%-22s %9.2f ms | faults %7llu | H2D %6.1f MB | D2H %6.1f MB | remote %8llu\n",
              label, r.kernel_ms(cfg.gpu.core_clock_ghz),
              static_cast<unsigned long long>(r.stats.far_faults),
              static_cast<double>(r.stats.bytes_h2d) / (1 << 20),
              static_cast<double>(r.stats.bytes_d2h) / (1 << 20),
              static_cast<unsigned long long>(r.stats.remote_accesses));
}

}  // namespace

int main() {
  WorkloadParams params;
  params.scale = 0.25;

  SimConfig baseline;  // first-touch + LRU + tree prefetcher
  SimConfig adaptive;
  adaptive.policy.policy = PolicyKind::kAdaptive;
  adaptive.mem.eviction = EvictionKind::kLfu;

  std::printf("fdtd — iterative 3-array stencil (regular access pattern)\n\n");

  std::printf("working set fits in device memory:\n");
  report("  baseline", baseline, run_workload("fdtd", baseline, 0.0, params));
  report("  adaptive", adaptive, run_workload("fdtd", adaptive, 0.0, params));

  std::printf("\n125%% oversubscription (cyclic reuse > capacity):\n");
  const RunResult b = run_workload("fdtd", baseline, 1.25, params);
  const RunResult a = run_workload("fdtd", adaptive, 1.25, params);
  report("  baseline", baseline, b);
  report("  adaptive", adaptive, a);

  std::printf("\nPer-kernel timing of the oversubscribed adaptive run (first 9 launches):\n");
  for (std::size_t i = 0; i < a.kernels.size() && i < 9; ++i) {
    std::printf("  launch %2zu %-12s %9.3f ms\n", i, a.kernels[i].name.c_str(),
                static_cast<double>(a.kernels[i].duration()) /
                    (adaptive.gpu.core_clock_ghz * 1e6));
  }

  std::printf(
      "\nExpected: adaptive ~= baseline in both regimes. Dense sequential\n"
      "access drives per-block counters over the dynamic threshold almost\n"
      "immediately, so the adaptive driver behaves like first-touch + prefetch.\n");
  return 0;
}
