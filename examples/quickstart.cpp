// Quickstart: simulate one GPU workload under Unified Memory, first with the
// working set fitting in device memory, then under 125 % oversubscription
// with the stock first-touch driver and with the paper's adaptive scheme.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include <uvmsim/uvmsim.hpp>

int main() {
  using namespace uvmsim;

  WorkloadParams params;
  params.scale = 0.25;  // ~12 MB working set: quick to simulate

  // 1) Working set fits: the tree prefetcher streams everything in once.
  {
    SimConfig cfg;  // Table I defaults: first-touch migration, LRU, tree
    const RunResult r = run_workload("sssp", cfg, /*oversub=*/0.0, params);
    std::printf("sssp, fits in memory:        %8.2f ms kernel time, %llu far-faults\n",
                r.kernel_ms(cfg.gpu.core_clock_ghz),
                static_cast<unsigned long long>(r.stats.far_faults));
  }

  // 2) 125 % oversubscription, stock driver: page thrashing.
  SimConfig base_cfg;
  const RunResult base = run_workload("sssp", base_cfg, 1.25, params);
  std::printf("sssp, 125%% oversub, baseline: %8.2f ms kernel time, %llu pages thrashed\n",
              base.kernel_ms(base_cfg.gpu.core_clock_ghz),
              static_cast<unsigned long long>(base.stats.pages_thrashed));

  // 3) Same memory pressure with the adaptive dynamic-threshold driver.
  SimConfig adaptive_cfg;
  adaptive_cfg.policy.policy = PolicyKind::kAdaptive;
  adaptive_cfg.policy.static_threshold = 8;
  adaptive_cfg.policy.migration_penalty = 8;
  adaptive_cfg.mem.eviction = EvictionKind::kLfu;
  const RunResult adaptive = run_workload("sssp", adaptive_cfg, 1.25, params);
  std::printf("sssp, 125%% oversub, adaptive: %8.2f ms kernel time, %llu pages thrashed\n",
              adaptive.kernel_ms(adaptive_cfg.gpu.core_clock_ghz),
              static_cast<unsigned long long>(adaptive.stats.pages_thrashed));

  const double speedup = static_cast<double>(base.stats.kernel_cycles) /
                         static_cast<double>(adaptive.stats.kernel_cycles);
  std::printf("\nadaptive speedup over baseline under oversubscription: %.2fx\n", speedup);
  std::printf("\nfull statistics of the adaptive run:\n%s", adaptive.stats.report().c_str());
  std::printf(
      "\nwhat the driver concluded about each allocation (paper \u00a7IV):\n%s",
      format_profiles(adaptive.allocations).c_str());
  return 0;
}
