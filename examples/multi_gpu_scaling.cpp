// Multi-GPU scaling (the paper's §VIII future work): run a collaborative
// irregular workload across 1, 2 and 4 GPUs at a fixed aggregate memory
// budget (125 % oversubscribed in total) and compare the baseline driver
// with the adaptive dynamic-threshold driver on each node.
//
// NVIDIA's guidance (quoted in the paper §VI) is to spread work over more
// GPUs once oversubscription exceeds 125 % — this example shows what the
// adaptive heuristic buys in exactly that setting.
#include <cstdio>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

MultiGpuResult run_multi(const std::string& workload, PolicyKind policy,
                         std::uint32_t gpus, double oversub) {
  WorkloadParams params;
  params.scale = 0.5;
  auto wl = make_workload(workload, params);

  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  cfg.mem.oversubscription = oversub;

  MultiGpuSimulator sim(cfg, MultiGpuConfig{gpus, /*split_capacity=*/true});
  return sim.run(*wl);
}

}  // namespace

int main() {
  const SimConfig ref;  // for cycle -> ms conversion
  std::printf("sssp, aggregate capacity fixed at footprint/1.25, split across GPUs\n\n");
  std::printf("%6s %14s %14s %12s %16s\n", "GPUs", "baseline(ms)", "adaptive(ms)",
              "speedup", "thrash reduction");

  for (const std::uint32_t gpus : {1u, 2u, 4u}) {
    const MultiGpuResult base = run_multi("sssp", PolicyKind::kFirstTouch, gpus, 1.25);
    const MultiGpuResult adpt = run_multi("sssp", PolicyKind::kAdaptive, gpus, 1.25);
    const double base_ms =
        static_cast<double>(base.makespan) / (ref.gpu.core_clock_ghz * 1e6);
    const double adpt_ms =
        static_cast<double>(adpt.makespan) / (ref.gpu.core_clock_ghz * 1e6);
    const double thrash_cut =
        base.aggregate.pages_thrashed == 0
            ? 0.0
            : 1.0 - static_cast<double>(adpt.aggregate.pages_thrashed) /
                        static_cast<double>(base.aggregate.pages_thrashed);
    std::printf("%6u %14.2f %14.2f %11.2fx %15.1f%%\n", gpus, base_ms, adpt_ms,
                base_ms / adpt_ms, thrash_cut * 100.0);
  }

  std::printf(
      "\nEach GPU throttles its own migrations with the dynamic threshold, so\n"
      "the aggregate thrash falls on every node and the collaboration scales\n"
      "without the baseline's PCIe churn.\n");
  return 0;
}
