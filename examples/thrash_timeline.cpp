// Thrash timeline: watch the memory system's temporal behaviour under
// oversubscription. Runs bfs at 125 % with the baseline and the adaptive
// driver, sampling device occupancy and cumulative thrash every 100k
// cycles, prints a coarse console plot, and writes the full series to CSV
// for plotting.
#include <algorithm>
#include <cstdio>
#include <fstream>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

Timeline run_with_timeline(PolicyKind policy, const char* csv_path) {
  WorkloadParams params;
  params.scale = 0.5;
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  cfg.mem.oversubscription = 1.25;

  auto wl = make_workload("bfs", params);
  Timeline timeline;
  Simulator sim(cfg);
  RunOptions opts;
  opts.timeline = &timeline;
  opts.timeline_interval = 100000;
  (void)sim.run(*wl, opts);

  std::ofstream out(csv_path);
  timeline.write_csv(out);
  return timeline;
}

void sketch(const char* label, const Timeline& t) {
  // Render thrash progression as a sparkline over up to 60 buckets.
  const auto& s = t.samples();
  if (s.empty()) return;
  const std::size_t buckets = std::min<std::size_t>(60, s.size());
  const double max_thrash = static_cast<double>(
      std::max<std::uint64_t>(1, s.back().pages_thrashed));
  std::printf("%-9s |", label);
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto& sample = s[i * s.size() / buckets];
    const double frac = static_cast<double>(sample.pages_thrashed) / max_thrash;
    std::printf("%c", frac < 0.02 ? '.' : frac < 0.25 ? ':' : frac < 0.6 ? '+' : '#');
  }
  std::printf("| thrashed=%llu pages, %zu samples\n",
              static_cast<unsigned long long>(s.back().pages_thrashed), s.size());
}

}  // namespace

int main() {
  std::printf("bfs at 125%% oversubscription: cumulative thrash over time\n\n");
  const Timeline base = run_with_timeline(PolicyKind::kFirstTouch, "timeline_baseline.csv");
  const Timeline adpt = run_with_timeline(PolicyKind::kAdaptive, "timeline_adaptive.csv");
  sketch("baseline", base);
  sketch("adaptive", adpt);
  std::printf(
      "\nFull series written to timeline_baseline.csv / timeline_adaptive.csv\n"
      "(columns: cycle, occupancy, used_blocks, far_faults, remote_accesses,\n"
      " pages_thrashed, bytes_h2d, bytes_d2h).\n");
  return 0;
}
