// Graph analytics under memory pressure: sweep oversubscription factors for
// BFS and SSSP and compare the four driver policies. This is the scenario
// the paper's introduction motivates — irregular, data-intensive workloads
// whose graphs outgrow device memory.
#include <cstdio>
#include <string>
#include <vector>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

SimConfig cfg_for(PolicyKind policy) {
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  return cfg;
}

}  // namespace

int main() {
  WorkloadParams params;
  params.scale = 0.25;

  const std::vector<std::pair<std::string, PolicyKind>> policies{
      {"baseline", PolicyKind::kFirstTouch},
      {"always", PolicyKind::kStaticAlways},
      {"oversub", PolicyKind::kStaticOversub},
      {"adaptive", PolicyKind::kAdaptive},
  };

  for (const std::string graph_app : {"bfs", "sssp"}) {
    std::printf("\n=== %s: kernel time (ms) vs oversubscription ===\n", graph_app.c_str());
    std::printf("%-10s", "policy");
    for (const double o : {0.0, 1.1, 1.25, 1.5}) {
      std::printf(o == 0.0 ? "        fits" : "      %4.0f%%", o * 100);
    }
    std::printf("\n");

    for (const auto& [label, kind] : policies) {
      std::printf("%-10s", label.c_str());
      for (const double o : {0.0, 1.1, 1.25, 1.5}) {
        const SimConfig cfg = cfg_for(kind);
        const RunResult r = run_workload(graph_app, cfg, o, params);
        std::printf("  %10.2f", r.kernel_ms(cfg.gpu.core_clock_ghz));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nReading the table: under oversubscription the adaptive driver keeps\n"
      "cold graph edges host-pinned (zero-copy) and migrates only the hot\n"
      "status arrays, avoiding the thrashing that inflates the baseline.\n");
  return 0;
}
