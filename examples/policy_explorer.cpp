// Policy explorer: sweep the two driver module parameters (ts, p) for one
// workload and print a runtime heat map — the tuning view a driver engineer
// would use before picking defaults. The whole ts x p grid (plus the
// baseline reference) is described upfront as RunRequests and fanned out on
// the parallel batch engine.
//
// Usage: policy_explorer [workload] [oversub] [jobs]
//   workload: backprop|fdtd|hotspot|srad|bfs|nw|ra|sssp (default: sssp)
//   oversub:  working-set / device-capacity factor (default: 1.25)
//   jobs:     worker threads (default: hardware concurrency)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <uvmsim/uvmsim.hpp>

int main(int argc, char** argv) {
  using namespace uvmsim;

  const std::string workload = argc > 1 ? argv[1] : "sssp";
  const double oversub = argc > 2 ? std::atof(argv[2]) : 1.25;
  const unsigned jobs = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

  WorkloadParams params;
  params.scale = 0.25;

  const std::vector<std::uint32_t> ts_values{4, 8, 16, 32};
  const std::vector<std::uint64_t> p_values{1, 2, 4, 8, 16};

  // Request 0 is the baseline; the rest are the ts x p grid in row order.
  std::vector<RunRequest> grid;
  {
    RunRequest base;
    base.workload = workload;
    base.params = params;
    base.oversub = oversub;
    grid.push_back(base);
  }
  for (const auto ts : ts_values) {
    for (const auto p : p_values) {
      RunRequest req;
      req.workload = workload;
      req.params = params;
      req.oversub = oversub;
      req.config.policy.policy = PolicyKind::kAdaptive;
      req.config.policy.static_threshold = ts;
      req.config.policy.migration_penalty = p;
      req.config.mem.eviction = EvictionKind::kLfu;
      grid.push_back(std::move(req));
    }
  }

  BatchOptions opts;
  opts.jobs = jobs;
  const BatchResult batch = run_batch(grid, opts);
  for (const BatchEntry& e : batch.entries) {
    if (!e.ok()) {
      std::fprintf(stderr, "error (%s): %s\n", e.request.workload.c_str(), e.error.c_str());
      return 1;
    }
  }

  const RunResult& base = batch.entries[0].result;
  const auto base_cycles = static_cast<double>(base.stats.kernel_cycles);
  std::printf("%s at %.0f%% oversubscription — baseline %.2f ms (%zu runs in %.1f s, %u jobs)\n",
              workload.c_str(), oversub > 0 ? oversub * 100 : 100.0,
              base.kernel_ms(grid[0].config.gpu.core_clock_ghz), batch.entries.size(),
              batch.wall_ms / 1000.0, batch.jobs);

  std::printf("\nAdaptive runtime normalized to baseline (rows ts, cols p):\n");
  std::printf("%8s", "ts\\p");
  for (const auto p : p_values) std::printf(" %9llu", static_cast<unsigned long long>(p));
  std::printf("\n");

  double best = 1e300;
  std::uint32_t best_ts = 0;
  std::uint64_t best_p = 0;
  std::size_t i = 1;
  for (const auto ts : ts_values) {
    std::printf("%8u", ts);
    for (const auto p : p_values) {
      const RunResult& r = batch.entries[i++].result;
      const double norm = static_cast<double>(r.stats.kernel_cycles) / base_cycles;
      std::printf(" %9.3f", norm);
      if (norm < best) {
        best = norm;
        best_ts = ts;
        best_p = p;
      }
    }
    std::printf("\n");
  }

  std::printf("\nbest: ts=%u, p=%llu -> %.3fx of baseline\n", best_ts,
              static_cast<unsigned long long>(best_p), best);
  return 0;
}
