// Policy explorer: sweep the two driver module parameters (ts, p) for one
// workload and print a runtime heat map — the tuning view a driver engineer
// would use before picking defaults.
//
// Usage: policy_explorer [workload] [oversub]
//   workload: backprop|fdtd|hotspot|srad|bfs|nw|ra|sssp (default: sssp)
//   oversub:  working-set / device-capacity factor (default: 1.25)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <uvmsim/uvmsim.hpp>

int main(int argc, char** argv) {
  using namespace uvmsim;

  const std::string workload = argc > 1 ? argv[1] : "sssp";
  const double oversub = argc > 2 ? std::atof(argv[2]) : 1.25;

  WorkloadParams params;
  params.scale = 0.25;

  // Baseline reference.
  SimConfig base_cfg;
  const RunResult base = run_workload(workload, base_cfg, oversub, params);
  const auto base_cycles = static_cast<double>(base.stats.kernel_cycles);
  std::printf("%s at %.0f%% oversubscription — baseline %.2f ms\n", workload.c_str(),
              oversub > 0 ? oversub * 100 : 100.0, base.kernel_ms(base_cfg.gpu.core_clock_ghz));

  const std::vector<std::uint32_t> ts_values{4, 8, 16, 32};
  const std::vector<std::uint64_t> p_values{1, 2, 4, 8, 16};

  std::printf("\nAdaptive runtime normalized to baseline (rows ts, cols p):\n");
  std::printf("%8s", "ts\\p");
  for (const auto p : p_values) std::printf(" %9llu", static_cast<unsigned long long>(p));
  std::printf("\n");

  double best = 1e300;
  std::uint32_t best_ts = 0;
  std::uint64_t best_p = 0;
  for (const auto ts : ts_values) {
    std::printf("%8u", ts);
    for (const auto p : p_values) {
      SimConfig cfg;
      cfg.policy.policy = PolicyKind::kAdaptive;
      cfg.policy.static_threshold = ts;
      cfg.policy.migration_penalty = p;
      cfg.mem.eviction = EvictionKind::kLfu;
      const RunResult r = run_workload(workload, cfg, oversub, params);
      const double norm = static_cast<double>(r.stats.kernel_cycles) / base_cycles;
      std::printf(" %9.3f", norm);
      if (norm < best) {
        best = norm;
        best_ts = ts;
        best_p = p;
      }
    }
    std::printf("\n");
  }

  std::printf("\nbest: ts=%u, p=%llu -> %.3fx of baseline\n", best_ts,
              static_cast<unsigned long long>(best_p), best);
  return 0;
}
