// Umbrella header for the uvmsim public API.
//
// uvmsim is a discrete-event simulator of CPU-GPU Unified Virtual Memory
// reproducing "Adaptive Page Migration for Irregular Data-intensive
// Applications under GPU Memory Oversubscription" (IPDPS 2020).
//
// Typical usage:
//
//   #include <uvmsim/uvmsim.hpp>
//
//   uvmsim::SimConfig cfg;                      // Table I defaults
//   cfg.policy.policy = uvmsim::PolicyKind::kAdaptive;
//   cfg.mem.eviction = uvmsim::EvictionKind::kLfu;
//   auto result = uvmsim::run_workload("sssp", cfg, /*oversub=*/1.25);
//   std::cout << result.stats.report();
#pragma once

#include "core/simulator.hpp"
#include "core/uvm_driver.hpp"
#include "gpu/l2_cache.hpp"
#include "mem/access_counters.hpp"
#include "mem/address_space.hpp"
#include "mem/block_table.hpp"
#include "mem/device_memory.hpp"
#include "mem/eviction.hpp"
#include "mem/eviction_index.hpp"
#include "mitigation/thrash_throttle.hpp"
#include "multigpu/multi_gpu.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics_recorder.hpp"
#include "obs/registry.hpp"
#include "policy/adaptive_policies.hpp"
#include "policy/migration_policy.hpp"
#include "policy/policy_registry.hpp"
#include "prefetch/prefetcher.hpp"
#include "report/run_csv.hpp"
#include "report/run_json.hpp"
#include "report/table.hpp"
#include "report/variance.hpp"
#include "sim/config.hpp"
#include "sim/config_parse.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"
#include "sim/types.hpp"
#include "trace/replay.hpp"
#include "trace/replay_workload.hpp"
#include "trace/timeline.hpp"
#include "trace/trace.hpp"
#include "trace/trace_binary.hpp"
#include "workloads/graph_gen.hpp"
#include "workloads/input_cache.hpp"
#include "workloads/workload.hpp"
#include "xfer/bandwidth.hpp"
#include "xfer/pcie.hpp"
