#include "gpu/gpu_model.hpp"

#include <stdexcept>

#include "check/check.hpp"

namespace uvmsim {

GpuModel::GpuModel(const SimConfig& cfg, EventQueue& queue, UvmDriver& driver, SimStats& stats)
    : cfg_(cfg), queue_(queue), driver_(driver), stats_(stats) {
  stepper_ = queue_.register_warp_stepper(&GpuModel::step_warp_thunk, this);
  const std::uint32_t total = cfg.total_warps();
  warps_.resize(total);
  for (std::uint32_t w = 0; w < total; ++w) warps_[w].sm = w % cfg.gpu.num_sms;
  sm_next_issue_.assign(cfg.gpu.num_sms, 0);
  tlbs_.reserve(cfg.gpu.num_sms);
  for (std::uint32_t s = 0; s < cfg.gpu.num_sms; ++s) tlbs_.emplace_back(cfg.gpu.tlb_entries_per_sm);

  if (cfg.gpu.l2.enabled) l2_ = std::make_unique<L2Cache>(cfg.gpu.l2);

  driver_.set_warp_waker([this](WarpId w, Cycle ready) { wake_warp(w, ready); });
  driver_.set_tlb_invalidate([this](BlockNum b) {
    const PageNum first = first_page_of_block(b);
    for (auto& tlb : tlbs_) {
      for (PageNum p = first; p < first + kPagesPerBlock; ++p) tlb.invalidate(p);
    }
    if (l2_) l2_->invalidate_block(b);
  });
}

bool GpuModel::refill(WarpCtx& warp) {
  warp.buf.clear();
  warp.pos = 0;
  while (next_task_ < num_tasks_) {
    kernel_->gen_task(next_task_++, warp.buf);
    if (!warp.buf.empty()) {
      if (trace_ != nullptr) trace_->on_task(next_task_ - 1, warp.buf);
      return true;
    }
  }
  return false;
}

void GpuModel::launch(const Kernel& kernel, std::function<void()> on_complete) {
  if (active_warps_ != 0) throw std::logic_error("GpuModel: kernel already in flight");
  kernel_ = &kernel;
  on_complete_ = std::move(on_complete);
  next_task_ = 0;
  num_tasks_ = kernel.num_tasks();

  active_warps_ = 0;
  for (WarpId w = 0; w < warps_.size(); ++w) {
    WarpCtx& warp = warps_[w];
    warp.active = refill(warp);
    if (warp.active) {
      ++active_warps_;
      queue_.schedule_warp_in(0, stepper_, w);
    }
  }
  if (active_warps_ == 0) {
    // Degenerate empty kernel: complete asynchronously for uniform flow.
    queue_.schedule_in(0, [this] {
      auto done = std::move(on_complete_);
      kernel_ = nullptr;
      if (done) done();
    });
  }
}

void GpuModel::step_warp_thunk(void* ctx, WarpId w) {
  static_cast<GpuModel*>(ctx)->step_warp(w);
}

void GpuModel::step_warp(WarpId w) {
  WarpCtx& warp = warps_[w];
  UVM_CHECK(warp.active, "GpuModel: stepping retired warp " << w);
  if (warp.pos >= warp.buf.size() && !refill(warp)) {
    retire_warp(w);
    return;
  }

  const Access& a = warp.buf[warp.pos];
  const Cycle now = queue_.now();

  // One LSU issue slot per SM per cycle — claimed up front, before the TLB
  // and L2 lookups, so even accesses fully absorbed by an L2 hit consume
  // their issue cycle (pinned by GpuScheduling.L2HitsStillConsumeIssueSlots).
  Cycle issue = now;
  if (sm_next_issue_[warp.sm] > issue) issue = sm_next_issue_[warp.sm];
  sm_next_issue_[warp.sm] = issue + 1;

  // TLB lookup; a miss pays the page-table-walk latency before the access.
  Cycle start = issue;
  if (tlbs_[warp.sm].access(page_of(a.addr))) {
    ++stats_.tlb_hits;
  } else {
    ++stats_.tlb_misses;
    start += cfg_.gpu.page_walk_latency;
  }

  // Optional L2: hits are absorbed; only the missing lines reach the driver.
  std::uint32_t count = a.count;
  if (l2_) {
    std::uint32_t misses = 0;
    for (std::uint32_t i = 0; i < a.count; ++i) {
      if (!l2_->access(a.addr + std::uint64_t{i} * kWarpAccessBytes,
                       a.type == AccessType::kWrite)) {
        ++misses;
      }
    }
    stats_.l2_hits += a.count - misses;
    stats_.l2_misses += misses;
    if (misses == 0) {
      stats_.total_accesses += a.count;  // the driver never sees these
      finish_access(w, start + cfg_.gpu.l2.hit_latency);
      return;
    }
    count = misses;
  }

  const AccessOutcome out = driver_.access(w, a.addr, a.type, count, start);
  if (out.stalled) return;  // wake_warp resumes us
  finish_access(w, out.done);
}

void GpuModel::wake_warp(WarpId w, Cycle ready) {
  // Wake-ups for warp ids this model does not own (e.g. a harness poking the
  // driver directly) are ignored rather than corrupting warp state.
  if (w >= warps_.size() || !warps_[w].active) return;
  finish_access(w, ready);
}

void GpuModel::finish_access(WarpId w, Cycle done) {
  WarpCtx& warp = warps_[w];
  const Cycle next = done + warp.buf[warp.pos].gap;
  ++warp.pos;
  queue_.schedule_warp_at(next < queue_.now() ? queue_.now() : next, stepper_, w);
}

void GpuModel::retire_warp(WarpId w) {
  WarpCtx& warp = warps_[w];
  warp.active = false;
  UVM_CHECK(active_warps_ > 0, "GpuModel: retiring warp " << w << " with no active warps");
  --active_warps_;
  if (active_warps_ == 0) {
    auto done = std::move(on_complete_);
    kernel_ = nullptr;
    if (done) done();
  }
}

}  // namespace uvmsim
