#include "gpu/l2_cache.hpp"

#include <bit>
#include <stdexcept>

namespace uvmsim {

L2Cache::L2Cache(const L2Config& cfg) : ways_(cfg.ways) {
  if (cfg.ways == 0) throw std::invalid_argument("L2Cache: zero ways");
  const std::uint64_t total_lines = cfg.size_bytes / kWarpAccessBytes;
  if (total_lines < cfg.ways) throw std::invalid_argument("L2Cache: size below one set");
  // Power-of-two sets for cheap indexing.
  num_sets_ = static_cast<std::uint32_t>(std::bit_floor(total_lines / cfg.ways));
  lines_.assign(static_cast<std::size_t>(num_sets_) * ways_, Line{});
}

bool L2Cache::access(VirtAddr addr, bool write) {
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = static_cast<std::uint32_t>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  ++tick_;

  Line* victim = base;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Line& l = base[w];
    if (l.valid && l.tag == tag) {
      l.lru = tick_;
      l.dirty |= write;
      ++hits_;
      return true;
    }
    if (!l.valid) {
      victim = &l;  // prefer an invalid slot
    } else if (victim->valid && l.lru < victim->lru) {
      victim = &l;
    }
  }

  ++misses_;
  if (victim->valid && victim->dirty) ++dirty_evictions_;
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = write;
  victim->lru = tick_;
  return false;
}

void L2Cache::invalidate_block(BlockNum b) {
  const std::uint64_t first_line = (b << kBasicBlockShift) / kWarpAccessBytes;
  const std::uint64_t lines_per_block = kBasicBlockSize / kWarpAccessBytes;
  for (std::uint64_t line = first_line; line < first_line + lines_per_block; ++line) {
    const std::uint32_t set = static_cast<std::uint32_t>(line % num_sets_);
    const std::uint64_t tag = line / num_sets_;
    Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == tag) {
        base[w].valid = false;
        base[w].dirty = false;
      }
    }
  }
}

}  // namespace uvmsim
