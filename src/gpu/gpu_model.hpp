// GPU execution model: warp contexts distributed over SMs play the access
// streams of dynamically claimed kernel tasks (persistent-threads style CTA
// dispatch). The model captures what matters to the memory system — massive
// TLP that hides local latency, per-SM LSU issue throughput, per-SM TLBs,
// and warps that stall on far-faults — without instruction-level simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "core/uvm_driver.hpp"
#include "gpu/l2_cache.hpp"
#include "gpu/tlb.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

class GpuModel {
 public:
  GpuModel(const SimConfig& cfg, EventQueue& queue, UvmDriver& driver, SimStats& stats);

  /// Launch `kernel`; `on_complete` fires when every task has been executed.
  /// Only one kernel may be in flight (kernels serialize, as with
  /// cudaDeviceSynchronize between launches in the benchmarks).
  void launch(const Kernel& kernel, std::function<void()> on_complete);

  [[nodiscard]] bool busy() const noexcept { return active_warps_ > 0; }

  /// Attach an observation sink: TraceSink::on_task fires for every
  /// non-empty task stream at the moment a warp claims it (hand-out order —
  /// what a recorder must preserve for bit-identical replay). Pure
  /// observation; task scheduling never changes based on an attached sink.
  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }

 private:
  struct WarpCtx {
    std::uint32_t sm = 0;
    std::vector<Access> buf;
    std::size_t pos = 0;
    bool active = false;
  };

  void step_warp(WarpId w);
  /// Warp-step ring trampoline: the event queue carries a plain WarpId and
  /// calls back through this, so no per-access closure is ever built.
  static void step_warp_thunk(void* ctx, WarpId w);
  /// Called by the driver when a stalled warp's access completes.
  void wake_warp(WarpId w, Cycle ready);
  void finish_access(WarpId w, Cycle done);
  bool refill(WarpCtx& warp);
  void retire_warp(WarpId w);

  const SimConfig& cfg_;
  EventQueue& queue_;
  UvmDriver& driver_;
  SimStats& stats_;

  std::vector<WarpCtx> warps_;
  std::uint32_t stepper_ = 0;  ///< this model's warp-stepper handle in queue_
  std::vector<Cycle> sm_next_issue_;
  std::vector<Tlb> tlbs_;
  std::unique_ptr<L2Cache> l2_;  ///< present only when the L2 model is on

  TraceSink* trace_ = nullptr;
  const Kernel* kernel_ = nullptr;
  std::function<void()> on_complete_;
  std::uint64_t next_task_ = 0;
  std::uint64_t num_tasks_ = 0;
  std::uint32_t active_warps_ = 0;
};

}  // namespace uvmsim
