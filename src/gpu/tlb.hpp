// Small per-SM TLB over 4 KB pages: direct-mapped on the page number, which
// is a good approximation of the small per-SM MMU caches at the fidelity we
// need (sequential streams hit, scattered access misses and pays the page
// table walk).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

class Tlb {
 public:
  explicit Tlb(std::uint32_t entries)
      : slots_(entries, kEmpty), pow2_(std::has_single_bit(entries)), mask_(entries - 1) {}

  /// Look up `p`, installing it on miss. Returns true on hit.
  bool access(PageNum p) noexcept {
    auto& slot = slots_[index(p)];
    if (slot == p) return true;
    slot = p;
    return false;
  }

  /// Drop any entry covering page `p` (shootdown on eviction).
  void invalidate(PageNum p) noexcept {
    auto& slot = slots_[index(p)];
    if (slot == p) slot = kEmpty;
  }

  void flush() noexcept {
    for (auto& s : slots_) s = kEmpty;
  }

 private:
  static constexpr PageNum kEmpty = ~PageNum{0};
  /// Direct-mapped slot; the usual power-of-two capacity (default 64) maps
  /// with a mask instead of a per-access 64-bit division.
  [[nodiscard]] std::size_t index(PageNum p) const noexcept {
    return pow2_ ? (p & mask_) : p % slots_.size();
  }
  std::vector<PageNum> slots_;
  bool pow2_;
  std::size_t mask_;
};

}  // namespace uvmsim
