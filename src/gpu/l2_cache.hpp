// Optional L2 cache model: set-associative, 128 B lines, LRU, write-back.
// Sits between the warp front end and the UVM driver; hits complete at L2
// latency and never reach the memory system. Off by default — the workload
// generators emit post-cache access streams calibrated without it — and
// exposed for fidelity ablations (SimConfig::gpu.l2).
//
// Coherence with migration: when the driver evicts a basic block from device
// memory, the GPU invalidates the block's L2 lines (alongside the TLB
// shootdown), so stale lines never serve data the device no longer owns.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace uvmsim {

using L2Config = L2ModelConfig;

class L2Cache {
 public:
  explicit L2Cache(const L2Config& cfg);

  /// Probe one 128 B line; allocates on miss (write-allocate). Returns true
  /// on hit. Dirty victims are counted but not re-injected into the memory
  /// system (their timing contribution is second-order).
  bool access(VirtAddr addr, bool write);

  /// Drop every line of basic block `b` (migration eviction coherence).
  void invalidate_block(BlockNum b);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t dirty_evictions() const noexcept { return dirty_evictions_; }
  [[nodiscard]] std::uint32_t num_sets() const noexcept { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~std::uint64_t{0};
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< global counter value at last touch
  };

  [[nodiscard]] std::uint64_t line_of(VirtAddr a) const noexcept {
    return a / kWarpAccessBytes;
  }

  std::uint32_t ways_;
  std::uint32_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ x ways_
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

}  // namespace uvmsim
