// Driver-side thrashing mitigation, modelled after the nvidia-uvm
// perf_thrashing heuristics the paper describes in §I: the runtime
// "maintains lists of pages thrashed and pinned ... and throttles page
// migration and prefetch decision for these pages". A basic block whose
// residency has changed (round-tripped) too many times is temporarily
// pinned to host memory — accesses are serviced zero-copy — for a cooldown
// period, after which migration is retried.
//
// This is NOT part of the paper's proposed framework — it is the state of
// practice the framework competes with. It is off by default and exercised
// by the ablation benches to quantify how much of the adaptive scheme's win
// plain per-page throttling can recover.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace uvmsim {

class ThrashThrottle {
 public:
  explicit ThrashThrottle(const ThrashThrottleConfig& cfg) : cfg_(cfg) {}

  /// Record a re-fault on `b` whose residency has already changed
  /// `round_trips` times; may transition the block into the pinned state.
  /// Call before querying is_throttled for the same fault.
  void note_fault(BlockNum b, Cycle now, std::uint32_t round_trips);

  /// True while accesses to `b` must be serviced remotely.
  [[nodiscard]] bool is_throttled(BlockNum b, Cycle now) const;

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
  [[nodiscard]] std::uint64_t pins() const noexcept { return pins_; }
  /// Cycle the pin on `b` expires, or 0 when `b` was never pinned.
  [[nodiscard]] Cycle pinned_until(BlockNum b) const noexcept {
    const auto it = pinned_until_.find(b);
    return it != pinned_until_.end() ? it->second : 0;
  }
  [[nodiscard]] std::size_t tracked_blocks() const noexcept { return pinned_until_.size(); }

  /// Drop expired pins (bounds the "considerable implementation and space
  /// overhead" the paper ascribes to this scheme).
  void trim(Cycle now);

 private:
  ThrashThrottleConfig cfg_;
  std::unordered_map<BlockNum, Cycle> pinned_until_;
  std::uint64_t pins_ = 0;
};

}  // namespace uvmsim
