#include "mitigation/thrash_throttle.hpp"

namespace uvmsim {

void ThrashThrottle::note_fault(BlockNum b, Cycle now, std::uint32_t round_trips) {
  if (!cfg_.enabled || round_trips < cfg_.detect_faults) return;
  auto [it, inserted] = pinned_until_.try_emplace(b, 0);
  if (now >= it->second) {
    it->second = now + cfg_.pin_cooldown;
    ++pins_;
  }
}

bool ThrashThrottle::is_throttled(BlockNum b, Cycle now) const {
  if (!cfg_.enabled) return false;
  const auto it = pinned_until_.find(b);
  return it != pinned_until_.end() && now < it->second;
}

void ThrashThrottle::trim(Cycle now) {
  // UVMSIM-ALLOW(determinism): order-independent erase-if sweep; no output depends on visit order
  for (auto it = pinned_until_.begin(); it != pinned_until_.end();) {
    if (now >= it->second) {
      it = pinned_until_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace uvmsim
