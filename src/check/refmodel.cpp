#include "check/refmodel.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <sstream>
#include <tuple>

#include "core/simulator.hpp"

namespace uvmsim {

namespace {

const char* to_cstr(MigrationDecision d) noexcept {
  return d == MigrationDecision::kMigrate ? "migrate" : "remote";
}

std::string format_blocks(const std::vector<BlockNum>& blocks) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (i != 0) os << ' ';
    os << blocks[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

const char* to_cstr(InjectedFault f) noexcept {
  switch (f) {
    case InjectedFault::kNone: return "none";
    case InjectedFault::kFlipResidency: return "flip-residency";
    case InjectedFault::kSkipHalving: return "skip-halving";
    case InjectedFault::kRoundTripOffByOne: return "round-trip-off-by-one";
  }
  return "?";
}

RefModel::RefModel(SimConfig cfg, InjectedFault fault)
    : cfg_(std::move(cfg)),
      fault_(fault),
      skip_halving_armed_(fault == InjectedFault::kSkipHalving),
      flip_residency_armed_(fault == InjectedFault::kFlipResidency) {
  // Dispatch by the resolved slug, not the raw enum: a registry slug in the
  // config overrides the enum, and only the four paper schemes have a
  // side-effect-free reference implementation here.
  const std::string slug = cfg_.policy.resolved_slug();
  if (slug == "baseline")
    ref_kind_ = PolicyKind::kFirstTouch;
  else if (slug == "always")
    ref_kind_ = PolicyKind::kStaticAlways;
  else if (slug == "oversub")
    ref_kind_ = PolicyKind::kStaticOversub;
  else if (slug == "adaptive")
    ref_kind_ = PolicyKind::kAdaptive;
  else
    reference_mode_ = false;
}

void RefModel::capture_layout(const AddressSpace& space) {
  capacity_blocks_ = derived_capacity_bytes(cfg_, space.footprint_bytes()) / kBasicBlockSize;
  overcommitted_ = space.footprint_bytes() > capacity_blocks_ * kBasicBlockSize;

  const BlockNum total_blocks = space.total_blocks();
  blocks_.assign(total_blocks, MBlock{});
  // Zero blocks means zero chunks (mirrors BlockTable — the phantom chunk
  // both sides used to manufacture here broke zero-mapped-chunk handling).
  const ChunkNum total_chunks =
      total_blocks == 0 ? 0 : chunk_of_block(total_blocks - 1) + 1;
  chunks_.assign(total_chunks, MChunk{});
  for (ChunkNum c = 0; c < total_chunks; ++c) {
    chunks_[c].num_blocks = space.chunk_num_blocks(c);
  }

  unit_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.mem.counter_granularity));
  const std::uint64_t units = div_ceil(space.span_end(), cfg_.mem.counter_granularity);
  cnt_.assign(units, 0u);
  trips_.assign(units, 0u);
  count_max_ = (1u << cfg_.mem.counter_count_bits) - 1;
  trip_max_ = (1u << (32u - cfg_.mem.counter_count_bits)) - 1;

  advice_.assign(total_blocks, MemAdvice::kNone);
  for (const Allocation& a : space.allocations()) {
    if (a.advice == MemAdvice::kNone) continue;
    const BlockNum first = block_of(a.base);
    for (BlockNum b = first; b < first + a.padded_size / kBasicBlockSize; ++b) {
      advice_[b] = a.advice;
    }
  }
  layout_captured_ = true;
}

bool RefModel::coalesce_overdue(Cycle now, const char* hook) {
  if (!pending_coalesce_) return false;
  std::ostringstream os;
  os << "model expected chunk " << *pending_coalesce_
     << " to coalesce after its completing arrival, but " << hook
     << " arrived before any on_coalesce";
  diverge(now, os.str());
  return true;
}

void RefModel::diverge(Cycle now, const std::string& what) {
  if (diverged_) return;
  diverged_ = true;
  std::ostringstream os;
  os << "divergence at access #" << accesses_seen_ << " (cycle " << now << "): " << what;
  divergence_ = os.str();
}

std::uint32_t RefModel::model_record_access(VirtAddr a, std::uint32_t n) {
  const std::uint64_t u = a >> unit_shift_;
  std::uint64_t cnt = cnt_[u] + static_cast<std::uint64_t>(n);
  if (cnt >= count_max_) {
    model_halve_all();
    cnt = cnt_[u] + static_cast<std::uint64_t>(n);
    cnt = std::min<std::uint64_t>(cnt, count_max_ - 1);
  }
  cnt_[u] = static_cast<std::uint32_t>(std::min<std::uint64_t>(cnt, count_max_));
  return cnt_[u];
}

void RefModel::model_record_round_trip(VirtAddr a) {
  const std::uint64_t u = a >> unit_shift_;
  if (trips_[u] + 1 >= trip_max_) model_halve_all();
  trips_[u] += 1;
}

void RefModel::model_halve_all() {
  if (skip_halving_armed_) {
    // Injected fault: forget to halve exactly once.
    skip_halving_armed_ = false;
    return;
  }
  for (std::uint32_t& c : cnt_) c >>= 1;
  for (std::uint32_t& t : trips_) t >>= 1;
}

std::uint64_t RefModel::model_range_count(VirtAddr addr, std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  const std::uint64_t first = addr >> unit_shift_;
  const std::uint64_t last = (addr + bytes - 1) >> unit_shift_;
  std::uint64_t total = 0;
  for (std::uint64_t u = first; u <= last && u < cnt_.size(); ++u) total += cnt_[u];
  return total;
}

std::uint64_t RefModel::model_threshold(std::uint32_t counter_trips) const {
  const std::uint32_t ts = cfg_.policy.static_threshold;
  if (!overcommitted_) {
    const std::uint64_t capacity_pages = capacity_blocks_ * kPagesPerBlock;
    if (capacity_pages == 0) return 1;
    const std::uint64_t resident_pages = used_blocks_ * kPagesPerBlock;
    return ts * resident_pages / capacity_pages + 1;
  }
  std::uint64_t r = counter_trips;
  if (fault_ == InjectedFault::kRoundTripOffByOne) r += 1;  // injected off-by-one
  return static_cast<std::uint64_t>(ts) * (r + 1) * cfg_.policy.migration_penalty;
}

MigrationDecision RefModel::model_decide(AccessType type, std::uint32_t post_count,
                                         std::uint32_t counter_trips) const {
  const PolicyConfig& p = cfg_.policy;
  switch (ref_kind_) {
    case PolicyKind::kFirstTouch:
      return MigrationDecision::kMigrate;
    case PolicyKind::kStaticAlways:
      if (type == AccessType::kWrite && p.write_triggers_migration)
        return MigrationDecision::kMigrate;
      return post_count >= p.static_threshold ? MigrationDecision::kMigrate
                                              : MigrationDecision::kRemoteAccess;
    case PolicyKind::kStaticOversub:
      if (!ever_full_) return MigrationDecision::kMigrate;
      if (type == AccessType::kWrite && p.write_triggers_migration)
        return MigrationDecision::kMigrate;
      return post_count >= p.static_threshold ? MigrationDecision::kMigrate
                                              : MigrationDecision::kRemoteAccess;
    case PolicyKind::kAdaptive:
      if (type == AccessType::kWrite && p.adaptive_write_migrates)
        return MigrationDecision::kMigrate;
      return post_count >= model_threshold(counter_trips) ? MigrationDecision::kMigrate
                                                          : MigrationDecision::kRemoteAccess;
  }
  return MigrationDecision::kRemoteAccess;
}

std::vector<BlockNum> RefModel::model_select_victims(ChunkNum faulting_chunk,
                                                     Cycle now) const {
  const Cycle pw = cfg_.mem.eviction_protect_cycles;
  const Cycle cutoff = now > pw ? now - pw : 0;
  std::vector<ChunkNum> full, partial, busy_full, busy_partial;
  for (ChunkNum c = 0; c < chunks_.size(); ++c) {
    if (c == faulting_chunk) continue;
    const MChunk& mc = chunks_[c];
    if (mc.resident == 0) continue;
    const bool busy = pw != 0 && mc.last_access >= cutoff;
    const bool fully = mc.num_blocks != 0 && mc.resident == mc.num_blocks;
    (fully ? (busy ? busy_full : full) : (busy ? busy_partial : partial)).push_back(c);
  }
  const std::vector<ChunkNum>& pool = !full.empty()        ? full
                                      : !partial.empty()   ? partial
                                      : !busy_full.empty() ? busy_full
                                                           : busy_partial;
  if (pool.empty()) return {};

  ChunkNum victim = pool.front();
  if (cfg_.mem.eviction == EvictionKind::kLfu) {
    using Key = std::tuple<std::uint64_t, bool, Cycle>;
    Key best{std::numeric_limits<std::uint64_t>::max(), true,
             std::numeric_limits<Cycle>::max()};
    for (ChunkNum c : pool) {
      std::uint64_t freq = 0;
      const BlockNum first = first_block_of_chunk(c);
      for (BlockNum b = first; b < first + chunks_[c].num_blocks; ++b) {
        if (blocks_[b].res == Residence::kDevice) {
          freq += model_range_count(addr_of_block(b), kBasicBlockSize);
        }
      }
      const Key key{freq, chunks_[c].written_ever, chunks_[c].last_access};
      if (key < best) {
        best = key;
        victim = c;
      }
    }
  } else {
    Cycle best_ts = std::numeric_limits<Cycle>::max();
    for (ChunkNum c : pool) {
      if (chunks_[c].last_access < best_ts) {
        best_ts = chunks_[c].last_access;
        victim = c;
      }
    }
  }

  std::vector<BlockNum> out;
  model_emit_victims(victim, out);
  return out;
}

void RefModel::model_emit_victims(ChunkNum victim, std::vector<BlockNum>& out) const {
  const BlockNum first = first_block_of_chunk(victim);
  const std::uint32_t n = chunks_[victim].num_blocks;

  // Mirror of EvictionManager::emit_victims' coalesced-atomic branch: the
  // on_splinter hook preceding this eviction already demoted the model's
  // chunk, so the atomic case is recognized by the pending reason rather
  // than the (now cleared) coalesced flag.
  if (pending_evict_splinter_ && pending_evict_splinter_->chunk == victim &&
      pending_evict_splinter_->reason == SplinterReason::kAtomicEviction) {
    for (BlockNum b = first; b < first + n; ++b) {
      if (blocks_[b].res == Residence::kDevice) out.push_back(b);
    }
    return;
  }

  if (cfg_.mem.eviction == EvictionKind::kTree && n != 0) {
    // Largest fully-resident power-of-two subtree around the LRU leaf.
    BlockNum lru = first;
    Cycle lru_ts = std::numeric_limits<Cycle>::max();
    bool found = false;
    for (BlockNum b = first; b < first + n; ++b) {
      if (blocks_[b].res == Residence::kDevice && blocks_[b].last_access < lru_ts) {
        lru_ts = blocks_[b].last_access;
        lru = b;
        found = true;
      }
    }
    if (found) {
      const auto leaf = static_cast<std::uint32_t>(lru - first);
      std::uint32_t best_lo = leaf, best_size = 1;
      for (std::uint32_t size = 2; size <= n; size <<= 1) {
        const std::uint32_t lo = leaf / size * size;
        bool full = true;
        for (std::uint32_t i = lo; i < lo + size && full; ++i) {
          full = i < n && blocks_[first + i].res == Residence::kDevice;
        }
        if (!full) break;
        best_lo = lo;
        best_size = size;
      }
      for (std::uint32_t i = best_lo; i < best_lo + best_size; ++i) out.push_back(first + i);
      return;
    }
  }

  if (cfg_.mem.eviction_granularity == kLargePageSize || chunks_[victim].resident <= 1) {
    for (BlockNum b = first; b < first + n; ++b) {
      if (blocks_[b].res == Residence::kDevice) out.push_back(b);
    }
    return;
  }

  // 64 KB granularity: only the coldest resident block of the chunk.
  BlockNum coldest = first;
  bool found = false;
  std::uint64_t coldest_cnt = std::numeric_limits<std::uint64_t>::max();
  Cycle coldest_ts = std::numeric_limits<Cycle>::max();
  for (BlockNum b = first; b < first + n; ++b) {
    if (blocks_[b].res != Residence::kDevice) continue;
    const std::uint64_t cnt = model_range_count(addr_of_block(b), kBasicBlockSize);
    const Cycle ts = blocks_[b].last_access;
    if (std::tie(cnt, ts) < std::tie(coldest_cnt, coldest_ts)) {
      coldest_cnt = cnt;
      coldest_ts = ts;
      coldest = b;
      found = true;
    }
  }
  if (found) out.push_back(coldest);
}

void RefModel::on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                         bool device_resident) {
  if (diverged_) return;
  ++accesses_seen_;
  if (!layout_captured_) {
    diverge(now, "layout never captured (advice_hook not wired?)");
    return;
  }
  if (coalesce_overdue(now, "on_access")) return;
  if (pending_) {
    std::ostringstream os;
    os << "driver never reported the decision for the previous host access to addr 0x"
       << std::hex << pending_->addr;
    diverge(now, os.str());
    return;
  }
  const BlockNum b = block_of(addr);
  if (b >= blocks_.size()) {
    std::ostringstream os;
    os << "access to unmapped block " << b << " (addr 0x" << std::hex << addr << ')';
    diverge(now, os.str());
    return;
  }

  const Residence res = blocks_[b].res;
  if (device_resident != (res == Residence::kDevice)) {
    std::ostringstream os;
    os << "residency mismatch on block " << b << ": driver says "
       << (device_resident ? "device" : "not device") << ", model has " << to_cstr(res);
    diverge(now, os.str());
    return;
  }

  std::uint32_t post_count = 0;
  if (cfg_.policy.historic_counters() || res == Residence::kHost) {
    post_count = model_record_access(addr, count);
  }
  blocks_[b].last_access = now;
  MChunk& mc = chunks_[chunk_of_block(b)];
  // Write sharing must have splintered the chunk before the write was
  // recorded (the driver fires on_splinter ahead of on_access) — a write
  // landing on a still-coalesced chunk means the driver skipped it.
  if (type == AccessType::kWrite && mc.coalesced) {
    std::ostringstream os;
    os << "write to block " << b << " of coalesced chunk " << chunk_of_block(b)
       << " without a write-share splinter";
    diverge(now, os.str());
    return;
  }
  mc.last_access = now;
  if (type == AccessType::kWrite) mc.written_ever = true;

  if (res != Residence::kHost) return;  // device hit or in-flight join

  const std::uint32_t counter_trips = trips_[addr >> unit_shift_];

  if (!reference_mode_) {
    // Skip-decision mode: still pin down the consultation's counter inputs;
    // the migrate/remote choice is adopted from the driver in on_decision
    // (which also applies the residency flip the model defers here).
    pending_ = PendingDecision{addr, type, post_count, counter_trips,
                               MigrationDecision::kRemoteAccess, false};
    return;
  }

  MigrationDecision d = MigrationDecision::kRemoteAccess;
  const MemAdvice advice = advice_[b];
  switch (advice) {
    case MemAdvice::kAccessedBy:
      d = MigrationDecision::kRemoteAccess;
      break;
    case MemAdvice::kPreferredHost:
      d = (type == AccessType::kWrite || post_count >= cfg_.policy.static_threshold)
              ? MigrationDecision::kMigrate
              : MigrationDecision::kRemoteAccess;
      break;
    case MemAdvice::kNone:
      d = model_decide(type, post_count, counter_trips);
      break;
  }

  if (d == MigrationDecision::kMigrate && cfg_.mitigation.enabled) {
    if (blocks_[b].round_trips >= cfg_.mitigation.detect_faults) {
      auto [it, inserted] = pinned_until_.try_emplace(b, 0);
      if (now >= it->second) it->second = now + cfg_.mitigation.pin_cooldown;
    }
    const auto it = pinned_until_.find(b);
    if (it != pinned_until_.end() && now < it->second) d = MigrationDecision::kRemoteAccess;
  }

  bool write_forced = false;
  if (d == MigrationDecision::kMigrate && type == AccessType::kWrite) {
    if (advice == MemAdvice::kPreferredHost) {
      write_forced = post_count < cfg_.policy.static_threshold;
    } else {
      write_forced = model_decide(AccessType::kRead, post_count, counter_trips) ==
                     MigrationDecision::kRemoteAccess;
    }
  }

  pending_ = PendingDecision{addr, type, post_count, counter_trips, d, write_forced};
  if (d == MigrationDecision::kMigrate) blocks_[b].res = Residence::kInFlight;
}

void RefModel::on_kernel_begin(std::uint32_t, const std::string&) {}

void RefModel::on_decision(Cycle now, VirtAddr addr, AccessType type,
                           std::uint32_t post_count, std::uint32_t round_trips,
                           MigrationDecision decision, bool write_forced) {
  if (diverged_) return;
  if (!pending_) {
    std::ostringstream os;
    os << "unexpected on_decision for addr 0x" << std::hex << addr
       << " — model predicted no policy consultation";
    diverge(now, os.str());
    return;
  }
  const PendingDecision& p = *pending_;
  const bool input_mismatch = p.addr != addr || p.type != type ||
                              p.post_count != post_count || p.round_trips != round_trips;
  // In skip-decision mode only the consultation inputs are predicted.
  if (input_mismatch ||
      (reference_mode_ && (p.decision != decision || p.write_forced != write_forced))) {
    std::ostringstream os;
    os << "decision mismatch on addr 0x" << std::hex << addr << std::dec
       << ": driver (post=" << post_count << " trips=" << round_trips << " d="
       << to_cstr(decision) << " wf=" << write_forced << ") vs model (addr 0x" << std::hex
       << p.addr << std::dec << " post=" << p.post_count << " trips=" << p.round_trips
       << " d=" << to_cstr(p.decision) << " wf=" << p.write_forced << ')';
    diverge(now, os.str());
    return;
  }
  if (!reference_mode_ && decision == MigrationDecision::kMigrate) {
    blocks_[block_of(addr)].res = Residence::kInFlight;
  }
  pending_.reset();
}

void RefModel::on_eviction(Cycle now, ChunkNum faulting_chunk,
                           const std::vector<BlockNum>& victims) {
  if (diverged_ || !layout_captured_) return;
  if (coalesce_overdue(now, "on_eviction")) return;
  if (!victims.empty()) {
    const ChunkNum vc = chunk_of_block(victims.front());
    if (chunks_[vc].coalesced) {
      std::ostringstream os;
      os << "eviction from chunk " << vc
         << " the model still holds coalesced (no preceding on_splinter)";
      diverge(now, os.str());
      return;
    }
    if (pending_evict_splinter_ && pending_evict_splinter_->chunk != vc) {
      std::ostringstream os;
      os << "eviction splinter reported for chunk " << pending_evict_splinter_->chunk
         << " but the victims land in chunk " << vc;
      diverge(now, os.str());
      return;
    }
  }
  const std::vector<BlockNum> expected = model_select_victims(faulting_chunk, now);
  pending_evict_splinter_.reset();
  if (expected != victims) {
    std::ostringstream os;
    os << "victim mismatch while servicing chunk " << faulting_chunk << ": driver evicted "
       << format_blocks(victims) << ", model expected " << format_blocks(expected);
    diverge(now, os.str());
    return;
  }
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const BlockNum v = victims[i];
    if (blocks_[v].res != Residence::kDevice) {
      std::ostringstream os;
      os << "driver evicted block " << v << " that the model holds " << to_cstr(blocks_[v].res);
      diverge(now, os.str());
      return;
    }
    if (flip_residency_armed_ && i + 1 == victims.size()) {
      // Injected fault: forget to apply the last victim of the first
      // eviction — the model keeps believing the block is resident.
      flip_residency_armed_ = false;
      continue;
    }
    blocks_[v].res = Residence::kHost;
    ++blocks_[v].round_trips;
    MChunk& mc = chunks_[chunk_of_block(v)];
    if (mc.resident > 0) --mc.resident;
    model_record_round_trip(addr_of_block(v));
    if (used_blocks_ > 0) --used_blocks_;
  }
}

void RefModel::on_migration(Cycle now, BlockNum b, bool demand) {
  if (diverged_ || !layout_captured_) return;
  if (coalesce_overdue(now, "on_migration")) return;
  if (b >= blocks_.size()) {
    std::ostringstream os;
    os << "migration of unmapped block " << b;
    diverge(now, os.str());
    return;
  }
  if (demand) {
    if (blocks_[b].res != Residence::kInFlight) {
      std::ostringstream os;
      os << "demand migration of block " << b << " the model holds "
         << to_cstr(blocks_[b].res) << " (expected in-flight)";
      diverge(now, os.str());
      return;
    }
  } else {
    if (blocks_[b].res != Residence::kHost) {
      std::ostringstream os;
      os << "prefetch migration of block " << b << " the model holds "
         << to_cstr(blocks_[b].res) << " (expected host)";
      diverge(now, os.str());
      return;
    }
    blocks_[b].res = Residence::kInFlight;
  }
  if (!cfg_.policy.historic_counters()) {
    const VirtAddr base = addr_of_block(b);
    const std::uint64_t first = base >> unit_shift_;
    const std::uint64_t last = (base + kBasicBlockSize - 1) >> unit_shift_;
    for (std::uint64_t u = first; u <= last && u < cnt_.size(); ++u) cnt_[u] = 0;
  }
  ++used_blocks_;
  if (used_blocks_ > capacity_blocks_) {
    std::ostringstream os;
    os << "device over-reserved: " << used_blocks_ << " blocks in use, capacity "
       << capacity_blocks_;
    diverge(now, os.str());
  }
}

void RefModel::on_arrival(Cycle now, BlockNum b) {
  if (diverged_ || !layout_captured_) return;
  if (coalesce_overdue(now, "on_arrival")) return;
  if (b >= blocks_.size() || blocks_[b].res != Residence::kInFlight) {
    std::ostringstream os;
    os << "arrival of block " << b << " the model holds "
       << (b < blocks_.size() ? to_cstr(blocks_[b].res) : "unmapped")
       << " (expected in-flight)";
    diverge(now, os.str());
    return;
  }
  blocks_[b].res = Residence::kDevice;
  const ChunkNum c = chunk_of_block(b);
  MChunk& mc = chunks_[c];
  ++mc.resident;
  // Independent application of the driver's coalesce rule: this arrival
  // completing a never-written chunk must be answered by on_coalesce before
  // any other hook (the adjacency every handler's coalesce_overdue pins).
  if (cfg_.mem.coalescing && !mc.coalesced && mc.num_blocks != 0 &&
      mc.resident == mc.num_blocks && !mc.written_ever) {
    pending_coalesce_ = c;
  }
}

void RefModel::on_device_full(Cycle) { ever_full_ = true; }

void RefModel::on_coalesce(Cycle now, ChunkNum c) {
  if (diverged_ || !layout_captured_) return;
  if (!pending_coalesce_ || *pending_coalesce_ != c) {
    std::ostringstream os;
    os << "driver coalesced chunk " << c << " but the model expected ";
    if (pending_coalesce_)
      os << "chunk " << *pending_coalesce_;
    else
      os << "no coalesce (gates: fully resident, never written, split)";
    diverge(now, os.str());
    return;
  }
  chunks_[c].coalesced = true;
  pending_coalesce_.reset();
}

void RefModel::on_splinter(Cycle now, ChunkNum c, SplinterReason reason) {
  if (diverged_ || !layout_captured_) return;
  if (coalesce_overdue(now, "on_splinter")) return;
  if (c >= chunks_.size() || !chunks_[c].coalesced) {
    std::ostringstream os;
    os << "driver splintered chunk " << c << " (" << to_cstr(reason)
       << ") that the model holds "
       << (c < chunks_.size() ? "split" : "unmapped");
    diverge(now, os.str());
    return;
  }
  if (reason == SplinterReason::kEviction && !cfg_.mem.splinter_on_evict) {
    diverge(now, "partial-eviction splinter with mem.splinter_on_evict=false");
    return;
  }
  chunks_[c].coalesced = false;
  if (reason != SplinterReason::kWriteShare) {
    pending_evict_splinter_ = EvictSplinter{c, reason};
  }
}

void RefModel::finish() {
  if (diverged_) return;
  if (pending_) {
    std::ostringstream os;
    os << "run ended with an unreported decision for addr 0x" << std::hex << pending_->addr;
    diverge(0, os.str());
    return;
  }
  if (coalesce_overdue(0, "finish")) return;
  if (pending_evict_splinter_) {
    std::ostringstream os;
    os << "run ended with an eviction splinter of chunk " << pending_evict_splinter_->chunk
       << " never followed by its on_eviction";
    diverge(0, os.str());
    return;
  }
  for (BlockNum b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].res == Residence::kInFlight) {
      std::ostringstream os;
      os << "run ended with block " << b << " still in flight in the model";
      diverge(0, os.str());
      return;
    }
  }
}

}  // namespace uvmsim
