#include "check/check.hpp"

namespace uvmsim::detail {

void check_fail(const char* expr, const char* file, int line,
                const std::string& context) {
  std::ostringstream os;
  os << "UVM_CHECK failed: " << expr << " (" << file << ':' << line << ')';
  if (!context.empty()) os << ": " << context;
  throw CheckFailure(os.str());
}

}  // namespace uvmsim::detail
