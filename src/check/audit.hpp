// InvariantAuditor — the opt-in expensive tier (UVM_AUDIT) of the invariant
// tooling. At a configurable event interval (and once more at end of run) it
// cross-validates whole-structure consistency between the page table, device
// memory, access counters, eviction machinery, transfer engine and event
// queue:
//
//   * residency conservation — per-chunk resident counts match a per-block
//     scan; device used == resident + in-flight; resident + free == capacity
//   * mapping granularity — a coalesced 2 MB chunk is fully resident and was
//     never written; the O(1) coalesced-chunk counter matches a scan; the
//     coalesce/splinter counters obey the conservation law
//     (docs/GRANULARITY.md)
//   * eviction membership — the victim-selection view of 2 MB large pages
//     exactly matches block-level residency (and a probe pick returns only
//     resident blocks of one chunk)
//   * access counters — clamp at saturation (count < 2^27, trips < 2^5) and
//     historic-mode monotonicity across halvings
//   * dynamic threshold — Equation 1 bounds: td >= 1 always; the
//     oversubscribed branch equals ts * (r + 1) * p
//   * PCIe byte conservation — DMA bytes accepted by each channel equal the
//     stats bookkeeping; channel totals equal DMA + zero-copy traffic
//   * clock/stats monotonicity — sim time and cumulative counters never
//     run backwards between audit passes
//
// Violations are collected into an AuditReport, surfaced through SimStats
// (audit_passes / audit_violations / last_violation), and — in the default
// fail-fast mode — thrown as CheckFailure so run_batch() fails the affected
// run, error-isolated from the rest of the batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/migration_policy.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace uvmsim {

class AccessCounterTable;
class BlockTable;
class DeviceMemory;
class EventQueue;
class EvictionManager;
class PcieFabric;

/// Read-only view of the structures one audit pass cross-validates. Any
/// pointer may be null; the corresponding checks are skipped (tests audit
/// hand-built partial scopes, the driver supplies everything).
struct AuditScope {
  const BlockTable* table = nullptr;
  const DeviceMemory* device = nullptr;
  const AccessCounterTable* counters = nullptr;
  const EvictionManager* eviction = nullptr;
  const PcieFabric* pcie = nullptr;
  const EventQueue* queue = nullptr;
  const SimStats* stats = nullptr;
  const MigrationPolicy* policy = nullptr;
  const PolicyConfig* policy_cfg = nullptr;
  PolicyFeatures policy_features;  ///< occupancy/activity snapshot (counters zeroed)
  std::uint64_t in_flight_blocks = 0;  ///< H2D migrations enqueued, not landed
  /// Faulted blocks already marked in-flight in the table but still queued in
  /// the fault engine (no transfer, no device frame yet).
  std::uint64_t queued_fault_blocks = 0;
  bool historic_counters = false;      ///< counters survive migration (paper)
  /// The driver's eviction protect window, so the victim-parity check probes
  /// the same busy/non-busy classification the hot path uses.
  Cycle protect_window = 0;
};

/// Outcome of one full audit pass.
struct AuditReport {
  std::uint64_t checks = 0;             ///< individual assertions evaluated
  std::vector<std::string> violations;  ///< one formatted entry per failure
  [[nodiscard]] bool clean() const noexcept { return violations.empty(); }
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const AuditConfig& cfg);

  /// Hot-path hook: counts events and runs a full pass every
  /// cfg.interval_events. On violation the pass updates `stats` and, in
  /// fail-fast mode, throws CheckFailure (failing the run, not the batch).
  void on_event(const AuditScope& scope, SimStats& stats);

  /// Unconditional pass with stats/fail-fast semantics (end-of-run hook).
  void finalize(const AuditScope& scope, SimStats& stats);

  /// Run one full pass and return every violation without throwing — the
  /// fault-injection testing surface.
  [[nodiscard]] AuditReport audit_now(const AuditScope& scope);

  [[nodiscard]] std::uint64_t passes() const noexcept { return passes_; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
  [[nodiscard]] const std::string& last_violation() const noexcept {
    return last_violation_;
  }

 private:
  void run_pass(const AuditScope& scope, SimStats& stats);

  void check_residency(const AuditScope& s, AuditReport& r) const;
  void check_granularity(const AuditScope& s, AuditReport& r) const;
  void check_eviction_membership(const AuditScope& s, AuditReport& r) const;
  void check_eviction_index(const AuditScope& s, AuditReport& r) const;
  void check_counters(const AuditScope& s, AuditReport& r);
  void check_threshold(const AuditScope& s, AuditReport& r) const;
  void check_pcie(const AuditScope& s, AuditReport& r) const;
  void check_monotonicity(const AuditScope& s, AuditReport& r);

  AuditConfig cfg_;
  std::uint64_t events_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t violations_ = 0;
  std::string last_violation_;

  // Cross-pass monotonicity state.
  std::vector<std::uint32_t> prev_counts_;
  std::uint64_t prev_halvings_ = 0;
  bool has_counter_snapshot_ = false;
  Cycle last_now_ = 0;
  std::uint64_t prev_total_accesses_ = 0;
  std::uint64_t prev_far_faults_ = 0;
  std::uint64_t prev_evictions_ = 0;
  std::uint64_t prev_bytes_h2d_ = 0;
  std::uint64_t prev_bytes_d2h_ = 0;
};

}  // namespace uvmsim
