// Differential reference model of the UVM driver (the fuzzing oracle).
//
// RefModel is a TraceSink that maintains a deliberately naive, allocation-
// heavy functional copy of the driver state — block residency, access
// counters with saturation halving, the Equation-1 threshold in both
// regimes, the write-migrate rule and LRU/LFU/tree victim ordering — from
// nothing but the observation hooks the driver emits (trace.hpp). It
// re-derives every policy decision and every victim set independently and
// compares them against what the driver reports, recording the first
// divergence with full context.
//
// The model is intentionally simple rather than fast: straight-line scans,
// no incremental indices, no shared code with the driver's eviction fast
// path. Where the driver uses EvictionIndex and pick_fast(), the model
// rescans every chunk; where AccessCounterTable packs two fields into one
// register, the model keeps two plain vectors. Agreement between two
// implementations this different is the property the fuzzer checks.
//
// Fault injection (self-test of the oracle): InjectedFault deliberately
// corrupts the model so the harness can assert that the fuzzer detects a
// wrong oracle (tests/check/test_fuzz_selftest.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"

namespace uvmsim {

/// Deliberate model corruptions for oracle self-tests.
enum class InjectedFault : std::uint8_t {
  kNone,              ///< faithful model (production fuzzing)
  kFlipResidency,     ///< first eviction leaves its last victim marked resident
  kSkipHalving,       ///< the model's first counter halving is skipped
  kRoundTripOffByOne  ///< Equation 1 oversub branch uses (r + 2) instead of (r + 1)
};

[[nodiscard]] const char* to_cstr(InjectedFault f) noexcept;

/// Lockstep oracle: attach as the trace sink of a collect_traces run (and
/// call capture_layout from RunOptions::advice_hook so the model sees the
/// allocation layout before the first access). After the run, diverged()
/// reports whether the driver ever disagreed with the model.
class RefModel final : public TraceSink {
 public:
  /// The model re-derives decisions only for the four paper policies it
  /// mirrors. For any other registry policy (a stateful online-adaptive one
  /// cannot be replayed side-effect-free from the outside) the oracle runs
  /// in *skip-decision mode*: it still verifies residency, the counter
  /// inputs of every consultation, victim sets, occupancy and arrivals, but
  /// adopts the driver's migrate/remote choice instead of predicting it.
  explicit RefModel(SimConfig cfg, InjectedFault fault = InjectedFault::kNone);

  /// False when this run verifies a non-paper policy in skip-decision mode.
  [[nodiscard]] bool reference_mode() const noexcept { return reference_mode_; }

  /// Capture allocation layout, derive device capacity and size every model
  /// structure. Must run after the workload builds and before any access;
  /// wire it as RunOptions::advice_hook.
  void capture_layout(const AddressSpace& space);

  // TraceSink
  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override;
  void on_kernel_begin(std::uint32_t launch_index, const std::string& name) override;
  void on_decision(Cycle now, VirtAddr addr, AccessType type, std::uint32_t post_count,
                   std::uint32_t round_trips, MigrationDecision decision,
                   bool write_forced) override;
  void on_eviction(Cycle now, ChunkNum faulting_chunk,
                   const std::vector<BlockNum>& victims) override;
  void on_migration(Cycle now, BlockNum block, bool demand) override;
  void on_arrival(Cycle now, BlockNum block) override;
  void on_device_full(Cycle now) override;
  void on_coalesce(Cycle now, ChunkNum c) override;
  void on_splinter(Cycle now, ChunkNum c, SplinterReason reason) override;

  /// End-of-run checks (dangling decision, migrations that never landed).
  /// Call after the simulation completes; may record a divergence.
  void finish();

  [[nodiscard]] bool diverged() const noexcept { return diverged_; }
  /// First divergence, with the access index, cycle and expected-vs-actual
  /// context. Empty while !diverged().
  [[nodiscard]] const std::string& divergence() const noexcept { return divergence_; }
  /// 1-based index of the access during/after which the divergence fired.
  [[nodiscard]] std::uint64_t accesses_seen() const noexcept { return accesses_seen_; }

 private:
  struct MBlock {
    Residence res = Residence::kHost;
    Cycle last_access = 0;
    std::uint32_t round_trips = 0;  ///< BlockTable round trips (throttle input)
  };
  struct MChunk {
    std::uint32_t resident = 0;
    std::uint32_t num_blocks = 0;  ///< mapped 64 KB blocks (0 = unmapped chunk)
    Cycle last_access = 0;
    bool written_ever = false;
    bool coalesced = false;  ///< independent 2 MB-mapping mirror (mem.coalescing)
  };
  struct PendingDecision {
    VirtAddr addr = 0;
    AccessType type = AccessType::kRead;
    std::uint32_t post_count = 0;
    std::uint32_t round_trips = 0;
    MigrationDecision decision = MigrationDecision::kRemoteAccess;
    bool write_forced = false;
  };

  void diverge(Cycle now, const std::string& what);

  // Naive counter mirror (two plain vectors instead of packed registers).
  std::uint32_t model_record_access(VirtAddr a, std::uint32_t n);
  void model_record_round_trip(VirtAddr a);
  void model_halve_all();
  [[nodiscard]] std::uint64_t model_range_count(VirtAddr addr, std::uint64_t bytes) const;

  [[nodiscard]] MigrationDecision model_decide(AccessType type, std::uint32_t post_count,
                                               std::uint32_t counter_trips) const;
  [[nodiscard]] std::uint64_t model_threshold(std::uint32_t counter_trips) const;

  // Naive victim selection: full rescan, reference class ordering.
  [[nodiscard]] std::vector<BlockNum> model_select_victims(ChunkNum faulting_chunk,
                                                           Cycle now) const;
  void model_emit_victims(ChunkNum victim, std::vector<BlockNum>& out) const;

  SimConfig cfg_;
  InjectedFault fault_;
  bool reference_mode_ = true;       ///< false: skip-decision (registry policy)
  PolicyKind ref_kind_ = PolicyKind::kFirstTouch;  ///< dispatch when reference_mode_
  bool skip_halving_armed_;
  bool flip_residency_armed_;
  bool layout_captured_ = false;

  // Layout (fixed after capture_layout).
  std::uint64_t capacity_blocks_ = 0;
  bool overcommitted_ = false;
  std::uint32_t unit_shift_ = 0;
  std::uint32_t count_max_ = 0;
  std::uint32_t trip_max_ = 0;
  std::vector<MemAdvice> advice_;

  // Mutable mirrored state.
  std::vector<MBlock> blocks_;
  std::vector<MChunk> chunks_;
  std::vector<std::uint32_t> cnt_;    ///< per counter unit: access count field
  std::vector<std::uint32_t> trips_;  ///< per counter unit: round-trip field
  std::uint64_t used_blocks_ = 0;
  bool ever_full_ = false;
  std::unordered_map<BlockNum, Cycle> pinned_until_;  ///< throttle mirror
  std::optional<PendingDecision> pending_;
  /// Chunk the model expects the driver to coalesce: set when an arrival
  /// completes a never-written chunk; the on_coalesce hook must follow
  /// immediately (lockstep adjacency) and clears it.
  std::optional<ChunkNum> pending_coalesce_;
  /// Eviction-reason splinter awaiting its on_eviction: the model mirrors
  /// the driver's hook order (splinter fires before the victim report) and
  /// uses the reason to pick whole-chunk vs per-granularity emission.
  struct EvictSplinter {
    ChunkNum chunk = 0;
    SplinterReason reason = SplinterReason::kEviction;
  };
  std::optional<EvictSplinter> pending_evict_splinter_;

  /// Divergence when a predicted coalesce was never reported before `hook`.
  [[nodiscard]] bool coalesce_overdue(Cycle now, const char* hook);

  bool diverged_ = false;
  std::string divergence_;
  std::uint64_t accesses_seen_ = 0;
};

}  // namespace uvmsim
