// UVM_CHECK — the always-on cheap tier of the invariant tooling.
//
// A failed check throws CheckFailure (a std::logic_error) carrying the
// failed expression, source location and a caller-formatted context dump,
// instead of the raw assert() the bookkeeping used to rely on. Unlike
// assert(), UVM_CHECK survives NDEBUG release builds, and unlike abort()
// the failure is catchable — run_batch() isolates a violating run into its
// BatchEntry::error instead of taking the whole batch down.
//
// The passing path is a single predicted branch; the formatting lambda body
// only executes on failure, so checks are safe on hot paths.
//
// Usage:
//   UVM_CHECK(s.residence == Residence::kHost,
//             "block " << b << " state=" << to_cstr(s.residence));
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace uvmsim {

/// Thrown by UVM_CHECK and the fail-fast auditor. Derives from
/// std::logic_error so pre-existing EXPECT_THROW(std::logic_error)
/// expectations on illegal state transitions keep holding.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
/// Builds the diagnostic ("UVM_CHECK failed: <expr> (<file>:<line>): <ctx>")
/// and throws CheckFailure. Out-of-line so check sites stay small.
[[noreturn]] void check_fail(const char* expr, const char* file, int line,
                             const std::string& context);
}  // namespace detail

}  // namespace uvmsim

#define UVM_CHECK(cond, context_stream)                                      \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::std::ostringstream uvm_check_os_;                                    \
      uvm_check_os_ << context_stream; /* NOLINT */                          \
      ::uvmsim::detail::check_fail(#cond, __FILE__, __LINE__,                \
                                   uvm_check_os_.str());                     \
    }                                                                        \
  } while (0)
