// Differential fuzzing engine: drive generated FuzzCases through the real
// simulator with a RefModel oracle attached, collect divergences, shrink
// each finding to a minimal replayable trace (greedy record deletion), and
// persist repros as <name>.trc (UVMTRC1) + <name>.cfg sidecar pairs that
// tests/check/test_fuzz_corpus.cpp replays as regressions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/refmodel.hpp"
#include "check/streamgen.hpp"

namespace uvmsim {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 100;
  unsigned jobs = 0;  ///< run_batch worker threads; 0 = hardware concurrency
  /// Oracle corruption for self-tests; kNone fuzzes the real invariant.
  InjectedFault inject = InjectedFault::kNone;
  bool shrink = true;
  /// Dump shrunk repros into this directory when non-empty.
  std::string corpus_dir;
  /// Stop shrinking/dumping after this many findings (all are still counted).
  std::uint64_t max_findings = 8;
  /// Every Nth case replays a mutated copy of an earlier case's trace under
  /// the earlier case's config (corpus-mutation mode); 0 disables.
  std::uint64_t mutate_every = 5;
  /// Force every generated case onto this registry policy slug (empty: keep
  /// the generator's per-case choice). Non-paper slugs put the oracle in
  /// skip-decision mode (see RefModel).
  std::string policy_slug;
  /// Seed the whole campaign from a captured trace file (UVMTRB1 or legacy
  /// UVMTRC1) instead of generated cases: case 0 replays the trace exactly,
  /// every later case replays a fresh mutant of it. Cases rotate through the
  /// four paper policies unless `policy_slug` pins one. Throws TraceError on
  /// a malformed file.
  std::string trace_path;
  StreamGenOptions gen;
  /// Progress callback after each batch entry completes (serialized).
  std::function<void(std::uint64_t done, std::uint64_t total)> progress;
};

/// Outcome of one sim-vs-model run.
struct CaseOutcome {
  bool interesting = false;  ///< diverged, or the run itself threw
  std::string message;
  std::uint64_t accesses = 0;  ///< accesses the model had seen at that point
};

/// One divergence, shrunk (when enabled) and optionally dumped to disk.
struct FuzzFinding {
  FuzzCase reduced;
  std::string message;  ///< divergence text of the reduced case
  std::uint64_t case_index = 0;
  std::uint64_t original_records = 0;
  std::uint64_t reduced_records = 0;
  std::string trace_path;   ///< empty unless dumped
  std::string config_path;  ///< empty unless dumped
};

struct FuzzReport {
  std::uint64_t iterations = 0;
  std::uint64_t divergences = 0;  ///< total interesting cases (before the cap)
  std::vector<FuzzFinding> findings;
};

/// Run one case through the simulator in lockstep with a RefModel (corrupted
/// by `inject` when not kNone). Never throws: simulator/audit exceptions are
/// reported as an interesting outcome.
[[nodiscard]] CaseOutcome run_case(const FuzzCase& fc, InjectedFault inject);

/// Generate + run `iterations` cases through run_batch(); shrink and dump
/// findings per the options.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& opts);

/// Greedy delta-debugging shrink: repeatedly delete contiguous record windows
/// (halving window sizes down to single records) while the case stays
/// interesting under `inject`. Returns the fixpoint; `final_message` (when
/// non-null) receives the reduced case's divergence text.
[[nodiscard]] FuzzCase shrink_case(const FuzzCase& fc, InjectedFault inject,
                                   std::string* final_message = nullptr);

/// Persist / load a repro as a UVMTRC1 trace plus a text sidecar holding the
/// full SimConfig (config_parse format) and fuzz.* metadata lines (seed,
/// fault, per-allocation advice). Both throw std::runtime_error on I/O
/// failure or malformed input.
void save_case(const FuzzCase& fc, InjectedFault fault, const std::string& trace_path,
               const std::string& config_path);
[[nodiscard]] FuzzCase load_case(const std::string& trace_path, const std::string& config_path,
                                 InjectedFault* fault_out = nullptr);

}  // namespace uvmsim
