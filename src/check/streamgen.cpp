#include "check/streamgen.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "sim/types.hpp"

namespace uvmsim {
namespace {

// Mapped span of one allocation as the generator sees it. Bases come from a
// probe AddressSpace so they match TraceWorkload::build() exactly.
struct Span {
  VirtAddr base = 0;
  std::uint64_t user_size = 0;
};

struct Layout {
  std::vector<Span> spans;
  std::uint64_t footprint = 0;
  std::uint64_t total_user = 0;
};

[[nodiscard]] VirtAddr pick_addr(const Layout& lay, Rng& rng) {
  const Span& s = lay.spans[rng.below(lay.spans.size())];
  return s.base + rng.below(s.user_size);
}

// Address of the i-th 64 KB block of the concatenated user ranges, wrapping.
// The walk is what thrash loops iterate: a deterministic block ring spanning
// every allocation.
[[nodiscard]] VirtAddr block_ring_addr(const Layout& lay, std::uint64_t i) {
  std::uint64_t total = 0;
  std::vector<std::uint64_t> blocks_per(lay.spans.size());
  for (std::size_t k = 0; k < lay.spans.size(); ++k) {
    blocks_per[k] = (lay.spans[k].user_size + kBasicBlockSize - 1) / kBasicBlockSize;
    total += blocks_per[k];
  }
  std::uint64_t r = i % total;
  for (std::size_t k = 0; k < lay.spans.size(); ++k) {
    if (r < blocks_per[k]) return lay.spans[k].base + r * kBasicBlockSize;
    r -= blocks_per[k];
  }
  return lay.spans[0].base;  // unreachable
}

[[nodiscard]] std::uint64_t ring_blocks(const Layout& lay) {
  std::uint64_t total = 0;
  for (const Span& s : lay.spans)
    total += (s.user_size + kBasicBlockSize - 1) / kBasicBlockSize;
  return total;
}

[[nodiscard]] std::uint16_t small_gap(Rng& rng) {
  // Mostly back-to-back; occasionally a long stall that splits fault batches.
  if (rng.chance(0.02)) return static_cast<std::uint16_t>(rng.between(4000, 60000));
  return static_cast<std::uint16_t>(rng.below(24));
}

void push(RecordedLaunch& launch, VirtAddr addr, AccessType type, std::uint16_t count,
          std::uint16_t gap) {
  launch.records.push_back(TraceRecord{addr, count, type, gap});
}

// Patterns. Each appends `budget` records to `launch`.

void gen_uniform(RecordedLaunch& launch, const Layout& lay, Rng& rng, std::uint64_t budget) {
  for (std::uint64_t i = 0; i < budget; ++i) {
    const auto type = rng.chance(0.3) ? AccessType::kWrite : AccessType::kRead;
    const auto count = static_cast<std::uint16_t>(1ull << rng.below(6));
    push(launch, pick_addr(lay, rng), type, count, small_gap(rng));
  }
}

// Round-robin over a block working set slightly larger than device capacity:
// the canonical thrash loop. Guarantees steady-state eviction pressure.
void gen_thrash(RecordedLaunch& launch, const Layout& lay, std::uint64_t capacity_blocks,
                Rng& rng, std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  std::uint64_t set = capacity_blocks + rng.between(1, 8);
  set = std::clamp<std::uint64_t>(set, 2, ring);
  const std::uint64_t start = rng.below(ring);
  for (std::uint64_t i = 0; i < budget; ++i) {
    const VirtAddr a = block_ring_addr(lay, start + i % set);
    const auto type = rng.chance(0.15) ? AccessType::kWrite : AccessType::kRead;
    push(launch, a, type, static_cast<std::uint16_t>(rng.between(1, 8)), small_gap(rng));
  }
}

// A few hot blocks absorb most accesses (zipf), the rest scatter cold —
// stresses threshold schemes around ts and LFU victim ordering.
void gen_hotcold(RecordedLaunch& launch, const Layout& lay, Rng& rng, std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  const std::uint64_t hot_n = std::min<std::uint64_t>(rng.between(2, 4), ring);
  std::vector<VirtAddr> hot(hot_n);
  for (auto& h : hot) h = block_ring_addr(lay, rng.below(ring));
  for (std::uint64_t i = 0; i < budget; ++i) {
    VirtAddr a;
    std::uint16_t count;
    if (rng.chance(0.85)) {
      a = hot[rng.zipf(hot_n, 1.2)] + rng.below(kBasicBlockSize);
      count = static_cast<std::uint16_t>(rng.between(1, 64));
    } else {
      a = pick_addr(lay, rng);
      count = 1;
    }
    const auto type = rng.chance(0.25) ? AccessType::kWrite : AccessType::kRead;
    push(launch, a, type, count, small_gap(rng));
  }
}

// All-write storm into one or two blocks: exercises the write-migrate rule,
// write_forced classification and dirty writeback accounting.
void gen_write_burst(RecordedLaunch& launch, const Layout& lay, Rng& rng,
                     std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  const VirtAddr b0 = block_ring_addr(lay, rng.below(ring));
  const VirtAddr b1 = block_ring_addr(lay, rng.below(ring));
  for (std::uint64_t i = 0; i < budget; ++i) {
    const VirtAddr base = rng.chance(0.7) ? b0 : b1;
    push(launch, base + rng.below(kBasicBlockSize), AccessType::kWrite,
         static_cast<std::uint16_t>(rng.between(1, 64)), small_gap(rng));
  }
}

// Giant per-record counts against a couple of counter units: drives the
// access-count field into saturation so halve_all() fires (immediately for
// small counter_count_bits configs).
void gen_saturation_ramp(RecordedLaunch& launch, const Layout& lay, Rng& rng,
                         std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  const std::uint64_t targets = std::min<std::uint64_t>(rng.between(1, 3), ring);
  std::vector<VirtAddr> t(targets);
  for (auto& a : t) a = block_ring_addr(lay, rng.below(ring));
  for (std::uint64_t i = 0; i < budget; ++i) {
    const VirtAddr a = t[rng.below(targets)];
    const auto count = static_cast<std::uint16_t>(rng.chance(0.5) ? 65535 : rng.between(200, 4096));
    const auto type = rng.chance(0.1) ? AccessType::kWrite : AccessType::kRead;
    push(launch, a, type, count, small_gap(rng));
  }
}

// Two 2 MB chunks alternating: maximal eviction ping-pong, fastest route to
// round-trip accumulation (and trip-field halving at small trip widths).
void gen_pingpong(RecordedLaunch& launch, const Layout& lay, Rng& rng, std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  const VirtAddr a0 = block_ring_addr(lay, rng.below(ring));
  const VirtAddr a1 = block_ring_addr(lay, rng.below(ring));
  for (std::uint64_t i = 0; i < budget; ++i) {
    const VirtAddr base = (i & 1) ? a1 : a0;
    const auto type = rng.chance(0.2) ? AccessType::kWrite : AccessType::kRead;
    push(launch, base + rng.below(kBasicBlockSize), type,
         static_cast<std::uint16_t>(rng.between(1, 4)), small_gap(rng));
  }
}

// Sequential whole-chunk sweeps over a block ring wider than device
// capacity: chunks fill block-by-block (every completion is a coalesce
// candidate under mem.coalescing), then steady eviction pressure forces
// atomic coalesced evictions — or eviction splinters when
// mem.splinter_on_evict — as the ring wraps. A rare write seeds the
// write-share splinter path too.
void gen_coalesce_churn(RecordedLaunch& launch, const Layout& lay,
                        std::uint64_t capacity_blocks, Rng& rng, std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  std::uint64_t set =
      capacity_blocks + rng.between(kBlocksPerLargePage / 2, 2 * kBlocksPerLargePage);
  set = std::clamp<std::uint64_t>(set, 2, ring);
  const std::uint64_t start = rng.below(ring);
  for (std::uint64_t i = 0; i < budget; ++i) {
    const VirtAddr a = block_ring_addr(lay, start + i % set);
    const auto type = rng.chance(0.02) ? AccessType::kWrite : AccessType::kRead;
    push(launch, a, type, static_cast<std::uint16_t>(rng.between(1, 4)), small_gap(rng));
  }
}

// Fill-then-write: a read sweep makes a few chunks fully resident (and
// coalesced when mem.coalescing), then a write burst into the same chunks
// storms the write-share splinter path back to 64 KB mappings.
void gen_splinter_storm(RecordedLaunch& launch, const Layout& lay, Rng& rng,
                        std::uint64_t budget) {
  const std::uint64_t ring = ring_blocks(lay);
  const std::uint64_t set =
      std::min<std::uint64_t>(ring, kBlocksPerLargePage * rng.between(1, 3));
  const std::uint64_t start = rng.below(ring);
  const std::uint64_t fill = budget - budget / 3;
  for (std::uint64_t i = 0; i < fill; ++i) {
    const VirtAddr a = block_ring_addr(lay, start + i % set);
    push(launch, a, AccessType::kRead, static_cast<std::uint16_t>(rng.between(1, 8)),
         small_gap(rng));
  }
  for (std::uint64_t i = fill; i < budget; ++i) {
    const VirtAddr a = block_ring_addr(lay, start + rng.below(set));
    push(launch, a + rng.below(kBasicBlockSize), AccessType::kWrite,
         static_cast<std::uint16_t>(rng.between(1, 16)), small_gap(rng));
  }
}

constexpr std::array<const char*, 8> kPatternNames = {
    "uniform",  "thrash",   "hot-cold",       "write-burst",
    "sat-ramp", "ping-pong", "coalesce-churn", "splinter-storm"};

void randomize_config(SimConfig& cfg, Rng& rng) {
  // Policy.
  cfg.policy.policy = static_cast<PolicyKind>(rng.below(4));
  constexpr std::array<std::uint32_t, 6> kThresholds = {1, 2, 4, 8, 16, 32};
  cfg.policy.static_threshold = kThresholds[rng.below(kThresholds.size())];
  constexpr std::array<std::uint64_t, 5> kPenalties = {1, 2, 4, 8, 1024};
  cfg.policy.migration_penalty = kPenalties[rng.below(kPenalties.size())];
  cfg.policy.write_triggers_migration = rng.chance(0.8);
  cfg.policy.adaptive_write_migrates = rng.chance(0.3);
  cfg.policy.historic_counters_override = rng.chance(0.1);

  // Memory machinery.
  cfg.mem.eviction = static_cast<EvictionKind>(rng.below(3));
  cfg.mem.prefetcher = static_cast<PrefetcherKind>(rng.below(4));
  cfg.mem.eviction_granularity = rng.chance(0.5) ? kLargePageSize : kBasicBlockSize;
  constexpr std::array<Cycle, 5> kProtect = {0, 0, 2000, 65536, 1000000};
  cfg.mem.eviction_protect_cycles = kProtect[rng.below(kProtect.size())];
  cfg.mem.counter_granularity = rng.chance(0.8) ? kBasicBlockSize : kPageSize;
  // Weight toward the hardware 27-bit split, but visit narrow widths often
  // enough that counter halving is routine rather than unreachable.
  constexpr std::array<std::uint32_t, 8> kCountBitsChoices = {27, 27, 27, 16, 12, 10, 8, 30};
  cfg.mem.counter_count_bits = kCountBitsChoices[rng.below(kCountBitsChoices.size())];

  // Huge-page management (docs/GRANULARITY.md): a third of the cases run
  // with coalescing, half of those splintering coalesced victims instead of
  // evicting them atomically. Both draws are unconditional so the rng stream
  // keeps its shape regardless of the first outcome.
  const bool coalescing = rng.chance(0.35);
  const bool splinter_on_evict = rng.chance(0.5);
  cfg.mem.coalescing = coalescing;
  cfg.mem.splinter_on_evict = coalescing && splinter_on_evict;

  // Fault engine batching.
  constexpr std::array<Cycle, 3> kWindows = {0, 500, 3000};
  cfg.xfer.fault_batch_window = kWindows[rng.below(kWindows.size())];
  constexpr std::array<std::uint32_t, 3> kBatchMax = {4, 64, 256};
  cfg.xfer.fault_batch_max = kBatchMax[rng.below(kBatchMax.size())];

  // Mitigation + audit ride along on a minority of cases.
  if (rng.chance(0.2)) {
    cfg.mitigation.enabled = true;
    cfg.mitigation.detect_faults = static_cast<std::uint32_t>(rng.between(1, 4));
    constexpr std::array<Cycle, 3> kCooldowns = {5000, 50000, 2000000};
    cfg.mitigation.pin_cooldown = kCooldowns[rng.below(kCooldowns.size())];
  }
  if (rng.chance(0.1)) {
    cfg.audit.enabled = true;
    cfg.audit.interval_events = rng.chance(0.5) ? 256 : 1024;
    cfg.audit.fail_fast = true;
  }

  cfg.rng_seed = rng.next();
  cfg.collect_traces = true;      // the model observes through the sink
  cfg.copy_then_execute = false;  // preload emits no hooks; never generated
}

}  // namespace

std::size_t pattern_count() noexcept { return kPatternNames.size(); }

const char* pattern_name(std::size_t i) noexcept {
  return i < kPatternNames.size() ? kPatternNames[i] : "?";
}

int pattern_index(const std::string& name) noexcept {
  for (std::size_t i = 0; i < kPatternNames.size(); ++i) {
    if (name == kPatternNames[i]) return static_cast<int>(i);
  }
  return -1;
}

FuzzCase generate_case(std::uint64_t master_seed, std::uint64_t index,
                       const StreamGenOptions& opts) {
  std::uint64_t sm = master_seed + 0x9e3779b97f4a7c15ull * (index + 1);
  const std::uint64_t case_seed = splitmix64(sm);
  Rng rng(case_seed);

  FuzzCase fc;
  fc.seed = case_seed;
  randomize_config(fc.config, rng);
  if (opts.force_coalescing >= 0) {
    fc.config.mem.coalescing = opts.force_coalescing != 0;
    if (!fc.config.mem.coalescing) fc.config.mem.splinter_on_evict = false;
  }

  // Allocations: 1-3 spans from a menu of awkward sizes (partial chunks,
  // sub-2MB tails, pow2 and non-pow2 block counts).
  constexpr std::array<std::uint64_t, 12> kSizes = {
      64ull << 10,   128ull << 10,  192ull << 10,  256ull << 10,
      448ull << 10,  512ull << 10,  1ull << 20,    (1ull << 20) + (64ull << 10),
      2ull << 20,    (2ull << 20) + (192ull << 10), 3ull << 20,   4ull << 20};
  const std::uint64_t num_allocs = rng.between(1, 3);
  auto trace = std::make_shared<RecordedTrace>();
  AddressSpace probe;
  Layout lay;
  for (std::uint64_t i = 0; i < num_allocs; ++i) {
    const std::uint64_t size = kSizes[rng.below(kSizes.size())];
    trace->allocations.emplace_back("fuzz" + std::to_string(i), size);
    probe.allocate("fuzz" + std::to_string(i), size);
  }
  for (const Allocation& a : probe.allocations()) {
    lay.spans.push_back(Span{a.base, a.user_size});
    lay.total_user += a.user_size;
  }
  lay.footprint = probe.footprint_bytes();

  // Capacity: either ratio-derived (the paper's methodology) or a fixed
  // small device. Both regimes — undersubscribed included — must be fuzzed.
  if (rng.chance(0.5)) {
    fc.config.mem.oversubscription = 1.05 + rng.uniform() * 1.45;
  } else {
    fc.config.mem.oversubscription = 0.0;
    constexpr std::array<std::uint64_t, 5> kDeviceBlocks = {32, 40, 48, 64, 96};
    fc.config.mem.device_capacity_bytes =
        kDeviceBlocks[rng.below(kDeviceBlocks.size())] * kBasicBlockSize;
  }
  const std::uint64_t capacity_blocks =
      derived_capacity_bytes(fc.config, lay.footprint) / kBasicBlockSize;

  // Placement advice on a minority of allocations.
  fc.advice.assign(num_allocs, MemAdvice::kNone);
  for (auto& adv : fc.advice) {
    if (rng.chance(0.08))
      adv = MemAdvice::kPreferredHost;
    else if (rng.chance(0.07))
      adv = MemAdvice::kAccessedBy;
  }

  // Stream: 1-3 launches, each one hostile pattern.
  const std::uint64_t total = rng.between(opts.min_records, opts.max_records);
  const std::uint64_t num_launches = rng.between(1, 3);
  std::string label;
  for (std::uint64_t l = 0; l < num_launches; ++l) {
    RecordedLaunch launch;
    launch.kernel = "fuzzk" + std::to_string(l);
    const std::uint64_t budget =
        l + 1 == num_launches ? total - total / num_launches * l : total / num_launches;
    const std::uint64_t pat = opts.force_pattern >= 0
                                  ? static_cast<std::uint64_t>(opts.force_pattern)
                                  : rng.below(kPatternNames.size());
    switch (pat) {
      case 0: gen_uniform(launch, lay, rng, budget); break;
      case 1: gen_thrash(launch, lay, capacity_blocks, rng, budget); break;
      case 2: gen_hotcold(launch, lay, rng, budget); break;
      case 3: gen_write_burst(launch, lay, rng, budget); break;
      case 4: gen_saturation_ramp(launch, lay, rng, budget); break;
      case 5: gen_pingpong(launch, lay, rng, budget); break;
      case 6: gen_coalesce_churn(launch, lay, capacity_blocks, rng, budget); break;
      default: gen_splinter_storm(launch, lay, rng, budget); break;
    }
    if (!label.empty()) label += '+';
    label += kPatternNames[pat];
    trace->launches.push_back(std::move(launch));
  }
  fc.trace = std::move(trace);
  fc.label = "seed" + std::to_string(index) + ":" + label;
  fc.config.validate();
  return fc;
}

RecordedTrace mutate_trace(const RecordedTrace& trace, Rng& rng) {
  RecordedTrace out = trace;
  if (out.total_records() == 0) return out;
  const std::uint64_t ops = rng.between(1, 4);
  for (std::uint64_t op = 0; op < ops; ++op) {
    // Pick a random non-empty launch.
    std::vector<std::size_t> nonempty;
    for (std::size_t l = 0; l < out.launches.size(); ++l)
      if (!out.launches[l].records.empty()) nonempty.push_back(l);
    if (nonempty.empty()) break;
    auto& recs = out.launches[nonempty[rng.below(nonempty.size())]].records;
    const std::size_t i = rng.below(recs.size());
    switch (rng.below(5)) {
      case 0:  // delete (but never the last record of the whole trace)
        if (out.total_records() > 1) recs.erase(recs.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      case 1:  // duplicate in place
        recs.insert(recs.begin() + static_cast<std::ptrdiff_t>(i), recs[i]);
        break;
      case 2:  // flip access type
        recs[i].type =
            recs[i].type == AccessType::kWrite ? AccessType::kRead : AccessType::kWrite;
        break;
      case 3:  // re-roll the count (includes saturating values)
        recs[i].count = static_cast<std::uint16_t>(
            rng.chance(0.2) ? 65535 : (1ull << rng.below(8)));
        break;
      default:  // splice in the address of another record (stays mapped)
        recs[i].addr = recs[rng.below(recs.size())].addr;
        break;
    }
  }
  return out;
}

}  // namespace uvmsim
