// Policy tournament: run every (or a chosen set of) registered migration
// policies across a deterministic streamgen scenario corpus on the parallel
// batch engine, score each cell, and aggregate a leaderboard.
//
// Scoring is built purely from simulated quantities — kernel cycles /
// milliseconds, far faults, the simulated fault arrival rate, migrated
// bytes, and the aggregate fault-service cost
//
//   fault_cost = far_faults * far_fault_cycles
//              + remote_accesses * remote_access_latency
//
// — so the CSV/JSON artifacts are byte-identical for any --jobs value. Real
// wall time is reported separately (TournamentResult::wall_ms) and never
// serialized into the artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "check/streamgen.hpp"
#include "sim/config.hpp"
#include "trace/replay.hpp"

namespace uvmsim {

struct TournamentOptions {
  std::uint64_t seed = 1;
  std::uint64_t scenarios = 8;  ///< streamgen cases in the corpus
  unsigned jobs = 0;            ///< run_batch workers; 0 = hardware concurrency
  /// Policy slugs to enter; empty = every registered policy (sorted). An
  /// unregistered slug makes run_tournament throw std::invalid_argument.
  std::vector<std::string> policies;
  StreamGenOptions gen;
  /// Progress callback after each cell completes (serialized).
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// One scenario of the corpus: a generated access stream replayed under an
/// identical config for every entered policy. The corpus always contains at
/// least one oversubscribed thrash scenario (`thrash` set) so adaptive
/// policies are scored where they matter.
struct TournamentScenario {
  std::string label;
  SimConfig config;  ///< policy field is overridden per cell
  std::vector<MemAdvice> advice;
  std::shared_ptr<const RecordedTrace> trace;
  bool thrash = false;
};

/// One (scenario, policy) run.
struct TournamentCell {
  std::size_t scenario = 0;
  std::string policy;
  bool ok = false;
  std::string error;  ///< non-empty when !ok
  std::uint64_t kernel_cycles = 0;
  double kernel_ms = 0.0;
  std::uint64_t far_faults = 0;
  double faults_per_sec = 0.0;  ///< simulated: far_faults over kernel seconds
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t remote_accesses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t fault_cost = 0;
};

/// Per-policy aggregate over all ok cells, leaderboard-ranked by total
/// fault_cost ascending (ties broken by slug).
struct TournamentRow {
  std::string policy;
  std::size_t wins = 0;    ///< scenarios where this policy hit the minimal fault_cost
  std::size_t failed = 0;  ///< cells that errored
  std::uint64_t kernel_cycles = 0;
  double kernel_ms = 0.0;
  std::uint64_t far_faults = 0;
  double faults_per_sec = 0.0;  ///< aggregate faults over aggregate kernel time
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t remote_accesses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t fault_cost = 0;
};

struct TournamentResult {
  std::uint64_t seed = 0;
  std::vector<TournamentScenario> scenarios;
  std::vector<TournamentCell> cells;  ///< scenario-major, policy order of options
  std::vector<TournamentRow> leaderboard;
  double wall_ms = 0.0;  ///< real elapsed time; NOT part of the artifacts
  unsigned jobs = 1;
};

/// Build the deterministic scenario corpus for (seed, count): streamgen
/// cases with audits/tracing/mitigation normalized off, guaranteed to
/// contain at least one oversubscribed thrash scenario.
[[nodiscard]] std::vector<TournamentScenario> build_tournament_scenarios(
    std::uint64_t seed, std::uint64_t count, const StreamGenOptions& gen = {});

/// Run the full grid. Throws std::invalid_argument on an unregistered slug
/// in options.policies.
[[nodiscard]] TournamentResult run_tournament(const TournamentOptions& options);

/// Leaderboard artifact writers; both deterministic (no wall time).
void write_tournament_csv(std::ostream& os, const TournamentResult& result);
void write_tournament_json(std::ostream& os, const TournamentResult& result);

}  // namespace uvmsim
