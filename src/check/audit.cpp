#include "check/audit.hpp"

#include <algorithm>
#include <sstream>

#include "check/check.hpp"
#include "mem/access_counters.hpp"
#include "mem/block_table.hpp"
#include "mem/device_memory.hpp"
#include "mem/eviction.hpp"
#include "sim/event_queue.hpp"
#include "xfer/pcie.hpp"

namespace uvmsim {

namespace {

/// One audited assertion: count it, and on failure append the formatted
/// message built by `msg` (a callable, so passing checks format nothing).
template <typename MsgFn>
void expect(AuditReport& r, bool ok, MsgFn&& msg) {
  ++r.checks;
  if (!ok) r.violations.push_back(msg());
}

std::string text(const std::ostringstream& os) { return os.str(); }

}  // namespace

InvariantAuditor::InvariantAuditor(const AuditConfig& cfg) : cfg_(cfg) {}

void InvariantAuditor::on_event(const AuditScope& scope, SimStats& stats) {
  if (++events_ % cfg_.interval_events != 0) return;
  run_pass(scope, stats);
}

void InvariantAuditor::finalize(const AuditScope& scope, SimStats& stats) {
  run_pass(scope, stats);
}

void InvariantAuditor::run_pass(const AuditScope& scope, SimStats& stats) {
  const AuditReport report = audit_now(scope);
  stats.audit_passes = passes_;
  stats.audit_violations = violations_;
  if (!report.clean()) {
    stats.last_violation = report.violations.front();
    if (cfg_.fail_fast) throw CheckFailure("UVM_AUDIT: " + report.violations.front());
  }
}

AuditReport InvariantAuditor::audit_now(const AuditScope& s) {
  AuditReport r;
  if (s.table != nullptr && s.device != nullptr) check_residency(s, r);
  if (s.table != nullptr) check_granularity(s, r);
  if (s.table != nullptr && s.counters != nullptr && s.eviction != nullptr) {
    check_eviction_membership(s, r);
    if (s.eviction->index().attached_to(s.table, s.counters)) {
      check_eviction_index(s, r);
    }
  }
  if (s.counters != nullptr) check_counters(s, r);
  if (s.policy_cfg != nullptr) check_threshold(s, r);
  if (s.pcie != nullptr) check_pcie(s, r);
  check_monotonicity(s, r);
  ++passes_;
  violations_ += r.violations.size();
  if (!r.violations.empty()) last_violation_ = r.violations.back();
  return r;
}

// Residency conservation: the per-chunk aggregates, the per-block states and
// the device free-list must tell the same story (block table <-> device
// memory, the bookkeeping Eq. 1's allocated/total ratio is computed from).
void InvariantAuditor::check_residency(const AuditScope& s, AuditReport& r) const {
  const BlockTable& table = *s.table;
  const DeviceMemory& device = *s.device;

  std::vector<std::uint32_t> per_chunk(table.num_chunks(), 0);
  std::uint64_t resident = 0;
  std::uint64_t in_flight = 0;
  for (BlockNum b = 0; b < table.num_blocks(); ++b) {
    const BlockState& st = table.block(b);
    switch (st.residence) {
      case Residence::kDevice:
        ++resident;
        ++per_chunk[chunk_of_block(b)];
        break;
      case Residence::kInFlight:
        ++in_flight;
        break;
      case Residence::kHost:
        break;
    }
    expect(r, !st.dirty || st.residence == Residence::kDevice, [&] {
      std::ostringstream os;
      os << "residency: block " << b << " dirty while " << to_cstr(st.residence);
      return text(os);
    });
    expect(r, !st.dirty_on_arrival || st.residence == Residence::kInFlight, [&] {
      std::ostringstream os;
      os << "residency: block " << b << " has dirty_on_arrival while "
         << to_cstr(st.residence);
      return text(os);
    });
  }

  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    const ChunkResidency& cr = table.chunk(c);
    expect(r, cr.resident_blocks == per_chunk[c], [&] {
      std::ostringstream os;
      os << "residency: chunk " << c << " aggregate resident_blocks="
         << cr.resident_blocks << " but block scan counts " << per_chunk[c];
      return text(os);
    });
    const std::uint32_t mapped = table.space().chunk_num_blocks(c);
    expect(r, per_chunk[c] <= mapped, [&] {
      std::ostringstream os;
      os << "residency: chunk " << c << " has " << per_chunk[c]
         << " resident blocks but only " << mapped << " mapped";
      return text(os);
    });
    expect(r,
           table.chunk_fully_resident(c) == (mapped != 0 && per_chunk[c] == mapped),
           [&] {
             std::ostringstream os;
             os << "residency: chunk " << c << " fully-resident flag disagrees "
                << "with scan (" << per_chunk[c] << '/' << mapped << " resident)";
             return text(os);
           });
  }

  // Device free-list conservation. Frames are reserved at migration-enqueue
  // time, so in-flight transfers hold capacity that no block owns yet.
  expect(r, device.used_blocks() + device.free_blocks() == device.capacity_blocks(),
         [&] {
           std::ostringstream os;
           os << "device: used " << device.used_blocks() << " + free "
              << device.free_blocks() << " != capacity " << device.capacity_blocks();
           return text(os);
         });
  expect(r, device.used_blocks() == resident + s.in_flight_blocks, [&] {
    std::ostringstream os;
    os << "device: used " << device.used_blocks() << " != resident " << resident
       << " + in-flight " << s.in_flight_blocks;
    return text(os);
  });
  // Blocks go kInFlight when the fault is raised; the transfer (and its
  // device frame) starts only when the fault engine services the batch.
  expect(r, in_flight == s.in_flight_blocks + s.queued_fault_blocks, [&] {
    std::ostringstream os;
    os << "device: " << in_flight << " blocks marked in-flight but the driver "
       << "tracks " << s.in_flight_blocks << " outstanding transfers + "
       << s.queued_fault_blocks << " queued faults";
    return text(os);
  });
}

// Mapping granularity (docs/GRANULARITY.md): a chunk coalesced into a single
// 2 MB mapping must be fully resident and never written (the read-mostly
// coalesce gate), the O(1) coalesced-chunk counter must match a scan, and —
// when run stats are in scope — the lifecycle counters must conserve:
// every coalesce is either still standing, was splintered, or was evicted
// atomically.
void InvariantAuditor::check_granularity(const AuditScope& s, AuditReport& r) const {
  const BlockTable& table = *s.table;

  std::uint64_t coalesced_scan = 0;
  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    if (!table.chunk_coalesced(c)) continue;
    ++coalesced_scan;
    expect(r, table.chunk_fully_resident(c), [&] {
      std::ostringstream os;
      os << "granularity: chunk " << c << " is coalesced but only "
         << table.chunk(c).resident_blocks << '/' << table.space().chunk_num_blocks(c)
         << " mapped blocks are resident";
      return text(os);
    });
    expect(r, !table.chunk(c).written_ever, [&] {
      std::ostringstream os;
      os << "granularity: chunk " << c
         << " is coalesced but has been written (read-mostly gate broken)";
      return text(os);
    });
  }
  expect(r, table.coalesced_chunks() == coalesced_scan, [&] {
    std::ostringstream os;
    os << "granularity: coalesced-chunk counter " << table.coalesced_chunks()
       << " != scan count " << coalesced_scan;
    return text(os);
  });

  if (s.stats != nullptr) {
    const SimStats& st = *s.stats;
    expect(r,
           st.chunk_coalesces ==
               st.chunk_splinters + st.chunk_coalesced_evictions + coalesced_scan,
           [&] {
             std::ostringstream os;
             os << "granularity: conservation broken — " << st.chunk_coalesces
                << " coalesces != " << st.chunk_splinters << " splinters + "
                << st.chunk_coalesced_evictions << " atomic evictions + "
                << coalesced_scan << " still coalesced";
             return text(os);
           });
  }
}

// Eviction membership: the 2 MB large-page view the eviction policies rank
// must exactly match block-level residency, and a probe victim selection
// must return resident blocks of a single chunk (the LFU/LRU "list" can
// never name a page that is not actually there).
void InvariantAuditor::check_eviction_membership(const AuditScope& s,
                                                 AuditReport& r) const {
  const BlockTable& table = *s.table;

  // Every touch stamps the block and its chunk with the same cycle, so a
  // chunk's LRU key always equals the last_access of the block the most
  // recent touch hit. (Warp access times are not call-ordered, so the key is
  // NOT the max over blocks — but it can never be a value no block carries.)
  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    const Cycle key = table.chunk(c).last_access;
    if (key == 0) continue;  // chunk never touched
    const BlockNum first = first_block_of_chunk(c);
    const std::uint32_t mapped = table.space().chunk_num_blocks(c);
    bool matched = false;
    for (BlockNum b = first; b < first + mapped && !matched; ++b) {
      matched = table.block(b).last_access == key;
    }
    expect(r, matched, [&] {
      std::ostringstream os;
      os << "eviction: chunk " << c << " LRU key " << key
         << " matches no mapped block's last access";
      return text(os);
    });
  }

  const Cycle now = s.queue != nullptr ? s.queue->now() : 0;
  const std::vector<BlockNum> victims = s.eviction->select_victims(
      table, *s.counters, VictimQuery{0, false, now, 0});
  if (victims.empty()) return;  // nothing resident: nothing to validate

  const ChunkNum victim_chunk = chunk_of_block(victims.front());
  for (BlockNum v : victims) {
    expect(r, table.block(v).residence == Residence::kDevice, [&] {
      std::ostringstream os;
      os << "eviction: victim block " << v << " is "
         << to_cstr(table.block(v).residence) << ", not device-resident";
      return text(os);
    });
    expect(r, chunk_of_block(v) == victim_chunk, [&] {
      std::ostringstream os;
      os << "eviction: victim set spans chunks " << victim_chunk << " and "
         << chunk_of_block(v);
      return text(os);
    });
  }
  if (s.eviction->granularity() == kLargePageSize &&
      s.eviction->kind() != EvictionKind::kTree) {
    expect(r, victims.size() == table.chunk(victim_chunk).resident_blocks, [&] {
      std::ostringstream os;
      os << "eviction: 2 MB victim set has " << victims.size()
         << " blocks but chunk " << victim_chunk << " holds "
         << table.chunk(victim_chunk).resident_blocks;
      return text(os);
    });
  }
}

// Incremental eviction index (PERF.md): the hook-maintained structures must
// agree with a from-scratch recomputation —
//   * membership: a chunk is in the recency list iff it has resident blocks;
//   * order: the list is sorted ascending by (last_access, chunk) with
//     consistent prev/next wiring and an accurate size;
//   * aggregates: unless a global halving left them stale, the running
//     per-chunk frequencies equal LfuEviction::chunk_frequency;
//   * victim parity: the fast-path selection returns exactly the reference
//     scan's victim blocks, probed without and with the protect window.
void InvariantAuditor::check_eviction_index(const AuditScope& s, AuditReport& r) const {
  const BlockTable& table = *s.table;
  const EvictionIndex& idx = s.eviction->index();

  std::uint64_t listed = 0;
  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    const bool resident = table.chunk(c).resident_blocks > 0;
    if (idx.in_list(c)) ++listed;
    expect(r, idx.in_list(c) == resident, [&] {
      std::ostringstream os;
      os << "eviction-index: chunk " << c << " is "
         << (idx.in_list(c) ? "listed" : "unlisted") << " but has "
         << table.chunk(c).resident_blocks << " resident blocks";
      return text(os);
    });
  }
  expect(r, idx.size() == listed, [&] {
    std::ostringstream os;
    os << "eviction-index: size " << idx.size() << " != " << listed
       << " listed chunks";
    return text(os);
  });

  std::uint64_t walked = 0;
  ChunkNum prev = kNilChunk;
  for (ChunkNum c = idx.head(); c != kNilChunk; c = idx.next_of(c)) {
    ++walked;
    expect(r, idx.prev_of(c) == prev, [&] {
      std::ostringstream os;
      os << "eviction-index: chunk " << c << " prev link " << idx.prev_of(c)
         << " != walk predecessor " << prev;
      return text(os);
    });
    if (prev != kNilChunk) {
      const Cycle pla = table.chunk(prev).last_access;
      const Cycle cla = table.chunk(c).last_access;
      expect(r, pla < cla || (pla == cla && prev < c), [&] {
        std::ostringstream os;
        os << "eviction-index: list unsorted, chunk " << prev << " (la=" << pla
           << ") precedes chunk " << c << " (la=" << cla << ')';
        return text(os);
      });
    }
    if (walked > idx.size()) break;  // cycle guard; size mismatch reported above
    prev = c;
  }
  expect(r, walked == idx.size() && idx.tail() == prev, [&] {
    std::ostringstream os;
    os << "eviction-index: walk visited " << walked << " of " << idx.size()
       << " chunks (tail=" << idx.tail() << ", last=" << prev << ')';
    return text(os);
  });

  if (!idx.frequencies_stale()) {
    for (ChunkNum c = idx.head(); c != kNilChunk; c = idx.next_of(c)) {
      const std::uint64_t expected =
          LfuEviction::chunk_frequency(c, table, *s.counters);
      expect(r, idx.frequency(c) == expected, [&] {
        std::ostringstream os;
        os << "eviction-index: chunk " << c << " running frequency "
           << idx.frequency(c) << " != recomputed " << expected;
        return text(os);
      });
    }
  }

  // Victim parity: the fast path must reproduce the reference scan exactly.
  const Cycle now = s.queue != nullptr ? s.queue->now() : 0;
  for (const Cycle window : {Cycle{0}, s.protect_window}) {
    const VictimQuery q{0, false, now, window};
    const std::vector<BlockNum> fast =
        s.eviction->select_victims(table, *s.counters, q);
    const std::vector<BlockNum> ref =
        s.eviction->select_victims_reference(table, *s.counters, q);
    expect(r, fast == ref, [&] {
      std::ostringstream os;
      os << "eviction-index: victim parity broken under window " << window
         << " — fast path picked " << fast.size() << " blocks (first "
         << (fast.empty() ? kNilChunk : fast.front()) << "), reference "
         << ref.size() << " (first " << (ref.empty() ? kNilChunk : ref.front())
         << ')';
      return text(os);
    });
    if (window == s.protect_window) break;  // windows coincide; probe once
  }
}

// Access counters: both register fields stay clamped below saturation (the
// global-halving maintenance guarantees it), and in historic mode counts
// only shrink through halvings — never spontaneously.
void InvariantAuditor::check_counters(const AuditScope& s, AuditReport& r) {
  const AccessCounterTable& counters = *s.counters;
  const std::uint64_t units = counters.units();
  const std::uint64_t halvings = counters.halvings();
  const std::uint64_t delta =
      std::min<std::uint64_t>(halvings - prev_halvings_, 31);
  const bool track = s.historic_counters && has_counter_snapshot_ &&
                     prev_counts_.size() == units && halvings >= prev_halvings_;

  for (std::uint64_t u = 0; u < units; ++u) {
    const std::uint32_t count = counters.count_unit(u);
    const std::uint32_t trips = counters.round_trips_unit(u);
    expect(r, count < counters.count_max(), [&] {
      std::ostringstream os;
      os << "counters: unit " << u << " count " << count
         << " reached saturation without a halving";
      return text(os);
    });
    expect(r, trips < counters.trip_max(), [&] {
      std::ostringstream os;
      os << "counters: unit " << u << " round trips " << trips
         << " reached saturation without a halving";
      return text(os);
    });
    if (track) {
      // Each halving at most halves the field; increments only add.
      const std::uint32_t floor = prev_counts_[u] >> delta;
      expect(r, count >= floor, [&] {
        std::ostringstream os;
        os << "counters: historic count of unit " << u << " fell from "
           << prev_counts_[u] << " to " << count << " across " << delta
           << " halvings (floor " << floor << ')';
        return text(os);
      });
    }
  }

  prev_counts_.resize(units);
  for (std::uint64_t u = 0; u < units; ++u) prev_counts_[u] = counters.count_unit(u);
  prev_halvings_ = halvings;
  has_counter_snapshot_ = true;
}

// Equation 1 bounds: td >= 1 in every regime (threshold 0 would migrate
// unconditionally and break the remote-access arm), the fits branch stays
// within ts + 1, and the oversubscription branch is exactly ts * (r+1) * p.
void InvariantAuditor::check_threshold(const AuditScope& s, AuditReport& r) const {
  const PolicyConfig& pc = *s.policy_cfg;
  if (s.policy != nullptr) {
    const std::uint64_t td = s.policy->effective_threshold(s.policy_features);
    expect(r, td >= 1, [&] {
      std::ostringstream os;
      os << "threshold: policy '" << s.policy->name() << "' effective threshold "
         << td << " < 1";
      return text(os);
    });
  }
  // The Eq.1 bound checks only apply to the paper's Adaptive scheme; registry
  // policies own their threshold shapes (the td >= 1 check above still holds).
  if (pc.resolved_slug() != "adaptive") return;

  const std::uint64_t ts = pc.static_threshold;
  const std::uint64_t p = pc.migration_penalty;
  for (const std::uint32_t trips : {0u, 1u, 2u, 7u, 30u}) {
    const std::uint64_t fits =
        adaptive_threshold(pc.static_threshold, s.policy_features.resident_pages,
                           s.policy_features.capacity_pages, false, trips, p);
    expect(r, fits >= 1 && fits <= ts + 1, [&] {
      std::ostringstream os;
      os << "threshold: Eq.1 fits branch td=" << fits << " outside [1, ts+1] "
         << "(ts=" << ts << ", resident=" << s.policy_features.resident_pages
         << "/" << s.policy_features.capacity_pages << ')';
      return text(os);
    });
    const std::uint64_t over =
        adaptive_threshold(pc.static_threshold, s.policy_features.resident_pages,
                           s.policy_features.capacity_pages, true, trips, p);
    expect(r, over == ts * (trips + 1) * p, [&] {
      std::ostringstream os;
      os << "threshold: Eq.1 oversubscription branch td=" << over
         << " != ts*(r+1)*p = " << ts * (trips + 1) * p << " (r=" << trips << ')';
      return text(os);
    });
  }
}

// PCIe byte conservation: what the stats claim moved equals what the
// transfer engine accepted, per direction; each channel's regulator total is
// exactly DMA + zero-copy traffic; in-flight migrations are bounded by the
// bytes ever enqueued H2D.
void InvariantAuditor::check_pcie(const AuditScope& s, AuditReport& r) const {
  const PcieFabric& pcie = *s.pcie;
  expect(r,
         pcie.h2d().total_bytes() ==
             pcie.dma_bytes(PcieDir::kHostToDevice) +
                 pcie.remote_bytes(PcieDir::kHostToDevice),
         [&] {
           std::ostringstream os;
           os << "pcie: H2D channel accepted " << pcie.h2d().total_bytes()
              << " B != dma " << pcie.dma_bytes(PcieDir::kHostToDevice)
              << " + zero-copy " << pcie.remote_bytes(PcieDir::kHostToDevice);
           return text(os);
         });
  expect(r,
         pcie.d2h().total_bytes() ==
             pcie.dma_bytes(PcieDir::kDeviceToHost) +
                 pcie.remote_bytes(PcieDir::kDeviceToHost),
         [&] {
           std::ostringstream os;
           os << "pcie: D2H channel accepted " << pcie.d2h().total_bytes()
              << " B != dma " << pcie.dma_bytes(PcieDir::kDeviceToHost)
              << " + zero-copy " << pcie.remote_bytes(PcieDir::kDeviceToHost);
           return text(os);
         });
  expect(r, s.in_flight_blocks * kBasicBlockSize <=
                pcie.dma_bytes(PcieDir::kHostToDevice),
         [&] {
           std::ostringstream os;
           os << "pcie: " << s.in_flight_blocks << " in-flight blocks exceed "
              << pcie.dma_bytes(PcieDir::kHostToDevice) << " B ever enqueued H2D";
           return text(os);
         });
  if (s.stats != nullptr) {
    expect(r, pcie.dma_bytes(PcieDir::kHostToDevice) == s.stats->bytes_h2d, [&] {
      std::ostringstream os;
      os << "pcie: H2D dma bytes " << pcie.dma_bytes(PcieDir::kHostToDevice)
         << " != stats bytes_h2d " << s.stats->bytes_h2d;
      return text(os);
    });
    expect(r, pcie.dma_bytes(PcieDir::kDeviceToHost) == s.stats->bytes_d2h, [&] {
      std::ostringstream os;
      os << "pcie: D2H dma bytes " << pcie.dma_bytes(PcieDir::kDeviceToHost)
         << " != stats bytes_d2h " << s.stats->bytes_d2h;
      return text(os);
    });
  }
}

// The event-queue clock and the cumulative stats counters only move forward
// between passes (timestamp monotonicity; the queue itself also enforces
// no-scheduling-into-the-past via UVM_CHECK on every schedule_at).
void InvariantAuditor::check_monotonicity(const AuditScope& s, AuditReport& r) {
  if (s.queue != nullptr) {
    const Cycle now = s.queue->now();
    expect(r, now >= last_now_, [&] {
      std::ostringstream os;
      os << "clock: event queue ran backwards, now=" << now
         << " after earlier audit at " << last_now_;
      return text(os);
    });
    last_now_ = std::max(last_now_, now);
  }
  if (s.stats != nullptr) {
    const SimStats& st = *s.stats;
    const auto mono = [&](std::uint64_t cur, std::uint64_t prev, const char* name) {
      expect(r, cur >= prev, [&] {
        std::ostringstream os;
        os << "stats: " << name << " decreased from " << prev << " to " << cur;
        return text(os);
      });
    };
    mono(st.total_accesses, prev_total_accesses_, "total_accesses");
    mono(st.far_faults, prev_far_faults_, "far_faults");
    mono(st.evictions, prev_evictions_, "evictions");
    mono(st.bytes_h2d, prev_bytes_h2d_, "bytes_h2d");
    mono(st.bytes_d2h, prev_bytes_d2h_, "bytes_d2h");
    prev_total_accesses_ = std::max(prev_total_accesses_, st.total_accesses);
    prev_far_faults_ = std::max(prev_far_faults_, st.far_faults);
    prev_evictions_ = std::max(prev_evictions_, st.evictions);
    prev_bytes_h2d_ = std::max(prev_bytes_h2d_, st.bytes_h2d);
    prev_bytes_d2h_ = std::max(prev_bytes_d2h_, st.bytes_d2h);
  }
}

}  // namespace uvmsim
