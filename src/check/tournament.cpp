#include "check/tournament.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "policy/policy_registry.hpp"
#include "sim/runner.hpp"

namespace uvmsim {

namespace {

/// Scenario configs run bare: no audits, no tracing, no mitigation — the
/// tournament measures policy quality, and every cell of one scenario must
/// share the exact same environment.
TournamentScenario scenario_from_case(FuzzCase fc) {
  TournamentScenario s;
  s.config = std::move(fc.config);
  s.config.collect_traces = false;
  s.config.copy_then_execute = false;
  s.config.audit.enabled = false;
  s.config.mitigation.enabled = false;
  s.advice = std::move(fc.advice);
  s.trace = std::move(fc.trace);
  s.label = std::move(fc.label);
  s.thrash = s.label.find("thrash") != std::string::npos &&
             s.config.mem.oversubscription > 1.0;
  return s;
}

bool is_oversubscribed_thrash_source(const FuzzCase& fc) {
  return fc.label.find("thrash") != std::string::npos;
}

}  // namespace

std::vector<TournamentScenario> build_tournament_scenarios(std::uint64_t seed,
                                                           std::uint64_t count,
                                                           const StreamGenOptions& gen) {
  std::vector<TournamentScenario> scenarios;
  scenarios.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    scenarios.push_back(scenario_from_case(generate_case(seed, i, gen)));
  }
  if (std::any_of(scenarios.begin(), scenarios.end(),
                  [](const TournamentScenario& s) { return s.thrash; })) {
    return scenarios;
  }
  // Guarantee an oversubscribed thrash scenario: first try promoting an
  // in-corpus thrash-patterned case that generated undersubscribed, then
  // scan forward for a thrash-patterned case, forcing 150 % oversubscription
  // either way. All deterministic in (seed, count).
  for (TournamentScenario& s : scenarios) {
    if (s.label.find("thrash") == std::string::npos) continue;
    s.config.mem.oversubscription = 1.5;
    s.label += "+forced-oversub";
    s.thrash = true;
    return scenarios;
  }
  for (std::uint64_t i = count; i < count + 512 && !scenarios.empty(); ++i) {
    FuzzCase fc = generate_case(seed, i, gen);
    if (!is_oversubscribed_thrash_source(fc)) continue;
    fc.config.mem.oversubscription = 1.5;
    fc.label += "+forced-oversub";
    scenarios.back() = scenario_from_case(std::move(fc));
    scenarios.back().thrash = true;
    return scenarios;
  }
  return scenarios;  // unreachable in practice (thrash is 1 of 6 patterns)
}

TournamentResult run_tournament(const TournamentOptions& options) {
  std::vector<std::string> policies = options.policies;
  if (policies.empty()) {
    policies = PolicyRegistry::instance().slugs();
  } else {
    for (const std::string& slug : policies) {
      PolicyConfig probe;
      if (!apply_policy_name(probe, slug))
        throw std::invalid_argument("tournament: unknown policy '" + slug +
                                    "' (registered: " + registered_policy_names() + ")");
    }
  }

  TournamentResult result;
  result.seed = options.seed;
  result.scenarios = build_tournament_scenarios(options.seed, options.scenarios, options.gen);

  // Cell grid, scenario-major: every policy replays the identical stream
  // under the identical config apart from the policy selection itself.
  std::vector<RunRequest> requests;
  requests.reserve(result.scenarios.size() * policies.size());
  for (std::size_t si = 0; si < result.scenarios.size(); ++si) {
    const TournamentScenario& s = result.scenarios[si];
    for (const std::string& slug : policies) {
      RunRequest req;
      req.config = s.config;
      const bool known = apply_policy_name(req.config.policy, slug);
      if (!known)  // validated above; registry is append-only
        throw std::invalid_argument("tournament: policy vanished: " + slug);
      // run_request() overwrites mem.oversubscription from the request field.
      req.oversub = req.config.mem.oversubscription;
      req.trace = s.trace;
      req.label = s.label + "/" + slug;
      requests.push_back(std::move(req));
    }
  }

  BatchOptions bo;
  bo.jobs = options.jobs;
  const std::size_t per_scenario = policies.size();
  bo.make_options = [&result, per_scenario](const RunRequest&, std::size_t index) {
    const TournamentScenario& s = result.scenarios[index / per_scenario];
    RunOptions ro;
    ro.advice_hook = [&s](AddressSpace& space) {
      const auto& allocs = space.allocations();
      for (std::size_t i = 0; i < allocs.size() && i < s.advice.size(); ++i) {
        if (s.advice[i] != MemAdvice::kNone) space.advise(allocs[i].id, s.advice[i]);
      }
    };
    return ro;
  };
  if (options.progress) {
    bo.on_done = [&options](const BatchEntry&, std::size_t done, std::size_t total) {
      options.progress(done, total);
    };
  }
  const BatchResult batch = run_batch(requests, bo);
  result.wall_ms = batch.wall_ms;
  result.jobs = batch.jobs;

  result.cells.reserve(requests.size());
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    const BatchEntry& e = batch.entries[i];
    TournamentCell cell;
    cell.scenario = i / per_scenario;
    cell.policy = policies[i % per_scenario];
    if (!e.ok()) {
      cell.error = e.error;
    } else {
      const SimConfig& cfg = e.request.config;
      cell.ok = true;
      cell.kernel_cycles = e.result.kernel_cycles();
      cell.kernel_ms = e.result.kernel_ms(cfg.gpu.core_clock_ghz);
      cell.far_faults = e.result.stats.far_faults;
      cell.bytes_h2d = e.result.stats.bytes_h2d;
      cell.bytes_d2h = e.result.stats.bytes_d2h;
      cell.remote_accesses = e.result.stats.remote_accesses;
      cell.evictions = e.result.stats.evictions;
      cell.fault_cost = cell.far_faults * cfg.far_fault_cycles() +
                        cell.remote_accesses * cfg.xfer.remote_access_latency;
      if (cell.kernel_cycles > 0) {
        cell.faults_per_sec = static_cast<double>(cell.far_faults) *
                              cfg.gpu.core_clock_ghz * 1e9 /
                              static_cast<double>(cell.kernel_cycles);
      }
    }
    result.cells.push_back(std::move(cell));
  }

  // Leaderboard: aggregate per policy; a "win" is matching the scenario's
  // minimal fault_cost among its ok cells.
  result.leaderboard.reserve(policies.size());
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    TournamentRow row;
    row.policy = policies[pi];
    for (std::size_t si = 0; si < result.scenarios.size(); ++si) {
      const TournamentCell& cell = result.cells[si * per_scenario + pi];
      if (!cell.ok) {
        ++row.failed;
        continue;
      }
      row.kernel_cycles += cell.kernel_cycles;
      row.kernel_ms += cell.kernel_ms;
      row.far_faults += cell.far_faults;
      row.bytes_h2d += cell.bytes_h2d;
      row.bytes_d2h += cell.bytes_d2h;
      row.remote_accesses += cell.remote_accesses;
      row.evictions += cell.evictions;
      row.fault_cost += cell.fault_cost;
      std::uint64_t best = cell.fault_cost;
      bool any_ok = false;
      for (std::size_t pj = 0; pj < per_scenario; ++pj) {
        const TournamentCell& other = result.cells[si * per_scenario + pj];
        if (!other.ok) continue;
        any_ok = true;
        best = std::min(best, other.fault_cost);
      }
      if (any_ok && cell.fault_cost == best) ++row.wins;
    }
    if (row.kernel_ms > 0.0) {
      // Aggregate rate over the policy's total simulated kernel time
      // (kernel_ms already folds in each scenario's own core clock).
      row.faults_per_sec = static_cast<double>(row.far_faults) / (row.kernel_ms / 1e3);
    }
    result.leaderboard.push_back(std::move(row));
  }
  std::sort(result.leaderboard.begin(), result.leaderboard.end(),
            [](const TournamentRow& a, const TournamentRow& b) {
              if (a.fault_cost != b.fault_cost) return a.fault_cost < b.fault_cost;
              return a.policy < b.policy;
            });
  return result;
}

void write_tournament_csv(std::ostream& os, const TournamentResult& result) {
  os.precision(17);
  os << "rank,policy,wins,failed,fault_cost,kernel_cycles,kernel_ms,far_faults,"
        "faults_per_sec,bytes_h2d,bytes_d2h,remote_accesses,evictions\n";
  for (std::size_t i = 0; i < result.leaderboard.size(); ++i) {
    const TournamentRow& r = result.leaderboard[i];
    os << (i + 1) << ',' << r.policy << ',' << r.wins << ',' << r.failed << ','
       << r.fault_cost << ',' << r.kernel_cycles << ',' << r.kernel_ms << ','
       << r.far_faults << ',' << r.faults_per_sec << ',' << r.bytes_h2d << ','
       << r.bytes_d2h << ',' << r.remote_accesses << ',' << r.evictions << '\n';
  }
}

void write_tournament_json(std::ostream& os, const TournamentResult& result) {
  os << "{\n  \"seed\": " << result.seed << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    const TournamentScenario& s = result.scenarios[i];
    os << "    {\"index\": " << i << ", \"label\": ";
    obs::write_json_string(os, s.label);
    os << ", \"oversubscription\": ";
    obs::write_json_number(os, s.config.mem.oversubscription);
    os << ", \"records\": " << s.trace->total_records()
       << ", \"thrash\": " << (s.thrash ? "true" : "false") << '}'
       << (i + 1 < result.scenarios.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const TournamentCell& c = result.cells[i];
    os << "    {\"scenario\": " << c.scenario << ", \"policy\": ";
    obs::write_json_string(os, c.policy);
    os << ", \"ok\": " << (c.ok ? "true" : "false");
    if (c.ok) {
      os << ", \"kernel_cycles\": " << c.kernel_cycles << ", \"kernel_ms\": ";
      obs::write_json_number(os, c.kernel_ms);
      os << ", \"far_faults\": " << c.far_faults << ", \"faults_per_sec\": ";
      obs::write_json_number(os, c.faults_per_sec);
      os << ", \"bytes_h2d\": " << c.bytes_h2d << ", \"bytes_d2h\": " << c.bytes_d2h
         << ", \"remote_accesses\": " << c.remote_accesses
         << ", \"evictions\": " << c.evictions << ", \"fault_cost\": " << c.fault_cost;
    } else {
      os << ", \"error\": ";
      obs::write_json_string(os, c.error);
    }
    os << '}' << (i + 1 < result.cells.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"leaderboard\": [\n";
  for (std::size_t i = 0; i < result.leaderboard.size(); ++i) {
    const TournamentRow& r = result.leaderboard[i];
    os << "    {\"rank\": " << (i + 1) << ", \"policy\": ";
    obs::write_json_string(os, r.policy);
    os << ", \"wins\": " << r.wins << ", \"failed\": " << r.failed
       << ", \"fault_cost\": " << r.fault_cost << ", \"kernel_cycles\": " << r.kernel_cycles
       << ", \"kernel_ms\": ";
    obs::write_json_number(os, r.kernel_ms);
    os << ", \"far_faults\": " << r.far_faults << ", \"faults_per_sec\": ";
    obs::write_json_number(os, r.faults_per_sec);
    os << ", \"bytes_h2d\": " << r.bytes_h2d << ", \"bytes_d2h\": " << r.bytes_d2h
       << ", \"remote_accesses\": " << r.remote_accesses
       << ", \"evictions\": " << r.evictions << '}'
       << (i + 1 < result.leaderboard.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

}  // namespace uvmsim
