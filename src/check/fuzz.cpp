#include "check/fuzz.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "policy/policy_registry.hpp"
#include "sim/config_parse.hpp"
#include "sim/runner.hpp"
#include "trace/trace_binary.hpp"

namespace uvmsim {
namespace {

const char* advice_name(MemAdvice a) noexcept {
  switch (a) {
    case MemAdvice::kNone: return "none";
    case MemAdvice::kAccessedBy: return "accessed-by";
    case MemAdvice::kPreferredHost: return "preferred-host";
  }
  return "?";
}

MemAdvice parse_advice(const std::string& s) {
  if (s == "none") return MemAdvice::kNone;
  if (s == "accessed-by") return MemAdvice::kAccessedBy;
  if (s == "preferred-host") return MemAdvice::kPreferredHost;
  throw std::runtime_error("fuzz sidecar: unknown advice '" + s + "'");
}

InjectedFault parse_fault(const std::string& s) {
  for (InjectedFault f : {InjectedFault::kNone, InjectedFault::kFlipResidency,
                          InjectedFault::kSkipHalving, InjectedFault::kRoundTripOffByOne}) {
    if (s == to_cstr(f)) return f;
  }
  throw std::runtime_error("fuzz sidecar: unknown fault '" + s + "'");
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// The model observes the run through the sink; these two must hold no matter
// what the generator or a sidecar produced.
SimConfig normalized_config(const FuzzCase& fc) {
  SimConfig cfg = fc.config;
  cfg.collect_traces = true;
  cfg.copy_then_execute = false;  // preload emits no observation hooks
  return cfg;
}

RunRequest make_request(const FuzzCase& fc) {
  RunRequest req;
  req.config = normalized_config(fc);
  // run_request() overwrites mem.oversubscription from the request field.
  req.oversub = req.config.mem.oversubscription;
  req.trace = fc.trace;
  req.label = fc.label;
  return req;
}

void apply_advice(const FuzzCase& fc, AddressSpace& space) {
  const auto& allocs = space.allocations();
  for (std::size_t i = 0; i < allocs.size() && i < fc.advice.size(); ++i) {
    if (fc.advice[i] != MemAdvice::kNone) space.advise(allocs[i].id, fc.advice[i]);
  }
}

// Delete the flattened record window [begin, begin+len), preserving launch
// structure (launches may become empty; replay skips those).
RecordedTrace remove_window(const RecordedTrace& t, std::uint64_t begin, std::uint64_t len) {
  RecordedTrace out;
  out.allocations = t.allocations;
  std::uint64_t idx = 0;
  for (const RecordedLaunch& l : t.launches) {
    RecordedLaunch nl;
    nl.kernel = l.kernel;
    for (const TraceRecord& r : l.records) {
      if (idx < begin || idx >= begin + len) nl.records.push_back(r);
      ++idx;
    }
    out.launches.push_back(std::move(nl));
  }
  return out;
}

}  // namespace

CaseOutcome run_case(const FuzzCase& fc, InjectedFault inject) {
  const SimConfig cfg = normalized_config(fc);
  RefModel model(cfg, inject);
  RunRequest req = make_request(fc);
  RunOptions opts;
  opts.trace_sink = &model;
  opts.advice_hook = [&fc, &model](AddressSpace& space) {
    apply_advice(fc, space);
    model.capture_layout(space);
  };

  CaseOutcome out;
  try {
    (void)run_request(req, opts);
    model.finish();
  } catch (const std::exception& e) {
    out.interesting = true;
    out.message = std::string("run failed: ") + e.what();
    out.accesses = model.accesses_seen();
    return out;
  }
  if (model.diverged()) {
    out.interesting = true;
    out.message = model.divergence();
  }
  out.accesses = model.accesses_seen();
  return out;
}

FuzzCase shrink_case(const FuzzCase& fc, InjectedFault inject, std::string* final_message) {
  FuzzCase cur = fc;
  const CaseOutcome first = run_case(cur, inject);
  if (!first.interesting) {
    if (final_message) *final_message = "not reproducible";
    return cur;
  }
  std::string msg = first.message;

  auto try_reduce = [&](const RecordedTrace& cand) {
    FuzzCase c = cur;
    c.trace = std::make_shared<RecordedTrace>(cand);
    const CaseOutcome o = run_case(c, inject);
    if (!o.interesting) return false;
    msg = o.message;
    return true;
  };

  bool progress = true;
  while (progress) {
    progress = false;
    const std::uint64_t n = cur.trace->total_records();
    if (n <= 1) break;
    for (std::uint64_t win = std::max<std::uint64_t>(1, n / 2);; win /= 2) {
      std::uint64_t i = 0;
      while (i < cur.trace->total_records()) {
        RecordedTrace cand = remove_window(*cur.trace, i, win);
        if (cand.total_records() >= 1 && cand.total_records() < cur.trace->total_records() &&
            try_reduce(cand)) {
          cur.trace = std::make_shared<RecordedTrace>(std::move(cand));
          progress = true;  // window i now holds fresh records; retry in place
        } else {
          i += win;
        }
      }
      if (win == 1) break;
    }
  }
  if (final_message) *final_message = msg;
  return cur;
}

void save_case(const FuzzCase& fc, InjectedFault fault, const std::string& trace_path,
               const std::string& config_path) {
  {
    std::ofstream os(trace_path, std::ios::binary);
    if (!os) throw std::runtime_error("fuzz: cannot write " + trace_path);
    fc.trace->save(os);
    if (!os) throw std::runtime_error("fuzz: short write to " + trace_path);
  }
  std::ofstream os(config_path);
  if (!os) throw std::runtime_error("fuzz: cannot write " + config_path);
  os << "# uvmsim_fuzz repro sidecar (" << fc.label << ")\n"
     << "# replay: uvmsim_fuzz --replay <trace.trc> <this file>\n"
     << "fuzz.seed = " << fc.seed << '\n'
     << "fuzz.fault = " << to_cstr(fault) << '\n';
  os << "fuzz.advice =";
  for (std::size_t i = 0; i < fc.advice.size(); ++i) {
    os << (i == 0 ? " " : ",") << advice_name(fc.advice[i]);
  }
  os << '\n' << to_config_string(fc.config);
  if (!os) throw std::runtime_error("fuzz: short write to " + config_path);
}

FuzzCase load_case(const std::string& trace_path, const std::string& config_path,
                   InjectedFault* fault_out) {
  FuzzCase fc;
  {
    std::ifstream is(trace_path, std::ios::binary);
    if (!is) throw std::runtime_error("fuzz: cannot read " + trace_path);
    fc.trace = std::make_shared<RecordedTrace>(RecordedTrace::load(is));
  }

  std::ifstream is(config_path);
  if (!is) throw std::runtime_error("fuzz: cannot read " + config_path);
  std::string line;
  std::ostringstream cfg_text;
  InjectedFault fault = InjectedFault::kNone;
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (t.rfind("fuzz.", 0) != 0) {
      cfg_text << line << '\n';  // config_parse handles comments and blanks
      continue;
    }
    const auto eq = t.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("fuzz sidecar: malformed line '" + t + "'");
    const std::string key = trim(t.substr(0, eq));
    const std::string value = trim(t.substr(eq + 1));
    if (key == "fuzz.seed") {
      fc.seed = std::stoull(value);
    } else if (key == "fuzz.fault") {
      fault = parse_fault(value);
    } else if (key == "fuzz.advice") {
      fc.advice.clear();
      std::istringstream vs(value);
      std::string tok;
      while (std::getline(vs, tok, ',')) fc.advice.push_back(parse_advice(trim(tok)));
    } else {
      throw std::runtime_error("fuzz sidecar: unknown key '" + key + "'");
    }
  }
  std::istringstream cs(cfg_text.str());
  load_config_stream(fc.config, cs);
  fc.config.validate();
  fc.label = "replay:" + trace_path;
  if (fault_out) *fault_out = fault;
  return fc;
}

FuzzReport run_fuzz(const FuzzOptions& o) {
  // Generate the batch up front; every Nth case mutates an earlier trace
  // under that case's own config so allocations stay consistent.
  std::vector<FuzzCase> cases;
  cases.reserve(o.iterations);
  std::uint64_t sm = o.seed ^ 0xa5a5f02ddeadbeefull;
  Rng mut_rng(splitmix64(sm));
  if (!o.trace_path.empty()) {
    // Trace-seeded campaign: the captured trace is the whole corpus. Case 0
    // replays it verbatim; later cases replay fresh mutants, rotating over
    // the four paper policies so the oracle exercises every decision path.
    const auto base = std::make_shared<RecordedTrace>(load_any_trace(o.trace_path));
    static constexpr const char* kPaperSlugs[] = {"baseline", "always", "oversub", "adaptive"};
    for (std::uint64_t i = 0; i < o.iterations; ++i) {
      FuzzCase fc;
      fc.seed = o.seed + i;
      fc.config.mem.oversubscription = 1.3333;
      fc.config.mem.eviction = EvictionKind::kLfu;
      (void)apply_policy_name(fc.config.policy, kPaperSlugs[i % 4]);
      fc.label = "trace:" + o.trace_path + (i == 0 ? "" : "+mut");
      fc.trace = i == 0 ? base
                        : std::make_shared<RecordedTrace>(mutate_trace(*base, mut_rng));
      cases.push_back(std::move(fc));
    }
  } else {
    for (std::uint64_t i = 0; i < o.iterations; ++i) {
      if (o.mutate_every != 0 && i > 0 && (i + 1) % o.mutate_every == 0) {
        const std::uint64_t j = mut_rng.below(i);
        FuzzCase fc = cases[j];
        fc.trace = std::make_shared<RecordedTrace>(mutate_trace(*cases[j].trace, mut_rng));
        fc.label += "+mut";
        cases.push_back(std::move(fc));
      } else {
        cases.push_back(generate_case(o.seed, i, o.gen));
      }
    }
  }
  if (!o.policy_slug.empty()) {
    // Pin every case (mutated ones included) to the requested policy; an
    // unregistered slug is a caller bug, not a fuzzing finding.
    for (FuzzCase& fc : cases) {
      if (!apply_policy_name(fc.config.policy, o.policy_slug))
        throw std::invalid_argument("run_fuzz: unknown policy '" + o.policy_slug +
                                    "' (registered: " + registered_policy_names() + ")");
    }
  }

  std::vector<std::unique_ptr<RefModel>> models;
  models.reserve(cases.size());
  std::vector<RunRequest> requests;
  requests.reserve(cases.size());
  for (const FuzzCase& fc : cases) {
    models.push_back(std::make_unique<RefModel>(normalized_config(fc), o.inject));
    requests.push_back(make_request(fc));
  }

  BatchOptions bo;
  bo.jobs = o.jobs;
  bo.make_options = [&cases, &models](const RunRequest&, std::size_t i) {
    RunOptions ro;
    ro.trace_sink = models[i].get();
    ro.advice_hook = [&cases, &models, i](AddressSpace& space) {
      apply_advice(cases[i], space);
      models[i]->capture_layout(space);
    };
    return ro;
  };
  if (o.progress) {
    bo.on_done = [&o](const BatchEntry&, std::size_t done, std::size_t total) {
      o.progress(done, total);
    };
  }
  const BatchResult batch = run_batch(requests, bo);

  FuzzReport report;
  report.iterations = o.iterations;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::string msg;
    if (!batch.entries[i].ok()) {
      msg = "run failed: " + batch.entries[i].error;
    } else {
      models[i]->finish();
      if (models[i]->diverged()) msg = models[i]->divergence();
    }
    if (msg.empty()) continue;
    ++report.divergences;
    if (report.findings.size() >= o.max_findings) continue;

    FuzzFinding f;
    f.case_index = i;
    f.message = msg;
    f.original_records = cases[i].trace->total_records();
    f.reduced = o.shrink ? shrink_case(cases[i], o.inject, &f.message) : cases[i];
    f.reduced_records = f.reduced.trace->total_records();
    if (!o.corpus_dir.empty()) {
      const std::string stem = std::string(to_cstr(o.inject)) + "_seed" +
                               std::to_string(o.seed) + "_case" + std::to_string(i);
      f.trace_path = o.corpus_dir + "/" + stem + ".trc";
      f.config_path = o.corpus_dir + "/" + stem + ".cfg";
      save_case(f.reduced, o.inject, f.trace_path, f.config_path);
    }
    report.findings.push_back(std::move(f));
  }
  return report;
}

}  // namespace uvmsim
