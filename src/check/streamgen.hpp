// Adversarial case generation for the differential fuzzer.
//
// A FuzzCase bundles everything one sim-vs-model iteration needs: a randomized
// SimConfig (policy kind, thresholds, eviction/prefetch machinery, counter
// geometry, oversubscription), per-allocation placement advice, and a
// RecordedTrace access stream built from hostile patterns — thrash loops
// sized just past device capacity, hot/cold splits, write bursts,
// counter-saturation ramps and chunk ping-pong — rather than uniform noise.
// Everything derives from one seed; the same (seed, index) pair always
// yields byte-identical cases.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "trace/replay.hpp"

namespace uvmsim {

/// One self-contained differential-fuzz iteration.
struct FuzzCase {
  SimConfig config;
  /// Per-allocation placement hints, parallel to trace->allocations.
  std::vector<MemAdvice> advice;
  /// The access stream; shared so shrink candidates can alias the case.
  std::shared_ptr<const RecordedTrace> trace;
  std::uint64_t seed = 0;   ///< derived per-case seed (diagnostics)
  std::string label;        ///< pattern summary, e.g. "thrash+write-burst"
};

struct StreamGenOptions {
  std::uint64_t min_records = 60;
  std::uint64_t max_records = 700;
  /// Pattern index (see pattern_name) every launch must use; -1 = random.
  int force_pattern = -1;
  /// Pin mem.coalescing: 0 = off, 1 = on; -1 = randomized per case.
  int force_coalescing = -1;
};

/// The hostile stream pattern table, indexable by
/// StreamGenOptions::force_pattern.
[[nodiscard]] std::size_t pattern_count() noexcept;
[[nodiscard]] const char* pattern_name(std::size_t i) noexcept;
/// Index of `name` in the pattern table, or -1 when unknown.
[[nodiscard]] int pattern_index(const std::string& name) noexcept;

/// Deterministically generate case `index` of the stream seeded by
/// `master_seed`. Configs always come back with collect_traces set and
/// copy_then_execute cleared (the model observes, never preloads).
[[nodiscard]] FuzzCase generate_case(std::uint64_t master_seed, std::uint64_t index,
                                     const StreamGenOptions& opts = {});

/// Corpus-style mutation: delete/duplicate/retype/recount/re-address a few
/// records of an existing trace. Addresses are only ever recombined from
/// records already present, so mutants stay within the mapped span.
[[nodiscard]] RecordedTrace mutate_trace(const RecordedTrace& trace, Rng& rng);

}  // namespace uvmsim
