// Hardware prefetcher interface. The fault handler calls expand() for each
// demand-faulted basic block; the prefetcher appends additional host-resident
// blocks (within the same 2 MB chunk — prefetch never crosses a chunk) to
// migrate alongside it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mem/block_table.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace uvmsim {

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Append prefetch candidates for demand block `b` to `out`. Candidates
  /// must be host-resident mapped blocks in b's chunk and must not repeat
  /// blocks already in `out` (the demand block is not in `out`).
  virtual void expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) = 0;
};

/// No prefetching: demand block only.
class NoPrefetcher final : public Prefetcher {
 public:
  [[nodiscard]] std::string name() const override { return "none"; }
  void expand(BlockNum, const BlockTable&, std::vector<BlockNum>&) override {}
};

/// Next-block neighbourhood prefetch (Zheng et al. style): pull the following
/// `degree` host-resident blocks of the chunk.
class SequentialPrefetcher final : public Prefetcher {
 public:
  explicit SequentialPrefetcher(std::uint32_t degree = 1) : degree_(degree) {}
  [[nodiscard]] std::string name() const override { return "sequential"; }
  void expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) override;

 private:
  std::uint32_t degree_;
};

/// Random block within the faulting chunk (a deliberately weak baseline).
class RandomPrefetcher final : public Prefetcher {
 public:
  explicit RandomPrefetcher(std::uint64_t seed = 0x9e3779b9ull) : rng_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  void expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) override;

 private:
  Rng rng_;
};

/// The CUDA tree-based neighbourhood prefetcher (paper §II-B, Ganguly et al.
/// ISCA'19). Each chunk is a full binary tree whose leaves are 64 KB blocks.
/// Walking up from the faulted leaf, whenever a subtree's occupancy (resident
/// + in-flight + already-selected leaves) exceeds 50 %, every remaining leaf
/// of that subtree is scheduled, yielding prefetches of 64 KB ... 1 MB that
/// opportunistically fill large pages.
class TreePrefetcher final : public Prefetcher {
 public:
  [[nodiscard]] std::string name() const override { return "tree"; }
  void expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) override;

  /// Pure tree logic on a leaf occupancy bitmap; exposed for unit tests.
  /// `occupied` bit i set when leaf i is occupied (the demand leaf must be
  /// set by the caller). Returns the bitmap of leaves to prefetch.
  [[nodiscard]] static std::uint32_t expand_mask(std::uint32_t occupied, std::uint32_t leaf,
                                                 std::uint32_t num_leaves) noexcept;
};

[[nodiscard]] std::unique_ptr<Prefetcher> make_prefetcher(PrefetcherKind kind,
                                                          std::uint64_t seed);

}  // namespace uvmsim
