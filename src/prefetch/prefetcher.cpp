#include "prefetch/prefetcher.hpp"

#include <algorithm>
#include <bit>

namespace uvmsim {

namespace {

/// True when `b` is a candidate for prefetching: mapped, host-resident, and
/// not already selected.
bool prefetchable(BlockNum b, const BlockTable& table, const std::vector<BlockNum>& out) {
  if (b >= table.num_blocks()) return false;
  if (table.residence(b) != Residence::kHost) return false;
  return std::find(out.begin(), out.end(), b) == out.end();
}

}  // namespace

void SequentialPrefetcher::expand(BlockNum b, const BlockTable& table,
                                  std::vector<BlockNum>& out) {
  const ChunkNum c = chunk_of_block(b);
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.chunk_num_blocks(c);
  std::uint32_t taken = 0;
  for (BlockNum nb = b + 1; nb < first + n && taken < degree_; ++nb) {
    if (prefetchable(nb, table, out)) {
      out.push_back(nb);
      ++taken;
    }
  }
}

void RandomPrefetcher::expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) {
  const ChunkNum c = chunk_of_block(b);
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.chunk_num_blocks(c);
  if (n <= 1) return;
  // One random probe; a miss (occupied/duplicate) simply prefetches nothing,
  // mirroring the low hit rate that makes this baseline weak.
  const BlockNum nb = first + rng_.below(n);
  if (nb != b && prefetchable(nb, table, out)) out.push_back(nb);
}

std::uint32_t TreePrefetcher::expand_mask(std::uint32_t occupied, std::uint32_t leaf,
                                          std::uint32_t num_leaves) noexcept {
  if (num_leaves <= 1) return 0;
  std::uint32_t selected = 0;
  // Subtree sizes 2, 4, ..., num_leaves containing the faulted leaf.
  for (std::uint32_t size = 2; size <= num_leaves; size <<= 1) {
    const std::uint32_t lo = leaf / size * size;
    const std::uint32_t mask =
        (size >= 32 ? 0xffffffffu : ((1u << size) - 1u)) << lo;
    const std::uint32_t present = (occupied | selected) & mask;
    const auto count = static_cast<std::uint32_t>(std::popcount(present));
    if (count * 2 > size) {
      selected |= mask & ~occupied;
    }
  }
  // The faulted leaf is occupied, never prefetched.
  selected &= ~(1u << leaf);
  return selected;
}

void TreePrefetcher::expand(BlockNum b, const BlockTable& table, std::vector<BlockNum>& out) {
  const ChunkNum c = chunk_of_block(b);
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.chunk_num_blocks(c);
  if (n <= 1) return;

  // Occupancy bitmap: device-resident, in-flight, already-selected leaves,
  // and the demand leaf itself.
  std::uint32_t occupied = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Residence r = table.residence(first + i);
    if (r != Residence::kHost) occupied |= 1u << i;
  }
  for (BlockNum sel : out) {
    if (chunk_of_block(sel) == c) occupied |= 1u << static_cast<std::uint32_t>(sel - first);
  }
  const auto leaf = static_cast<std::uint32_t>(b - first);
  occupied |= 1u << leaf;

  std::uint32_t mask = expand_mask(occupied, leaf, n);
  while (mask != 0) {
    const auto i = static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    const BlockNum nb = first + i;
    if (prefetchable(nb, table, out)) out.push_back(nb);
  }
}

std::unique_ptr<Prefetcher> make_prefetcher(PrefetcherKind kind, std::uint64_t seed) {
  switch (kind) {
    case PrefetcherKind::kNone: return std::make_unique<NoPrefetcher>();
    case PrefetcherKind::kSequential: return std::make_unique<SequentialPrefetcher>();
    case PrefetcherKind::kRandom: return std::make_unique<RandomPrefetcher>(seed);
    case PrefetcherKind::kTree: return std::make_unique<TreePrefetcher>();
  }
  return nullptr;
}

}  // namespace uvmsim
