// Allocation classification (paper §IV): the framework "automatically
// categorizes memory allocations based on the access pattern and frequency".
// This module derives that categorization from the driver's own access
// counters and residency state, so a user (or the CLI's --classify flag)
// can inspect what the heuristic concluded about each cudaMallocManaged
// allocation — the hint-free analogue of the profiling step that manual
// cudaMemAdvise tuning requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

class UvmDriver;

enum class AllocationClass : std::uint8_t {
  kUntouched,  ///< never accessed by the GPU
  kCold,       ///< sparse/seldom access — zero-copy candidate
  kHot,        ///< dense/frequent access — wants device residency
};

[[nodiscard]] std::string to_string(AllocationClass c);

struct AllocationProfile {
  std::string name;
  std::uint64_t bytes = 0;            ///< padded size
  std::uint64_t resident_bytes = 0;   ///< currently device-resident
  std::uint64_t access_count = 0;     ///< sum of access counters
  double accesses_per_kb = 0.0;       ///< frequency density
  std::uint32_t max_round_trips = 0;  ///< worst thrash among its blocks
  bool written = false;               ///< any block ever written by the GPU
  AllocationClass classification = AllocationClass::kUntouched;
};

/// Classify every allocation of a finished (or running) simulation: an
/// allocation is hot when its access density reaches at least half of the
/// footprint-weighted average density (dense structures cluster far above
/// the average, sparse ones far below; ties err toward hot, matching the
/// framework's preference to keep ambiguous data local).
[[nodiscard]] std::vector<AllocationProfile> classify_allocations(const UvmDriver& driver);

/// Multi-line table rendering of the profiles.
[[nodiscard]] std::string format_profiles(const std::vector<AllocationProfile>& profiles);

}  // namespace uvmsim
