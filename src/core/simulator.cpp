#include "core/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/check.hpp"
#include "core/uvm_driver.hpp"
#include "gpu/gpu_model.hpp"
#include "obs/metrics_recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/runner.hpp"

namespace uvmsim {

Simulator::Simulator(SimConfig cfg) : cfg_(std::move(cfg)) { cfg_.validate(); }

RunResult Simulator::run(Workload& workload, const RunOptions& opts) {
  AddressSpace space;
  workload.build(space);
  if (space.num_allocations() == 0)
    throw std::invalid_argument("Simulator: workload declared no allocations");
  if (opts.advice_hook) opts.advice_hook(space);

  const std::uint64_t capacity = derived_capacity_bytes(cfg_, space.footprint_bytes());

  EventQueue queue;
  SimStats stats;
  UvmDriver driver(cfg_, space, capacity, queue, stats);
  GpuModel gpu(cfg_, queue, driver, stats);
  TraceSink* trace = opts.trace_sink;
  if (cfg_.collect_traces && trace != nullptr) {
    driver.set_trace_sink(trace);
    gpu.set_trace_sink(trace);  // task hand-out stream (trace recording)
  }
  // Layout metadata is reported like kernel boundaries: whenever a sink is
  // attached, independent of collect_traces (it is not part of the per-access
  // observation stream the flag gates).
  if (trace != nullptr) trace->on_layout(space);

  const auto launches = workload.schedule();
  if (launches.empty()) throw std::invalid_argument("Simulator: empty launch schedule");

  RunResult result;
  result.footprint_bytes = space.footprint_bytes();
  result.capacity_bytes = capacity;
  result.kernels.reserve(launches.size());

  // Chain launches: each completion starts the next kernel.
  // Periodic driver-state sampling; stops once the queue has nothing else.
  std::function<void()> sample;
  if (opts.timeline != nullptr) {
    sample = [&, timeline = opts.timeline, interval = opts.timeline_interval]() {
      timeline->add(TimelineSample{queue.now(), driver.device().used_blocks(),
                                   driver.device().capacity_blocks(), stats.far_faults,
                                   stats.remote_accesses, stats.pages_thrashed,
                                   stats.bytes_h2d, stats.bytes_d2h, stats.blocks_migrated,
                                   stats.blocks_prefetched, stats.peer_accesses});
      if (queue.pending() > 0) queue.schedule_in(interval, sample);
    };
    queue.schedule_in(0, sample);
  }

  // Registry-complete sampling on the shared clock: snapshots land at exact
  // multiples of the interval so batch entries' series align row-by-row.
  std::function<void()> metrics_sample;
  if (opts.metrics != nullptr) {
    UVM_CHECK(opts.metrics_interval > 0,
              "RunOptions: metrics_interval must be > 0");
    metrics_sample = [&, rec = opts.metrics, interval = opts.metrics_interval]() {
      rec->sample(queue.now(), stats, driver.device().used_blocks(),
                  driver.device().capacity_blocks());
      if (queue.pending() > 0)
        queue.schedule_at((queue.now() / interval + 1) * interval, metrics_sample);
    };
    queue.schedule_in(0, metrics_sample);
  }

  std::size_t next = 0;
  std::function<void()> launch_next = [&]() {
    if (next >= launches.size()) return;
    const std::size_t i = next++;
    const Kernel& k = *launches[i];
    if (trace != nullptr) trace->on_kernel_begin(static_cast<std::uint32_t>(i), k.name());
    result.kernels.push_back(KernelStat{k.name(), queue.now(), 0});
    gpu.launch(k, [&, i] {
      result.kernels[i].end = queue.now();
      const Cycle overhead = cfg_.launch_overhead_cycles();
      if (overhead > 0 && next < launches.size()) {
        queue.schedule_in(overhead, launch_next);
      } else {
        launch_next();
      }
    });
  };
  if (cfg_.copy_then_execute) {
    // Bulk-transfer the whole working set, then start the kernel chain.
    driver.preload_all([&](Cycle done) {
      result.preload_cycles = done;
      launch_next();
    });
  } else {
    launch_next();
  }
  queue.run();

  if (result.kernels.size() != launches.size() || result.kernels.back().end == 0)
    throw std::logic_error("Simulator: schedule did not run to completion");
  if (!driver.idle())
    throw std::logic_error("Simulator: driver left outstanding work after drain");
  // Final audit pass over the drained state (no-op unless audit.enabled).
  driver.audit_final();

  stats.total_cycles = queue.now();
  for (const KernelStat& k : result.kernels) stats.kernel_cycles += k.duration();
  result.stats = stats;
  result.allocations = classify_allocations(driver);
  return result;
}

std::uint64_t derived_capacity_bytes(const SimConfig& cfg, std::uint64_t footprint_bytes) {
  std::uint64_t capacity = cfg.mem.device_capacity_bytes;
  if (cfg.mem.oversubscription > 0.0) {
    const auto raw = static_cast<std::uint64_t>(
        static_cast<double>(footprint_bytes) / cfg.mem.oversubscription);
    capacity = std::max<std::uint64_t>(kLargePageSize, raw / kLargePageSize * kLargePageSize);
  }
  return capacity;
}

RunResult run_workload(const std::string& workload_name, SimConfig cfg, double oversub,
                       const WorkloadParams& params) {
  RunRequest req;
  req.workload = workload_name;
  req.params = params;
  req.config = std::move(cfg);
  req.oversub = oversub;
  return run_request(req);
}

}  // namespace uvmsim
