// UvmDriver: the GPU driver / runtime model. It owns the memory-management
// state (block table, device frames, access counters), the migration policy,
// the prefetcher, the eviction manager and the PCIe fabric, and implements
// the far-fault servicing pipeline:
//
//   GPU access -> counters -> residency check
//     device-resident  -> DRAM-timed completion
//     in-flight        -> warp stalls on the pending migration
//     host-resident    -> policy decides:
//         remote  -> zero-copy PCIe transaction, warp continues
//         migrate -> far-fault: warp stalls, fault queued
//
//   Fault engine (serial): drain a batch (45 us handling), expand each
//   demand block through the prefetcher (threshold/first-touch faults only;
//   write-forced migrations move exactly one block), make room by evicting
//   2 MB victims (dirty blocks write back D2H and gate the H2D start), and
//   queue the H2D transfers. Arrivals mark blocks resident and wake warps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "check/audit.hpp"
#include "mem/access_counters.hpp"
#include "mitigation/thrash_throttle.hpp"
#include "multigpu/peer_directory.hpp"
#include "mem/address_space.hpp"
#include "mem/block_table.hpp"
#include "mem/device_memory.hpp"
#include "mem/eviction.hpp"
#include "policy/migration_policy.hpp"
#include "prefetch/prefetcher.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/trace.hpp"
#include "xfer/bandwidth.hpp"
#include "xfer/pcie.hpp"

namespace uvmsim {

/// Result of a GPU access as seen by the issuing warp.
struct AccessOutcome {
  bool stalled = false;  ///< true: far-fault; the warp waker fires later
  Cycle done = 0;        ///< valid when !stalled: completion cycle
};

class UvmDriver {
 public:
  /// `waker(warp, ready)` is invoked when a stalled warp's access completes.
  using WarpWaker = std::function<void(WarpId, Cycle)>;
  /// Optional callback to invalidate SM TLB entries of an evicted block.
  using TlbInvalidate = std::function<void(BlockNum)>;

  /// `shared_host_mem` (optional) is the host-DRAM bandwidth regulator; pass
  /// one shared instance when several drivers (GPUs) contend for the same
  /// host memory, or leave null for a private one.
  UvmDriver(const SimConfig& cfg, const AddressSpace& space, std::uint64_t capacity_bytes,
            EventQueue& queue, SimStats& stats,
            BandwidthRegulator* shared_host_mem = nullptr);

  void set_warp_waker(WarpWaker w) { waker_ = std::move(w); }
  void set_tlb_invalidate(TlbInvalidate f) { tlb_invalidate_ = std::move(f); }
  void set_trace_sink(TraceSink* sink) { trace_ = sink; }
  /// Attach this driver (as GPU `gpu_id`) to a multi-GPU peer directory:
  /// residency is published and remote accesses may be served over the peer
  /// fabric when another GPU holds the block.
  void set_peer_directory(PeerDirectory* peers, std::uint32_t gpu_id) {
    peers_ = peers;
    gpu_id_ = gpu_id;
  }

  /// Service one coalesced access issued by warp `w` at cycle `now`.
  [[nodiscard]] AccessOutcome access(WarpId w, VirtAddr addr, AccessType type,
                                     std::uint32_t count, Cycle now);

  /// Classic "copy then execute": migrate every mapped block upfront (the
  /// working set must fit — this is exactly the limitation Unified Memory
  /// removes). `on_done` fires when the last transfer lands.
  void preload_all(std::function<void(Cycle)> on_done);

  // Introspection (tests, harnesses).
  [[nodiscard]] const BlockTable& blocks() const noexcept { return table_; }
  [[nodiscard]] const DeviceMemory& device() const noexcept { return device_; }
  [[nodiscard]] const AccessCounterTable& counters() const noexcept { return counters_; }
  [[nodiscard]] const PcieFabric& pcie() const noexcept { return pcie_; }
  [[nodiscard]] const MigrationPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] const ThrashThrottle& throttle() const noexcept { return throttle_; }
  [[nodiscard]] std::size_t pending_faults() const noexcept {
    return pending_.size() - pending_head_;
  }
  [[nodiscard]] bool idle() const noexcept {
    return pending_faults() == 0 && !engine_busy_ && in_flight_ == 0;
  }

  /// The invariant auditor, or null when `audit.enabled` is off.
  [[nodiscard]] const InvariantAuditor* auditor() const noexcept { return audit_.get(); }
  /// End-of-run audit pass (unconditional when auditing is enabled); called
  /// by the simulator once the driver drains.
  void audit_final();

 private:
  struct PendingFault {
    BlockNum block;
    bool with_prefetch;
  };

  [[nodiscard]] PolicyFeatures features(AccessType type, std::uint32_t post_count,
                                        std::uint32_t round_trips, Cycle now) const noexcept;
  /// Advance the fault/eviction activity window feeding PolicyFeatures.
  void roll_feature_window(Cycle now) noexcept;
  [[nodiscard]] AuditScope audit_scope() const noexcept;
  void raise_fault(BlockNum b, WarpId w, bool with_prefetch);
  void maybe_start_engine();
  void process_batch();
  /// Runtime dispatchers picking the <kTrace, kAudit> instantiation that
  /// matches the attached sinks — once per access / batch / arrival, so the
  /// detached (bench/sweep) configuration runs code with the observation
  /// hooks compiled out entirely.
  void dispatch_service_batch();
  void on_block_arrival(BlockNum b);

  template <bool kTrace, bool kAudit>
  [[nodiscard]] AccessOutcome access_impl(WarpId w, VirtAddr addr, AccessType type,
                                          std::uint32_t count, Cycle now);
  /// Services the faults staged in batch_buf_ (the engine is serial, so one
  /// reused buffer holds the single outstanding batch).
  template <bool kTrace, bool kAudit>
  void service_batch_impl();
  /// Frees one eviction unit of device memory; returns false when nothing is
  /// evictable.
  template <bool kTrace, bool kAudit>
  bool evict_for(ChunkNum faulting_chunk, Cycle now, Cycle& writeback_ready);
  template <bool kTrace, bool kAudit>
  void enqueue_migration(BlockNum b, bool demand, Cycle now, Cycle not_before);
  template <bool kTrace, bool kAudit>
  void on_block_arrival_impl(BlockNum b);

  const SimConfig& cfg_;
  /// cfg_.policy.historic_counters(), resolved once: the answer is fixed for
  /// a run, and the slug-based form costs string compares per access.
  const bool historic_counters_;
  /// cfg_.mem.coalescing, hoisted so the access fast path pays one
  /// predictable branch when huge-page management is off (the default).
  const bool coalescing_;
  const AddressSpace& space_;
  EventQueue& queue_;
  SimStats& stats_;

  BlockTable table_;
  DeviceMemory device_;
  AccessCounterTable counters_;
  EvictionManager eviction_;
  std::unique_ptr<Prefetcher> prefetcher_;
  std::unique_ptr<MigrationPolicy> policy_;
  ThrashThrottle throttle_;
  std::unique_ptr<InvariantAuditor> audit_;  ///< non-null when audit.enabled
  PcieFabric pcie_;
  BandwidthRegulator dram_;
  std::unique_ptr<BandwidthRegulator> owned_host_mem_;  ///< when not shared
  BandwidthRegulator* host_mem_;

  std::vector<MemAdvice> block_advice_;  ///< per-block placement hint
  std::unordered_map<BlockNum, std::vector<WarpId>> waiters_;
  /// Fault queue as a vector + head cursor (FIFO; the head range is compacted
  /// away whenever the queue drains, which it does every few batches).
  std::vector<PendingFault> pending_;
  std::size_t pending_head_ = 0;
  std::vector<PendingFault> batch_buf_;  ///< the one in-service batch, reused
  bool engine_busy_ = false;
  std::uint64_t in_flight_ = 0;  ///< H2D block transfers not yet arrived
  /// Demand blocks marked in-flight but still queued (pending_ or an
  /// engine batch) — no transfer enqueued for them yet.
  std::uint64_t queued_fault_blocks_ = 0;

  WarpWaker waker_;
  TlbInvalidate tlb_invalidate_;
  TraceSink* trace_ = nullptr;
  PeerDirectory* peers_ = nullptr;
  std::uint32_t gpu_id_ = 0;

  std::vector<BlockNum> expand_buf_;
  std::vector<BlockNum> victim_buf_;  ///< reused across evict_for calls

  // Windowed activity counters feeding PolicyFeatures (allocation-free):
  // far faults raised and large pages evicted in the current
  // kFeatureWindowCycles window, plus the completed previous window.
  Cycle feat_window_start_ = 0;
  std::uint32_t feat_window_faults_ = 0;
  std::uint32_t feat_prev_faults_ = 0;
  std::uint32_t feat_window_evictions_ = 0;
  std::uint32_t feat_prev_evictions_ = 0;
};

}  // namespace uvmsim
