#include "core/allocation_profile.hpp"

#include <iomanip>
#include <sstream>

#include "core/uvm_driver.hpp"

namespace uvmsim {

std::string to_string(AllocationClass c) {
  switch (c) {
    case AllocationClass::kUntouched: return "untouched";
    case AllocationClass::kCold: return "cold";
    case AllocationClass::kHot: return "hot";
  }
  return "?";
}

std::vector<AllocationProfile> classify_allocations(const UvmDriver& driver) {
  const AddressSpace& space = driver.blocks().space();
  const AccessCounterTable& counters = driver.counters();
  const BlockTable& table = driver.blocks();

  std::vector<AllocationProfile> out;
  out.reserve(space.num_allocations());

  double total_accesses = 0.0;
  double total_kb = 0.0;
  for (const Allocation& a : space.allocations()) {
    AllocationProfile p;
    p.name = a.name;
    p.bytes = a.padded_size;
    p.access_count = counters.range_count(a.base, a.padded_size);
    const BlockNum first = block_of(a.base);
    const BlockNum end = first + a.padded_size / kBasicBlockSize;
    for (BlockNum b = first; b < end; ++b) {
      const BlockState& s = table.block(b);
      if (s.residence == Residence::kDevice) p.resident_bytes += kBasicBlockSize;
      p.written |= s.written_ever;
      p.max_round_trips = std::max(p.max_round_trips, s.round_trips);
    }
    p.accesses_per_kb =
        static_cast<double>(p.access_count) / (static_cast<double>(p.bytes) / 1024.0);
    total_accesses += static_cast<double>(p.access_count);
    total_kb += static_cast<double>(p.bytes) / 1024.0;
    out.push_back(std::move(p));
  }

  const double avg_density = total_kb == 0.0 ? 0.0 : total_accesses / total_kb;
  for (AllocationProfile& p : out) {
    if (p.access_count == 0) {
      p.classification = AllocationClass::kUntouched;
    } else if (avg_density > 0.0 && p.accesses_per_kb >= 0.5 * avg_density) {
      p.classification = AllocationClass::kHot;
    } else {
      p.classification = AllocationClass::kCold;
    }
  }
  return out;
}

std::string format_profiles(const std::vector<AllocationProfile>& profiles) {
  std::ostringstream os;
  os << std::left << std::setw(18) << "allocation" << std::right << std::setw(10) << "MB"
     << std::setw(10) << "res-MB" << std::setw(14) << "accesses" << std::setw(12)
     << "acc/KB" << std::setw(8) << "trips" << std::setw(9) << "written" << std::setw(11)
     << "class" << '\n';
  for (const AllocationProfile& p : profiles) {
    os << std::left << std::setw(18) << p.name << std::right << std::fixed
       << std::setprecision(1) << std::setw(10)
       << static_cast<double>(p.bytes) / (1 << 20) << std::setw(10)
       << static_cast<double>(p.resident_bytes) / (1 << 20) << std::setw(14)
       << p.access_count << std::setw(12) << std::setprecision(1) << p.accesses_per_kb
       << std::setw(8) << p.max_round_trips << std::setw(9) << (p.written ? "yes" : "no")
       << std::setw(11) << to_string(p.classification) << '\n';
  }
  return os.str();
}

}  // namespace uvmsim
