#include "core/uvm_driver.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace uvmsim {

UvmDriver::UvmDriver(const SimConfig& cfg, const AddressSpace& space,
                     std::uint64_t capacity_bytes, EventQueue& queue, SimStats& stats,
                     BandwidthRegulator* shared_host_mem)
    : cfg_(cfg),
      historic_counters_(cfg.policy.historic_counters()),
      coalescing_(cfg.mem.coalescing),
      space_(space),
      queue_(queue),
      stats_(stats),
      table_(space),
      device_(capacity_bytes),
      counters_(div_ceil(space.span_end(), cfg.mem.counter_granularity),
                static_cast<std::uint32_t>(std::countr_zero(cfg.mem.counter_granularity)),
                cfg.mem.counter_count_bits),
      eviction_(cfg.mem.eviction, cfg.mem.eviction_granularity, cfg.mem.splinter_on_evict),
      prefetcher_(make_prefetcher(cfg.mem.prefetcher, cfg.rng_seed)),
      policy_(make_policy(cfg.policy)),
      throttle_(cfg.mitigation),
      audit_(cfg.audit.enabled ? std::make_unique<InvariantAuditor>(cfg.audit) : nullptr),
      pcie_(cfg),
      dram_(cfg.dram_bytes_per_cycle()) {
  // Wire the incremental eviction index to this driver's table/counter pair
  // (both members live at stable addresses for the driver's lifetime).
  eviction_.attach_index(table_, counters_);
  if (shared_host_mem != nullptr) {
    host_mem_ = shared_host_mem;
  } else {
    owned_host_mem_ = std::make_unique<BandwidthRegulator>(
        cfg.xfer.host_memory_bandwidth_gbps / cfg.gpu.core_clock_ghz);
    host_mem_ = owned_host_mem_.get();
  }
  // Per-block placement-hint table (cudaMemAdvise model).
  block_advice_.assign(space.total_blocks(), MemAdvice::kNone);
  for (const Allocation& a : space.allocations()) {
    if (a.advice == MemAdvice::kNone) continue;
    for (BlockNum b = block_of(a.base); b < block_of(a.base) + a.padded_size / kBasicBlockSize;
         ++b) {
      block_advice_[b] = a.advice;
    }
  }
}

PolicyFeatures UvmDriver::features(AccessType type, std::uint32_t post_count,
                                   std::uint32_t round_trips, Cycle now) const noexcept {
  PolicyFeatures f;
  f.type = type;
  f.post_count = post_count;
  f.round_trips = round_trips;
  f.resident_pages = device_.used_pages();
  f.capacity_pages = device_.capacity_pages();
  f.oversubscribed = device_.ever_full();
  f.overcommitted = space_.footprint_bytes() > device_.capacity_blocks() * kBasicBlockSize;
  f.now = now;
  f.window_faults = feat_window_faults_;
  f.prev_window_faults = feat_prev_faults_;
  f.window_evictions = feat_window_evictions_;
  f.prev_window_evictions = feat_prev_evictions_;
  f.total_faults = stats_.far_faults;
  f.total_evictions = stats_.evictions;
  if (coalescing_) {
    // Listed chunks (>= 1 resident block) are the denominator: the feature
    // answers "how much of what lives on the device is huge-mapped".
    const std::uint64_t listed = eviction_.index().size();
    f.coalesced_ratio = listed == 0 ? 0.0
                                    : static_cast<double>(table_.coalesced_chunks()) /
                                          static_cast<double>(listed);
  }
  return f;
}

void UvmDriver::roll_feature_window(Cycle now) noexcept {
  if (now - feat_window_start_ < kFeatureWindowCycles) return;
  // A gap larger than one window means the intervening windows were silent,
  // so the "previous window" the policy sees is empty.
  const Cycle windows = (now - feat_window_start_) / kFeatureWindowCycles;
  feat_prev_faults_ = windows == 1 ? feat_window_faults_ : 0;
  feat_prev_evictions_ = windows == 1 ? feat_window_evictions_ : 0;
  feat_window_faults_ = 0;
  feat_window_evictions_ = 0;
  feat_window_start_ += windows * kFeatureWindowCycles;
}

AuditScope UvmDriver::audit_scope() const noexcept {
  AuditScope s;
  s.table = &table_;
  s.device = &device_;
  s.counters = &counters_;
  s.eviction = &eviction_;
  s.pcie = &pcie_;
  s.queue = &queue_;
  s.stats = &stats_;
  s.policy = policy_.get();
  s.policy_cfg = &cfg_.policy;
  s.policy_features = features(AccessType::kRead, 0, 0, queue_.now());
  s.in_flight_blocks = in_flight_;
  s.queued_fault_blocks = queued_fault_blocks_;
  s.historic_counters = cfg_.policy.historic_counters();
  s.protect_window = cfg_.mem.eviction_protect_cycles;
  return s;
}

void UvmDriver::audit_final() {
  if (audit_) audit_->finalize(audit_scope(), stats_);
}

AccessOutcome UvmDriver::access(WarpId w, VirtAddr addr, AccessType type, std::uint32_t count,
                                Cycle now) {
  // Pick the instantiation matching the attached sinks: with both detached
  // (the bench/sweep configuration) every observation hook below is
  // compiled out, not just branched over.
  if (trace_ == nullptr) {
    return audit_ == nullptr ? access_impl<false, false>(w, addr, type, count, now)
                             : access_impl<false, true>(w, addr, type, count, now);
  }
  return audit_ == nullptr ? access_impl<true, false>(w, addr, type, count, now)
                           : access_impl<true, true>(w, addr, type, count, now);
}

template <bool kTrace, bool kAudit>
AccessOutcome UvmDriver::access_impl(WarpId w, VirtAddr addr, AccessType type,
                                     std::uint32_t count, Cycle now) {
  // Audit on entry: the structures are quiescent between events, so a pass
  // here sees a consistent snapshot before this access mutates anything.
  if constexpr (kAudit) audit_->on_event(audit_scope(), stats_);
  roll_feature_window(now);
  stats_.total_accesses += count;
  const BlockNum b = block_of(addr);
  const Residence res = table_.residence(b);
  // Historic counters (Adaptive) track every access; Volta counters (static
  // schemes) only track remote accesses to host-resident pages.
  std::uint32_t post_count = 0;
  if (historic_counters_ || res == Residence::kHost) {
    [[maybe_unused]] const std::uint64_t prev_halvings = counters_.halvings();
    post_count = counters_.record_access(addr, count);
    stats_.counter_halvings = counters_.halvings();
    if constexpr (kTrace) {
      if (counters_.halvings() != prev_halvings) {
        trace_->on_counter_halving(now, counters_.halvings());
      }
    }
  }
  // Write sharing splinters a coalesced chunk before the write is recorded,
  // so the "coalesced => never written" invariant holds at every event
  // boundary. A coalesced chunk is fully resident, so only the
  // device-resident path below can reach this.
  if (coalescing_ && type == AccessType::kWrite) {
    const ChunkNum wc = chunk_of_block(b);
    if (table_.chunk_coalesced(wc)) {
      table_.splinter(wc);
      ++stats_.chunk_splinters;
      if constexpr (kTrace) trace_->on_splinter(now, wc, SplinterReason::kWriteShare);
    }
  }
  table_.touch(b, type, now);
  if constexpr (kTrace) {
    trace_->on_access(now, addr, type, count, res == Residence::kDevice);
  }

  switch (res) {
    case Residence::kDevice: {
      stats_.local_accesses += count;
      const Cycle drained = dram_.acquire(now, static_cast<std::uint64_t>(count) * kWarpAccessBytes);
      return AccessOutcome{false, drained + cfg_.gpu.dram_latency};
    }
    case Residence::kInFlight: {
      // The block is already on its way; join the waiters.
      waiters_[b].push_back(w);
      return AccessOutcome{true, 0};
    }
    case Residence::kHost:
      break;
  }

  const PolicyFeatures feat = features(type, post_count, counters_.round_trips(addr), now);

  // Programmer hints override the driver policy (paper §III-C):
  // kAccessedBy establishes a permanent zero-copy mapping; kPreferredHost is
  // a soft pin serviced with Volta's static delayed-migration semantics.
  MigrationDecision d = MigrationDecision::kRemoteAccess;
  const MemAdvice advice = block_advice_[b];
  switch (advice) {
    case MemAdvice::kAccessedBy:
      d = MigrationDecision::kRemoteAccess;
      break;
    case MemAdvice::kPreferredHost:
      d = (type == AccessType::kWrite || post_count >= cfg_.policy.static_threshold)
              ? MigrationDecision::kMigrate
              : MigrationDecision::kRemoteAccess;
      break;
    case MemAdvice::kNone:
      d = policy_->decide(feat);
      break;
  }

  // State-of-practice mitigation (off by default): blocks detected as
  // thrashing are temporarily host-pinned, overriding the migrate decision.
  if (d == MigrationDecision::kMigrate && throttle_.enabled()) {
    [[maybe_unused]] const std::uint64_t prev_pins = throttle_.pins();
    throttle_.note_fault(b, now, table_.round_trips(b));
    if constexpr (kTrace) {
      if (throttle_.pins() != prev_pins) {
        trace_->on_throttle_pin(now, b, throttle_.pinned_until(b));
      }
    }
    if (throttle_.is_throttled(b, now)) d = MigrationDecision::kRemoteAccess;
  }

  if (d == MigrationDecision::kRemoteAccess) {
    if constexpr (kTrace) {
      trace_->on_decision(now, addr, type, feat.post_count, feat.round_trips, d,
                          /*write_forced=*/false);
    }
    ++stats_.decide_remote;
    // Multi-GPU: a read whose block sits in a peer's memory is served over
    // the peer fabric instead of host PCIe.
    if (peers_ != nullptr && peers_->config().enabled && type == AccessType::kRead &&
        peers_->held_by_peer(b, gpu_id_)) {
      stats_.peer_accesses += count;
      return AccessOutcome{false, peers_->peer_transaction(now, count)};
    }
    stats_.remote_accesses += count;
    // Reads pull cache lines H2D; writes push D2H. Zero-copy shares the
    // PCIe channels with DMA migrations.
    const PcieDir dir =
        type == AccessType::kRead ? PcieDir::kHostToDevice : PcieDir::kDeviceToHost;
    const std::uint64_t wire_bytes =
        static_cast<std::uint64_t>(count) *
        (kWarpAccessBytes + cfg_.xfer.remote_overhead_bytes);
    const Cycle drained = pcie_.remote_transaction(dir, now, wire_bytes);
    // Zero-copy also occupies host DRAM (payload only).
    const Cycle host_drained =
        host_mem_->acquire(now, static_cast<std::uint64_t>(count) * kWarpAccessBytes);
    return AccessOutcome{false, std::max(drained, host_drained) +
                                    cfg_.xfer.remote_access_latency};
  }

  ++stats_.decide_migrate;
  // A write-forced migration is one that a read would not have triggered;
  // such migrations move only the touched block (no prefetch expansion).
  bool write_forced = false;
  if (type == AccessType::kWrite) {
    if (advice == MemAdvice::kPreferredHost) {
      write_forced = post_count < cfg_.policy.static_threshold;
    } else {
      write_forced = !policy_->read_would_migrate(feat);
    }
  }
  if (write_forced) ++stats_.write_forced_migrations;
  if constexpr (kTrace) {
    trace_->on_decision(now, addr, type, feat.post_count, feat.round_trips, d, write_forced);
  }

  ++stats_.far_faults;
  ++feat_window_faults_;
  raise_fault(b, w, /*with_prefetch=*/!write_forced);
  if (type == AccessType::kWrite) table_.set_dirty_on_arrival(b);
  return AccessOutcome{true, 0};
}

void UvmDriver::raise_fault(BlockNum b, WarpId w, bool with_prefetch) {
  waiters_[b].push_back(w);
  table_.mark_in_flight(b);
  ++queued_fault_blocks_;
  pending_.push_back(PendingFault{b, with_prefetch});
  maybe_start_engine();
}

void UvmDriver::maybe_start_engine() {
  if (engine_busy_ || pending_faults() == 0) return;
  engine_busy_ = true;
  // Let the fault buffer fill before draining the first batch; backlogged
  // batches chain immediately from service_batch_impl.
  queue_.schedule_in(cfg_.xfer.fault_batch_window, [this] { process_batch(); });
}

void UvmDriver::process_batch() {
  UVM_CHECK(engine_busy_, "UvmDriver: fault engine drained a batch while idle; pending="
                << pending_faults() << " in_flight=" << in_flight_);
  const std::size_t avail = pending_faults();
  if (avail == 0) {
    engine_busy_ = false;
    return;
  }
  // Stage the batch into the reused buffer (the engine is serial: exactly one
  // batch is outstanding, so this never clobbers in-service faults) and pop
  // the head range by advancing the cursor — no deque shuffling.
  const std::size_t take = std::min<std::size_t>(avail, cfg_.xfer.fault_batch_max);
  const auto head = pending_.begin() + static_cast<std::ptrdiff_t>(pending_head_);
  batch_buf_.assign(head, head + static_cast<std::ptrdiff_t>(take));
  pending_head_ += take;
  if (pending_head_ == pending_.size()) {
    pending_.clear();
    pending_head_ = 0;
  }
  ++stats_.fault_batches;
  if (trace_ != nullptr) {
    trace_->on_fault_batch(queue_.now(), queue_.now() + cfg_.far_fault_cycles(), take);
  }
  queue_.schedule_in(cfg_.far_fault_cycles(), [this] { dispatch_service_batch(); });
}

void UvmDriver::dispatch_service_batch() {
  if (trace_ == nullptr) {
    audit_ == nullptr ? service_batch_impl<false, false>() : service_batch_impl<false, true>();
  } else {
    audit_ == nullptr ? service_batch_impl<true, false>() : service_batch_impl<true, true>();
  }
}

template <bool kTrace, bool kAudit>
bool UvmDriver::evict_for(ChunkNum faulting_chunk, Cycle now, Cycle& writeback_ready) {
  eviction_.select_victims_into(
      table_, counters_,
      VictimQuery{faulting_chunk, true, now, cfg_.mem.eviction_protect_cycles},
      victim_buf_);
  const std::vector<BlockNum>& victims = victim_buf_;
  if (victims.empty()) return false;
  // A coalesced victim chunk demotes before any block leaves: atomically
  // (the whole chunk is the victim set, mem.splinter_on_evict=false) or by
  // splintering so the configured granularity applies. Either way the hook
  // fires before on_eviction so lockstep oracles see the transition first.
  if (coalescing_) {
    const ChunkNum vc = chunk_of_block(victims.front());
    if (table_.chunk_coalesced(vc)) {
      const bool whole = victims.size() == table_.chunk(vc).resident_blocks;
      table_.splinter(vc);
      if (whole) {
        ++stats_.chunk_coalesced_evictions;
      } else {
        ++stats_.chunk_splinters;
      }
      if constexpr (kTrace) {
        trace_->on_splinter(now, vc,
                            whole ? SplinterReason::kAtomicEviction
                                  : SplinterReason::kEviction);
      }
    }
  }
  if constexpr (kTrace) trace_->on_eviction(now, faulting_chunk, victims);

  ++stats_.evictions;
  roll_feature_window(now);
  ++feat_window_evictions_;
  for (BlockNum v : victims) {
    const bool dirty = table_.mark_evicted(v);
    if (peers_ != nullptr) peers_->clear_resident(v, gpu_id_);
    counters_.record_round_trip(addr_of_block(v));
    if (dirty) {
      stats_.writeback_pages += kPagesPerBlock;
      stats_.bytes_d2h += kBasicBlockSize;
      const Cycle done = pcie_.transfer(PcieDir::kDeviceToHost, now, 0, kBasicBlockSize);
      const Cycle host_done = host_mem_->acquire(now, kBasicBlockSize);
      writeback_ready = std::max({writeback_ready, done, host_done});
    }
    if (tlb_invalidate_) tlb_invalidate_(v);
  }
  // Coalesced per-victim bookkeeping: one device-memory release and one
  // stats update for the whole victim set (observationally identical — the
  // auditor only samples at event boundaries).
  device_.release(victims.size());
  stats_.pages_evicted += kPagesPerBlock * victims.size();
  return true;
}

template <bool kTrace, bool kAudit>
void UvmDriver::enqueue_migration(BlockNum b, bool demand, Cycle now, Cycle not_before) {
  if constexpr (kTrace) trace_->on_migration(now, b, demand);
  if (table_.round_trips(b) >= 1) {
    stats_.pages_thrashed += kPagesPerBlock;
    if (table_.note_thrashed_once(b)) stats_.distinct_pages_thrashed += kPagesPerBlock;
  }
  if (demand) {
    ++stats_.blocks_migrated;
  } else {
    ++stats_.blocks_prefetched;
  }
  // Volta counters clear on migration; the historic counters persist.
  if (!historic_counters_) {
    counters_.reset_range(addr_of_block(b), kBasicBlockSize);
  }
  stats_.bytes_h2d += kBasicBlockSize;
  ++in_flight_;
  const Cycle pcie_done =
      pcie_.transfer(PcieDir::kHostToDevice, now, not_before, kBasicBlockSize);
  const Cycle host_done =
      host_mem_->acquire(now, kBasicBlockSize) + cfg_.xfer.pcie_latency;
  queue_.schedule_at(std::max(pcie_done, host_done), [this, b] { on_block_arrival(b); });
}

template <bool kTrace, bool kAudit>
void UvmDriver::service_batch_impl() {
  const Cycle now = queue_.now();
  Cycle writeback_ready = 0;
  bool progressed = false;

  // Faults are serviced strictly in arrival order: the order of evictions
  // determines the victim set, so any reordering (e.g. a sort by chunk)
  // would change outputs. Same-chunk locality is already strong because a
  // faulting warp's neighbours fault on the same chunk back to back.
  for (const PendingFault& f : batch_buf_) {
    // Build the migration set: demand block first, then prefetch expansion.
    expand_buf_.clear();
    if (f.with_prefetch) {
      prefetcher_->expand(f.block, table_, expand_buf_);
    }

    const ChunkNum fault_chunk = chunk_of_block(f.block);

    // Demand block: must make room; evict as long as a victim exists.
    bool demand_ok = device_.reserve(1);
    while (!demand_ok) {
      device_.note_full();
      if constexpr (kTrace) trace_->on_device_full(now);
      if (!evict_for<kTrace, kAudit>(fault_chunk, now, writeback_ready)) break;
      demand_ok = device_.reserve(1);
    }
    if (!demand_ok) {
      // All capacity is held by in-flight transfers; retry this fault once
      // arrivals free the queue pressure.
      pending_.push_back(PendingFault{f.block, f.with_prefetch});
      continue;
    }
    UVM_CHECK(queued_fault_blocks_ > 0,
              "UvmDriver: servicing fault for block " << f.block
                  << " with no queued faults tracked");
    --queued_fault_blocks_;
    enqueue_migration<kTrace, kAudit>(f.block, /*demand=*/true, now, writeback_ready);
    progressed = true;

    // Prefetch blocks are best-effort: they may evict, but once nothing is
    // evictable they are dropped rather than deferred.
    for (BlockNum pb : expand_buf_) {
      bool ok = device_.reserve(1);
      while (!ok) {
        device_.note_full();
        if constexpr (kTrace) trace_->on_device_full(now);
        if (!evict_for<kTrace, kAudit>(fault_chunk, now, writeback_ready)) break;
        ok = device_.reserve(1);
      }
      if (!ok) break;
      table_.mark_in_flight(pb);
      enqueue_migration<kTrace, kAudit>(pb, /*demand=*/false, now, writeback_ready);
    }
  }

  if (pending_faults() != 0 && progressed) {
    // Chain the next batch immediately: the fault-handling engine is serial.
    queue_.schedule_in(0, [this] { process_batch(); });
  } else if (pending_faults() != 0 && in_flight_ > 0) {
    // No progress possible until transfers land; arrivals restart the engine.
    engine_busy_ = false;
  } else if (pending_faults() != 0) {
    // Nothing in flight and nothing evictable: retry after a backoff to
    // guarantee forward progress in time.
    queue_.schedule_in(cfg_.far_fault_cycles(), [this] { process_batch(); });
  } else {
    engine_busy_ = false;
  }
  if constexpr (kAudit) audit_->on_event(audit_scope(), stats_);
}

void UvmDriver::preload_all(std::function<void(Cycle)> on_done) {
  const Cycle now = queue_.now();
  Cycle last = now;
  for (const Allocation& a : space_.allocations()) {
    const BlockNum first = block_of(a.base);
    const BlockNum end = first + a.padded_size / kBasicBlockSize;
    for (BlockNum b = first; b < end; ++b) {
      if (table_.residence(b) != Residence::kHost) continue;
      if (!device_.reserve(1)) {
        throw std::invalid_argument(
            "UvmDriver::preload_all: working set exceeds device capacity — "
            "the copy-then-execute model cannot oversubscribe");
      }
      table_.mark_in_flight(b);
      ++stats_.blocks_migrated;
      stats_.bytes_h2d += kBasicBlockSize;
      ++in_flight_;
      const Cycle done =
          std::max(pcie_.transfer(PcieDir::kHostToDevice, now, 0, kBasicBlockSize),
                   host_mem_->acquire(now, kBasicBlockSize) + cfg_.xfer.pcie_latency);
      last = std::max(last, done);
      queue_.schedule_at(done, [this, b] { on_block_arrival(b); });
    }
  }
  queue_.schedule_at(last, [cb = std::move(on_done), last] { cb(last); });
}

void UvmDriver::on_block_arrival(BlockNum b) {
  if (trace_ == nullptr) {
    audit_ == nullptr ? on_block_arrival_impl<false, false>(b)
                      : on_block_arrival_impl<false, true>(b);
  } else {
    audit_ == nullptr ? on_block_arrival_impl<true, false>(b)
                      : on_block_arrival_impl<true, true>(b);
  }
}

template <bool kTrace, bool kAudit>
void UvmDriver::on_block_arrival_impl(BlockNum b) {
  const Cycle now = queue_.now();
  if constexpr (kTrace) trace_->on_arrival(now, b);
  table_.mark_resident(b, now);
  // The arrival that completes a never-written chunk promotes it to one
  // 2 MB mapping; the hook follows on_arrival immediately (lockstep oracles
  // depend on that adjacency).
  if (coalescing_ && table_.try_coalesce(chunk_of_block(b))) {
    ++stats_.chunk_coalesces;
    if constexpr (kTrace) trace_->on_coalesce(now, chunk_of_block(b));
  }
  if (peers_ != nullptr) peers_->set_resident(b, gpu_id_);
  UVM_CHECK(in_flight_ > 0, "UvmDriver: block " << b
                << " arrived with no transfer in flight at cycle " << now);
  --in_flight_;

  const auto it = waiters_.find(b);
  if (it != waiters_.end()) {
    // The faulted access replays and completes with a local DRAM access.
    const Cycle drained = dram_.acquire(now, kWarpAccessBytes);
    const Cycle ready = drained + cfg_.gpu.dram_latency;
    for (WarpId w : it->second) {
      ++stats_.replayed_accesses;
      if (waker_) waker_(w, ready);
    }
    waiters_.erase(it);
  }
  maybe_start_engine();
  if constexpr (kAudit) audit_->on_event(audit_scope(), stats_);
}

}  // namespace uvmsim
