// Simulator facade: builds the workload's address space, derives the device
// capacity (optionally from an oversubscription factor), wires driver + GPU,
// plays the kernel launch sequence to completion, and returns the results.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocation_profile.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/timeline.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

struct KernelStat {
  std::string name;
  Cycle start = 0;
  Cycle end = 0;
  [[nodiscard]] Cycle duration() const noexcept { return end - start; }
};

struct RunResult {
  SimStats stats;
  std::vector<KernelStat> kernels;
  std::uint64_t footprint_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  /// Upfront bulk-transfer time (copy-then-execute mode only).
  Cycle preload_cycles = 0;
  /// Per-allocation hot/cold classification derived from the driver's
  /// access counters at the end of the run (paper §IV).
  std::vector<AllocationProfile> allocations;

  /// Total kernel execution time — the paper's runtime metric.
  [[nodiscard]] Cycle kernel_cycles() const noexcept { return stats.kernel_cycles; }
  [[nodiscard]] double kernel_ms(double core_clock_ghz) const noexcept {
    return static_cast<double>(stats.kernel_cycles) / (core_clock_ghz * 1e6);
  }
  [[nodiscard]] double oversubscription() const noexcept {
    return capacity_bytes == 0
               ? 0.0
               : static_cast<double>(footprint_bytes) / static_cast<double>(capacity_bytes);
  }
};

class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  /// Optional tracing (Fig 2/3 harnesses). The sink must outlive run().
  void set_trace_sink(TraceSink* sink) noexcept { trace_ = sink; }

  /// Optional periodic state sampling every `interval` cycles. The timeline
  /// must outlive run(). Sampling stops automatically when the event queue
  /// drains.
  void set_timeline(Timeline* timeline, Cycle interval = 100000) noexcept {
    timeline_ = timeline;
    timeline_interval_ = interval;
  }

  /// Optional hook invoked after the workload builds its allocations —
  /// the place to attach cudaMemAdvise-style hints (oracle experiments).
  using AdviceHook = std::function<void(AddressSpace&)>;
  void set_advice_hook(AdviceHook hook) { advice_hook_ = std::move(hook); }

  /// Run `workload` to completion and return the collected results.
  [[nodiscard]] RunResult run(Workload& workload);

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

 private:
  SimConfig cfg_;
  TraceSink* trace_ = nullptr;
  Timeline* timeline_ = nullptr;
  Cycle timeline_interval_ = 100000;
  AdviceHook advice_hook_;
};

/// Convenience: build + run a named workload at a given oversubscription.
/// `oversub` <= 0 keeps the configured capacity; otherwise capacity =
/// footprint / oversub. Used by every experiment harness.
[[nodiscard]] RunResult run_workload(const std::string& workload_name, SimConfig cfg,
                                     double oversub, const WorkloadParams& params = {});

}  // namespace uvmsim
