// Simulator facade: builds the workload's address space, derives the device
// capacity (optionally from an oversubscription factor), wires driver + GPU,
// plays the kernel launch sequence to completion, and returns the results.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/allocation_profile.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "trace/timeline.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

namespace obs {
class MetricsRecorder;
}  // namespace obs

struct KernelStat {
  std::string name;
  Cycle start = 0;
  Cycle end = 0;
  [[nodiscard]] Cycle duration() const noexcept { return end - start; }
};

struct RunResult {
  SimStats stats;
  std::vector<KernelStat> kernels;
  std::uint64_t footprint_bytes = 0;
  std::uint64_t capacity_bytes = 0;
  /// Upfront bulk-transfer time (copy-then-execute mode only).
  Cycle preload_cycles = 0;
  /// Per-allocation hot/cold classification derived from the driver's
  /// access counters at the end of the run (paper §IV).
  std::vector<AllocationProfile> allocations;

  /// Total kernel execution time — the paper's runtime metric.
  [[nodiscard]] Cycle kernel_cycles() const noexcept { return stats.kernel_cycles; }
  [[nodiscard]] double kernel_ms(double core_clock_ghz) const noexcept {
    return static_cast<double>(stats.kernel_cycles) / (core_clock_ghz * 1e6);
  }
  [[nodiscard]] double oversubscription() const noexcept {
    return capacity_bytes == 0
               ? 0.0
               : static_cast<double>(footprint_bytes) / static_cast<double>(capacity_bytes);
  }
};

/// Per-run observation options, passed to Simulator::run() by value instead
/// of being stashed on the Simulator (the old set_* mutators made the sink
/// lifetimes depend on the Simulator object's — fragile once runs execute on
/// pool threads). Everything is optional; the default observes nothing.
struct RunOptions {
  /// Access tracing (Fig 2/3 harnesses). Must outlive the run() call.
  TraceSink* trace_sink = nullptr;
  /// Periodic state sampling every `timeline_interval` cycles. Must outlive
  /// the run() call; sampling stops when the event queue drains.
  Timeline* timeline = nullptr;
  Cycle timeline_interval = 100000;
  /// Registry-complete time series (obs/metrics_recorder.hpp): every
  /// registered metric is snapshotted at absolute multiples of
  /// `metrics_interval` (cycle 0, k, 2k, ...). Because samples sit on that
  /// shared clock, the series of every entry in a run_batch() align
  /// row-by-row. Must outlive the run() call.
  obs::MetricsRecorder* metrics = nullptr;
  Cycle metrics_interval = 100000;
  /// Invoked after the workload builds its allocations — the place to attach
  /// cudaMemAdvise-style hints (oracle experiments).
  std::function<void(AddressSpace&)> advice_hook;
};

class Simulator {
 public:
  explicit Simulator(SimConfig cfg);

  using AdviceHook = std::function<void(AddressSpace&)>;

  /// Run `workload` to completion and return the collected results.
  [[nodiscard]] RunResult run(Workload& workload, const RunOptions& opts);
  [[nodiscard]] RunResult run(Workload& workload) { return run(workload, RunOptions{}); }

  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }

 private:
  SimConfig cfg_;
};

/// Device capacity a run will use: SimConfig::mem.device_capacity_bytes, or —
/// when mem.oversubscription > 0 — footprint / oversubscription rounded down
/// to a 2 MB multiple (floored at one large page). Shared by Simulator::run
/// and the differential reference model (check/refmodel.hpp) so both derive
/// the same capacity from the same inputs.
[[nodiscard]] std::uint64_t derived_capacity_bytes(const SimConfig& cfg,
                                                   std::uint64_t footprint_bytes);

/// Convenience: build + run a named workload at a given oversubscription.
/// `oversub` <= 0 keeps the configured capacity; otherwise capacity =
/// footprint / oversub. Thin wrapper over run_request() (sim/runner.hpp),
/// the single request-based entry point used by every experiment harness.
[[nodiscard]] RunResult run_workload(const std::string& workload_name, SimConfig cfg,
                                     double oversub, const WorkloadParams& params = {});

}  // namespace uvmsim
