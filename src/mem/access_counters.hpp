// Access-counter table (paper §IV, "Access Counter Maintenance").
//
// One 32-bit register per counter unit (64 KB basic block by default, 4 KB
// page optionally): the low 27 bits count accesses — both device-local and
// remote, giving the historic view the paper argues for — and the top 5 bits
// count round trips (evictions). When either field saturates, every counter
// in the table is halved (not reset) to preserve the relative hotness order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

class EvictionIndex;

class AccessCounterTable {
 public:
  static constexpr std::uint32_t kCountBits = 27;
  static constexpr std::uint32_t kTripBits = 5;
  static constexpr std::uint32_t kCountMax = (1u << kCountBits) - 1;
  static constexpr std::uint32_t kTripMax = (1u << kTripBits) - 1;

  /// `units` = number of counter units covering the VA span;
  /// `unit_shift` = log2(bytes per unit), e.g. 16 for 64 KB.
  AccessCounterTable(std::uint64_t units, std::uint32_t unit_shift);

  [[nodiscard]] std::uint64_t unit_of(VirtAddr a) const noexcept { return a >> unit_shift_; }
  [[nodiscard]] std::uint64_t units() const noexcept { return regs_.size(); }
  [[nodiscard]] std::uint32_t unit_shift() const noexcept { return unit_shift_; }

  /// Record `n` coalesced accesses to the unit holding `a`.
  /// Returns the post-increment access count. Triggers a global halving when
  /// the count field saturates.
  std::uint32_t record_access(VirtAddr a, std::uint32_t n = 1);

  /// Record an eviction round trip for the unit holding `a`.
  void record_round_trip(VirtAddr a);

  [[nodiscard]] std::uint32_t count(VirtAddr a) const noexcept {
    return regs_[unit_of(a)] & kCountMax;
  }
  [[nodiscard]] std::uint32_t round_trips(VirtAddr a) const noexcept {
    return regs_[unit_of(a)] >> kCountBits;
  }
  [[nodiscard]] std::uint32_t count_unit(std::uint64_t u) const noexcept {
    return regs_[u] & kCountMax;
  }
  [[nodiscard]] std::uint32_t round_trips_unit(std::uint64_t u) const noexcept {
    return regs_[u] >> kCountBits;
  }

  /// Aggregate access count over the units covering [addr, addr+bytes).
  [[nodiscard]] std::uint64_t range_count(VirtAddr addr, std::uint64_t bytes) const noexcept;

  /// Clear the access-count field of the unit holding `a` (round trips are
  /// preserved). Volta-style counters reset when the page migrates; the
  /// paper's historic counters never do.
  void reset_count(VirtAddr a);

  /// Clear the count fields of every unit covering [addr, addr+bytes).
  void reset_range(VirtAddr addr, std::uint64_t bytes);

  /// Number of global halvings performed (exposed for stats/tests).
  [[nodiscard]] std::uint64_t halvings() const noexcept { return halvings_; }

  /// Halve every counter and round-trip field (also used on saturation).
  void halve_all() noexcept;

  /// Wire the incremental eviction index that tracks count-field deltas
  /// (nullptr detaches). Owned by EvictionManager.
  void set_eviction_index(EvictionIndex* index) noexcept { index_ = index; }

 private:
  void notify_count(std::uint64_t u, std::uint32_t old_count, std::uint32_t new_count);

  std::vector<std::uint32_t> regs_;
  std::uint32_t unit_shift_;
  std::uint64_t halvings_ = 0;
  EvictionIndex* index_ = nullptr;
};

}  // namespace uvmsim
