// Access-counter table (paper §IV, "Access Counter Maintenance").
//
// One 32-bit register per counter unit (64 KB basic block by default, 4 KB
// page optionally): the low 27 bits count accesses — both device-local and
// remote, giving the historic view the paper argues for — and the top 5 bits
// count round trips (evictions). When either field saturates, every counter
// in the table is halved (not reset) to preserve the relative hotness order.
//
// The 27/5 split is the hardware default; the count/trip bit split is a
// constructor parameter (MemConfig::counter_count_bits) so test harnesses —
// the differential fuzzer in particular — can shrink the registers until
// saturation halvings happen within a handful of accesses instead of 2^27.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "mem/block_table.hpp"  // inline EvictionIndex::on_unit_count
#include "sim/types.hpp"

namespace uvmsim {

class AccessCounterTable {
 public:
  static constexpr std::uint32_t kCountBits = 27;
  static constexpr std::uint32_t kTripBits = 5;
  static constexpr std::uint32_t kCountMax = (1u << kCountBits) - 1;
  static constexpr std::uint32_t kTripMax = (1u << kTripBits) - 1;
  /// Legal range for the per-instance count-field width; the trip field gets
  /// the remaining 32 - count_bits bits (so trips span [2, 24] bits).
  static constexpr std::uint32_t kMinCountBits = 8;
  static constexpr std::uint32_t kMaxCountBits = 30;

  /// `units` = number of counter units covering the VA span;
  /// `unit_shift` = log2(bytes per unit), e.g. 16 for 64 KB;
  /// `count_bits` = width of the access-count field (trips get the rest).
  AccessCounterTable(std::uint64_t units, std::uint32_t unit_shift,
                     std::uint32_t count_bits = kCountBits);

  [[nodiscard]] std::uint64_t unit_of(VirtAddr a) const noexcept { return a >> unit_shift_; }
  [[nodiscard]] std::uint64_t units() const noexcept { return regs_.size(); }
  [[nodiscard]] std::uint32_t unit_shift() const noexcept { return unit_shift_; }
  [[nodiscard]] std::uint32_t count_bits() const noexcept { return count_bits_; }
  /// Saturation value of the count field; counts clamp strictly below it.
  [[nodiscard]] std::uint32_t count_max() const noexcept { return count_max_; }
  /// Saturation value of the round-trip field.
  [[nodiscard]] std::uint32_t trip_max() const noexcept { return trip_max_; }

  /// Record `n` coalesced accesses to the unit holding `a`.
  /// Returns the post-increment access count. Triggers a global halving when
  /// the count field saturates. Inline — runs once per GPU access
  /// (docs/PERF.md); the saturation/halving branch is the rare path and
  /// stays out of line.
  std::uint32_t record_access(VirtAddr a, std::uint32_t n = 1) {
    const std::uint64_t u = unit_of(a);
    std::uint32_t trips = regs_[u] >> count_bits_;
    std::uint64_t cnt = (regs_[u] & count_max_) + static_cast<std::uint64_t>(n);
    if (cnt >= count_max_) {
      halve_all();
      trips = regs_[u] >> count_bits_;
      cnt = (regs_[u] & count_max_) + static_cast<std::uint64_t>(n);
      cnt = std::min<std::uint64_t>(cnt, count_max_ - 1);
    }
    // Clamp-at-saturation: the global halving must have left headroom.
    UVM_CHECK(cnt < count_max_, "AccessCounterTable: unit " << u << " count " << cnt
                  << " not clamped below saturation (halvings=" << halvings_ << ')');
    const std::uint32_t old_count = regs_[u] & count_max_;
    regs_[u] = (trips << count_bits_) | static_cast<std::uint32_t>(cnt);
    notify_count(u, old_count, static_cast<std::uint32_t>(cnt));
    return static_cast<std::uint32_t>(cnt);
  }

  /// Record an eviction round trip for the unit holding `a`.
  void record_round_trip(VirtAddr a);

  [[nodiscard]] std::uint32_t count(VirtAddr a) const noexcept {
    return regs_[unit_of(a)] & count_max_;
  }
  [[nodiscard]] std::uint32_t round_trips(VirtAddr a) const noexcept {
    return regs_[unit_of(a)] >> count_bits_;
  }
  [[nodiscard]] std::uint32_t count_unit(std::uint64_t u) const noexcept {
    return regs_[u] & count_max_;
  }
  [[nodiscard]] std::uint32_t round_trips_unit(std::uint64_t u) const noexcept {
    return regs_[u] >> count_bits_;
  }

  /// Aggregate access count over the units covering [addr, addr+bytes).
  [[nodiscard]] std::uint64_t range_count(VirtAddr addr, std::uint64_t bytes) const noexcept;

  /// Clear the access-count field of the unit holding `a` (round trips are
  /// preserved). Volta-style counters reset when the page migrates; the
  /// paper's historic counters never do.
  void reset_count(VirtAddr a);

  /// Clear the count fields of every unit covering [addr, addr+bytes).
  void reset_range(VirtAddr addr, std::uint64_t bytes);

  /// Number of global halvings performed (exposed for stats/tests).
  [[nodiscard]] std::uint64_t halvings() const noexcept { return halvings_; }

  /// Halve every counter and round-trip field (also used on saturation).
  void halve_all() noexcept;

  /// Wire the incremental eviction index that tracks count-field deltas
  /// (nullptr detaches). Owned by EvictionManager.
  void set_eviction_index(EvictionIndex* index) noexcept { index_ = index; }

 private:
  void notify_count(std::uint64_t u, std::uint32_t old_count, std::uint32_t new_count) {
    if (index_ != nullptr && old_count != new_count) {
      index_->on_unit_count(u, old_count, new_count);
    }
  }

  std::vector<std::uint32_t> regs_;
  std::uint32_t unit_shift_;
  std::uint32_t count_bits_;
  std::uint32_t count_max_;
  std::uint32_t trip_max_;
  std::uint64_t halvings_ = 0;
  EvictionIndex* index_ = nullptr;
};

}  // namespace uvmsim
