#include "mem/address_space.hpp"

#include <bit>
#include <stdexcept>

namespace uvmsim {

std::uint64_t round_partial_chunk(std::uint64_t bytes) noexcept {
  if (bytes == 0) return 0;
  if (bytes >= kLargePageSize) return kLargePageSize;
  const std::uint64_t units = div_ceil(bytes, kBasicBlockSize);
  return std::bit_ceil(units) * kBasicBlockSize;
}

AllocId AddressSpace::allocate(std::string name, std::uint64_t bytes) {
  if (bytes == 0) throw std::invalid_argument("AddressSpace::allocate: zero size");

  Allocation a;
  a.id = static_cast<AllocId>(allocs_.size());
  a.name = std::move(name);
  a.base = next_base_;  // bases are kept 2 MB aligned
  a.user_size = bytes;

  const std::uint64_t full_chunks = bytes / kLargePageSize;
  const std::uint64_t tail = round_partial_chunk(bytes % kLargePageSize);
  a.padded_size = full_chunks * kLargePageSize + tail;

  VirtAddr va = a.base;
  for (std::uint64_t i = 0; i < full_chunks; ++i, va += kLargePageSize) {
    a.chunks.push_back({chunk_of(va), static_cast<std::uint32_t>(kBlocksPerLargePage)});
  }
  if (tail != 0) {
    a.chunks.push_back({chunk_of(va), static_cast<std::uint32_t>(tail / kBasicBlockSize)});
  }

  // Advance to the next 2 MB boundary so chunks never straddle allocations.
  next_base_ = round_up(a.base + a.padded_size, kLargePageSize);
  footprint_ += a.padded_size;

  for (const ChunkInfo& c : a.chunks) {
    if (chunk_blocks_.size() <= c.chunk) chunk_blocks_.resize(c.chunk + 1, 0);
    chunk_blocks_[c.chunk] = c.num_blocks;
  }

  allocs_.push_back(std::move(a));
  return allocs_.back().id;
}

std::optional<AllocId> AddressSpace::find(VirtAddr va) const noexcept {
  // Allocations are sorted by base; binary search the owner.
  std::size_t lo = 0, hi = allocs_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (allocs_[mid].end() <= va) {
      lo = mid + 1;
    } else if (allocs_[mid].base > va) {
      hi = mid;
    } else {
      return allocs_[mid].id;
    }
  }
  return std::nullopt;
}

std::uint32_t AddressSpace::chunk_num_blocks(ChunkNum c) const noexcept {
  return c < chunk_blocks_.size() ? chunk_blocks_[c] : 0u;
}

bool AddressSpace::advise(const std::string& name, MemAdvice advice) {
  for (Allocation& a : allocs_) {
    if (a.name == name) {
      a.advice = advice;
      return true;
    }
  }
  return false;
}

}  // namespace uvmsim
