#include "mem/block_table.hpp"

#include "check/check.hpp"
#include "mem/eviction_index.hpp"

namespace uvmsim {

BlockTable::BlockTable(const AddressSpace& space) : space_(space) {
  const BlockNum nblocks = space.total_blocks();
  state_.assign(nblocks, static_cast<std::uint8_t>(Residence::kHost));
  last_access_.assign(nblocks, 0);
  round_trips_.assign(nblocks, 0);
  // An empty address space has zero chunks — the old `chunk_of_block(0) + 1`
  // expression manufactured a phantom chunk with no mapped blocks.
  chunks_.resize(nblocks == 0 ? 0 : chunk_of_block(nblocks - 1) + 1);
  chunk_nblocks_.resize(chunks_.size());
  coalesced_.assign(chunks_.size(), 0);
  for (ChunkNum c = 0; c < chunks_.size(); ++c) {
    chunk_nblocks_[c] = space.chunk_num_blocks(c);
  }
}

void BlockTable::mark_in_flight(BlockNum b) {
  UVM_CHECK(residence(b) == Residence::kHost,
            "BlockTable: in-flight transition requires host residence; block=" << b
                << " state=" << to_cstr(residence(b)) << " round_trips=" << round_trips_[b]);
  state_[b] = static_cast<std::uint8_t>(
      (state_[b] & ~kResidenceMask) | static_cast<std::uint8_t>(Residence::kInFlight));
}

void BlockTable::mark_resident(BlockNum b, Cycle now) {
  UVM_CHECK(residence(b) == Residence::kInFlight,
            "BlockTable: resident transition requires in-flight state; block=" << b
                << " state=" << to_cstr(residence(b)) << " now=" << now);
  std::uint8_t st = state_[b];
  st = static_cast<std::uint8_t>((st & ~kResidenceMask) |
                                 static_cast<std::uint8_t>(Residence::kDevice));
  // A write that raced the migration makes the block arrive dirty.
  if ((st & kDirtyOnArrivalBit) != 0)
    st |= kDirtyBit;
  else
    st &= static_cast<std::uint8_t>(~kDirtyBit);
  st &= static_cast<std::uint8_t>(~kDirtyOnArrivalBit);
  state_[b] = st;
  ChunkResidency& c = chunks_[chunk_of_block(b)];
  if (c.resident_blocks == 0) c.migrated_at = now;
  ++c.resident_blocks;
  if (index_ != nullptr) index_->on_resident(b);
}

bool BlockTable::mark_evicted(BlockNum b) {
  UVM_CHECK(residence(b) == Residence::kDevice,
            "BlockTable: eviction requires device residence; block=" << b
                << " state=" << to_cstr(residence(b)) << " dirty=" << dirty(b));
  UVM_CHECK(coalesced_[chunk_of_block(b)] == 0,
            "BlockTable: evicting block " << b << " from coalesced chunk "
                << chunk_of_block(b) << " without splintering first");
  const std::uint8_t st = state_[b];
  const bool was_dirty = (st & kDirtyBit) != 0;
  state_[b] = static_cast<std::uint8_t>(
      (st & ~(kResidenceMask | kDirtyBit)) | static_cast<std::uint8_t>(Residence::kHost));
  ++round_trips_[b];
  ChunkResidency& c = chunks_[chunk_of_block(b)];
  UVM_CHECK(c.resident_blocks > 0,
            "BlockTable: chunk " << chunk_of_block(b)
                << " resident count underflow evicting block " << b);
  --c.resident_blocks;
  if (index_ != nullptr) index_->on_evicted(b);
  return was_dirty;
}

bool BlockTable::try_coalesce(ChunkNum c) {
  if (coalesced_[c] != 0) return false;
  if (!chunk_fully_resident(c)) return false;
  if (chunks_[c].written_ever) return false;  // read-mostly gate
  coalesced_[c] = 1;
  ++num_coalesced_;
  return true;
}

void BlockTable::splinter(ChunkNum c) {
  UVM_CHECK(coalesced_[c] != 0, "BlockTable: splinter on split chunk " << c);
  coalesced_[c] = 0;
  --num_coalesced_;
}

std::vector<BlockNum> BlockTable::resident_blocks_of(ChunkNum c) const {
  std::vector<BlockNum> out;
  out.reserve(chunks_[c].resident_blocks);
  for_each_resident_block(c, [&](BlockNum b) { out.push_back(b); });
  return out;
}

}  // namespace uvmsim
