#include "mem/block_table.hpp"

#include "check/check.hpp"
#include "mem/eviction_index.hpp"

namespace uvmsim {

BlockTable::BlockTable(const AddressSpace& space) : space_(space) {
  blocks_.resize(space.total_blocks());
  chunks_.resize(chunk_of_block(space.total_blocks() == 0 ? 0 : space.total_blocks() - 1) + 1);
}

void BlockTable::touch(BlockNum b, AccessType type, Cycle now) {
  BlockState& s = blocks_[b];
  s.last_access = now;
  if (type == AccessType::kWrite) {
    s.written_ever = true;
    if (s.residence == Residence::kDevice) {
      s.dirty = true;
    } else if (s.residence == Residence::kInFlight) {
      // The write replays once the migration lands; the block arrives dirty.
      s.dirty_on_arrival = true;
    }
  }
  ChunkResidency& c = chunks_[chunk_of_block(b)];
  c.last_access = now;
  if (type == AccessType::kWrite) c.written_ever = true;
  if (index_ != nullptr) index_->on_touch(b, now);
}

void BlockTable::mark_in_flight(BlockNum b) {
  BlockState& s = blocks_[b];
  UVM_CHECK(s.residence == Residence::kHost,
            "BlockTable: in-flight transition requires host residence; block=" << b
                << " state=" << to_cstr(s.residence) << " round_trips=" << s.round_trips);
  s.residence = Residence::kInFlight;
}

void BlockTable::mark_resident(BlockNum b, Cycle now) {
  BlockState& s = blocks_[b];
  UVM_CHECK(s.residence == Residence::kInFlight,
            "BlockTable: resident transition requires in-flight state; block=" << b
                << " state=" << to_cstr(s.residence) << " now=" << now);
  s.residence = Residence::kDevice;
  s.dirty = s.dirty_on_arrival;
  s.dirty_on_arrival = false;
  ChunkResidency& c = chunks_[chunk_of_block(b)];
  if (c.resident_blocks == 0) c.migrated_at = now;
  ++c.resident_blocks;
  if (index_ != nullptr) index_->on_resident(b);
}

bool BlockTable::mark_evicted(BlockNum b) {
  BlockState& s = blocks_[b];
  UVM_CHECK(s.residence == Residence::kDevice,
            "BlockTable: eviction requires device residence; block=" << b
                << " state=" << to_cstr(s.residence) << " dirty=" << s.dirty);
  const bool was_dirty = s.dirty;
  s.residence = Residence::kHost;
  s.dirty = false;
  ++s.round_trips;
  ChunkResidency& c = chunks_[chunk_of_block(b)];
  UVM_CHECK(c.resident_blocks > 0,
            "BlockTable: chunk " << chunk_of_block(b)
                << " resident count underflow evicting block " << b);
  --c.resident_blocks;
  if (index_ != nullptr) index_->on_evicted(b);
  return was_dirty;
}

std::vector<BlockNum> BlockTable::resident_blocks_of(ChunkNum c) const {
  std::vector<BlockNum> out;
  out.reserve(chunks_[c].resident_blocks);
  for_each_resident_block(c, [&](BlockNum b) { out.push_back(b); });
  return out;
}

bool BlockTable::chunk_fully_resident(ChunkNum c) const {
  const std::uint32_t n = space_.chunk_num_blocks(c);
  return n != 0 && chunks_[c].resident_blocks == n;
}

}  // namespace uvmsim
