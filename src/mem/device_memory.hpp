// Device physical-memory accounting. Frames are fungible in this model:
// we track occupancy in 64 KB block units against a configured capacity.
// Reservations happen at migration-enqueue time so in-flight transfers
// cannot oversubscribe the physical space.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "check/check.hpp"
#include "sim/types.hpp"

namespace uvmsim {

class DeviceMemory {
 public:
  explicit DeviceMemory(std::uint64_t capacity_bytes)
      : capacity_blocks_(capacity_bytes / kBasicBlockSize) {
    if (capacity_blocks_ == 0)
      throw std::invalid_argument("DeviceMemory: capacity below one basic block");
  }

  [[nodiscard]] std::uint64_t capacity_blocks() const noexcept { return capacity_blocks_; }
  [[nodiscard]] std::uint64_t used_blocks() const noexcept { return used_blocks_; }
  [[nodiscard]] std::uint64_t free_blocks() const noexcept {
    return capacity_blocks_ - used_blocks_;
  }
  [[nodiscard]] std::uint64_t capacity_pages() const noexcept {
    return capacity_blocks_ * kPagesPerBlock;
  }
  [[nodiscard]] std::uint64_t used_pages() const noexcept {
    return used_blocks_ * kPagesPerBlock;
  }
  [[nodiscard]] double occupancy() const noexcept {
    return static_cast<double>(used_blocks_) / static_cast<double>(capacity_blocks_);
  }

  /// Try to reserve `n` blocks; returns false without side effects when the
  /// free space is insufficient.
  [[nodiscard]] bool reserve(std::uint64_t n) noexcept {
    if (free_blocks() < n) return false;
    used_blocks_ += n;
    return true;
  }

  /// Release `n` previously reserved blocks.
  void release(std::uint64_t n) {
    UVM_CHECK(n <= used_blocks_, "DeviceMemory: releasing " << n
                  << " blocks with only " << used_blocks_ << '/'
                  << capacity_blocks_ << " reserved");
    used_blocks_ -= n;
  }

  /// True once the device has ever run out of free space (sticky). The
  /// adaptive policy keys its Equation-1 branch off this.
  [[nodiscard]] bool ever_full() const noexcept { return ever_full_; }
  void note_full() noexcept { ever_full_ = true; }

 private:
  std::uint64_t capacity_blocks_;
  std::uint64_t used_blocks_ = 0;
  bool ever_full_ = false;
};

}  // namespace uvmsim
