#include "mem/eviction_index.hpp"

#include "check/check.hpp"
#include "mem/access_counters.hpp"
#include "mem/block_table.hpp"

namespace uvmsim {

void EvictionIndex::attach(const BlockTable* table, const AccessCounterTable* counters) {
  UVM_CHECK(table != nullptr && counters != nullptr,
            "EvictionIndex: attach requires a block table and a counter table");
  UVM_CHECK(counters->unit_shift() <= kBasicBlockShift,
            "EvictionIndex: counter units larger than a basic block (shift="
                << counters->unit_shift() << ") are not supported");
  table_ = table;
  counters_ = counters;
  units_per_block_shift_ =
      static_cast<std::uint32_t>(kBasicBlockShift) - counters->unit_shift();

  const ChunkNum n = table->num_chunks();
  prev_.assign(n, kNilChunk);
  next_.assign(n, kNilChunk);
  in_list_.assign(n, 0);
  key_.assign(n, 0);
  freq_.assign(n, 0);
  head_ = tail_ = kNilChunk;
  size_ = 0;
  freq_stale_ = false;

  for (ChunkNum c = 0; c < n; ++c) {
    if (table->chunk(c).resident_blocks == 0) continue;
    key_[c] = table->chunk(c).last_access;
    insert_sorted(c);
    in_list_[c] = 1;
    ++size_;
    std::uint64_t total = 0;
    table->for_each_resident_block(c, [&](BlockNum b) { total += block_count_sum(b); });
    freq_[c] = total;
  }
}

std::uint64_t EvictionIndex::block_count_sum(BlockNum b) const {
  // Mirrors AccessCounterTable::range_count over the block's span, including
  // the clip at the table end (reference parity matters more than symmetry).
  const std::uint64_t first = b << units_per_block_shift_;
  const std::uint64_t last = first + (1ull << units_per_block_shift_);
  const std::uint64_t end = counters_->units() < last ? counters_->units() : last;
  std::uint64_t total = 0;
  for (std::uint64_t u = first; u < end; ++u) total += counters_->count_unit(u);
  return total;
}

void EvictionIndex::insert_sorted(ChunkNum c) {
  // Walk back from the tail past entries with a larger (last_access, chunk)
  // key. Touches carry monotone timestamps, so in the steady state this
  // walk only skips same-cycle ties with a larger chunk number.
  const Cycle la = key_[c];
  ChunkNum p = tail_;
  while (p != kNilChunk) {
    const Cycle pla = key_[p];
    if (pla < la || (pla == la && p < c)) break;
    p = prev_[p];
  }
  if (p == kNilChunk) {
    prev_[c] = kNilChunk;
    next_[c] = head_;
    if (head_ != kNilChunk) prev_[head_] = c;
    head_ = c;
    if (tail_ == kNilChunk) tail_ = c;
  } else {
    next_[c] = next_[p];
    prev_[c] = p;
    if (next_[p] != kNilChunk) prev_[next_[p]] = c;
    next_[p] = c;
    if (tail_ == p) tail_ = c;
  }
}

void EvictionIndex::unlink(ChunkNum c) {
  if (prev_[c] != kNilChunk) next_[prev_[c]] = next_[c];
  if (next_[c] != kNilChunk) prev_[next_[c]] = prev_[c];
  if (head_ == c) head_ = next_[c];
  if (tail_ == c) tail_ = prev_[c];
  prev_[c] = next_[c] = kNilChunk;
}

void EvictionIndex::on_resident(BlockNum b) {
  const ChunkNum c = chunk_of_block(b);
  if (!freq_stale_) freq_[c] += block_count_sum(b);
  if (in_list_[c] == 0) {
    // The chunk may have been touched while unlisted (on_touch early-outs
    // without maintaining key_), so refresh the key before inserting.
    key_[c] = table_->chunk(c).last_access;
    insert_sorted(c);
    in_list_[c] = 1;
    ++size_;
  }
}

void EvictionIndex::on_evicted(BlockNum b) {
  const ChunkNum c = chunk_of_block(b);
  if (!freq_stale_) {
    const std::uint64_t sum = block_count_sum(b);
    UVM_CHECK(freq_[c] >= sum, "EvictionIndex: chunk " << c << " aggregate "
                  << freq_[c] << " under-counts evicted block " << b
                  << " (sum=" << sum << ')');
    freq_[c] -= sum;
  }
  if (table_->chunk(c).resident_blocks == 0) {
    UVM_CHECK(in_list_[c] != 0, "EvictionIndex: chunk " << c
                  << " emptied while absent from the candidate list");
    unlink(c);
    in_list_[c] = 0;
    --size_;
    // An empty chunk aggregates to zero by definition; reset unconditionally
    // so a stale value cannot leak into the chunk's next residency episode.
    freq_[c] = 0;
  }
}

void EvictionIndex::rebuild_frequencies() const {
  for (ChunkNum c = head_; c != kNilChunk; c = next_[c]) {
    std::uint64_t total = 0;
    table_->for_each_resident_block(c, [&](BlockNum b) { total += block_count_sum(b); });
    freq_[c] = total;
  }
  freq_stale_ = false;
}

}  // namespace uvmsim
