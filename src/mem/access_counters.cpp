#include "mem/access_counters.hpp"

#include "check/check.hpp"
#include "mem/eviction_index.hpp"

namespace uvmsim {

AccessCounterTable::AccessCounterTable(std::uint64_t units, std::uint32_t unit_shift,
                                       std::uint32_t count_bits)
    : regs_(units, 0u),
      unit_shift_(unit_shift),
      count_bits_(count_bits),
      count_max_((1u << count_bits) - 1),
      trip_max_(count_bits >= 32 ? 0u : (1u << (32u - count_bits)) - 1) {
  UVM_CHECK(count_bits >= kMinCountBits && count_bits <= kMaxCountBits,
            "AccessCounterTable: count_bits " << count_bits << " outside ["
                << kMinCountBits << ", " << kMaxCountBits << ']');
}

void AccessCounterTable::reset_count(VirtAddr a) {
  const std::uint64_t u = unit_of(a);
  const std::uint32_t old_count = regs_[u] & count_max_;
  regs_[u] &= ~count_max_;
  notify_count(u, old_count, 0);
}

void AccessCounterTable::reset_range(VirtAddr addr, std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = unit_of(addr);
  const std::uint64_t last = unit_of(addr + bytes - 1);
  for (std::uint64_t u = first; u <= last && u < regs_.size(); ++u) {
    const std::uint32_t old_count = regs_[u] & count_max_;
    regs_[u] &= ~count_max_;
    notify_count(u, old_count, 0);
  }
}

void AccessCounterTable::record_round_trip(VirtAddr a) {
  const std::uint64_t u = unit_of(a);
  std::uint32_t trips = regs_[u] >> count_bits_;
  if (trips + 1 >= trip_max_) {
    halve_all();
    trips = regs_[u] >> count_bits_;
  }
  UVM_CHECK(trips + 1 < trip_max_, "AccessCounterTable: unit " << u
                << " round-trip field " << trips + 1
                << " not clamped below saturation");
  const std::uint32_t cnt = regs_[u] & count_max_;
  regs_[u] = ((trips + 1) << count_bits_) | cnt;
}

std::uint64_t AccessCounterTable::range_count(VirtAddr addr, std::uint64_t bytes) const noexcept {
  if (bytes == 0) return 0;
  const std::uint64_t first = unit_of(addr);
  const std::uint64_t last = unit_of(addr + bytes - 1);
  std::uint64_t total = 0;
  for (std::uint64_t u = first; u <= last && u < regs_.size(); ++u) {
    total += regs_[u] & count_max_;
  }
  return total;
}

void AccessCounterTable::halve_all() noexcept {
  for (std::uint32_t& r : regs_) {
    const std::uint32_t trips = (r >> count_bits_) >> 1;
    const std::uint32_t cnt = (r & count_max_) >> 1;
    r = (trips << count_bits_) | cnt;
  }
  ++halvings_;
  // A global rescale moves every register at once; the index rebuilds its
  // aggregates lazily instead of absorbing per-unit deltas.
  if (index_ != nullptr) index_->on_rescaled();
}

}  // namespace uvmsim
