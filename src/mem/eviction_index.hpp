// Incrementally-maintained eviction index (the hot-path replacement for the
// full chunk-table scan in EvictionManager::select_victims).
//
// Two structures, both updated in O(1)-amortized from the block-table and
// access-counter mutation hooks instead of being recomputed per fault:
//
// * An intrusive doubly-linked list over the chunks that currently hold at
//   least one device-resident block, kept sorted ascending by the LRU key
//   (last_access, chunk). Touches carry a monotone `now`, so a reposition is
//   an unlink plus a short walk back from the tail (past same-cycle ties
//   only); residency arrivals insert at their sorted position the same way.
//   The sort order makes LRU victim selection a bounded prefix walk, and the
//   protect-window "busy" region a suffix of the list.
// * Per-chunk running frequency aggregates: the sum of access-counter count
//   fields over the chunk's device-resident blocks — exactly
//   LfuEviction::chunk_frequency, maintained by counter increment deltas and
//   residency transitions instead of a per-candidate range_count sweep.
//   Global counter halvings rescale every register at once, so they mark the
//   aggregates stale; the next read rebuilds them in one pass (halvings are
//   saturation events, i.e. rare).
//
// The index attaches to exactly one (BlockTable, AccessCounterTable) pair.
// EvictionManager uses the fast path only when the structures it is queried
// with are the attached ones; anything else (hand-built test tables) falls
// back to the reference scan, which also remains the cross-validation oracle
// the InvariantAuditor checks this index against under --audit.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

class AccessCounterTable;
class BlockTable;

inline constexpr ChunkNum kNilChunk = ~ChunkNum{0};

class EvictionIndex {
 public:
  /// Bind to a table/counter pair and rebuild from their current state.
  /// The index must outlive neither structure; both get mutation hooks
  /// pointed at this object by EvictionManager::attach_index.
  void attach(const BlockTable* table, const AccessCounterTable* counters);

  [[nodiscard]] bool attached() const noexcept { return table_ != nullptr; }
  [[nodiscard]] bool attached_to(const BlockTable* table,
                                 const AccessCounterTable* counters) const noexcept {
    return table_ != nullptr && table_ == table && counters_ == counters;
  }

  // --- mutation hooks (called by BlockTable / AccessCounterTable) ---------

  /// A block access stamped chunk recency: reposition the chunk in the list.
  /// Inline — this runs once per GPU access, and after the dense key shadow
  /// it needs no block-table state at all: BlockTable::touch stamped
  /// chunk last_access = now before invoking the hook, so `now` IS the new
  /// key. The reposition (uncommon: re-touching the MRU chunk or a
  /// stay-in-place neighbour needs no move) stays out of line.
  void on_touch(BlockNum b, Cycle now) {
    const ChunkNum c = chunk_of_block(b);
    if (in_list_[c] == 0) return;  // no resident blocks: not a candidate
    key_[c] = now;
    const ChunkNum nx = next_[c];
    const ChunkNum pv = prev_[c];
    const bool next_ok =
        nx == kNilChunk || key_[nx] > now || (key_[nx] == now && nx > c);
    const bool prev_ok =
        pv == kNilChunk || key_[pv] < now || (key_[pv] == now && pv < c);
    if (next_ok && prev_ok) return;
    // Touches carry the current cycle, the maximal key, so a repositioned
    // chunk almost always lands at the tail; splice it there directly when
    // the tail's key sorts before (now, c) — the interleaved-warp steady
    // state, roughly half of all touches. The guard is false when c is the
    // tail itself (key_[c] == now already), so nx is a real chunk below.
    const ChunkNum t = tail_;
    if (key_[t] < now || (key_[t] == now && t < c)) {
      if (pv != kNilChunk)
        next_[pv] = nx;
      else
        head_ = nx;
      prev_[nx] = pv;  // nx != kNilChunk because c != tail
      prev_[c] = t;
      next_[c] = kNilChunk;
      next_[t] = c;
      tail_ = c;
      return;
    }
    unlink(c);
    insert_sorted(c);
  }
  /// A block turned device-resident: enter the list if first in its chunk,
  /// and absorb the block's current counter sum into the chunk aggregate.
  void on_resident(BlockNum b);
  /// A device-resident block was evicted: shed its counter sum, and leave
  /// the list when the chunk empties.
  void on_evicted(BlockNum b);
  /// One counter unit's count field changed (increment or reset).
  /// Per-access like on_touch; defined inline at the bottom of
  /// block_table.hpp (it reads block residency, and this header cannot
  /// include block_table.hpp — block_table.hpp includes us).
  void on_unit_count(std::uint64_t unit, std::uint32_t old_count,
                     std::uint32_t new_count);
  /// Every counter register was rescaled (global halving): the running
  /// aggregates are stale until the next rebuild.
  void on_rescaled() noexcept { freq_stale_ = true; }

  // --- queries (EvictionManager fast path, InvariantAuditor) --------------

  [[nodiscard]] ChunkNum head() const noexcept { return head_; }
  [[nodiscard]] ChunkNum tail() const noexcept { return tail_; }
  [[nodiscard]] ChunkNum next_of(ChunkNum c) const { return next_[c]; }
  [[nodiscard]] ChunkNum prev_of(ChunkNum c) const { return prev_[c]; }
  [[nodiscard]] bool in_list(ChunkNum c) const { return in_list_[c] != 0; }
  /// Chunks currently holding >= 1 resident block (list length).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// Running LFU aggregate for a listed chunk; rebuilds first when a global
  /// halving left the aggregates stale (hence not const-free).
  [[nodiscard]] std::uint64_t frequency(ChunkNum c) const {
    if (freq_stale_) rebuild_frequencies();
    return freq_[c];
  }
  /// True while a global halving has invalidated the aggregates (exposed so
  /// the auditor can distinguish "stale by design" from drift).
  [[nodiscard]] bool frequencies_stale() const noexcept { return freq_stale_; }

 private:
  [[nodiscard]] std::uint64_t block_count_sum(BlockNum b) const;
  void insert_sorted(ChunkNum c);
  void unlink(ChunkNum c);
  void rebuild_frequencies() const;

  const BlockTable* table_ = nullptr;
  const AccessCounterTable* counters_ = nullptr;
  std::uint32_t units_per_block_shift_ = 0;  ///< log2(units per 64 KB block)

  std::vector<ChunkNum> prev_;
  std::vector<ChunkNum> next_;
  std::vector<std::uint8_t> in_list_;
  /// Dense shadow of chunk(c).last_access for listed chunks: the reposition
  /// comparisons in on_touch/insert_sorted run per access, and a flat Cycle
  /// array avoids striding through the wider ChunkResidency records.
  std::vector<Cycle> key_;
  ChunkNum head_ = kNilChunk;
  ChunkNum tail_ = kNilChunk;
  std::uint64_t size_ = 0;

  // Aggregates are logically part of the index's derived state; a stale
  // rebuild from a const query must not change observable ordering, so the
  // lazily-refreshed storage is mutable.
  mutable std::vector<std::uint64_t> freq_;
  mutable bool freq_stale_ = false;
};

}  // namespace uvmsim
