// Unified virtual address space: managed allocations and their logical
// decomposition into 2 MB chunks and 64 KB basic blocks, exactly as the CUDA
// runtime does it (paper §II-B): the user size is split into full 2 MB
// chunks plus one trailing chunk rounded up to the next power-of-two
// multiple of 64 KB. Each chunk later backs one full binary prefetch tree.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

/// One logical chunk of an allocation (the prefetch-tree domain).
struct ChunkInfo {
  ChunkNum chunk = 0;         ///< global chunk number (base VA >> 21)
  std::uint32_t num_blocks = 0;  ///< leaves in this chunk's tree (power of two, <= 32)
};

/// Programmer-provided placement hints (cudaMemAdvise-style, paper §III-C).
/// The paper's framework exists to make these unnecessary; they are modelled
/// so the oracle-hints experiment can compare hand tuning against the
/// programmer-agnostic adaptive scheme.
enum class MemAdvice : std::uint8_t {
  kNone,           ///< driver policy decides (default)
  kAccessedBy,     ///< direct mapping: always accessed zero-copy, never migrated
  kPreferredHost,  ///< soft host pin: Volta delayed migration regardless of policy
};

/// A cudaMallocManaged-style allocation.
struct Allocation {
  AllocId id = kInvalidAlloc;
  std::string name;
  VirtAddr base = 0;             ///< 2 MB aligned
  std::uint64_t user_size = 0;   ///< bytes requested
  std::uint64_t padded_size = 0; ///< bytes after chunk rounding
  MemAdvice advice = MemAdvice::kNone;
  std::vector<ChunkInfo> chunks;

  [[nodiscard]] VirtAddr end() const noexcept { return base + padded_size; }
  [[nodiscard]] bool contains(VirtAddr a) const noexcept {
    return a >= base && a < end();
  }
};

/// Rounds a trailing partial-chunk size up to the next power-of-two multiple
/// of 64 KB (e.g. 168 KB -> 256 KB), capped at 2 MB.
[[nodiscard]] std::uint64_t round_partial_chunk(std::uint64_t bytes) noexcept;

class AddressSpace {
 public:
  /// Create a managed allocation; returns its id. Must be called during
  /// workload build, before the simulation starts.
  AllocId allocate(std::string name, std::uint64_t bytes);

  [[nodiscard]] const Allocation& alloc(AllocId id) const { return allocs_.at(id); }
  [[nodiscard]] const std::vector<Allocation>& allocations() const noexcept { return allocs_; }
  [[nodiscard]] std::size_t num_allocations() const noexcept { return allocs_.size(); }

  /// Sum of padded sizes — the managed working-set footprint.
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept { return footprint_; }

  /// One past the highest mapped VA (allocation bases are packed from 0).
  [[nodiscard]] VirtAddr span_end() const noexcept { return next_base_; }
  [[nodiscard]] BlockNum total_blocks() const noexcept { return block_of(next_base_); }

  /// Allocation owning `a`, if any.
  [[nodiscard]] std::optional<AllocId> find(VirtAddr a) const noexcept;
  /// Allocation owning basic block `b`, if any.
  [[nodiscard]] std::optional<AllocId> find_block(BlockNum b) const noexcept {
    return find(addr_of_block(b));
  }

  /// Number of 64 KB blocks in the chunk containing `b` (0 if unmapped).
  [[nodiscard]] std::uint32_t chunk_num_blocks(ChunkNum c) const noexcept;

  /// True when block `b` belongs to some allocation.
  [[nodiscard]] bool block_mapped(BlockNum b) const noexcept {
    return find(addr_of_block(b)).has_value();
  }

  /// Attach a placement hint to an allocation (by id or by name).
  void advise(AllocId id, MemAdvice advice) { allocs_.at(id).advice = advice; }
  /// Returns false when no allocation has that name.
  bool advise(const std::string& name, MemAdvice advice);

 private:
  std::vector<Allocation> allocs_;
  std::vector<std::uint32_t> chunk_blocks_;  ///< per global chunk number
  VirtAddr next_base_ = 0;
  std::uint64_t footprint_ = 0;
};

}  // namespace uvmsim
