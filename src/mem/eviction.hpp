// Large-page (2 MB) eviction policies (paper §II-C and §IV "Access Counter
// Based Page Replacement").
//
// * LruEviction — NVIDIA default: order large pages by last migration/access
//   timestamp; oldest goes first. A large page is preferred as a victim only
//   when fully populated (so the prefetch-tree semantics survive eviction);
//   partially populated pages are a fallback to guarantee progress.
// * LfuEviction — this paper: order by aggregate access-counter frequency so
//   cold pages are evicted before hot ones; read-only pages are prioritized
//   (written pages are the expensive ones to lose); ties fall back to LRU
//   order, which makes the policy degrade to LRU under the uniform access
//   frequencies of regular applications.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/access_counters.hpp"
#include "mem/block_table.hpp"
#include "mem/eviction_index.hpp"
#include "sim/config.hpp"
#include "sim/types.hpp"

namespace uvmsim {

struct VictimQuery {
  ChunkNum faulting_chunk = 0;   ///< chunk being filled; never evicted
  bool has_faulting_chunk = false;
  /// Approximation of the NVIDIA rule that a large page is evictable only
  /// when "not currently addressed by scheduled warps": chunks accessed
  /// within the last `protect_window` cycles are excluded, unless nothing
  /// else is evictable.
  Cycle now = 0;
  Cycle protect_window = 0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Pick the victim chunk among `candidates` (all have >= 1 resident block,
  /// faulting chunk already excluded). `fully_resident` tells the policy
  /// whether each candidate is completely populated.
  [[nodiscard]] virtual ChunkNum pick(const std::vector<ChunkNum>& candidates,
                                      const BlockTable& table,
                                      const AccessCounterTable& counters) const = 0;
};

class LruEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LRU"; }
  [[nodiscard]] ChunkNum pick(const std::vector<ChunkNum>& candidates,
                              const BlockTable& table,
                              const AccessCounterTable& counters) const override;
};

class LfuEviction final : public EvictionPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LFU"; }
  [[nodiscard]] ChunkNum pick(const std::vector<ChunkNum>& candidates,
                              const BlockTable& table,
                              const AccessCounterTable& counters) const override;

  /// Aggregate frequency key used for ordering (exposed for tests).
  [[nodiscard]] static std::uint64_t chunk_frequency(ChunkNum c, const BlockTable& table,
                                                     const AccessCounterTable& counters);
};

/// Tree-based page replacement (Ganguly et al. ISCA'19, discussed in this
/// paper's related work): the victim chunk is chosen by LRU, but instead of
/// displacing the entire 2 MB page, the eviction unit is the largest
/// fully-resident prefetch-tree subtree containing the chunk's least
/// recently used block — mirroring the granularity the tree prefetcher
/// migrates at, and avoiding the full-page collateral damage of 2 MB LRU.
/// Exposed as a pure function for testing.
[[nodiscard]] std::vector<BlockNum> tree_eviction_subtree(ChunkNum c, const BlockTable& table);

/// Allocation-free variant: appends the subtree blocks to `out` (which is
/// not cleared). Used by the eviction hot path.
void tree_eviction_subtree_into(ChunkNum c, const BlockTable& table,
                                std::vector<BlockNum>& out);

[[nodiscard]] std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionKind kind);

/// Selects eviction victims for the driver. Prefers fully-populated chunks
/// per the NVIDIA semantics, falling back to partially-resident chunks (and
/// then to protect-window-busy ones) to guarantee progress.
///
/// Two implementations with identical victim sequences:
/// * the reference scan (`select_victims_reference`) — O(chunks) per call
///   plus a per-candidate counter sweep under LFU; always available, and the
///   oracle `InvariantAuditor` cross-validates against under --audit;
/// * the fast path over the incremental `EvictionIndex` — used automatically
///   once `attach_index` has wired the index to the queried table/counter
///   pair. LRU/tree picks walk a bounded prefix of the recency list;
///   LFU walks the resident chunks once with O(1) frequency lookups.
class EvictionManager {
 public:
  /// `splinter_on_evict` only matters once chunks can be coalesced
  /// (mem.coalescing, docs/GRANULARITY.md): false evicts a coalesced victim
  /// chunk atomically as one 2 MB unit regardless of the configured
  /// granularity; true lets the caller splinter it and evict at the normal
  /// granularity. With no coalesced chunks both settings are inert, so the
  /// default keeps every existing call site bit-identical.
  EvictionManager(EvictionKind kind, std::uint64_t granularity_bytes,
                  bool splinter_on_evict = false);

  [[nodiscard]] EvictionKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t granularity() const noexcept { return granularity_; }
  [[nodiscard]] bool splinter_on_evict() const noexcept { return splinter_on_evict_; }

  /// Wire the incremental index to `table`/`counters` mutation hooks and
  /// rebuild it from their current state. The manager (and thus the index)
  /// must stay at a stable address while attached.
  void attach_index(BlockTable& table, AccessCounterTable& counters);

  [[nodiscard]] const EvictionIndex& index() const noexcept { return index_; }

  /// Victim blocks to evict to make progress, or empty when nothing is
  /// evictable. With 2 MB granularity this is every resident block of the
  /// victim chunk; with 64 KB granularity it is the coldest single block of
  /// the victim chunk.
  [[nodiscard]] std::vector<BlockNum> select_victims(const BlockTable& table,
                                                     const AccessCounterTable& counters,
                                                     const VictimQuery& q) const;

  /// Allocation-free variant for the fault hot path: clears and fills `out`.
  void select_victims_into(const BlockTable& table, const AccessCounterTable& counters,
                           const VictimQuery& q, std::vector<BlockNum>& out) const;

  /// The original full-scan implementation, kept as the cross-validation
  /// oracle for the incremental index (see InvariantAuditor).
  [[nodiscard]] std::vector<BlockNum> select_victims_reference(
      const BlockTable& table, const AccessCounterTable& counters,
      const VictimQuery& q) const;

  [[nodiscard]] const EvictionPolicy& policy() const noexcept { return *policy_; }

 private:
  /// Fast victim-chunk pick over the index; kNilChunk when nothing is
  /// evictable. Requires `index_.attached_to(&table, &counters)`.
  [[nodiscard]] ChunkNum pick_fast(const BlockTable& table,
                                   const AccessCounterTable& counters,
                                   const VictimQuery& q) const;
  /// Expand a victim chunk into the blocks to evict (tree subtree, whole
  /// chunk, or coldest block, depending on kind/granularity).
  void emit_victims(ChunkNum victim, const BlockTable& table,
                    const AccessCounterTable& counters, std::vector<BlockNum>& out) const;

  std::unique_ptr<EvictionPolicy> policy_;
  EvictionIndex index_;
  EvictionKind kind_;
  std::uint64_t granularity_;
  bool splinter_on_evict_;
};

}  // namespace uvmsim
