// Per-basic-block (64 KB) migration state plus per-chunk (2 MB) residency
// aggregates. This is the driver-side page table abstraction: the unit of
// migration is the basic block; the unit of eviction is the large page.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/types.hpp"

namespace uvmsim {

class EvictionIndex;

struct BlockState {
  Residence residence = Residence::kHost;
  bool dirty = false;         ///< written while device-resident (needs writeback)
  bool dirty_on_arrival = false;  ///< a write is waiting on the in-flight migration
  bool written_ever = false;  ///< block has ever been written by the GPU
  bool thrashed_once = false; ///< has been re-migrated after an eviction
  std::uint32_t round_trips = 0;  ///< number of evictions suffered (r)
  Cycle last_access = 0;
};

struct ChunkResidency {
  std::uint32_t resident_blocks = 0;
  Cycle last_access = 0;       ///< LRU key: most recent access to any block
  Cycle migrated_at = 0;       ///< when the chunk first became (partly) resident
  bool written_ever = false;   ///< any block in chunk ever written
};

class BlockTable {
 public:
  explicit BlockTable(const AddressSpace& space);

  [[nodiscard]] const BlockState& block(BlockNum b) const { return blocks_[b]; }
  [[nodiscard]] BlockState& block(BlockNum b) { return blocks_[b]; }
  [[nodiscard]] const ChunkResidency& chunk(ChunkNum c) const { return chunks_[c]; }
  [[nodiscard]] ChunkResidency& chunk(ChunkNum c) { return chunks_[c]; }

  [[nodiscard]] BlockNum num_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] ChunkNum num_chunks() const noexcept { return chunks_.size(); }

  /// Record a GPU access to a resident or host block (recency bookkeeping).
  void touch(BlockNum b, AccessType type, Cycle now);

  /// Transition `b` host -> in-flight (migration enqueued).
  void mark_in_flight(BlockNum b);
  /// Transition `b` in-flight -> device (migration arrived).
  void mark_resident(BlockNum b, Cycle now);
  /// Transition `b` device -> host (evicted); returns true if it was dirty.
  bool mark_evicted(BlockNum b);

  /// Blocks of chunk `c` currently device-resident.
  [[nodiscard]] std::vector<BlockNum> resident_blocks_of(ChunkNum c) const;

  /// Visit the device-resident blocks of chunk `c` in ascending block order
  /// without materializing a vector (the eviction/audit hot path).
  template <typename Fn>
  void for_each_resident_block(ChunkNum c, Fn&& fn) const {
    const BlockNum first = first_block_of_chunk(c);
    const BlockNum last = first + space_.chunk_num_blocks(c);
    std::uint32_t remaining = chunks_[c].resident_blocks;
    for (BlockNum b = first; remaining != 0 && b < last; ++b) {
      if (blocks_[b].residence == Residence::kDevice) {
        --remaining;
        fn(b);
      }
    }
  }

  /// True when every mapped block of chunk `c` is resident.
  [[nodiscard]] bool chunk_fully_resident(ChunkNum c) const;

  [[nodiscard]] const AddressSpace& space() const noexcept { return space_; }

  /// Wire the incremental eviction index that mirrors this table's residency
  /// and recency transitions (nullptr detaches). Owned by EvictionManager.
  void set_eviction_index(EvictionIndex* index) noexcept { index_ = index; }

 private:
  const AddressSpace& space_;
  std::vector<BlockState> blocks_;
  std::vector<ChunkResidency> chunks_;
  EvictionIndex* index_ = nullptr;
};

}  // namespace uvmsim
