// Per-basic-block (64 KB) migration state plus per-chunk (2 MB) residency
// aggregates. This is the driver-side page table abstraction: the unit of
// migration is the basic block; the unit of eviction is the large page.
//
// Hot-path layout (see docs/PERF.md): block state is stored SoA — residence
// and the four status flags packed into one byte per block, with last-access
// cycles and round-trip counts in parallel arrays — so the access/eviction
// paths that scan residence or recency touch one dense byte/word array
// instead of striding over ~24-byte AoS records. `block()` materializes a
// BlockState snapshot for cold paths (audits, tests, diagnostics); hot code
// uses the per-field accessors.
#pragma once

#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "mem/address_space.hpp"
#include "mem/eviction_index.hpp"
#include "sim/types.hpp"

namespace uvmsim {

/// A by-value snapshot of one block's state (see BlockTable::block).
struct BlockState {
  Residence residence = Residence::kHost;
  bool dirty = false;         ///< written while device-resident (needs writeback)
  bool dirty_on_arrival = false;  ///< a write is waiting on the in-flight migration
  bool written_ever = false;  ///< block has ever been written by the GPU
  bool thrashed_once = false; ///< has been re-migrated after an eviction
  std::uint32_t round_trips = 0;  ///< number of evictions suffered (r)
  Cycle last_access = 0;
};

struct ChunkResidency {
  std::uint32_t resident_blocks = 0;
  Cycle last_access = 0;       ///< LRU key: most recent access to any block
  Cycle migrated_at = 0;       ///< when the chunk first became (partly) resident
  bool written_ever = false;   ///< any block in chunk ever written
};

class BlockTable {
 public:
  explicit BlockTable(const AddressSpace& space);

  /// Snapshot of block `b`. Returns by value (the underlying storage is SoA);
  /// existing `const BlockState&` bindings keep working via lifetime
  /// extension. Hot paths should prefer the single-field accessors below.
  [[nodiscard]] BlockState block(BlockNum b) const noexcept {
    const std::uint8_t st = state_[b];
    BlockState s;
    s.residence = static_cast<Residence>(st & kResidenceMask);
    s.dirty = (st & kDirtyBit) != 0;
    s.dirty_on_arrival = (st & kDirtyOnArrivalBit) != 0;
    s.written_ever = (st & kWrittenEverBit) != 0;
    s.thrashed_once = (st & kThrashedOnceBit) != 0;
    s.round_trips = round_trips_[b];
    s.last_access = last_access_[b];
    return s;
  }

  [[nodiscard]] Residence residence(BlockNum b) const noexcept {
    return static_cast<Residence>(state_[b] & kResidenceMask);
  }
  [[nodiscard]] bool dirty(BlockNum b) const noexcept {
    return (state_[b] & kDirtyBit) != 0;
  }
  [[nodiscard]] std::uint32_t round_trips(BlockNum b) const noexcept {
    return round_trips_[b];
  }
  [[nodiscard]] Cycle block_last_access(BlockNum b) const noexcept {
    return last_access_[b];
  }

  [[nodiscard]] const ChunkResidency& chunk(ChunkNum c) const { return chunks_[c]; }
  [[nodiscard]] ChunkResidency& chunk(ChunkNum c) { return chunks_[c]; }

  [[nodiscard]] BlockNum num_blocks() const noexcept { return last_access_.size(); }
  [[nodiscard]] ChunkNum num_chunks() const noexcept { return chunks_.size(); }
  /// Mapped blocks of chunk `c` (cached from the address space: this is on
  /// the full-residency fast path, tens of millions of calls per run).
  [[nodiscard]] std::uint32_t chunk_num_blocks(ChunkNum c) const noexcept {
    return chunk_nblocks_[c];
  }

  /// Record a GPU access to a resident or host block (recency bookkeeping).
  /// Inline: this is one of the handful of calls on the per-access fast path
  /// (docs/PERF.md), and the common read case is two stores plus the index
  /// reposition check. The chunk stamp happens before the index hook, so the
  /// hook's `now` is the chunk's new LRU key.
  void touch(BlockNum b, AccessType type, Cycle now) {
    last_access_[b] = now;
    ChunkResidency& c = chunks_[chunk_of_block(b)];
    c.last_access = now;
    if (type == AccessType::kWrite) {
      const std::uint8_t st = state_[b];
      const auto res = static_cast<Residence>(st & kResidenceMask);
      std::uint8_t next = st | kWrittenEverBit;
      if (res == Residence::kDevice) {
        next |= kDirtyBit;
      } else if (res == Residence::kInFlight) {
        // The write replays once the migration lands; the block arrives dirty.
        next |= kDirtyOnArrivalBit;
      }
      state_[b] = next;
      c.written_ever = true;
    }
    if (index_ != nullptr) index_->on_touch(b, now);
  }

  /// Latch dirty-on-arrival for an in-flight block whose triggering access
  /// was a write (the driver learns the access type after raising the fault).
  void set_dirty_on_arrival(BlockNum b) noexcept { state_[b] |= kDirtyOnArrivalBit; }

  /// Record that re-migrated block `b` has thrashed; returns true the first
  /// time (the distinct-pages counter increments exactly once per block).
  bool note_thrashed_once(BlockNum b) noexcept {
    const bool first = (state_[b] & kThrashedOnceBit) == 0;
    state_[b] |= kThrashedOnceBit;
    return first;
  }

  /// Transition `b` host -> in-flight (migration enqueued).
  void mark_in_flight(BlockNum b);
  /// Transition `b` in-flight -> device (migration arrived).
  void mark_resident(BlockNum b, Cycle now);
  /// Transition `b` device -> host (evicted); returns true if it was dirty.
  bool mark_evicted(BlockNum b);

  /// Blocks of chunk `c` currently device-resident.
  [[deprecated("materializes a vector per call; use for_each_resident_block")]]
  [[nodiscard]] std::vector<BlockNum> resident_blocks_of(ChunkNum c) const;

  /// Visit the device-resident blocks of chunk `c` in ascending block order
  /// without materializing a vector (the eviction/audit hot path).
  template <typename Fn>
  void for_each_resident_block(ChunkNum c, Fn&& fn) const {
    const BlockNum first = first_block_of_chunk(c);
    const BlockNum last = first + chunk_nblocks_[c];
    std::uint32_t remaining = chunks_[c].resident_blocks;
    for (BlockNum b = first; remaining != 0 && b < last; ++b) {
      if ((state_[b] & kResidenceMask) == static_cast<std::uint8_t>(Residence::kDevice)) {
        --remaining;
        fn(b);
      }
    }
  }

  /// True when every mapped block of chunk `c` is resident. Zero-mapped
  /// chunks are never "fully resident" — there is nothing to map.
  [[nodiscard]] bool chunk_fully_resident(ChunkNum c) const noexcept {
    const std::uint32_t n = chunk_nblocks_[c];
    return n != 0 && chunks_[c].resident_blocks == n;
  }

  /// Mapping granularity of chunk `c` (docs/GRANULARITY.md). Split is the
  /// paper's fixed per-block state; coalesced models one 2 MB mapping.
  [[nodiscard]] MappingGranularity granularity(ChunkNum c) const noexcept {
    return coalesced_[c] != 0 ? MappingGranularity::kCoalesced
                              : MappingGranularity::kSplit;
  }
  [[nodiscard]] bool chunk_coalesced(ChunkNum c) const noexcept {
    return coalesced_[c] != 0;
  }
  /// Chunks currently coalesced; O(1), maintained on every transition (the
  /// policy feature snapshot reads this per consultation).
  [[nodiscard]] std::uint64_t coalesced_chunks() const noexcept { return num_coalesced_; }

  /// Promote chunk `c` to a coalesced 2 MB mapping if the gates hold: fully
  /// resident and never written (the read-mostly heuristic — a written-ever
  /// chunk would splinter on its very next write anyway). Returns true on
  /// the split -> coalesced transition, false when any gate fails or the
  /// chunk is already coalesced. Pure state change: counters and TraceSink
  /// hooks are the caller's (driver's) job.
  bool try_coalesce(ChunkNum c);
  /// Demote chunk `c` back to per-block mappings. The chunk must be
  /// coalesced; the caller decides why (write sharing, partial eviction,
  /// atomic whole-chunk eviction) and accounts for it.
  void splinter(ChunkNum c);

  [[nodiscard]] const AddressSpace& space() const noexcept { return space_; }

  /// Wire the incremental eviction index that mirrors this table's residency
  /// and recency transitions (nullptr detaches). Owned by EvictionManager.
  void set_eviction_index(EvictionIndex* index) noexcept { index_ = index; }

  /// Fault injection for the auditor's negative tests: overwrite raw block
  /// state, bypassing transition checks, chunk aggregates and the eviction
  /// index. Never called by the simulator proper.
  void testonly_corrupt_residence(BlockNum b, Residence r) noexcept {
    state_[b] = static_cast<std::uint8_t>(
        (state_[b] & ~kResidenceMask) | static_cast<std::uint8_t>(r));
  }
  void testonly_corrupt_dirty(BlockNum b, bool dirty) noexcept {
    if (dirty)
      state_[b] |= kDirtyBit;
    else
      state_[b] &= static_cast<std::uint8_t>(~kDirtyBit);
  }

 private:
  // Packed per-block state byte: residence enum in the low bits, flags above.
  static constexpr std::uint8_t kResidenceMask = 0x03;
  static constexpr std::uint8_t kDirtyBit = 0x04;
  static constexpr std::uint8_t kDirtyOnArrivalBit = 0x08;
  static constexpr std::uint8_t kWrittenEverBit = 0x10;
  static constexpr std::uint8_t kThrashedOnceBit = 0x20;
  static_assert(static_cast<std::uint8_t>(Residence::kHost) <= kResidenceMask &&
                    static_cast<std::uint8_t>(Residence::kInFlight) <= kResidenceMask &&
                    static_cast<std::uint8_t>(Residence::kDevice) <= kResidenceMask,
                "Residence must fit the packed state byte");

  const AddressSpace& space_;
  std::vector<std::uint8_t> state_;        ///< packed residence + flags
  std::vector<Cycle> last_access_;         ///< recency, parallel to state_
  std::vector<std::uint32_t> round_trips_; ///< eviction count, parallel to state_
  std::vector<std::uint32_t> chunk_nblocks_;  ///< cached space_.chunk_num_blocks
  std::vector<ChunkResidency> chunks_;
  std::vector<std::uint8_t> coalesced_;  ///< 1 = chunk holds a 2 MB mapping
  std::uint64_t num_coalesced_ = 0;      ///< invariant: popcount of coalesced_
  EvictionIndex* index_ = nullptr;
};

/// Per-access counter-delta hook (declared in eviction_index.hpp). Defined
/// here because it reads block residency: eviction_index.hpp cannot include
/// this header (this header includes it), so the inline definition lives
/// below the class it depends on. Every caller reaches it through
/// AccessCounterTable, whose header includes this one.
inline void EvictionIndex::on_unit_count(std::uint64_t unit, std::uint32_t old_count,
                                         std::uint32_t new_count) {
  if (freq_stale_) return;  // the next rebuild reads the registers directly
  const BlockNum b = unit >> units_per_block_shift_;
  if (b >= table_->num_blocks()) return;
  if (table_->residence(b) != Residence::kDevice) return;
  const ChunkNum c = chunk_of_block(b);
  UVM_CHECK(freq_[c] >= old_count, "EvictionIndex: chunk " << c << " aggregate "
                << freq_[c] << " below unit " << unit << " old count " << old_count);
  freq_[c] = freq_[c] - old_count + new_count;
}

}  // namespace uvmsim
