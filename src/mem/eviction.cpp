#include "mem/eviction.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "check/check.hpp"

namespace uvmsim {

ChunkNum LruEviction::pick(const std::vector<ChunkNum>& candidates, const BlockTable& table,
                           const AccessCounterTable& /*counters*/) const {
  ChunkNum best = candidates.front();
  Cycle best_ts = std::numeric_limits<Cycle>::max();
  for (ChunkNum c : candidates) {
    const Cycle ts = table.chunk(c).last_access;
    if (ts < best_ts) {
      best_ts = ts;
      best = c;
    }
  }
  return best;
}

std::uint64_t LfuEviction::chunk_frequency(ChunkNum c, const BlockTable& table,
                                           const AccessCounterTable& counters) {
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.chunk_num_blocks(c);
  std::uint64_t total = 0;
  for (BlockNum b = first; b < first + n; ++b) {
    if (table.residence(b) == Residence::kDevice) {
      total += counters.range_count(addr_of_block(b), kBasicBlockSize);
    }
  }
  return total;
}

ChunkNum LfuEviction::pick(const std::vector<ChunkNum>& candidates, const BlockTable& table,
                           const AccessCounterTable& counters) const {
  // Order: lowest frequency first; read-only (never written) before written;
  // then least recently used. The recency tie-break is what makes the policy
  // collapse to LRU when frequencies are uniform (regular applications).
  using Key = std::tuple<std::uint64_t, bool, Cycle>;
  ChunkNum best = candidates.front();
  Key best_key{std::numeric_limits<std::uint64_t>::max(), true,
               std::numeric_limits<Cycle>::max()};
  for (ChunkNum c : candidates) {
    const ChunkResidency& cr = table.chunk(c);
    Key key{chunk_frequency(c, table, counters), cr.written_ever, cr.last_access};
    if (key < best_key) {
      best_key = key;
      best = c;
    }
  }
  return best;
}

void tree_eviction_subtree_into(ChunkNum c, const BlockTable& table,
                                std::vector<BlockNum>& out) {
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.chunk_num_blocks(c);
  if (n == 0) return;

  // LRU block among the chunk's resident blocks.
  BlockNum lru = first;
  Cycle lru_ts = std::numeric_limits<Cycle>::max();
  bool found = false;
  for (BlockNum b = first; b < first + n; ++b) {
    if (table.residence(b) == Residence::kDevice && table.block_last_access(b) < lru_ts) {
      lru_ts = table.block_last_access(b);
      lru = b;
      found = true;
    }
  }
  if (!found) return;

  // Grow the subtree around the LRU leaf while it stays fully resident.
  const auto leaf = static_cast<std::uint32_t>(lru - first);
  std::uint32_t best_lo = leaf, best_size = 1;
  for (std::uint32_t size = 2; size <= n; size <<= 1) {
    const std::uint32_t lo = leaf / size * size;
    bool full = true;
    for (std::uint32_t i = lo; i < lo + size && full; ++i) {
      full = i < n && table.residence(first + i) == Residence::kDevice;
    }
    if (!full) break;
    best_lo = lo;
    best_size = size;
  }

  out.reserve(out.size() + best_size);
  for (std::uint32_t i = best_lo; i < best_lo + best_size; ++i) out.push_back(first + i);
}

std::vector<BlockNum> tree_eviction_subtree(ChunkNum c, const BlockTable& table) {
  std::vector<BlockNum> out;
  tree_eviction_subtree_into(c, table, out);
  return out;
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru:
    case EvictionKind::kTree:  // tree mode reuses LRU chunk selection
      return std::make_unique<LruEviction>();
    case EvictionKind::kLfu:
      return std::make_unique<LfuEviction>();
  }
  return nullptr;
}

EvictionManager::EvictionManager(EvictionKind kind, std::uint64_t granularity_bytes,
                                 bool splinter_on_evict)
    : policy_(make_eviction_policy(kind)),
      kind_(kind),
      granularity_(granularity_bytes),
      splinter_on_evict_(splinter_on_evict) {}

void EvictionManager::attach_index(BlockTable& table, AccessCounterTable& counters) {
  index_.attach(&table, &counters);
  table.set_eviction_index(&index_);
  counters.set_eviction_index(&index_);
}

std::vector<BlockNum> EvictionManager::select_victims_reference(
    const BlockTable& table, const AccessCounterTable& counters,
    const VictimQuery& q) const {
  // Gather candidate chunks: resident blocks present, not the faulting
  // chunk, and (preferably) not under active access by scheduled warps.
  const Cycle cutoff =
      q.now > q.protect_window ? q.now - q.protect_window : 0;
  std::vector<ChunkNum> full, partial, busy_full, busy_partial;
  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    if (q.has_faulting_chunk && c == q.faulting_chunk) continue;
    const ChunkResidency& cr = table.chunk(c);
    if (cr.resident_blocks == 0) continue;
    const bool busy = q.protect_window != 0 && cr.last_access >= cutoff;
    const bool fully = table.chunk_fully_resident(c);
    (fully ? (busy ? busy_full : full) : (busy ? busy_partial : partial)).push_back(c);
  }

  const std::vector<ChunkNum>& pool = !full.empty()      ? full
                                      : !partial.empty() ? partial
                                      : !busy_full.empty() ? busy_full
                                                           : busy_partial;
  if (pool.empty()) return {};
  const ChunkNum victim = policy_->pick(pool, table, counters);
  UVM_CHECK(table.chunk(victim).resident_blocks > 0,
            "EvictionManager: policy " << policy_->name() << " picked chunk "
                << victim << " with no resident blocks");
  UVM_CHECK(!q.has_faulting_chunk || victim != q.faulting_chunk,
            "EvictionManager: policy " << policy_->name()
                << " picked the faulting chunk " << victim);

  std::vector<BlockNum> out;
  emit_victims(victim, table, counters, out);
  return out;
}

ChunkNum EvictionManager::pick_fast(const BlockTable& table,
                                    const AccessCounterTable& /*counters*/,
                                    const VictimQuery& q) const {
  const Cycle cutoff = q.now > q.protect_window ? q.now - q.protect_window : 0;
  const bool protect = q.protect_window != 0;

  if (kind_ != EvictionKind::kLfu) {
    // LRU (and tree, which reuses the LRU chunk pick): the list order IS the
    // LRU key order, so the first list entry of the highest-priority class
    // wins. Busy chunks (last_access >= cutoff) form a suffix of the sorted
    // list, which lets the walk stop as soon as a class is decided.
    ChunkNum first_partial = kNilChunk;
    ChunkNum first_busy_partial = kNilChunk;
    for (ChunkNum c = index_.head(); c != kNilChunk; c = index_.next_of(c)) {
      if (q.has_faulting_chunk && c == q.faulting_chunk) continue;
      const bool busy = protect && table.chunk(c).last_access >= cutoff;
      if (!busy) {
        if (table.chunk_fully_resident(c)) return c;  // minimal full non-busy
        if (first_partial == kNilChunk) first_partial = c;
      } else {
        // Entering the busy suffix finalizes the non-busy classes.
        if (first_partial != kNilChunk) return first_partial;
        if (table.chunk_fully_resident(c)) return c;  // minimal busy full
        if (first_busy_partial == kNilChunk) first_busy_partial = c;
      }
    }
    return first_partial != kNilChunk ? first_partial : first_busy_partial;
  }

  // LFU: one linear sweep over the chunk array with O(1) aggregate lookups,
  // tracking the best key per candidate class. This replays the reference
  // scan's ascending-chunk iteration and strict-< key compare verbatim (so
  // ties resolve to the lowest chunk exactly like the reference), but the
  // per-candidate range_count sweep collapses to the running frequency, and
  // the sequential membership/residency reads are prefetcher-friendly —
  // unlike a pointer-chase through the recency list.
  using Key = std::tuple<std::uint64_t, bool, Cycle>;
  constexpr Key kMaxKey{std::numeric_limits<std::uint64_t>::max(), true,
                        std::numeric_limits<Cycle>::max()};
  ChunkNum best[4] = {kNilChunk, kNilChunk, kNilChunk, kNilChunk};
  Key best_key[4] = {kMaxKey, kMaxKey, kMaxKey, kMaxKey};
  const ChunkNum n = table.num_chunks();
  for (ChunkNum c = 0; c < n; ++c) {
    if (!index_.in_list(c)) continue;
    if (q.has_faulting_chunk && c == q.faulting_chunk) continue;
    const ChunkResidency& cr = table.chunk(c);
    const bool busy = protect && cr.last_access >= cutoff;
    const bool fully = table.chunk_fully_resident(c);
    const int cls = fully ? (busy ? 2 : 0) : (busy ? 3 : 1);
    const Key key{index_.frequency(c), cr.written_ever, cr.last_access};
    if (key < best_key[cls]) {
      best_key[cls] = key;
      best[cls] = c;
    }
  }
  for (const ChunkNum c : best) {
    if (c != kNilChunk) return c;
  }
  return kNilChunk;
}

void EvictionManager::emit_victims(ChunkNum victim, const BlockTable& table,
                                   const AccessCounterTable& counters,
                                   std::vector<BlockNum>& out) const {
  // A coalesced victim chunk is one 2 MB mapping: unless the configuration
  // splinters it first, it leaves device memory atomically — every resident
  // block, regardless of the tree subtree or the 64 KB granularity below.
  // Checked before the tree/granularity paths so neither can emit a partial
  // set out of a huge mapping.
  if (!splinter_on_evict_ && table.chunk_coalesced(victim)) {
    out.reserve(out.size() + table.chunk(victim).resident_blocks);
    table.for_each_resident_block(victim, [&](BlockNum b) { out.push_back(b); });
    return;
  }

  if (kind_ == EvictionKind::kTree) {
    tree_eviction_subtree_into(victim, table, out);
    if (!out.empty()) return;
  }

  if (granularity_ == kLargePageSize || table.chunk(victim).resident_blocks <= 1) {
    out.reserve(out.size() + table.chunk(victim).resident_blocks);
    table.for_each_resident_block(victim, [&](BlockNum b) { out.push_back(b); });
    return;
  }

  // 64 KB eviction granularity: evict only the coldest block of the chunk.
  BlockNum coldest = kNilChunk;
  std::uint64_t coldest_cnt = std::numeric_limits<std::uint64_t>::max();
  Cycle coldest_ts = std::numeric_limits<Cycle>::max();
  table.for_each_resident_block(victim, [&](BlockNum b) {
    const std::uint64_t cnt = counters.range_count(addr_of_block(b), kBasicBlockSize);
    const Cycle ts = table.block_last_access(b);
    if (std::tie(cnt, ts) < std::tie(coldest_cnt, coldest_ts)) {
      coldest_cnt = cnt;
      coldest_ts = ts;
      coldest = b;
    }
  });
  if (coldest != kNilChunk) out.push_back(coldest);
}

std::vector<BlockNum> EvictionManager::select_victims(const BlockTable& table,
                                                      const AccessCounterTable& counters,
                                                      const VictimQuery& q) const {
  std::vector<BlockNum> out;
  select_victims_into(table, counters, q, out);
  return out;
}

void EvictionManager::select_victims_into(const BlockTable& table,
                                          const AccessCounterTable& counters,
                                          const VictimQuery& q,
                                          std::vector<BlockNum>& out) const {
  out.clear();
  if (!index_.attached_to(&table, &counters)) {
    // Hand-built tables (tests, standalone tooling) have no index feeding
    // them mutation hooks: fall back to the reference scan.
    out = select_victims_reference(table, counters, q);
    return;
  }
  const ChunkNum victim = pick_fast(table, counters, q);
  if (victim == kNilChunk) return;
  UVM_CHECK(table.chunk(victim).resident_blocks > 0,
            "EvictionManager: policy " << policy_->name() << " picked chunk "
                << victim << " with no resident blocks");
  UVM_CHECK(!q.has_faulting_chunk || victim != q.faulting_chunk,
            "EvictionManager: policy " << policy_->name()
                << " picked the faulting chunk " << victim);
  emit_victims(victim, table, counters, out);
}

}  // namespace uvmsim
