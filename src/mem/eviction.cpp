#include "mem/eviction.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "check/check.hpp"

namespace uvmsim {

ChunkNum LruEviction::pick(const std::vector<ChunkNum>& candidates, const BlockTable& table,
                           const AccessCounterTable& /*counters*/) const {
  ChunkNum best = candidates.front();
  Cycle best_ts = std::numeric_limits<Cycle>::max();
  for (ChunkNum c : candidates) {
    const Cycle ts = table.chunk(c).last_access;
    if (ts < best_ts) {
      best_ts = ts;
      best = c;
    }
  }
  return best;
}

std::uint64_t LfuEviction::chunk_frequency(ChunkNum c, const BlockTable& table,
                                           const AccessCounterTable& counters) {
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.space().chunk_num_blocks(c);
  std::uint64_t total = 0;
  for (BlockNum b = first; b < first + n; ++b) {
    if (table.block(b).residence == Residence::kDevice) {
      total += counters.range_count(addr_of_block(b), kBasicBlockSize);
    }
  }
  return total;
}

ChunkNum LfuEviction::pick(const std::vector<ChunkNum>& candidates, const BlockTable& table,
                           const AccessCounterTable& counters) const {
  // Order: lowest frequency first; read-only (never written) before written;
  // then least recently used. The recency tie-break is what makes the policy
  // collapse to LRU when frequencies are uniform (regular applications).
  using Key = std::tuple<std::uint64_t, bool, Cycle>;
  ChunkNum best = candidates.front();
  Key best_key{std::numeric_limits<std::uint64_t>::max(), true,
               std::numeric_limits<Cycle>::max()};
  for (ChunkNum c : candidates) {
    const ChunkResidency& cr = table.chunk(c);
    Key key{chunk_frequency(c, table, counters), cr.written_ever, cr.last_access};
    if (key < best_key) {
      best_key = key;
      best = c;
    }
  }
  return best;
}

std::vector<BlockNum> tree_eviction_subtree(ChunkNum c, const BlockTable& table) {
  const BlockNum first = first_block_of_chunk(c);
  const std::uint32_t n = table.space().chunk_num_blocks(c);
  if (n == 0) return {};

  // LRU block among the chunk's resident blocks.
  BlockNum lru = first;
  Cycle lru_ts = std::numeric_limits<Cycle>::max();
  bool found = false;
  for (BlockNum b = first; b < first + n; ++b) {
    const BlockState& s = table.block(b);
    if (s.residence == Residence::kDevice && s.last_access < lru_ts) {
      lru_ts = s.last_access;
      lru = b;
      found = true;
    }
  }
  if (!found) return {};

  // Grow the subtree around the LRU leaf while it stays fully resident.
  const auto leaf = static_cast<std::uint32_t>(lru - first);
  std::uint32_t best_lo = leaf, best_size = 1;
  for (std::uint32_t size = 2; size <= n; size <<= 1) {
    const std::uint32_t lo = leaf / size * size;
    bool full = true;
    for (std::uint32_t i = lo; i < lo + size && full; ++i) {
      full = i < n && table.block(first + i).residence == Residence::kDevice;
    }
    if (!full) break;
    best_lo = lo;
    best_size = size;
  }

  std::vector<BlockNum> out;
  out.reserve(best_size);
  for (std::uint32_t i = best_lo; i < best_lo + best_size; ++i) out.push_back(first + i);
  return out;
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(EvictionKind kind) {
  switch (kind) {
    case EvictionKind::kLru:
    case EvictionKind::kTree:  // tree mode reuses LRU chunk selection
      return std::make_unique<LruEviction>();
    case EvictionKind::kLfu:
      return std::make_unique<LfuEviction>();
  }
  return nullptr;
}

EvictionManager::EvictionManager(EvictionKind kind, std::uint64_t granularity_bytes)
    : policy_(make_eviction_policy(kind)), kind_(kind), granularity_(granularity_bytes) {}

std::vector<BlockNum> EvictionManager::select_victims(const BlockTable& table,
                                                      const AccessCounterTable& counters,
                                                      const VictimQuery& q) const {
  // Gather candidate chunks: resident blocks present, not the faulting
  // chunk, and (preferably) not under active access by scheduled warps.
  const Cycle cutoff =
      q.now > q.protect_window ? q.now - q.protect_window : 0;
  std::vector<ChunkNum> full, partial, busy_full, busy_partial;
  for (ChunkNum c = 0; c < table.num_chunks(); ++c) {
    if (q.has_faulting_chunk && c == q.faulting_chunk) continue;
    const ChunkResidency& cr = table.chunk(c);
    if (cr.resident_blocks == 0) continue;
    const bool busy = q.protect_window != 0 && cr.last_access >= cutoff;
    const bool fully = table.chunk_fully_resident(c);
    (fully ? (busy ? busy_full : full) : (busy ? busy_partial : partial)).push_back(c);
  }

  const std::vector<ChunkNum>& pool = !full.empty()      ? full
                                      : !partial.empty() ? partial
                                      : !busy_full.empty() ? busy_full
                                                           : busy_partial;
  if (pool.empty()) return {};
  const ChunkNum victim = policy_->pick(pool, table, counters);
  UVM_CHECK(table.chunk(victim).resident_blocks > 0,
            "EvictionManager: policy " << policy_->name() << " picked chunk "
                << victim << " with no resident blocks");
  UVM_CHECK(!q.has_faulting_chunk || victim != q.faulting_chunk,
            "EvictionManager: policy " << policy_->name()
                << " picked the faulting chunk " << victim);

  if (kind_ == EvictionKind::kTree) {
    const auto subtree = tree_eviction_subtree(victim, table);
    if (!subtree.empty()) return subtree;
  }

  std::vector<BlockNum> blocks = table.resident_blocks_of(victim);
  if (granularity_ == kLargePageSize || blocks.size() <= 1) return blocks;

  // 64 KB eviction granularity: evict only the coldest block of the chunk.
  BlockNum coldest = blocks.front();
  std::uint64_t coldest_cnt = std::numeric_limits<std::uint64_t>::max();
  Cycle coldest_ts = std::numeric_limits<Cycle>::max();
  for (BlockNum b : blocks) {
    const std::uint64_t cnt = counters.range_count(addr_of_block(b), kBasicBlockSize);
    const Cycle ts = table.block(b).last_access;
    if (std::tie(cnt, ts) < std::tie(coldest_cnt, coldest_ts)) {
      coldest_cnt = cnt;
      coldest_ts = ts;
      coldest = b;
    }
  }
  return {coldest};
}

}  // namespace uvmsim
