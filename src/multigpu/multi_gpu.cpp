#include "multigpu/multi_gpu.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/uvm_driver.hpp"
#include "gpu/gpu_model.hpp"
#include "sim/event_queue.hpp"

namespace uvmsim {

MultiGpuSimulator::MultiGpuSimulator(SimConfig cfg, MultiGpuConfig mg)
    : cfg_(std::move(cfg)), mg_(mg) {
  cfg_.validate();
  if (mg_.num_gpus == 0) throw std::invalid_argument("MultiGpuSimulator: num_gpus == 0");
}

MultiGpuResult MultiGpuSimulator::run(Workload& workload) {
  AddressSpace space;
  workload.build(space);
  if (space.num_allocations() == 0)
    throw std::invalid_argument("MultiGpuSimulator: workload declared no allocations");

  std::uint64_t capacity = cfg_.mem.device_capacity_bytes;
  if (cfg_.mem.oversubscription > 0.0) {
    capacity = static_cast<std::uint64_t>(static_cast<double>(space.footprint_bytes()) /
                                          cfg_.mem.oversubscription);
  }
  if (mg_.split_capacity) capacity /= mg_.num_gpus;
  capacity = std::max<std::uint64_t>(kLargePageSize, capacity / kLargePageSize * kLargePageSize);

  EventQueue queue;

  // One driver + GPU model per device; independent PCIe links to host, but
  // host DRAM bandwidth is the shared, contended resource.
  BandwidthRegulator host_mem(cfg_.xfer.host_memory_bandwidth_gbps /
                              cfg_.gpu.core_clock_ghz);
  PeerDirectory peers(space.total_blocks(), mg_.peer, cfg_.gpu.core_clock_ghz);
  struct Node {
    std::unique_ptr<SimStats> stats;
    std::unique_ptr<UvmDriver> driver;
    std::unique_ptr<GpuModel> gpu;
  };
  std::vector<Node> nodes(mg_.num_gpus);
  for (std::uint32_t g = 0; g < mg_.num_gpus; ++g) {
    Node& n = nodes[g];
    n.stats = std::make_unique<SimStats>();
    n.driver = std::make_unique<UvmDriver>(cfg_, space, capacity, queue, *n.stats, &host_mem);
    if (mg_.peer.enabled) n.driver->set_peer_directory(&peers, g);
    n.gpu = std::make_unique<GpuModel>(cfg_, queue, *n.driver, *n.stats);
  }

  const auto launches = workload.schedule();
  if (launches.empty())
    throw std::invalid_argument("MultiGpuSimulator: empty launch schedule");

  MultiGpuResult result;
  result.footprint_bytes = space.footprint_bytes();
  result.capacity_bytes_per_gpu = capacity;
  result.kernels.reserve(launches.size());

  // Launch chain: each kernel runs task-strided on every GPU; the next
  // launch starts when the slowest GPU finishes (bulk-synchronous).
  std::size_t next = 0;
  std::uint32_t outstanding = 0;
  std::vector<std::shared_ptr<const Kernel>> live_slices;
  std::function<void()> launch_next = [&]() {
    if (next >= launches.size()) return;
    const std::size_t i = next++;
    result.kernels.push_back(KernelStat{launches[i]->name(), queue.now(), 0});
    outstanding = mg_.num_gpus;
    live_slices.clear();
    for (std::uint32_t g = 0; g < mg_.num_gpus; ++g) {
      auto slice = std::make_shared<KernelSlice>(launches[i], g, mg_.num_gpus);
      live_slices.push_back(slice);
      nodes[g].gpu->launch(*slice, [&, i] {
        if (--outstanding == 0) {
          result.kernels[i].end = queue.now();
          launch_next();
        }
      });
    }
  };
  launch_next();
  queue.run();

  if (result.kernels.size() != launches.size() || result.kernels.back().end == 0)
    throw std::logic_error("MultiGpuSimulator: schedule did not run to completion");

  for (auto& n : nodes) {
    n.stats->total_cycles = queue.now();
    result.per_gpu.push_back(*n.stats);
    result.aggregate.accumulate(*n.stats);
  }
  for (const KernelStat& k : result.kernels) result.makespan += k.duration();
  return result;
}

}  // namespace uvmsim
