// Multi-GPU extension (the paper's §VIII future work): collaborative
// data-parallel execution across N GPUs sharing host memory over independent
// PCIe links, with the dynamic-threshold heuristic acting per GPU as a
// memory-throttling mechanism.
//
// Model: one unified VA space; each GPU owns a private device memory and a
// private UVM driver instance (residency, counters, eviction, policy), with
// host memory as the shared home. Every kernel launch is partitioned
// task-strided across the GPUs (the CUDA peer-collaboration idiom for
// data-parallel kernels); a launch completes when every GPU finished its
// slice. Writes are assumed partition-local (collaborative workloads
// partition their output), so no inter-GPU coherence traffic is modelled —
// documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "multigpu/peer_directory.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

/// Strided view of a kernel's task space: GPU `part` of `parts` executes
/// tasks part, part+parts, part+2*parts, ...
class KernelSlice final : public Kernel {
 public:
  KernelSlice(std::shared_ptr<const Kernel> inner, std::uint32_t part, std::uint32_t parts)
      : inner_(std::move(inner)), part_(part), parts_(parts) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "/gpu" + std::to_string(part_);
  }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    const std::uint64_t total = inner_->num_tasks();
    return part_ < total ? (total - part_ - 1) / parts_ + 1 : 0;
  }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    inner_->gen_task(part_ + task * parts_, out);
  }

 private:
  std::shared_ptr<const Kernel> inner_;
  std::uint32_t part_;
  std::uint32_t parts_;
};

struct MultiGpuConfig {
  std::uint32_t num_gpus = 2;
  /// When true, the total device capacity across GPUs equals what a single
  /// GPU would get (capacity per GPU = derived capacity / num_gpus): adding
  /// GPUs adds bandwidth and fault-handling parallelism but not memory.
  /// When false, every GPU gets the full derived capacity, so adding GPUs
  /// also relieves the oversubscription.
  bool split_capacity = true;
  /// NVLink-class peer fabric: reads of blocks resident on a peer GPU are
  /// served peer-to-peer instead of from host memory.
  PeerFabricConfig peer;
};

struct MultiGpuResult {
  std::vector<SimStats> per_gpu;
  SimStats aggregate;               ///< sums over GPUs
  std::vector<KernelStat> kernels;  ///< per launch: start / makespan end
  std::uint64_t footprint_bytes = 0;
  std::uint64_t capacity_bytes_per_gpu = 0;
  Cycle makespan = 0;               ///< total kernel wall-clock (cycles)
};

class MultiGpuSimulator {
 public:
  MultiGpuSimulator(SimConfig cfg, MultiGpuConfig mg);

  [[nodiscard]] MultiGpuResult run(Workload& workload);

 private:
  SimConfig cfg_;
  MultiGpuConfig mg_;
};

}  // namespace uvmsim
