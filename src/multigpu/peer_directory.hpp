// Peer residency directory for multi-GPU collaborations: tracks, per basic
// block, which GPUs currently hold a resident copy, and models the shared
// NVLink fabric over which a GPU can service a zero-copy access from a
// peer's memory instead of host memory (higher bandwidth, lower per-access
// overhead than PCIe zero-copy).
//
// Scope: the peer path serves *remote accesses* only. Migrations still
// source from host memory — the block's UVM home — which keeps the
// single-GPU driver semantics untouched. Peer copies are read-shared; a
// write migrates the block into the writer's own memory as usual.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "xfer/bandwidth.hpp"

namespace uvmsim {

struct PeerFabricConfig {
  bool enabled = false;
  double bandwidth_gbps = 40.0;  ///< NVLink-class interconnect
  Cycle latency = 120;           ///< peer zero-copy round trip
  std::uint64_t overhead_bytes = 32;  ///< per-128B-transaction wire overhead
};

class PeerDirectory {
 public:
  PeerDirectory(std::uint64_t total_blocks, const PeerFabricConfig& cfg,
                double core_clock_ghz)
      : holders_(total_blocks, 0),
        cfg_(cfg),
        fabric_(cfg.bandwidth_gbps / core_clock_ghz) {}

  void set_resident(BlockNum b, std::uint32_t gpu) {
    holders_[b] |= static_cast<std::uint8_t>(1u << gpu);
  }
  void clear_resident(BlockNum b, std::uint32_t gpu) {
    holders_[b] &= static_cast<std::uint8_t>(~(1u << gpu));
  }

  /// True when some GPU other than `gpu` holds block `b`.
  [[nodiscard]] bool held_by_peer(BlockNum b, std::uint32_t gpu) const {
    return (holders_[b] & ~(1u << gpu)) != 0;
  }

  /// Reserve fabric time for a peer zero-copy access of `count`
  /// transactions; returns the completion cycle (fabric drain + latency).
  Cycle peer_transaction(Cycle now, std::uint32_t count) {
    const std::uint64_t wire =
        static_cast<std::uint64_t>(count) * (kWarpAccessBytes + cfg_.overhead_bytes);
    return fabric_.acquire(now, wire) + cfg_.latency;
  }

  [[nodiscard]] const PeerFabricConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const BandwidthRegulator& fabric() const noexcept { return fabric_; }

 private:
  std::vector<std::uint8_t> holders_;  ///< bitmask of holding GPUs (<= 8)
  PeerFabricConfig cfg_;
  BandwidthRegulator fabric_;
};

}  // namespace uvmsim
