// Regular workloads (paper §III-B): dense, sequential, repetitive access.
//   backprop — two streaming passes over layer weights, no cross-iteration
//              reuse (the no-thrash baseline of Fig 7).
//   fdtd     — iterative 3-array stencil with a few equally spaced hot lines
//              (the Fig 2a/3a pattern).
//   hotspot  — iterative 2-in/1-out stencil plus a copy-back kernel.
//   srad     — iterative 2-kernel diffusion over four arrays.
#include <memory>

#include "workloads/common.hpp"
#include "workloads/registry.hpp"

namespace uvmsim {

namespace {

// Base memory-footprint geometry (scaled by WorkloadParams::scale).
// Footprints target tens of MB so full policy sweeps stay fast while leaving
// dozens of 2 MB chunks for the eviction policies to work with.

class BackpropWorkload final : public Workload {
 public:
  explicit BackpropWorkload(WorkloadParams p) : p_(p) {}
  [[nodiscard]] std::string name() const override { return "backprop"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    input_ = make_region(space, "input_units", scaled_bytes(12, p_.scale));
    w1_ = make_region(space, "input_weights", scaled_bytes(16, p_.scale));
    hidden_ = make_region(space, "hidden_units", scaled_bytes(2, p_.scale));
    w2_ = make_region(space, "hidden_weights", scaled_bytes(8, p_.scale));
    out_ = make_region(space, "output_delta", scaled_bytes(4, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 1500;
    opt.lines_per_task = 16;

    // Forward: stream the first-layer weights, revisiting the (smaller)
    // input activations and accumulating into the hidden layer.
    auto forward = std::make_shared<MapKernel>(
        "layerforward",
        std::vector<MapKernel::Operand>{
            {w1_.base, w1_.bytes, AccessType::kRead, 0, 1},
            {input_.base, input_.bytes, AccessType::kRead, 1, 1},
            {hidden_.base, hidden_.bytes, AccessType::kWrite, 3, 1},
        },
        w1_.lines(kLine), opt);

    // Weight adjustment: stream the second-layer weights read-modify-write,
    // re-reading hidden activations and emitting output deltas.
    auto adjust = std::make_shared<MapKernel>(
        "adjust_weights",
        std::vector<MapKernel::Operand>{
            {w2_.base, w2_.bytes, AccessType::kRead, 0, 1},
            {w2_.base, w2_.bytes, AccessType::kWrite, 0, 1},
            {hidden_.base, hidden_.bytes, AccessType::kRead, 2, 1},
            {out_.base, out_.bytes, AccessType::kWrite, 1, 1},
        },
        w2_.lines(kLine), opt);

    return {forward, adjust};
  }

 private:
  WorkloadParams p_;
  Region input_, w1_, hidden_, w2_, out_;
};

class FdtdWorkload final : public Workload {
 public:
  explicit FdtdWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 5;
  }
  [[nodiscard]] std::string name() const override { return "fdtd"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    ex_ = make_region(space, "ex", scaled_bytes(14, p_.scale));
    ey_ = make_region(space, "ey", scaled_bytes(14, p_.scale));
    hz_ = make_region(space, "hz", scaled_bytes(14, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 6000;
    opt.lines_per_task = 16;

    MapKernel::Options hot = opt;
    hot.hot_line_every = 1024;  // a few equally spaced hot lines (Fig 2a)
    hot.hot_extra = 6;

    auto update_ey = std::make_shared<MapKernel>(
        "fdtd_step1",
        std::vector<MapKernel::Operand>{
            {hz_.base, hz_.bytes, AccessType::kRead, 0, 1},
            {ey_.base, ey_.bytes, AccessType::kRead, 0, 1},
            {ey_.base, ey_.bytes, AccessType::kWrite, 0, 1},
        },
        hz_.lines(kLine), hot);
    auto update_ex = std::make_shared<MapKernel>(
        "fdtd_step2",
        std::vector<MapKernel::Operand>{
            {hz_.base, hz_.bytes, AccessType::kRead, 0, 1},
            {ex_.base, ex_.bytes, AccessType::kRead, 0, 1},
            {ex_.base, ex_.bytes, AccessType::kWrite, 0, 1},
        },
        hz_.lines(kLine), opt);
    auto update_hz = std::make_shared<MapKernel>(
        "fdtd_step3",
        std::vector<MapKernel::Operand>{
            {ex_.base, ex_.bytes, AccessType::kRead, 0, 1},
            {ey_.base, ey_.bytes, AccessType::kRead, 0, 1},
            {hz_.base, hz_.bytes, AccessType::kRead, 0, 1},
            {hz_.base, hz_.bytes, AccessType::kWrite, 0, 1},
        },
        hz_.lines(kLine), opt);

    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(update_ey);
      seq.push_back(update_ex);
      seq.push_back(update_hz);
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  Region ex_, ey_, hz_;
};

class HotspotWorkload final : public Workload {
 public:
  explicit HotspotWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 5;
  }
  [[nodiscard]] std::string name() const override { return "hotspot"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    temp_ = make_region(space, "temp", scaled_bytes(12, p_.scale));
    power_ = make_region(space, "power", scaled_bytes(12, p_.scale));
    result_ = make_region(space, "result", scaled_bytes(12, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 5200;
    opt.lines_per_task = 16;

    auto compute = std::make_shared<MapKernel>(
        "hotspot_kernel",
        std::vector<MapKernel::Operand>{
            {temp_.base, temp_.bytes, AccessType::kRead, 0, 2},  // stencil re-reads
            {power_.base, power_.bytes, AccessType::kRead, 0, 1},
            {result_.base, result_.bytes, AccessType::kWrite, 0, 1},
        },
        temp_.lines(kLine), opt);
    auto copy_back = std::make_shared<MapKernel>(
        "hotspot_copy",
        std::vector<MapKernel::Operand>{
            {result_.base, result_.bytes, AccessType::kRead, 0, 1},
            {temp_.base, temp_.bytes, AccessType::kWrite, 0, 1},
        },
        temp_.lines(kLine), opt);

    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(compute);
      seq.push_back(copy_back);
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  Region temp_, power_, result_;
};

class SradWorkload final : public Workload {
 public:
  explicit SradWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 4;
  }
  [[nodiscard]] std::string name() const override { return "srad"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    j_ = make_region(space, "J", scaled_bytes(10, p_.scale));
    dn_ = make_region(space, "dN", scaled_bytes(10, p_.scale));
    ds_ = make_region(space, "dS", scaled_bytes(10, p_.scale));
    c_ = make_region(space, "c", scaled_bytes(10, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 6500;
    opt.lines_per_task = 16;

    auto k1 = std::make_shared<MapKernel>(
        "srad_kernel1",
        std::vector<MapKernel::Operand>{
            {j_.base, j_.bytes, AccessType::kRead, 0, 2},
            {dn_.base, dn_.bytes, AccessType::kWrite, 0, 1},
            {ds_.base, ds_.bytes, AccessType::kWrite, 0, 1},
            {c_.base, c_.bytes, AccessType::kWrite, 0, 1},
        },
        j_.lines(kLine), opt);
    auto k2 = std::make_shared<MapKernel>(
        "srad_kernel2",
        std::vector<MapKernel::Operand>{
            {c_.base, c_.bytes, AccessType::kRead, 0, 2},
            {dn_.base, dn_.bytes, AccessType::kRead, 0, 1},
            {ds_.base, ds_.bytes, AccessType::kRead, 0, 1},
            {j_.base, j_.bytes, AccessType::kWrite, 0, 1},
        },
        j_.lines(kLine), opt);

    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(k1);
      seq.push_back(k2);
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  Region j_, dn_, ds_, c_;
};

}  // namespace

std::unique_ptr<Workload> make_backprop(const WorkloadParams& p) {
  return std::make_unique<BackpropWorkload>(p);
}
std::unique_ptr<Workload> make_fdtd(const WorkloadParams& p) {
  return std::make_unique<FdtdWorkload>(p);
}
std::unique_ptr<Workload> make_hotspot(const WorkloadParams& p) {
  return std::make_unique<HotspotWorkload>(p);
}
std::unique_ptr<Workload> make_srad(const WorkloadParams& p) {
  return std::make_unique<SradWorkload>(p);
}

}  // namespace uvmsim
