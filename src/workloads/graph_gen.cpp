#include "workloads/graph_gen.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>

namespace uvmsim {

CsrGraph make_power_law_graph(std::uint32_t num_nodes, std::uint32_t avg_degree, double alpha,
                              std::uint64_t seed, double locality) {
  Rng rng(seed);
  CsrGraph g;
  g.num_nodes = num_nodes;

  // Draw raw Zipf degrees, then rescale to hit the requested average.
  std::vector<std::uint64_t> deg(num_nodes);
  std::uint64_t total = 0;
  for (auto& d : deg) {
    d = 1 + rng.zipf(4 * static_cast<std::uint64_t>(avg_degree), alpha);
    total += d;
  }
  const double target = static_cast<double>(num_nodes) * avg_degree;
  const double ratio = target / static_cast<double>(total);

  g.offsets.resize(num_nodes + 1);
  g.offsets[0] = 0;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    const auto d = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                       static_cast<double>(deg[v]) * ratio + 0.5)));
    g.offsets[v + 1] = g.offsets[v] + d;
  }

  g.targets.resize(g.offsets.back());
  constexpr std::uint32_t kNeighbourhood = 4096;
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
      if (rng.chance(locality)) {
        // Local edge: target within a bounded neighbourhood of the source.
        const std::uint64_t span = std::min<std::uint64_t>(num_nodes, kNeighbourhood);
        const std::uint64_t lo = v < span / 2 ? 0 : v - span / 2;
        const std::uint64_t hi = std::min<std::uint64_t>(num_nodes - 1, lo + span - 1);
        g.targets[e] = static_cast<std::uint32_t>(rng.between(lo, hi));
      } else {
        g.targets[e] = static_cast<std::uint32_t>(rng.below(num_nodes));
      }
    }
  }
  return g;
}

CsrGraph make_road_graph(std::uint32_t num_nodes, double shortcut_fraction,
                         std::uint64_t seed) {
  Rng rng(seed);
  const auto side = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(num_nodes)));
  const std::uint32_t n = side * side;

  CsrGraph g;
  g.num_nodes = n;
  g.offsets.resize(n + 1);
  g.offsets[0] = 0;

  // First pass: degrees (lattice neighbours + optional shortcut).
  std::vector<std::uint8_t> shortcut(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t x = v % side, y = v / side;
    std::uint32_t deg = 0;
    deg += x > 0;
    deg += x + 1 < side;
    deg += y > 0;
    deg += y + 1 < side;
    if (rng.chance(shortcut_fraction)) {
      shortcut[v] = 1;
      ++deg;
    }
    g.offsets[v + 1] = g.offsets[v] + deg;
  }

  g.targets.resize(g.offsets.back());
  Rng trng(seed ^ 0x5ca1ab1e);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t x = v % side, y = v / side;
    std::uint32_t e = g.offsets[v];
    if (x > 0) g.targets[e++] = v - 1;
    if (x + 1 < side) g.targets[e++] = v + 1;
    if (y > 0) g.targets[e++] = v - side;
    if (y + 1 < side) g.targets[e++] = v + side;
    if (shortcut[v] != 0) g.targets[e++] = static_cast<std::uint32_t>(trng.below(n));
  }
  return g;
}

std::vector<std::vector<std::uint32_t>> bfs_levels(const CsrGraph& g, std::uint32_t source) {
  std::vector<std::vector<std::uint32_t>> levels;
  std::vector<bool> visited(g.num_nodes, false);
  std::vector<std::uint32_t> frontier{source};
  visited[source] = true;

  while (!frontier.empty()) {
    levels.push_back(frontier);
    std::vector<std::uint32_t> next;
    for (std::uint32_t v : frontier) {
      for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const std::uint32_t u = g.targets[e];
        if (!visited[u]) {
          visited[u] = true;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
  }
  return levels;
}

std::vector<std::vector<std::uint32_t>> sssp_rounds(const CsrGraph& g, std::uint32_t source,
                                                    std::uint32_t max_rounds,
                                                    std::uint64_t seed) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(g.num_nodes, kInf);
  dist[source] = 0;

  std::vector<std::vector<std::uint32_t>> rounds;
  std::vector<std::uint32_t> worklist{source};

  for (std::uint32_t r = 0; r < max_rounds && !worklist.empty(); ++r) {
    rounds.push_back(worklist);
    std::vector<std::uint32_t> next;
    std::vector<bool> queued(g.num_nodes, false);
    for (std::uint32_t v : worklist) {
      for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        const std::uint32_t u = g.targets[e];
        // Deterministic pseudo-random weight per edge.
        std::uint64_t h = seed ^ (static_cast<std::uint64_t>(e) << 1);
        const auto w = static_cast<std::uint32_t>(1 + (splitmix64(h) & 0xf));
        if (dist[v] != kInf && dist[v] + w < dist[u]) {
          dist[u] = dist[v] + w;
          if (!queued[u]) {
            queued[u] = true;
            next.push_back(u);
          }
        }
      }
    }
    worklist = std::move(next);
  }
  return rounds;
}

}  // namespace uvmsim
