// Workload model: a workload declares managed allocations (build) and a
// sequence of kernel launches (schedule). A kernel is a bag of tasks (the
// CTA analogue); warp contexts grab tasks dynamically and play their access
// streams. Generation is deterministic: irregular kernels derive per-task
// randomness by stateless hashing of (workload seed, launch, task), so the
// same configuration always produces the same trace.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/types.hpp"

namespace uvmsim {

/// One coalesced memory request issued by a warp.
struct Access {
  VirtAddr addr = 0;
  AccessType type = AccessType::kRead;
  /// Number of consecutive 128 B warp transactions this event represents
  /// (all within one 64 KB basic block). Counters advance by `count`.
  std::uint16_t count = 1;
  /// Compute cycles the warp spends after this access completes before it
  /// issues the next one.
  std::uint16_t gap = 0;

  [[nodiscard]] std::uint32_t bytes() const noexcept {
    return static_cast<std::uint32_t>(count) * kWarpAccessBytes;
  }
};

class Kernel {
 public:
  virtual ~Kernel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::uint64_t num_tasks() const = 0;
  /// Fill `out` (cleared by the caller) with task `task`'s access stream.
  virtual void gen_task(std::uint64_t task, std::vector<Access>& out) const = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Paper's classification (§III-B): regular or irregular access pattern.
  [[nodiscard]] virtual bool irregular() const = 0;
  /// Create managed allocations. Called once, before schedule().
  virtual void build(AddressSpace& space) = 0;
  /// The launch sequence (iterations expanded); entries may repeat kernels.
  [[nodiscard]] virtual std::vector<std::shared_ptr<const Kernel>> schedule() const = 0;
};

/// Tuning knobs shared by all workload generators.
struct WorkloadParams {
  double scale = 1.0;        ///< linear scaling of the memory footprint
  std::uint32_t iterations = 0;  ///< 0 = workload default
  std::uint64_t seed = 0x5eedull;
  /// Graph input structure for bfs/sssp: "powerlaw" (few huge frontiers,
  /// Rodinia-style random graphs) or "road" (high diameter, tiny frontiers,
  /// Lonestar road-network style). Ignored by non-graph workloads.
  std::string graph = "powerlaw";
  /// Trace file driving the "replay" workload (UVMTRB1 or legacy UVMTRC1,
  /// sniffed by magic). Ignored by every generator workload.
  std::string trace_file;
};

/// Instantiate a workload by benchmark name (backprop, fdtd, hotspot, srad,
/// bfs, nw, ra, sssp). Throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<Workload> make_workload(const std::string& name,
                                                      const WorkloadParams& params = {});

/// All benchmark names in the paper's order (regular then irregular).
[[nodiscard]] const std::vector<std::string>& workload_names();

/// Additional workloads not evaluated in the paper (generalization suite):
/// kmeans, histogram (regular-ish), spmv, pagerank (irregular).
[[nodiscard]] const std::vector<std::string>& extra_workload_names();

/// The workload zoo (record/replay corpus candidates beyond the paper and
/// generalization sets): pchase, hashjoin (irregular), pipeline, nbody
/// (regular). Registered like every other slug; excluded from the paper
/// sweep grid so golden captures stay stable.
[[nodiscard]] const std::vector<std::string>& zoo_workload_names();

/// Every registered generator slug: workload_names() + extra + zoo, in that
/// order. Excludes "replay" (it needs WorkloadParams::trace_file).
[[nodiscard]] std::vector<std::string> all_generator_workload_names();

}  // namespace uvmsim
