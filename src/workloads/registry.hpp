// Internal registry of workload factories (one per benchmark).
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace uvmsim {

std::unique_ptr<Workload> make_backprop(const WorkloadParams& p);
std::unique_ptr<Workload> make_fdtd(const WorkloadParams& p);
std::unique_ptr<Workload> make_hotspot(const WorkloadParams& p);
std::unique_ptr<Workload> make_srad(const WorkloadParams& p);
std::unique_ptr<Workload> make_bfs(const WorkloadParams& p);
std::unique_ptr<Workload> make_nw(const WorkloadParams& p);
std::unique_ptr<Workload> make_ra(const WorkloadParams& p);
std::unique_ptr<Workload> make_sssp(const WorkloadParams& p);

// Extra workloads (not in the paper; used by the generalization bench).
std::unique_ptr<Workload> make_spmv(const WorkloadParams& p);
std::unique_ptr<Workload> make_pagerank(const WorkloadParams& p);
std::unique_ptr<Workload> make_kmeans(const WorkloadParams& p);
std::unique_ptr<Workload> make_histogram(const WorkloadParams& p);

// Workload zoo (workloads/zoo.cpp): record/replay corpus candidates.
std::unique_ptr<Workload> make_pchase(const WorkloadParams& p);
std::unique_ptr<Workload> make_hashjoin(const WorkloadParams& p);
std::unique_ptr<Workload> make_pipeline(const WorkloadParams& p);
std::unique_ptr<Workload> make_nbody(const WorkloadParams& p);

}  // namespace uvmsim
