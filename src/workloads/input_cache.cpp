#include "workloads/input_cache.hpp"

#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace uvmsim {

namespace {

/// One keyed shard of the cache. The map stores shared_futures so a builder
/// runs outside the lock while racing lookups of the same key block on the
/// future instead of re-generating.
template <typename T>
class CacheShard {
 public:
  std::shared_ptr<const T> get(const std::string& key,
                               const std::function<T()>& build) {
    std::shared_future<std::shared_ptr<const T>> future;
    bool builder = false;
    std::promise<std::shared_ptr<const T>> promise;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        future = it->second;
      } else {
        ++misses_;
        builder = true;
        future = promise.get_future().share();
        map_.emplace(key, future);
      }
    }
    if (builder) {
      try {
        promise.set_value(std::make_shared<const T>(build()));
      } catch (...) {
        promise.set_exception(std::current_exception());
        // Drop the poisoned entry so a later lookup can retry.
        const std::lock_guard<std::mutex> lock(mutex_);
        map_.erase(key);
      }
    }
    return future.get();  // rethrows a builder exception to all waiters
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
  }

  void add_stats(InputCacheStats& s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.entries += map_.size();
    s.hits += hits_;
    s.misses += misses_;
  }

 private:
  std::mutex mutex_;
  std::unordered_map<std::string, std::shared_future<std::shared_ptr<const T>>> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

CacheShard<CsrGraph>& graph_shard() {
  static CacheShard<CsrGraph> shard;
  return shard;
}

CacheShard<WaveList>& wave_shard() {
  static CacheShard<WaveList> shard;
  return shard;
}

}  // namespace

std::shared_ptr<const CsrGraph> cached_graph(const std::string& key,
                                             const std::function<CsrGraph()>& build) {
  return graph_shard().get(key, build);
}

std::shared_ptr<const WaveList> cached_waves(const std::string& key,
                                             const std::function<WaveList()>& build) {
  return wave_shard().get(key, build);
}

void input_cache_clear() {
  graph_shard().clear();
  wave_shard().clear();
}

InputCacheStats input_cache_stats() {
  InputCacheStats s;
  graph_shard().add_stats(s);
  wave_shard().add_stats(s);
  return s;
}

}  // namespace uvmsim
