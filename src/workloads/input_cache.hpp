// Process-wide cache of expensive deterministic workload inputs: generated
// CSR graphs and the host-side traversal wavefronts derived from them. The
// batch-run engine executes many simulations of the same workload+scale
// concurrently; without this cache every run would regenerate the identical
// graph (the dominant build() cost for bfs/sssp/spmv/pagerank).
//
// Values are immutable once published and handed out as shared_ptr<const T>.
// The builder for a missing key runs exactly once: racing requesters block
// on a shared_future until it is ready, so N concurrent runs of the same
// workload cost one generation. Keys must encode every generation parameter
// (kind, node count, degree, skew, seed, ...) — two requests with the same
// key MUST want the same bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/graph_gen.hpp"

namespace uvmsim {

/// Per-level frontiers / per-round worklists of a traversal.
using WaveList = std::vector<std::vector<std::uint32_t>>;

/// Return the cached graph for `key`, building it via `build` on first use.
[[nodiscard]] std::shared_ptr<const CsrGraph> cached_graph(
    const std::string& key, const std::function<CsrGraph()>& build);

/// Same contract for traversal wavefronts.
[[nodiscard]] std::shared_ptr<const WaveList> cached_waves(
    const std::string& key, const std::function<WaveList()>& build);

/// Drop every cached input (tests, or long-lived processes switching grids).
/// Values still referenced by live workloads stay alive via their shared_ptr.
void input_cache_clear();

struct InputCacheStats {
  std::size_t entries = 0;  ///< distinct keys currently cached
  std::size_t hits = 0;     ///< lookups served from the cache
  std::size_t misses = 0;   ///< lookups that ran the builder
};
[[nodiscard]] InputCacheStats input_cache_stats();

}  // namespace uvmsim
