// Shared building blocks for the workload generators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

/// Deterministic per-task RNG: hash of (workload seed, launch, task).
[[nodiscard]] inline Rng task_rng(std::uint64_t seed, std::uint64_t launch,
                                  std::uint64_t task) noexcept {
  std::uint64_t s = seed ^ (launch * 0x9e3779b97f4a7c15ull);
  s ^= splitmix64(s) + task;
  return Rng(splitmix64(s));
}

/// Data-parallel map kernel: iterate `lines` positions; per position issue
/// one access per operand at the corresponding offset. Models the fused
/// element-wise loops of the regular benchmarks (stencils, vector updates).
///
/// Each "line" is `count * 128` bytes wide. Operands may map positions at a
/// coarser stride (stride_shift) so smaller arrays are revisited — their
/// pages become hot relative to streamed arrays. `repeat` models stencil
/// re-reads of neighbouring elements that land on the same line.
class MapKernel final : public Kernel {
 public:
  struct Operand {
    VirtAddr base = 0;
    std::uint64_t bytes = 0;  ///< region size; offsets wrap modulo this
    AccessType type = AccessType::kRead;
    std::uint8_t stride_shift = 0;
    std::uint8_t repeat = 1;
  };

  struct Options {
    std::uint16_t count = 8;        ///< 128 B transactions per line
    std::uint16_t gap = 0;          ///< compute cycles per access
    std::uint64_t lines_per_task = 64;
    /// When nonzero, every `hot_line_every`-th line re-reads operand 0 an
    /// extra `hot_extra` times (the equally spaced hot pages of fdtd, Fig 2a).
    std::uint32_t hot_line_every = 0;
    std::uint8_t hot_extra = 3;
  };

  MapKernel(std::string name, std::vector<Operand> ops, std::uint64_t lines, Options opt);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(lines_, opt_.lines_per_task);
  }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override;

 private:
  std::string name_;
  std::vector<Operand> ops_;
  std::uint64_t lines_;
  Options opt_;
};

/// Convenience holder for a named allocation created during build().
struct Region {
  AllocId id = kInvalidAlloc;
  VirtAddr base = 0;
  std::uint64_t bytes = 0;

  [[nodiscard]] VirtAddr at(std::uint64_t offset) const noexcept { return base + offset; }
  /// Number of `width`-byte lines in the region.
  [[nodiscard]] std::uint64_t lines(std::uint64_t width) const noexcept { return bytes / width; }
};

[[nodiscard]] Region make_region(AddressSpace& space, const std::string& name,
                                 std::uint64_t bytes);

/// Round a byte offset/address down to the 128 B transaction granularity
/// (coalesced warp transactions are naturally aligned).
[[nodiscard]] constexpr VirtAddr align_line(VirtAddr a) noexcept {
  return a / kWarpAccessBytes * kWarpAccessBytes;
}

/// Clamp a byte size to a whole number of 64 KB blocks (>= one block).
[[nodiscard]] std::uint64_t scaled_bytes(double base_mb, double scale) noexcept;

}  // namespace uvmsim
