// Synthetic power-law graph substrate for the graph workloads (bfs, sssp).
// Builds a CSR graph with a configurable degree skew and runs host-side
// traversals (level-synchronous BFS, Bellman-Ford rounds) so the GPU access
// streams replay a *real* traversal: frontier order, CSR offsets, neighbour
// writes. This reproduces the hot/cold allocation split the paper
// characterizes — offset/status arrays are dense and hot, the edge array is
// sparse, seldom-touched and read-only.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace uvmsim {

struct CsrGraph {
  std::uint32_t num_nodes = 0;
  std::vector<std::uint32_t> offsets;  ///< size num_nodes + 1
  std::vector<std::uint32_t> targets;  ///< size num_edges

  [[nodiscard]] std::uint32_t num_edges() const noexcept {
    return offsets.empty() ? 0u : offsets.back();
  }
  [[nodiscard]] std::uint32_t degree(std::uint32_t v) const noexcept {
    return offsets[v + 1] - offsets[v];
  }
};

/// Power-law-ish random graph: node degrees follow a Zipf(alpha) rank
/// distribution scaled to an average of `avg_degree`. A `locality` fraction
/// of edges point near their source (road-network-like clustering; traversals
/// of such graphs re-touch edge regions instead of spraying uniformly); the
/// remainder are uniform random. Deterministic for a given seed.
[[nodiscard]] CsrGraph make_power_law_graph(std::uint32_t num_nodes, std::uint32_t avg_degree,
                                            double alpha, std::uint64_t seed,
                                            double locality = 0.7);

/// Road-network-like graph: a sqrt(n) x sqrt(n) 4-neighbour lattice with a
/// small fraction of random shortcut edges. High diameter, tiny frontiers,
/// strong locality — the structure of the Lonestar road inputs, and the
/// opposite regime from the power-law generator (few huge frontiers).
[[nodiscard]] CsrGraph make_road_graph(std::uint32_t num_nodes, double shortcut_fraction,
                                       std::uint64_t seed);

/// Level-synchronous BFS from `source`; returns the frontier (node list) of
/// every level, in traversal order.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> bfs_levels(const CsrGraph& g,
                                                                 std::uint32_t source);

/// Bellman-Ford-style SSSP rounds with unit-ish random weights: returns the
/// per-round worklists (nodes whose distance changed in the previous round).
/// `max_rounds` caps the number of rounds.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> sssp_rounds(const CsrGraph& g,
                                                                  std::uint32_t source,
                                                                  std::uint32_t max_rounds,
                                                                  std::uint64_t seed);

}  // namespace uvmsim
