// Irregular workloads (paper §III-B): hot/cold allocation split — dense
// sequential access to small status arrays, sparse seldom access to large
// read-only data.
//   bfs  — level-synchronous BFS over a synthetic power-law CSR graph; the
//          GPU streams replay a real host-side traversal.
//   sssp — Bellman-Ford rounds over the same substrate; kernel1 is sparse
//          (worklist relaxations), kernel2 is a dense status scan, matching
//          the Fig 2b/3c-d characterization.
//   nw   — Needleman-Wunsch wavefront over two large matrices: read-only
//          reference (cold) and read-write score matrix (hot), one kernel
//          launch per anti-diagonal as in Rodinia.
//   ra   — HPCC RandomAccess (GUPS): uniform random read-modify-write over a
//          large table with zero reuse — the perfect zero-copy candidate.
#include <algorithm>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/graph_gen.hpp"
#include "workloads/input_cache.hpp"
#include "workloads/registry.hpp"

namespace uvmsim {

namespace {

// ---------------------------------------------------------------------------
// Graph workload shared state
// ---------------------------------------------------------------------------

struct GraphLayout {
  Region nodes;     ///< CSR offsets (+degree), 8 B per node — hot-ish
  Region edges;     ///< CSR targets, 8 B per edge — large, cold, read-only
  Region weights;   ///< 4 B per edge (sssp only) — cold, read-only
  Region status;    ///< visited/dist, 4 B per node — hot, read-write
  Region aux;       ///< cost/flags, 4 B per node — hot, read-write
  Region frontier;  ///< worklist buffers — hot
};

struct GraphState {
  std::shared_ptr<const CsrGraph> graph;  ///< shared via the input cache
  std::shared_ptr<const WaveList> waves;  ///< frontiers or worklists (shared)
  std::size_t num_waves = 0;              ///< replayed prefix of `waves`
  GraphLayout mem;
  std::uint64_t seed = 0;
};

/// Cache key for the graph substrate; must encode every generator parameter.
std::string graph_key(const std::string& kind, std::uint32_t num_nodes,
                      std::uint32_t avg_degree, std::uint64_t seed) {
  return kind + "/n=" + std::to_string(num_nodes) + "/d=" + std::to_string(avg_degree) +
         "/seed=" + std::to_string(seed);
}

/// Sparse expansion kernel shared by bfs and sssp kernel1: process one wave
/// of nodes; per node read its CSR slot and edge run, probe the status of
/// every neighbour, and write status/aux for a subset (the newly relaxed
/// nodes). `read_weights` adds the sssp weight-array reads.
class ExpandKernel final : public Kernel {
 public:
  ExpandKernel(std::string name, std::shared_ptr<const GraphState> st, std::uint32_t wave,
               bool read_weights, double write_fraction, std::uint16_t gap)
      : name_(std::move(name)),
        st_(std::move(st)),
        wave_(wave),
        read_weights_(read_weights),
        write_fraction_(write_fraction),
        gap_(gap) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil((*st_->waves)[wave_].size(), kNodesPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const auto& wave = (*st_->waves)[wave_];
    const CsrGraph& g = *st_->graph;
    const GraphLayout& m = st_->mem;
    Rng rng = task_rng(st_->seed, wave_, task);

    // Hoisted graph/layout pointers: the push_back calls below may (as far as
    // the compiler can tell) alias anything, forcing a reload of offsets/
    // bases per edge otherwise — and this generator runs once per task on the
    // simulation's critical path.
    const std::uint32_t* const offsets = g.offsets.data();
    const std::uint32_t* const targets = g.targets.data();
    const VirtAddr status_base = m.status.base;
    const VirtAddr aux_base = m.aux.base;

    const std::size_t first = task * kNodesPerTask;
    const std::size_t last = std::min(wave.size(), first + kNodesPerTask);
    for (std::size_t i = first; i < last; ++i) {
      const std::uint32_t v = wave[i];
      // Worklist entries are read coalesced: one 128 B transaction per 32.
      if (i % 32 == 0) {
        out.push_back(Access{align_line(m.frontier.at(i * 4)), AccessType::kRead, 1, gap_});
      }
      // CSR offset slot.
      out.push_back(Access{align_line(m.nodes.at(static_cast<std::uint64_t>(v) * 8)),
                           AccessType::kRead, 1, gap_});
      // Edge run: deg consecutive 8 B targets (sparse position, dense run).
      const std::uint32_t e_begin = offsets[v];
      const std::uint32_t e_end = offsets[v + 1];
      const std::uint32_t deg = e_end - e_begin;
      const std::uint64_t run_base = static_cast<std::uint64_t>(e_begin) * 8;
      emit_run(out, align_line(m.edges.at(run_base)), static_cast<std::uint64_t>(deg) * 8);
      if (read_weights_) {
        emit_run(out, align_line(m.weights.at(static_cast<std::uint64_t>(e_begin) * 4)),
                 static_cast<std::uint64_t>(deg) * 4);
      }
      // Per-neighbour status probe; relaxations write status and aux.
      for (std::uint32_t e = e_begin; e < e_end; ++e) {
        const std::uint64_t u = targets[e];
        out.push_back(Access{align_line(status_base + u * 4), AccessType::kRead, 1, gap_});
        if (rng.chance(write_fraction_)) {
          out.push_back(Access{align_line(status_base + u * 4), AccessType::kWrite, 1, gap_});
          out.push_back(Access{align_line(aux_base + u * 4), AccessType::kWrite, 1, gap_});
        }
      }
    }
  }

 private:
  static constexpr std::size_t kNodesPerTask = 64;

  void emit_run(std::vector<Access>& out, VirtAddr addr, std::uint64_t bytes) const {
    // Split at basic-block boundaries; each event is <= 16 transactions.
    while (bytes > 0) {
      const std::uint64_t to_block_end = kBasicBlockSize - (addr % kBasicBlockSize);
      const std::uint64_t span = std::min({bytes, to_block_end, std::uint64_t{16} * 128});
      const auto count = static_cast<std::uint16_t>(div_ceil(span, kWarpAccessBytes));
      out.push_back(Access{addr, AccessType::kRead, count, gap_});
      addr += span;
      bytes -= span;
    }
  }

  std::string name_;
  std::shared_ptr<const GraphState> st_;
  std::uint32_t wave_;
  bool read_weights_;
  double write_fraction_;
  std::uint16_t gap_;
};

class BfsWorkload final : public Workload {
 public:
  explicit BfsWorkload(WorkloadParams p) : p_(p) {
    // Road lattices have degree ~4 vs the power-law ~10; scale the node
    // count so both inputs present a comparable memory footprint.
    const double nodes = p_.graph == "road" ? 458752.0 : 196608.0;
    num_nodes_ = static_cast<std::uint32_t>(nodes * p_.scale);
  }
  [[nodiscard]] std::string name() const override { return "bfs"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<GraphState>();
    st_->seed = p_.seed;
    const bool road = p_.graph == "road";
    const std::string gkey = graph_key(road ? "road" : "plaw10", num_nodes_, 10, p_.seed);
    st_->graph = cached_graph(gkey, [&] {
      return road ? make_road_graph(num_nodes_, 0.02, p_.seed)
                  : make_power_law_graph(num_nodes_, 10, 0.6, p_.seed);
    });
    st_->waves = cached_waves(gkey + "|bfs/src=0",
                              [&] { return bfs_levels(*st_->graph, 0); });
    // Road graphs have hundreds of small levels; cap the replayed levels to
    // keep runs tractable (iterations overrides).
    const std::size_t cap = p_.iterations != 0 ? p_.iterations
                            : road             ? 64
                                               : st_->waves->size();
    st_->num_waves = std::min(st_->waves->size(), cap);

    GraphLayout& m = st_->mem;
    const std::uint64_t n = num_nodes_;
    const std::uint64_t e = st_->graph->num_edges();
    m.nodes = make_region(space, "graph_nodes", (n + 1) * 8);
    m.edges = make_region(space, "graph_edges", e * 8);
    m.status = make_region(space, "visited", n * 4);
    m.aux = make_region(space, "cost", n * 4);
    m.frontier = make_region(space, "frontier", 2 * n * 4);
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    MapKernel::Options scan_opt;
    scan_opt.count = 8;
    scan_opt.gap = 300;
    scan_opt.lines_per_task = 16;
    for (std::uint32_t l = 0; l < st_->num_waves; ++l) {
      const double frac =
          l + 1 < st_->num_waves
              ? std::min(1.0, static_cast<double>((*st_->waves)[l + 1].size()) /
                                  static_cast<double>(std::max<std::size_t>(
                                      1, (*st_->waves)[l].size() * 4)))
              : 0.05;
      seq.push_back(std::make_shared<ExpandKernel>("bfs_kernel1", st_, l,
                                                   /*read_weights=*/false, frac, 250));
      // Frontier maintenance: dense scan of visited + cost.
      seq.push_back(std::make_shared<MapKernel>(
          "bfs_kernel2",
          std::vector<MapKernel::Operand>{
              {st_->mem.status.base, st_->mem.status.bytes, AccessType::kRead, 0, 1},
              {st_->mem.aux.base, st_->mem.aux.bytes, AccessType::kRead, 0, 1},
              {st_->mem.frontier.base, st_->mem.frontier.bytes, AccessType::kWrite, 1, 1},
          },
          st_->mem.status.lines(8ull * kWarpAccessBytes), scan_opt));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::uint32_t num_nodes_;
  std::shared_ptr<GraphState> st_;
};

class SsspWorkload final : public Workload {
 public:
  explicit SsspWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = p_.graph == "road" ? 48 : 7;
    const double nodes = p_.graph == "road" ? 393216.0 : 163840.0;
    num_nodes_ = static_cast<std::uint32_t>(nodes * p_.scale);
  }
  [[nodiscard]] std::string name() const override { return "sssp"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<GraphState>();
    st_->seed = p_.seed + 1;
    const bool road = p_.graph == "road";
    const std::string gkey =
        graph_key(road ? "road" : "plaw12", num_nodes_, 12, st_->seed);
    st_->graph = cached_graph(gkey, [&] {
      return road ? make_road_graph(num_nodes_, 0.02, st_->seed)
                  : make_power_law_graph(num_nodes_, 12, 0.6, st_->seed);
    });
    st_->waves = cached_waves(
        gkey + "|sssp/src=0/r=" + std::to_string(p_.iterations),
        [&] { return sssp_rounds(*st_->graph, 0, p_.iterations, st_->seed); });
    st_->num_waves = st_->waves->size();

    GraphLayout& m = st_->mem;
    const std::uint64_t n = num_nodes_;
    const std::uint64_t e = st_->graph->num_edges();
    m.nodes = make_region(space, "graph_nodes", (n + 1) * 8);
    m.edges = make_region(space, "graph_edges", e * 8);
    m.weights = make_region(space, "edge_weights", e * 4);
    m.status = make_region(space, "dist", n * 4);
    m.aux = make_region(space, "flags", n * 4);
    m.frontier = make_region(space, "worklist", 2 * n * 4);
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    MapKernel::Options scan_opt;
    scan_opt.count = 8;
    scan_opt.gap = 300;
    scan_opt.lines_per_task = 16;
    for (std::uint32_t r = 0; r < st_->num_waves; ++r) {
      seq.push_back(std::make_shared<ExpandKernel>("sssp_kernel1", st_, r,
                                                   /*read_weights=*/true, 0.3, 250));
      // Worklist rebuild: dense sequential scan over dist and flags (the hot
      // sequential kernel2 of Fig 3c/d).
      seq.push_back(std::make_shared<MapKernel>(
          "sssp_kernel2",
          std::vector<MapKernel::Operand>{
              {st_->mem.status.base, st_->mem.status.bytes, AccessType::kRead, 0, 1},
              {st_->mem.aux.base, st_->mem.aux.bytes, AccessType::kRead, 0, 1},
              {st_->mem.aux.base, st_->mem.aux.bytes, AccessType::kWrite, 0, 1},
              {st_->mem.frontier.base, st_->mem.frontier.bytes, AccessType::kWrite, 1, 1},
          },
          st_->mem.status.lines(8ull * kWarpAccessBytes), scan_opt));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::uint32_t num_nodes_;
  std::shared_ptr<GraphState> st_;
};

// ---------------------------------------------------------------------------
// Needleman-Wunsch
// ---------------------------------------------------------------------------

struct NwState {
  Region input;      ///< score matrix, read-write (hot)
  Region reference;  ///< similarity matrix, read-only (cold)
  std::uint32_t dim = 0;          ///< cells per side
  std::uint32_t blocks_per_side = 0;
};

/// One anti-diagonal of 16x16 cell blocks; task = one block. Per block row:
/// read the reference segment, read the left-neighbour input segment, write
/// the block's input segment; plus one top-row read per block.
class NwDiagonalKernel final : public Kernel {
 public:
  NwDiagonalKernel(std::shared_ptr<const NwState> st, std::uint32_t diag, std::uint16_t gap)
      : st_(std::move(st)), diag_(diag), gap_(gap) {}

  [[nodiscard]] std::string name() const override { return "nw_kernel"; }

  [[nodiscard]] std::uint64_t num_tasks() const override {
    const std::uint32_t bs = st_->blocks_per_side;
    const std::uint32_t len = diag_ < bs ? diag_ + 1 : 2 * bs - 1 - diag_;
    return len;
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const std::uint32_t bs = st_->blocks_per_side;
    // Block coordinates along the anti-diagonal.
    const std::uint32_t bi =
        diag_ < bs ? static_cast<std::uint32_t>(task) : diag_ - bs + 1 + static_cast<std::uint32_t>(task);
    const std::uint32_t bj = diag_ - bi;
    const std::uint64_t row_bytes = static_cast<std::uint64_t>(st_->dim) * 4;
    const std::uint64_t col_off = static_cast<std::uint64_t>(bj) * 16 * 4;

    // Top-neighbour row (last row of the block above).
    if (bi > 0) {
      const std::uint64_t r = static_cast<std::uint64_t>(bi) * 16 - 1;
      out.push_back(Access{align_line(st_->input.at(r * row_bytes + col_off)), AccessType::kRead, 1, gap_});
    }
    for (std::uint32_t rr = 0; rr < 16; ++rr) {
      const std::uint64_t r = static_cast<std::uint64_t>(bi) * 16 + rr;
      const std::uint64_t row_off = r * row_bytes + col_off;
      out.push_back(Access{align_line(st_->reference.at(row_off)), AccessType::kRead, 1, gap_});
      if (bj > 0) {
        out.push_back(Access{align_line(st_->input.at(row_off - 64)), AccessType::kRead, 1, gap_});
      }
      out.push_back(Access{align_line(st_->input.at(row_off)), AccessType::kWrite, 1, gap_});
    }
  }

 private:
  std::shared_ptr<const NwState> st_;
  std::uint32_t diag_;
  std::uint16_t gap_;
};

class NwWorkload final : public Workload {
 public:
  explicit NwWorkload(WorkloadParams p) : p_(p) {
    // Matrix side in cells: 16-aligned, ~24 MB per matrix at scale 1.
    const auto side = static_cast<std::uint32_t>(2432.0 * std::sqrt(p_.scale));
    dim_ = side / 16 * 16;
  }
  [[nodiscard]] std::string name() const override { return "nw"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<NwState>();
    st_->dim = dim_;
    st_->blocks_per_side = dim_ / 16;
    const std::uint64_t bytes = static_cast<std::uint64_t>(dim_) * dim_ * 4;
    st_->input = make_region(space, "input_itemsets", bytes);
    st_->reference = make_region(space, "reference", bytes);
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    const std::uint32_t diags = 2 * st_->blocks_per_side - 1;
    seq.reserve(diags);
    for (std::uint32_t d = 0; d < diags; ++d) {
      seq.push_back(std::make_shared<NwDiagonalKernel>(st_, d, 1100));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::uint32_t dim_;
  std::shared_ptr<NwState> st_;
};

// ---------------------------------------------------------------------------
// RandomAccess (GUPS)
// ---------------------------------------------------------------------------

struct RaState {
  Region table;    ///< the update table — huge, uniform random RMW, no reuse
  Region ranval;   ///< the random-stream scratch — small, hot
  std::uint64_t lines = 0;
  std::uint64_t seed = 0;
};

class RaUpdateKernel final : public Kernel {
 public:
  // The table access stream is read-dominant: lookups vastly outnumber
  // committed updates (only a fraction of probes XOR back in this port),
  // which is what makes ra the paper's "perfect candidate for zero-copy
  // host-pinned memory access".
  RaUpdateKernel(std::shared_ptr<const RaState> st, std::uint32_t launch,
                 std::uint64_t updates, std::uint16_t gap, double write_fraction = 0.125)
      : st_(std::move(st)),
        launch_(launch),
        updates_(updates),
        gap_(gap),
        write_fraction_(write_fraction) {}

  [[nodiscard]] std::string name() const override { return "ra_update"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(updates_, kUpdatesPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    Rng rng = task_rng(st_->seed, launch_, task);
    const std::uint64_t first = task * kUpdatesPerTask;
    const std::uint64_t last = std::min(updates_, first + kUpdatesPerTask);
    for (std::uint64_t i = first; i < last; ++i) {
      if (i % 16 == 0) {
        // The random stream itself is read sequentially (hot).
        const std::uint64_t off = (i / 16 * kWarpAccessBytes) % st_->ranval.bytes;
        out.push_back(Access{st_->ranval.at(off), AccessType::kRead, 1, gap_});
      }
      const std::uint64_t line = rng.below(st_->lines);
      const VirtAddr addr = st_->table.at(line * kWarpAccessBytes);
      out.push_back(Access{addr, AccessType::kRead, 1, gap_});
      if (rng.chance(write_fraction_)) {
        out.push_back(Access{addr, AccessType::kWrite, 1, gap_});
      }
    }
  }

 private:
  static constexpr std::uint64_t kUpdatesPerTask = 128;
  std::shared_ptr<const RaState> st_;
  std::uint32_t launch_;
  std::uint64_t updates_;
  std::uint16_t gap_;
  double write_fraction_;
};

class RaWorkload final : public Workload {
 public:
  explicit RaWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 4;
  }
  [[nodiscard]] std::string name() const override { return "ra"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<RaState>();
    st_->seed = p_.seed + 2;
    st_->table = make_region(space, "update_table", scaled_bytes(32, p_.scale));
    st_->ranval = make_region(space, "ranval", scaled_bytes(1, p_.scale));
    st_->lines = st_->table.bytes / kWarpAccessBytes;
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    const auto updates = static_cast<std::uint64_t>(262144.0 * p_.scale);
    for (std::uint32_t l = 0; l < p_.iterations; ++l) {
      seq.push_back(std::make_shared<RaUpdateKernel>(st_, l, updates, 150));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::shared_ptr<RaState> st_;
};

}  // namespace

std::unique_ptr<Workload> make_bfs(const WorkloadParams& p) {
  return std::make_unique<BfsWorkload>(p);
}
std::unique_ptr<Workload> make_sssp(const WorkloadParams& p) {
  return std::make_unique<SsspWorkload>(p);
}
std::unique_ptr<Workload> make_nw(const WorkloadParams& p) {
  return std::make_unique<NwWorkload>(p);
}
std::unique_ptr<Workload> make_ra(const WorkloadParams& p) {
  return std::make_unique<RaWorkload>(p);
}

}  // namespace uvmsim
