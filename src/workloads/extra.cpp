// Additional workloads beyond the paper's eight benchmarks — used by the
// generalization experiment (bench/ext_workloads) to check that the adaptive
// heuristic's behaviour carries over to access patterns it was not tuned on.
//
//   spmv      — CSR sparse matrix-vector product: streamed matrix values
//               (cold, read-once), randomly gathered x vector (hot, RO),
//               sequential y output. Irregular.
//   pagerank  — power iteration over a graph: the large edge list is cold
//               but re-streamed EVERY iteration (cyclic cold reuse — a
//               pattern none of the paper's benchmarks has), rank arrays
//               are hot RW. Irregular.
//   kmeans    — points streamed per iteration against tiny hot centroids;
//               dense, sequential, repetitive. Regular.
//   histogram — sequential input stream scattering increments into a small
//               bin array: regular streaming reads + hot random writes.
#include <algorithm>
#include <cmath>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/graph_gen.hpp"
#include "workloads/input_cache.hpp"
#include "workloads/registry.hpp"

namespace uvmsim {

namespace {

// ---------------------------------------------------------------------------
// spmv
// ---------------------------------------------------------------------------

struct SpmvState {
  std::shared_ptr<const CsrGraph> matrix;  ///< sparsity pattern (input cache)
  Region rows;      ///< row pointers — hot-ish sequential
  Region cols;      ///< column indices — cold, read once
  Region vals;      ///< nonzero values — cold, read once
  Region x;         ///< gathered input vector — hot RO
  Region y;         ///< output vector — hot, written sequentially
  std::uint16_t gap = 0;
};

class SpmvKernel final : public Kernel {
 public:
  explicit SpmvKernel(std::shared_ptr<const SpmvState> st) : st_(std::move(st)) {}
  [[nodiscard]] std::string name() const override { return "spmv_csr"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(st_->matrix->num_nodes, kRowsPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const CsrGraph& m = *st_->matrix;
    const std::uint32_t first = static_cast<std::uint32_t>(task * kRowsPerTask);
    const std::uint32_t last =
        std::min(m.num_nodes, first + static_cast<std::uint32_t>(kRowsPerTask));
    for (std::uint32_t r = first; r < last; ++r) {
      if (r % 16 == 0) {
        out.push_back(
            Access{align_line(st_->rows.at(std::uint64_t{r} * 8)), AccessType::kRead, 1,
                   st_->gap});
      }
      // Stream the row's column indices and values (contiguous runs).
      const std::uint64_t nnz = m.degree(r);
      emit_run(out, align_line(st_->cols.at(std::uint64_t{m.offsets[r]} * 4)), nnz * 4);
      emit_run(out, align_line(st_->vals.at(std::uint64_t{m.offsets[r]} * 8)), nnz * 8);
      // Gather x[col] for every nonzero — the irregular part.
      for (std::uint32_t e = m.offsets[r]; e < m.offsets[r + 1]; ++e) {
        out.push_back(Access{align_line(st_->x.at(std::uint64_t{m.targets[e]} * 8)),
                             AccessType::kRead, 1, st_->gap});
      }
      // y[r] accumulation.
      if (r % 16 == 0) {
        out.push_back(Access{align_line(st_->y.at(std::uint64_t{r} * 8)),
                             AccessType::kWrite, 1, st_->gap});
      }
    }
  }

 private:
  static constexpr std::uint64_t kRowsPerTask = 64;

  void emit_run(std::vector<Access>& out, VirtAddr addr, std::uint64_t bytes) const {
    while (bytes > 0) {
      const std::uint64_t to_block_end = kBasicBlockSize - (addr % kBasicBlockSize);
      const std::uint64_t span = std::min({bytes, to_block_end, std::uint64_t{16} * 128});
      out.push_back(Access{addr, AccessType::kRead,
                           static_cast<std::uint16_t>(div_ceil(span, kWarpAccessBytes)),
                           st_->gap});
      addr += span;
      bytes -= span;
    }
  }

  std::shared_ptr<const SpmvState> st_;
};

class SpmvWorkload final : public Workload {
 public:
  explicit SpmvWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 3;
    num_rows_ = static_cast<std::uint32_t>(262144 * p_.scale);
  }
  [[nodiscard]] std::string name() const override { return "spmv"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<SpmvState>();
    st_->matrix = cached_graph(
        "plaw12a07/n=" + std::to_string(num_rows_) + "/seed=" + std::to_string(p_.seed + 11),
        [&] { return make_power_law_graph(num_rows_, 12, 0.7, p_.seed + 11); });
    st_->gap = 300;
    const std::uint64_t n = num_rows_;
    const std::uint64_t nnz = st_->matrix->num_edges();
    st_->rows = make_region(space, "row_ptr", (n + 1) * 8);
    st_->cols = make_region(space, "col_idx", nnz * 4);
    st_->vals = make_region(space, "values", nnz * 8);
    st_->x = make_region(space, "x", n * 8);
    st_->y = make_region(space, "y", n * 8);
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    auto k = std::make_shared<SpmvKernel>(st_);
    return std::vector<std::shared_ptr<const Kernel>>(p_.iterations, k);
  }

 private:
  WorkloadParams p_;
  std::uint32_t num_rows_;
  std::shared_ptr<SpmvState> st_;
};

// ---------------------------------------------------------------------------
// pagerank
// ---------------------------------------------------------------------------

struct PagerankState {
  std::shared_ptr<const CsrGraph> graph;  ///< shared via the input cache
  Region offsets;   ///< hot-ish
  Region edges;     ///< cold, but re-streamed every iteration
  Region rank;      ///< hot RO within an iteration
  Region next_rank; ///< hot W
  std::uint16_t gap = 0;
};

class PagerankKernel final : public Kernel {
 public:
  explicit PagerankKernel(std::shared_ptr<const PagerankState> st) : st_(std::move(st)) {}
  [[nodiscard]] std::string name() const override { return "pagerank_pull"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(st_->graph->num_nodes, kNodesPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const CsrGraph& g = *st_->graph;
    const std::uint32_t first = static_cast<std::uint32_t>(task * kNodesPerTask);
    const std::uint32_t last =
        std::min(g.num_nodes, first + static_cast<std::uint32_t>(kNodesPerTask));
    for (std::uint32_t v = first; v < last; ++v) {
      if (v % 16 == 0) {
        out.push_back(Access{align_line(st_->offsets.at(std::uint64_t{v} * 8)),
                             AccessType::kRead, 1, st_->gap});
      }
      // Stream the in-edge list of v; gather the neighbours' ranks.
      const std::uint64_t deg = g.degree(v);
      VirtAddr e_addr = align_line(st_->edges.at(std::uint64_t{g.offsets[v]} * 8));
      std::uint64_t bytes = deg * 8;
      while (bytes > 0) {
        const std::uint64_t to_block_end = kBasicBlockSize - (e_addr % kBasicBlockSize);
        const std::uint64_t span = std::min({bytes, to_block_end, std::uint64_t{2048}});
        out.push_back(Access{e_addr, AccessType::kRead,
                             static_cast<std::uint16_t>(div_ceil(span, kWarpAccessBytes)),
                             st_->gap});
        e_addr += span;
        bytes -= span;
      }
      for (std::uint32_t e = g.offsets[v]; e < g.offsets[v + 1]; ++e) {
        out.push_back(Access{align_line(st_->rank.at(std::uint64_t{g.targets[e]} * 8)),
                             AccessType::kRead, 1, st_->gap});
      }
      if (v % 16 == 0) {
        out.push_back(Access{align_line(st_->next_rank.at(std::uint64_t{v} * 8)),
                             AccessType::kWrite, 1, st_->gap});
      }
    }
  }

 private:
  static constexpr std::uint64_t kNodesPerTask = 64;
  std::shared_ptr<const PagerankState> st_;
};

class PagerankWorkload final : public Workload {
 public:
  explicit PagerankWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 4;
    num_nodes_ = static_cast<std::uint32_t>(196608 * p_.scale);
  }
  [[nodiscard]] std::string name() const override { return "pagerank"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<PagerankState>();
    st_->graph = cached_graph(
        "plaw10a08/n=" + std::to_string(num_nodes_) + "/seed=" + std::to_string(p_.seed + 13),
        [&] { return make_power_law_graph(num_nodes_, 10, 0.8, p_.seed + 13); });
    st_->gap = 300;
    const std::uint64_t n = num_nodes_;
    const std::uint64_t e = st_->graph->num_edges();
    st_->offsets = make_region(space, "offsets", (n + 1) * 8);
    st_->edges = make_region(space, "in_edges", e * 8);
    st_->rank = make_region(space, "rank", n * 8);
    st_->next_rank = make_region(space, "next_rank", n * 8);
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    auto k = std::make_shared<PagerankKernel>(st_);
    return std::vector<std::shared_ptr<const Kernel>>(p_.iterations, k);
  }

 private:
  WorkloadParams p_;
  std::uint32_t num_nodes_;
  std::shared_ptr<PagerankState> st_;
};

// ---------------------------------------------------------------------------
// kmeans
// ---------------------------------------------------------------------------

class KmeansWorkload final : public Workload {
 public:
  explicit KmeansWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 5;
  }
  [[nodiscard]] std::string name() const override { return "kmeans"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    points_ = make_region(space, "points", scaled_bytes(36, p_.scale));
    centroids_ = make_region(space, "centroids", scaled_bytes(0.25, p_.scale));
    assign_ = make_region(space, "assignments", scaled_bytes(2, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 4000;  // distance computation against every centroid
    opt.lines_per_task = 16;

    auto assign = std::make_shared<MapKernel>(
        "kmeans_assign",
        std::vector<MapKernel::Operand>{
            {points_.base, points_.bytes, AccessType::kRead, 0, 1},
            {centroids_.base, centroids_.bytes, AccessType::kRead, 4, 1},
            {assign_.base, assign_.bytes, AccessType::kWrite, 4, 1},
        },
        points_.lines(kLine), opt);
    return std::vector<std::shared_ptr<const Kernel>>(p_.iterations, assign);
  }

 private:
  WorkloadParams p_;
  Region points_, centroids_, assign_;
};

// ---------------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------------

struct HistogramState {
  Region input;  ///< streamed once per launch, read-only
  Region bins;   ///< small, hot, random read-modify-write
  std::uint64_t lines = 0;
  std::uint64_t bin_lines = 0;
  std::uint64_t seed = 0;
  std::uint16_t gap = 0;
};

class HistogramKernel final : public Kernel {
 public:
  HistogramKernel(std::shared_ptr<const HistogramState> st, std::uint32_t launch)
      : st_(std::move(st)), launch_(launch) {}
  [[nodiscard]] std::string name() const override { return "histogram"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(st_->lines, kLinesPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    Rng rng = task_rng(st_->seed, launch_, task);
    const std::uint64_t first = task * kLinesPerTask;
    const std::uint64_t last = std::min(st_->lines, first + kLinesPerTask);
    for (std::uint64_t l = first; l < last; ++l) {
      out.push_back(Access{st_->input.at(l * 8 * kWarpAccessBytes), AccessType::kRead, 8,
                           st_->gap});
      // A few scattered bin updates per input line.
      for (int u = 0; u < 2; ++u) {
        const VirtAddr bin = st_->bins.at(rng.below(st_->bin_lines) * kWarpAccessBytes);
        out.push_back(Access{bin, AccessType::kRead, 1, st_->gap});
        out.push_back(Access{bin, AccessType::kWrite, 1, st_->gap});
      }
    }
  }

 private:
  static constexpr std::uint64_t kLinesPerTask = 16;
  std::shared_ptr<const HistogramState> st_;
  std::uint32_t launch_;
};

class HistogramWorkload final : public Workload {
 public:
  explicit HistogramWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 2;
  }
  [[nodiscard]] std::string name() const override { return "histogram"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<HistogramState>();
    st_->seed = p_.seed + 17;
    st_->gap = 500;
    st_->input = make_region(space, "input_stream", scaled_bytes(36, p_.scale));
    st_->bins = make_region(space, "bins", scaled_bytes(1, p_.scale));
    st_->lines = st_->input.bytes / (8 * kWarpAccessBytes);
    st_->bin_lines = st_->bins.bytes / kWarpAccessBytes;
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(std::make_shared<HistogramKernel>(st_, i));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::shared_ptr<HistogramState> st_;
};

}  // namespace

std::unique_ptr<Workload> make_spmv(const WorkloadParams& p) {
  return std::make_unique<SpmvWorkload>(p);
}
std::unique_ptr<Workload> make_pagerank(const WorkloadParams& p) {
  return std::make_unique<PagerankWorkload>(p);
}
std::unique_ptr<Workload> make_kmeans(const WorkloadParams& p) {
  return std::make_unique<KmeansWorkload>(p);
}
std::unique_ptr<Workload> make_histogram(const WorkloadParams& p) {
  return std::make_unique<HistogramWorkload>(p);
}

}  // namespace uvmsim
