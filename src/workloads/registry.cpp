#include "workloads/registry.hpp"

#include <functional>
#include <stdexcept>
#include <unordered_map>

#include "trace/replay_workload.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

namespace {

using Factory = std::function<std::unique_ptr<Workload>(const WorkloadParams&)>;

const std::unordered_map<std::string, Factory>& factories() {
  static const std::unordered_map<std::string, Factory> table{
      {"backprop", make_backprop}, {"fdtd", make_fdtd}, {"hotspot", make_hotspot},
      {"srad", make_srad},         {"bfs", make_bfs},   {"nw", make_nw},
      {"ra", make_ra},             {"sssp", make_sssp}, {"spmv", make_spmv},
      {"pagerank", make_pagerank}, {"kmeans", make_kmeans},
      {"histogram", make_histogram},
      // Workload zoo (record/replay corpus candidates).
      {"pchase", make_pchase},     {"hashjoin", make_hashjoin},
      {"pipeline", make_pipeline}, {"nbody", make_nbody},
      // Trace replay: drives WorkloadParams::trace_file back through the sim.
      {"replay", make_replay_workload},
  };
  return table;
}

}  // namespace

std::unique_ptr<Workload> make_workload(const std::string& name, const WorkloadParams& params) {
  const auto it = factories().find(name);
  if (it == factories().end()) {
    throw std::invalid_argument("make_workload: unknown workload '" + name + "'");
  }
  return it->second(params);
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names{
      "backprop", "fdtd", "hotspot", "srad",  // regular
      "bfs", "nw", "ra", "sssp",              // irregular
  };
  return names;
}

const std::vector<std::string>& extra_workload_names() {
  static const std::vector<std::string> names{
      "kmeans", "histogram",  // regular-ish
      "spmv", "pagerank",     // irregular
  };
  return names;
}

const std::vector<std::string>& zoo_workload_names() {
  static const std::vector<std::string> names{
      "pchase", "hashjoin",   // irregular
      "pipeline", "nbody",    // regular
  };
  return names;
}

std::vector<std::string> all_generator_workload_names() {
  std::vector<std::string> names = workload_names();
  const auto& extra = extra_workload_names();
  const auto& zoo = zoo_workload_names();
  names.insert(names.end(), extra.begin(), extra.end());
  names.insert(names.end(), zoo.begin(), zoo.end());
  return names;
}

}  // namespace uvmsim
