#include "workloads/common.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace uvmsim {

MapKernel::MapKernel(std::string name, std::vector<Operand> ops, std::uint64_t lines,
                     Options opt)
    : name_(std::move(name)), ops_(std::move(ops)), lines_(lines), opt_(opt) {}

void MapKernel::gen_task(std::uint64_t task, std::vector<Access>& out) const {
  const std::uint64_t first = task * opt_.lines_per_task;
  const std::uint64_t last = std::min(lines_, first + opt_.lines_per_task);
  const std::uint64_t line_bytes = static_cast<std::uint64_t>(opt_.count) * kWarpAccessBytes;
  out.reserve(out.size() + (last - first) * ops_.size());
  // Per-operand wrap capacity is line-invariant; hoist the divide out of the
  // line loop (this generator feeds the dense kernel2 scans, one call per
  // task on the simulation's critical path).
  std::array<std::uint64_t, 8> wraps{};
  const std::size_t nops = std::min<std::size_t>(ops_.size(), wraps.size());
  for (std::size_t i = 0; i < nops; ++i) {
    wraps[i] = std::max<std::uint64_t>(1, ops_[i].bytes / line_bytes);
  }
  for (std::uint64_t line = first; line < last; ++line) {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      const Operand& op = ops_[i];
      // Offsets wrap modulo the operand's line capacity so smaller arrays
      // are revisited (and become hot) rather than overrun.
      const std::uint64_t wrap_lines =
          i < nops ? wraps[i] : std::max<std::uint64_t>(1, op.bytes / line_bytes);
      const std::uint64_t op_line = (line >> op.stride_shift) % wrap_lines;
      const VirtAddr addr = op.base + op_line * line_bytes;
      std::uint32_t repeat = op.repeat;
      if (i == 0 && opt_.hot_line_every != 0 && line % opt_.hot_line_every == 0) {
        repeat += opt_.hot_extra;
      }
      for (std::uint32_t r = 0; r < repeat; ++r) {
        out.push_back(Access{addr, op.type, opt_.count, opt_.gap});
      }
    }
  }
}

Region make_region(AddressSpace& space, const std::string& name, std::uint64_t bytes) {
  const AllocId id = space.allocate(name, bytes);
  const Allocation& a = space.alloc(id);
  return Region{id, a.base, a.user_size};
}

std::uint64_t scaled_bytes(double base_mb, double scale) noexcept {
  const double bytes = base_mb * scale * 1024.0 * 1024.0;
  const auto blocks = static_cast<std::uint64_t>(std::llround(bytes / kBasicBlockSize));
  return std::max<std::uint64_t>(1, blocks) * kBasicBlockSize;
}

}  // namespace uvmsim
