// Workload zoo: four extra generator families registered for the trace
// record/replay corpus. They deliberately stress access shapes the paper's
// benchmarks and the generalization suite do not cover:
//
//   pchase    — pointer chasing over a permuted node table: long dependent
//               chains of single-line random reads (latency-bound, zero
//               spatial locality). Irregular.
//   hashjoin  — hash-join probe: sequentially streamed probe keys hashed
//               into a large bucket table (random RO lookups, skewed toward
//               hot buckets) with sparse match writes. Irregular.
//   pipeline  — decode/filter/encode streaming pipeline: three chained
//               map stages over a cold stream with a small hot LUT and a
//               re-used intermediate scratch buffer. Regular.
//   nbody     — tiled all-pairs force computation: the body array is
//               re-streamed once per tile (cyclic cold reuse) against hot
//               accumulators, followed by a sequential integrate pass.
//               Regular.
#include <algorithm>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/registry.hpp"

namespace uvmsim {

namespace {

// ---------------------------------------------------------------------------
// pchase
// ---------------------------------------------------------------------------

struct PchaseState {
  Region nodes;   ///< permuted node table — cold, random single-line reads
  Region heads;   ///< chain head table — small, hot
  std::uint64_t num_nodes = 0;
  std::uint64_t mul = 1;   ///< odd multiplier of the affine permutation
  std::uint64_t add = 0;   ///< offset of the affine permutation
  std::uint64_t seed = 0;
  std::uint16_t gap = 0;
};

class PchaseKernel final : public Kernel {
 public:
  PchaseKernel(std::shared_ptr<const PchaseState> st, std::uint32_t launch)
      : st_(std::move(st)), launch_(launch) {}
  [[nodiscard]] std::string name() const override { return "pchase_walk"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(st_->num_nodes, kHopsPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    Rng rng = task_rng(st_->seed, launch_, task);
    // Read the chain head, then follow `kHopsPerTask` dependent hops through
    // the affine permutation cur -> (mul*cur + add) mod N. Each hop is one
    // isolated 128 B read — the canonical worst case for prefetching.
    out.push_back(Access{align_line(st_->heads.at((task % st_->heads.lines(kWarpAccessBytes)) *
                                                  kWarpAccessBytes)),
                         AccessType::kRead, 1, st_->gap});
    std::uint64_t cur = rng.below(st_->num_nodes);
    for (std::uint64_t hop = 0; hop < kHopsPerTask; ++hop) {
      cur = (st_->mul * cur + st_->add) % st_->num_nodes;
      out.push_back(Access{align_line(st_->nodes.at(cur * kNodeBytes)), AccessType::kRead, 1,
                           st_->gap});
    }
    // Publish the chain tail back to the head table (read-modify-write).
    const VirtAddr head = align_line(
        st_->heads.at((task % st_->heads.lines(kWarpAccessBytes)) * kWarpAccessBytes));
    out.push_back(Access{head, AccessType::kWrite, 1, st_->gap});
  }

 private:
  static constexpr std::uint64_t kHopsPerTask = 96;
  static constexpr std::uint64_t kNodeBytes = 64;

  std::shared_ptr<const PchaseState> st_;
  std::uint32_t launch_;
};

class PchaseWorkload final : public Workload {
 public:
  explicit PchaseWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 2;
  }
  [[nodiscard]] std::string name() const override { return "pchase"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<PchaseState>();
    st_->nodes = make_region(space, "nodes", scaled_bytes(40, p_.scale));
    st_->heads = make_region(space, "chain_heads", scaled_bytes(0.5, p_.scale));
    st_->num_nodes = st_->nodes.bytes / 64;
    // Any odd multiplier is a bijection mod a power-of-two node count; the
    // region is block-rounded, so num_nodes is a power-of-two multiple of
    // 1024 and the golden-ratio odd constant below permutes it.
    st_->mul = 0x9e3779b97f4a7c15ull | 1ull;
    std::uint64_t s = p_.seed + 23;
    st_->add = splitmix64(s) | 1ull;
    st_->seed = p_.seed + 23;
    st_->gap = 900;  // dependent loads: nothing to overlap with
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(std::make_shared<PchaseKernel>(st_, i));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::shared_ptr<PchaseState> st_;
};

// ---------------------------------------------------------------------------
// hashjoin
// ---------------------------------------------------------------------------

struct HashjoinState {
  Region keys;     ///< probe keys — cold, streamed once per launch
  Region buckets;  ///< hash table — random RO lookups, skewed
  Region matches;  ///< join output — sparse sequential writes
  std::uint64_t key_lines = 0;
  std::uint64_t bucket_lines = 0;
  std::uint64_t hot_lines = 0;  ///< skew target: first `hot_lines` buckets
  std::uint64_t seed = 0;
  std::uint16_t gap = 0;
};

class HashjoinKernel final : public Kernel {
 public:
  HashjoinKernel(std::shared_ptr<const HashjoinState> st, std::uint32_t launch)
      : st_(std::move(st)), launch_(launch) {}
  [[nodiscard]] std::string name() const override { return "hashjoin_probe"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(st_->key_lines, kLinesPerTask);
  }

  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    Rng rng = task_rng(st_->seed, launch_, task);
    const std::uint64_t first = task * kLinesPerTask;
    const std::uint64_t last = std::min(st_->key_lines, first + kLinesPerTask);
    for (std::uint64_t l = first; l < last; ++l) {
      // Stream one line of probe keys...
      out.push_back(Access{st_->keys.at(l * 4 * kWarpAccessBytes), AccessType::kRead, 4,
                           st_->gap});
      // ...and probe one bucket per key line. 3 in 4 probes hit the small
      // hot region (Zipf-ish skew); the rest land anywhere in the table.
      const bool hot = rng.below(4) != 0;
      const std::uint64_t bucket =
          hot ? rng.below(st_->hot_lines) : rng.below(st_->bucket_lines);
      out.push_back(Access{st_->buckets.at(bucket * kWarpAccessBytes), AccessType::kRead, 1,
                           st_->gap});
      // Chained bucket: ~1 in 8 probes follow an overflow pointer.
      if (rng.below(8) == 0) {
        out.push_back(Access{st_->buckets.at(rng.below(st_->bucket_lines) * kWarpAccessBytes),
                             AccessType::kRead, 1, st_->gap});
      }
      // Sparse match output: ~1 in 4 probes produce a joined row.
      if (rng.below(4) == 0) {
        out.push_back(Access{st_->matches.at((l % st_->matches.lines(kWarpAccessBytes)) *
                                             kWarpAccessBytes),
                             AccessType::kWrite, 1, st_->gap});
      }
    }
  }

 private:
  static constexpr std::uint64_t kLinesPerTask = 24;
  std::shared_ptr<const HashjoinState> st_;
  std::uint32_t launch_;
};

class HashjoinWorkload final : public Workload {
 public:
  explicit HashjoinWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 2;
  }
  [[nodiscard]] std::string name() const override { return "hashjoin"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    st_ = std::make_shared<HashjoinState>();
    st_->keys = make_region(space, "probe_keys", scaled_bytes(24, p_.scale));
    st_->buckets = make_region(space, "hash_table", scaled_bytes(20, p_.scale));
    st_->matches = make_region(space, "matches", scaled_bytes(4, p_.scale));
    st_->key_lines = st_->keys.bytes / (4 * kWarpAccessBytes);
    st_->bucket_lines = st_->buckets.lines(kWarpAccessBytes);
    st_->hot_lines = std::max<std::uint64_t>(1, st_->bucket_lines / 16);
    st_->seed = p_.seed + 29;
    st_->gap = 400;
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(std::make_shared<HashjoinKernel>(st_, i));
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  std::shared_ptr<HashjoinState> st_;
};

// ---------------------------------------------------------------------------
// pipeline
// ---------------------------------------------------------------------------

class PipelineWorkload final : public Workload {
 public:
  explicit PipelineWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 2;
  }
  [[nodiscard]] std::string name() const override { return "pipeline"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    input_ = make_region(space, "raw_input", scaled_bytes(28, p_.scale));
    lut_ = make_region(space, "decode_lut", scaled_bytes(0.25, p_.scale));
    scratch_ = make_region(space, "scratch", scaled_bytes(14, p_.scale));
    output_ = make_region(space, "encoded_out", scaled_bytes(14, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    MapKernel::Options opt;
    opt.count = 8;
    opt.gap = 600;
    opt.lines_per_task = 32;

    // Stage 1: decode — stream the raw input through a hot LUT into scratch.
    auto decode = std::make_shared<MapKernel>(
        "pipe_decode",
        std::vector<MapKernel::Operand>{
            {input_.base, input_.bytes, AccessType::kRead, 0, 1},
            {lut_.base, lut_.bytes, AccessType::kRead, 3, 2},
            {scratch_.base, scratch_.bytes, AccessType::kWrite, 1, 1},
        },
        input_.lines(kLine), opt);
    // Stage 2: filter — scratch is re-read and compacted in place.
    auto filter = std::make_shared<MapKernel>(
        "pipe_filter",
        std::vector<MapKernel::Operand>{
            {scratch_.base, scratch_.bytes, AccessType::kRead, 0, 1},
            {scratch_.base, scratch_.bytes, AccessType::kWrite, 1, 1},
        },
        scratch_.lines(kLine), opt);
    // Stage 3: encode — scratch streams out to the encoded output.
    auto encode = std::make_shared<MapKernel>(
        "pipe_encode",
        std::vector<MapKernel::Operand>{
            {scratch_.base, scratch_.bytes, AccessType::kRead, 0, 1},
            {lut_.base, lut_.bytes, AccessType::kRead, 3, 1},
            {output_.base, output_.bytes, AccessType::kWrite, 0, 1},
        },
        scratch_.lines(kLine), opt);

    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(decode);
      seq.push_back(filter);
      seq.push_back(encode);
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  Region input_, lut_, scratch_, output_;
};

// ---------------------------------------------------------------------------
// nbody
// ---------------------------------------------------------------------------

class NbodyWorkload final : public Workload {
 public:
  explicit NbodyWorkload(WorkloadParams p) : p_(p) {
    if (p_.iterations == 0) p_.iterations = 2;
  }
  [[nodiscard]] std::string name() const override { return "nbody"; }
  [[nodiscard]] bool irregular() const override { return false; }

  void build(AddressSpace& space) override {
    bodies_ = make_region(space, "bodies", scaled_bytes(30, p_.scale));
    forces_ = make_region(space, "forces", scaled_bytes(7.5, p_.scale));
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    constexpr std::uint64_t kLine = 8ull * kWarpAccessBytes;
    // Tiled all-pairs: each force launch re-streams the full body array
    // against one tile's accumulators (stride_shift revisits the tile's
    // force lines while bodies stream past — cyclic cold reuse per tile).
    MapKernel::Options force_opt;
    force_opt.count = 8;
    force_opt.gap = 2500;  // O(n) flops per streamed line
    force_opt.lines_per_task = 32;
    auto force = std::make_shared<MapKernel>(
        "nbody_forces",
        std::vector<MapKernel::Operand>{
            {bodies_.base, bodies_.bytes, AccessType::kRead, 0, 1},
            {forces_.base, forces_.bytes, AccessType::kRead, 2, 1},
            {forces_.base, forces_.bytes, AccessType::kWrite, 2, 1},
        },
        bodies_.lines(kLine), force_opt);

    MapKernel::Options step_opt;
    step_opt.count = 8;
    step_opt.gap = 300;
    step_opt.lines_per_task = 64;
    auto integrate = std::make_shared<MapKernel>(
        "nbody_integrate",
        std::vector<MapKernel::Operand>{
            {forces_.base, forces_.bytes, AccessType::kRead, 0, 1},
            {bodies_.base, bodies_.bytes, AccessType::kRead, 0, 1},
            {bodies_.base, bodies_.bytes, AccessType::kWrite, 0, 1},
        },
        forces_.lines(kLine), step_opt);

    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint32_t i = 0; i < p_.iterations; ++i) {
      seq.push_back(force);  // tile pass 1
      seq.push_back(force);  // tile pass 2 (second half of the tiling)
      seq.push_back(integrate);
    }
    return seq;
  }

 private:
  WorkloadParams p_;
  Region bodies_, forces_;
};

}  // namespace

std::unique_ptr<Workload> make_pchase(const WorkloadParams& p) {
  return std::make_unique<PchaseWorkload>(p);
}
std::unique_ptr<Workload> make_hashjoin(const WorkloadParams& p) {
  return std::make_unique<HashjoinWorkload>(p);
}
std::unique_ptr<Workload> make_pipeline(const WorkloadParams& p) {
  return std::make_unique<PipelineWorkload>(p);
}
std::unique_ptr<Workload> make_nbody(const WorkloadParams& p) {
  return std::make_unique<NbodyWorkload>(p);
}

}  // namespace uvmsim
