#include "trace/trace.hpp"

#include <algorithm>
#include <ostream>

namespace uvmsim {

PageHistogram::PageHistogram(const AddressSpace& space) : space_(space) {
  const std::uint64_t pages = space.span_end() >> kPageShift;
  reads_.assign(pages, 0);
  writes_.assign(pages, 0);
}

void PageHistogram::on_access(Cycle /*now*/, VirtAddr addr, AccessType type,
                              std::uint32_t count, bool /*device_resident*/) {
  const PageNum p = page_of(addr);
  if (p >= reads_.size()) return;
  if (type == AccessType::kWrite) {
    writes_[p] += count;
  } else {
    reads_[p] += count;
  }
}

std::vector<PageHistogram::AllocSummary> PageHistogram::summarize() const {
  std::vector<AllocSummary> out;
  for (const Allocation& a : space_.allocations()) {
    AllocSummary s;
    s.name = a.name;
    const PageNum first = page_of(a.base);
    const PageNum last = page_of(a.base + a.padded_size - 1);
    s.pages = last - first + 1;
    std::vector<std::uint64_t> touched;
    for (PageNum p = first; p <= last; ++p) {
      const std::uint64_t t = reads_[p] + writes_[p];
      if (t == 0) continue;
      ++s.touched_pages;
      s.total_accesses += t;
      s.max_page_accesses = std::max(s.max_page_accesses, t);
      if (writes_[p] == 0) {
        ++s.read_only_pages;
      } else {
        ++s.written_pages;
      }
      touched.push_back(t);
    }
    if (!touched.empty()) {
      s.mean_accesses_per_touched_page =
          static_cast<double>(s.total_accesses) / static_cast<double>(touched.size());
      std::sort(touched.begin(), touched.end(), std::greater<>());
      const std::size_t decile = std::max<std::size_t>(1, touched.size() / 10);
      std::uint64_t top = 0;
      for (std::size_t i = 0; i < decile; ++i) top += touched[i];
      s.top_decile_share = static_cast<double>(top) / static_cast<double>(s.total_accesses);
    }
    out.push_back(std::move(s));
  }
  return out;
}

void PageHistogram::write_csv(std::ostream& os) const {
  os << "allocation,page_index,reads,writes\n";
  for (const Allocation& a : space_.allocations()) {
    const PageNum first = page_of(a.base);
    const PageNum last = page_of(a.base + a.padded_size - 1);
    for (PageNum p = first; p <= last; ++p) {
      if (reads_[p] + writes_[p] == 0) continue;
      os << a.name << ',' << (p - first) << ',' << reads_[p] << ',' << writes_[p] << '\n';
    }
  }
}

void TimeSeriesSampler::on_access(Cycle now, VirtAddr addr, AccessType type,
                                  std::uint32_t /*count*/, bool /*device_resident*/) {
  if (seen_++ % stride_ != 0) return;
  samples_.push_back(Sample{now, page_of(addr), launch_, type});
}

void TimeSeriesSampler::on_kernel_begin(std::uint32_t launch_index, const std::string& name) {
  launch_ = launch_index;
  names_.resize(std::max<std::size_t>(names_.size(), launch_index + 1));
  names_[launch_index] = name;
}

void TimeSeriesSampler::write_csv(std::ostream& os) const {
  os << "cycle,page,launch,kernel,type\n";
  for (const Sample& s : samples_) {
    os << s.cycle << ',' << s.page << ',' << s.launch << ','
       << (s.launch < names_.size() ? names_[s.launch] : "") << ','
       << (s.type == AccessType::kWrite ? 'W' : 'R') << '\n';
  }
}

}  // namespace uvmsim
