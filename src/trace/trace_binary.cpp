#include "trace/trace_binary.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <utility>

namespace uvmsim {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

constexpr std::uint8_t kFlagWrite = 1;
constexpr std::uint8_t kFlagHasCount = 2;
constexpr std::uint8_t kFlagHasGap = 4;
constexpr std::uint8_t kFlagKnownMask = kFlagWrite | kFlagHasCount | kFlagHasGap;

constexpr char kChunkTag = 'C';
constexpr char kFooterTag = 'F';

// Sanity bounds on directory cardinalities: generous for any real trace,
// tight enough that a garbage count cannot drive a huge allocation.
constexpr std::uint64_t kMaxNameLen = 1u << 20;
constexpr std::uint64_t kMaxAllocs = 1u << 20;
constexpr std::uint64_t kMaxLaunches = 1u << 24;
constexpr std::uint64_t kMaxChunks = 1u << 24;

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void put_string(std::string& out, const std::string& s) {
  if (s.size() > kMaxNameLen) throw TraceError("TraceWriter: absurd string length");
  put_varint(out, s.size());
  out.append(s);
}

/// Bounds-checked cursor over an in-memory byte range; every overrun or
/// malformed varint becomes a TraceError tagged with `what`.
struct Cursor {
  const unsigned char* p;
  const unsigned char* end;
  const char* what;

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end - p);
  }
  [[nodiscard]] std::uint8_t u8() {
    if (p >= end) throw TraceError(std::string(what) + ": truncated");
    return *p++;
  }
  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int i = 0; i < 10; ++i) {
      const std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
      if ((b & 0x80) == 0) {
        // The 10th byte can only carry the top bit of a u64.
        if (i == 9 && (b & 0x7e) != 0)
          throw TraceError(std::string(what) + ": varint overflows 64 bits");
        return v;
      }
    }
    throw TraceError(std::string(what) + ": varint overflows 64 bits");
  }
  [[nodiscard]] std::string str(std::uint64_t max_len) {
    const std::uint64_t n = varint();
    if (n > max_len) throw TraceError(std::string(what) + ": absurd string length");
    if (n > remaining()) throw TraceError(std::string(what) + ": truncated string");
    std::string s(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
    p += n;
    return s;
  }
};

/// Decode one task's record stream from `cur` into `out`. Shared by the
/// chunk loader and the converter so both enforce identical validation.
void decode_task(Cursor& cur, std::uint64_t span_end, std::vector<Access>& out) {
  const std::uint64_t n = cur.varint();
  // Every record is at least 2 bytes (flags + delta), so a count larger
  // than the remaining payload could ever hold is garbage — reject before
  // reserving anything.
  if (n > cur.remaining() / 2 + 1)
    throw TraceError("UVMTRB1 chunk: record count exceeds payload");
  if (n == 0) throw TraceError("UVMTRB1 chunk: empty task record stream");
  out.reserve(out.size() + static_cast<std::size_t>(n));
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint8_t flags = cur.u8();
    if ((flags & ~kFlagKnownMask) != 0)
      throw TraceError("UVMTRB1 chunk: unknown record flag bits");
    const std::int64_t delta = unzigzag(cur.varint());
    const std::uint64_t addr = prev + static_cast<std::uint64_t>(delta);
    prev = addr;
    std::uint64_t count = 1;
    if ((flags & kFlagHasCount) != 0) {
      count = cur.varint();
      if (count == 0 || count > 0xffff)
        throw TraceError("UVMTRB1 chunk: record count out of range");
    }
    std::uint64_t gap = 0;
    if ((flags & kFlagHasGap) != 0) {
      gap = cur.varint();
      if (gap > 0xffff) throw TraceError("UVMTRB1 chunk: record gap out of range");
    }
    if (addr >= span_end || count * kWarpAccessBytes > span_end - addr)
      throw TraceError("UVMTRB1 chunk: access outside the allocated span");
    Access a;
    a.addr = addr;
    a.type = (flags & kFlagWrite) != 0 ? AccessType::kWrite : AccessType::kRead;
    a.count = static_cast<std::uint16_t>(count);
    a.gap = static_cast<std::uint16_t>(gap);
    out.push_back(a);
  }
}

void encode_task(std::string& payload, const std::vector<Access>& accesses) {
  put_varint(payload, accesses.size());
  std::uint64_t prev = 0;
  for (const Access& a : accesses) {
    std::uint8_t flags = 0;
    if (a.type == AccessType::kWrite) flags |= kFlagWrite;
    if (a.count != 1) flags |= kFlagHasCount;
    if (a.gap != 0) flags |= kFlagHasGap;
    payload.push_back(static_cast<char>(flags));
    const std::int64_t delta =
        static_cast<std::int64_t>(a.addr) - static_cast<std::int64_t>(prev);
    put_varint(payload, zigzag(delta));
    prev = a.addr;
    if ((flags & kFlagHasCount) != 0) put_varint(payload, a.count);
    if ((flags & kFlagHasGap) != 0) put_varint(payload, a.gap);
  }
}

/// Rebuild the allocation span a trace describes; the decode-time bound for
/// out-of-range addresses. Throws TraceError on a nonsensical layout.
[[nodiscard]] std::uint64_t rebuild_span(const std::vector<TraceAllocInfo>& allocs) {
  AddressSpace space;
  for (const TraceAllocInfo& a : allocs) {
    if (a.user_size == 0) throw TraceError("UVMTRB1 footer: zero-sized allocation");
    try {
      (void)space.allocate(a.name, a.user_size);
    } catch (const std::exception& e) {
      throw TraceError(std::string("UVMTRB1 footer: bad allocation layout: ") + e.what());
    }
  }
  return space.span_end();
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// --------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(std::ostream& os, Provenance prov, Limits limits)
    : os_(os), prov_(std::move(prov)), limits_(limits), hash_(kFnvOffset) {
  if (limits_.max_tasks_per_chunk == 0) limits_.max_tasks_per_chunk = 1;
  hashed_write(kTrbMagic.data(), kTrbMagic.size());
  const std::uint32_t version = kTrbVersion;
  const std::uint32_t flags = 0;
  hashed_write(&version, sizeof version);
  hashed_write(&flags, sizeof flags);
  hashed_write(&prov_.config_digest, sizeof prov_.config_digest);
  // footer_offset and total_records: placeholders, patched by finalize()
  // (and mixed into the content hash there, once their values are known).
  const std::uint64_t zero = 0;
  os_.write(reinterpret_cast<const char*>(&zero), sizeof zero);
  os_.write(reinterpret_cast<const char*>(&zero), sizeof zero);
  pos_ += 2 * sizeof zero;
}

void TraceWriter::hashed_write(const void* data, std::size_t len) {
  hash_ = fnv1a64(data, len, hash_);
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  pos_ += len;
}

void TraceWriter::on_layout(const AddressSpace& space) {
  std::vector<TraceAllocInfo> allocs;
  allocs.reserve(space.allocations().size());
  for (const Allocation& a : space.allocations())
    allocs.push_back(TraceAllocInfo{a.name, a.user_size});
  set_allocations(std::move(allocs));
}

void TraceWriter::set_allocations(std::vector<TraceAllocInfo> allocs) {
  allocs_ = std::move(allocs);
}

void TraceWriter::begin_launch(const std::string& kernel) {
  if (finalized_) throw std::logic_error("TraceWriter: begin_launch after finalize");
  flush_chunk();
  TraceLaunchInfo l;
  l.kernel = kernel;
  l.first_chunk = chunks_.size();
  launches_.push_back(std::move(l));
}

void TraceWriter::append_task(const std::vector<Access>& accesses) {
  if (finalized_) throw std::logic_error("TraceWriter: append_task after finalize");
  if (accesses.empty()) return;  // empty tasks are never recorded
  if (launches_.empty()) begin_launch("<implicit>");
  if (chunk_tasks_ == 0) chunk_first_task_ = launches_.back().num_tasks;
  encode_task(payload_, accesses);
  ++chunk_tasks_;
  ++launches_.back().num_tasks;
  launches_.back().num_records += accesses.size();
  total_records_ += accesses.size();
  ++total_tasks_;
  if (chunk_tasks_ >= limits_.max_tasks_per_chunk ||
      payload_.size() >= limits_.soft_payload_bytes) {
    flush_chunk();
  }
}

void TraceWriter::flush_chunk() {
  if (chunk_tasks_ == 0) return;
  TraceChunkInfo c;
  c.launch = static_cast<std::uint32_t>(launches_.size() - 1);
  c.first_task = chunk_first_task_;
  c.num_tasks = chunk_tasks_;
  c.offset = pos_;
  c.payload_bytes = payload_.size();
  ++launches_.back().num_chunks;

  std::string header;
  header.push_back(kChunkTag);
  put_varint(header, c.launch);
  put_varint(header, c.first_task);
  put_varint(header, c.num_tasks);
  put_varint(header, c.payload_bytes);
  hashed_write(header.data(), header.size());
  hashed_write(payload_.data(), payload_.size());

  chunks_.push_back(c);
  payload_.clear();
  chunk_tasks_ = 0;
}

void TraceWriter::finalize() {
  if (finalized_) throw std::logic_error("TraceWriter: finalize called twice");
  flush_chunk();
  const std::uint64_t footer_offset = pos_;
  // The two patched header fields join the hash here, once their final
  // values are known — so a flipped byte anywhere in [24, 40) is caught by
  // verify() exactly like any other corruption.
  hash_ = fnv1a64(&footer_offset, sizeof footer_offset, hash_);
  hash_ = fnv1a64(&total_records_, sizeof total_records_, hash_);

  std::string footer;
  footer.push_back(kFooterTag);
  put_varint(footer, allocs_.size());
  for (const TraceAllocInfo& a : allocs_) {
    put_string(footer, a.name);
    put_varint(footer, a.user_size);
  }
  put_varint(footer, launches_.size());
  for (const TraceLaunchInfo& l : launches_) {
    put_string(footer, l.kernel);
    put_varint(footer, l.num_tasks);
    put_varint(footer, l.num_records);
    put_varint(footer, l.first_chunk);
    put_varint(footer, l.num_chunks);
  }
  put_varint(footer, chunks_.size());
  for (const TraceChunkInfo& c : chunks_) {
    put_varint(footer, c.launch);
    put_varint(footer, c.first_task);
    put_varint(footer, c.num_tasks);
    put_varint(footer, c.offset);
    put_varint(footer, c.payload_bytes);
  }
  put_string(footer, prov_.workload);
  put_varint(footer, prov_.seed);
  hashed_write(footer.data(), footer.size());
  os_.write(reinterpret_cast<const char*>(&hash_), sizeof hash_);
  pos_ += sizeof hash_;

  os_.seekp(24);
  os_.write(reinterpret_cast<const char*>(&footer_offset), sizeof footer_offset);
  os_.write(reinterpret_cast<const char*>(&total_records_), sizeof total_records_);
  os_.seekp(0, std::ios::end);
  if (!os_) throw TraceError("TraceWriter: stream write failed (need a seekable sink)");
  finalized_ = true;
}

// --------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(std::string path) : path_(std::move(path)) {
  is_.open(path_, std::ios::binary | std::ios::ate);
  if (!is_) throw TraceError("UVMTRB1: cannot open " + path_);
  file_bytes_ = static_cast<std::uint64_t>(is_.tellg());
  // Smallest well-formed file: header + 'F' + five zero counts + empty
  // provenance + seed + hash.
  if (file_bytes_ < 40 + 1 + 8) throw TraceError("UVMTRB1: truncated file " + path_);

  unsigned char header[40];
  is_.seekg(0);
  is_.read(reinterpret_cast<char*>(header), sizeof header);
  if (!is_) throw TraceError("UVMTRB1: truncated header in " + path_);
  if (std::memcmp(header, kTrbMagic.data(), kTrbMagic.size()) != 0)
    throw TraceError("UVMTRB1: bad magic in " + path_);
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::memcpy(&version, header + 8, sizeof version);
  std::memcpy(&flags, header + 12, sizeof flags);
  if (version != kTrbVersion)
    throw TraceError("UVMTRB1: unsupported version " + std::to_string(version) + " in " +
                     path_);
  if (flags != 0) throw TraceError("UVMTRB1: unsupported header flags in " + path_);
  std::memcpy(&meta_.config_digest, header + 16, sizeof meta_.config_digest);
  std::memcpy(&footer_offset_, header + 24, sizeof footer_offset_);
  std::memcpy(&meta_.total_records, header + 32, sizeof meta_.total_records);
  meta_.version = version;

  // Overflow-safe form of `footer_offset_ + 9 > file_bytes_`: the stored
  // offset is untrusted, and values near 2^64 would wrap the addition past
  // the check (then underflow footer_len below). file_bytes_ >= 49 here.
  if (footer_offset_ < sizeof header || footer_offset_ > file_bytes_ - 9)
    throw TraceError("UVMTRB1: footer offset out of range in " + path_);

  // Parse the footer (directory + provenance + stored hash).
  const std::size_t footer_len = static_cast<std::size_t>(file_bytes_ - footer_offset_);
  std::vector<unsigned char> footer(footer_len);
  is_.seekg(static_cast<std::streamoff>(footer_offset_));
  is_.read(reinterpret_cast<char*>(footer.data()), static_cast<std::streamsize>(footer_len));
  if (!is_) throw TraceError("UVMTRB1: truncated footer in " + path_);
  std::memcpy(&stored_hash_, footer.data() + footer_len - 8, sizeof stored_hash_);

  Cursor cur{footer.data(), footer.data() + footer_len - 8, "UVMTRB1 footer"};
  if (cur.u8() != static_cast<std::uint8_t>(kFooterTag))
    throw TraceError("UVMTRB1: bad footer tag in " + path_);
  const std::uint64_t num_allocs = cur.varint();
  if (num_allocs > kMaxAllocs) throw TraceError("UVMTRB1 footer: absurd allocation count");
  meta_.allocations.reserve(static_cast<std::size_t>(num_allocs));
  for (std::uint64_t i = 0; i < num_allocs; ++i) {
    TraceAllocInfo a;
    a.name = cur.str(kMaxNameLen);
    a.user_size = cur.varint();
    meta_.allocations.push_back(std::move(a));
  }
  const std::uint64_t num_launches = cur.varint();
  if (num_launches > kMaxLaunches) throw TraceError("UVMTRB1 footer: absurd launch count");
  meta_.launches.reserve(static_cast<std::size_t>(num_launches));
  for (std::uint64_t i = 0; i < num_launches; ++i) {
    TraceLaunchInfo l;
    l.kernel = cur.str(kMaxNameLen);
    l.num_tasks = cur.varint();
    l.num_records = cur.varint();
    l.first_chunk = cur.varint();
    l.num_chunks = cur.varint();
    meta_.launches.push_back(std::move(l));
  }
  const std::uint64_t num_chunks = cur.varint();
  if (num_chunks > kMaxChunks) throw TraceError("UVMTRB1 footer: absurd chunk count");
  chunks_.reserve(static_cast<std::size_t>(num_chunks));
  for (std::uint64_t i = 0; i < num_chunks; ++i) {
    TraceChunkInfo c;
    const std::uint64_t launch = cur.varint();
    if (launch >= num_launches)
      throw TraceError("UVMTRB1 footer: chunk references unknown launch");
    c.launch = static_cast<std::uint32_t>(launch);
    c.first_task = cur.varint();
    const std::uint64_t tasks = cur.varint();
    if (tasks == 0 || tasks > std::numeric_limits<std::uint32_t>::max())
      throw TraceError("UVMTRB1 footer: chunk task count out of range");
    c.num_tasks = static_cast<std::uint32_t>(tasks);
    c.offset = cur.varint();
    c.payload_bytes = cur.varint();
    if (c.offset < 40 || c.offset >= footer_offset_ ||
        c.payload_bytes > footer_offset_ - c.offset)
      throw TraceError("UVMTRB1 footer: chunk frame outside the chunk region");
    chunks_.push_back(c);
  }
  meta_.workload = cur.str(kMaxNameLen);
  meta_.seed = cur.varint();
  if (cur.remaining() != 0) throw TraceError("UVMTRB1 footer: trailing bytes in " + path_);

  // Cross-check the directory: launches partition the chunk list in order,
  // chunk task ranges tile each launch, record totals add up.
  std::uint64_t chunk_cursor = 0;
  std::uint64_t record_total = 0;
  for (std::size_t li = 0; li < meta_.launches.size(); ++li) {
    const TraceLaunchInfo& l = meta_.launches[li];
    if (l.first_chunk != chunk_cursor ||
        l.num_chunks > chunks_.size() - chunk_cursor)
      throw TraceError("UVMTRB1 footer: launch chunk ranges do not partition the directory");
    std::uint64_t task_cursor = 0;
    for (std::uint64_t ci = 0; ci < l.num_chunks; ++ci) {
      const TraceChunkInfo& c = chunks_[static_cast<std::size_t>(chunk_cursor + ci)];
      if (c.launch != li || c.first_task != task_cursor)
        throw TraceError("UVMTRB1 footer: chunk directory disagrees with launch directory");
      task_cursor += c.num_tasks;
    }
    if (task_cursor != l.num_tasks)
      throw TraceError("UVMTRB1 footer: launch task count disagrees with its chunks");
    if (l.num_tasks > 0 && l.num_records == 0)
      throw TraceError("UVMTRB1 footer: launch with tasks but no records");
    chunk_cursor += l.num_chunks;
    record_total += l.num_records;
  }
  if (chunk_cursor != chunks_.size())
    throw TraceError("UVMTRB1 footer: orphan chunks outside any launch");
  if (record_total != meta_.total_records)
    throw TraceError("UVMTRB1 footer: record totals disagree with the header");

  span_end_ = rebuild_span(meta_.allocations);
}

void TraceReader::load_chunk(std::size_t chunk_index) {
  const TraceChunkInfo& c = chunks_[chunk_index];
  // Frame header: tag + four varints, at most 41 bytes.
  unsigned char hdr[48];
  const std::size_t hdr_avail = static_cast<std::size_t>(
      std::min<std::uint64_t>(sizeof hdr, footer_offset_ - c.offset));
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(c.offset));
  is_.read(reinterpret_cast<char*>(hdr), static_cast<std::streamsize>(hdr_avail));
  if (!is_ && is_.gcount() != static_cast<std::streamsize>(hdr_avail))
    throw TraceError("UVMTRB1: short read of chunk frame in " + path_);
  Cursor cur{hdr, hdr + hdr_avail, "UVMTRB1 chunk header"};
  if (cur.u8() != static_cast<std::uint8_t>(kChunkTag))
    throw TraceError("UVMTRB1: bad chunk tag in " + path_);
  const std::uint64_t launch = cur.varint();
  const std::uint64_t first_task = cur.varint();
  const std::uint64_t num_tasks = cur.varint();
  const std::uint64_t payload_bytes = cur.varint();
  if (launch != c.launch || first_task != c.first_task || num_tasks != c.num_tasks ||
      payload_bytes != c.payload_bytes)
    throw TraceError("UVMTRB1: chunk frame disagrees with the footer directory");
  const std::uint64_t header_len = static_cast<std::uint64_t>(cur.p - hdr);
  if (c.offset + header_len + payload_bytes > footer_offset_)
    throw TraceError("UVMTRB1: chunk payload overruns the chunk region");

  std::vector<unsigned char> payload(static_cast<std::size_t>(payload_bytes));
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(c.offset + header_len));
  is_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  if (!is_ && is_.gcount() != static_cast<std::streamsize>(payload.size()))
    throw TraceError("UVMTRB1: short read of chunk payload in " + path_);

  std::vector<std::vector<Access>> tasks(c.num_tasks);
  Cursor body{payload.data(), payload.data() + payload.size(), "UVMTRB1 chunk"};
  std::uint64_t decoded = 0;
  for (std::uint32_t t = 0; t < c.num_tasks; ++t) {
    decode_task(body, span_end_, tasks[t]);
    decoded += tasks[t].size();
  }
  if (body.remaining() != 0)
    throw TraceError("UVMTRB1: trailing bytes in chunk payload");

  cached_tasks_.swap(tasks);
  cached_chunk_ = chunk_index;
  const std::uint64_t resident =
      decoded * sizeof(Access) + cached_tasks_.size() * sizeof(std::vector<Access>);
  if (resident > peak_decoded_) peak_decoded_ = resident;
}

void TraceReader::read_task(std::uint32_t launch, std::uint64_t task,
                            std::vector<Access>& out) {
  if (launch >= meta_.launches.size())
    throw TraceError("UVMTRB1: launch index out of range");
  const TraceLaunchInfo& l = meta_.launches[launch];
  if (task >= l.num_tasks) throw TraceError("UVMTRB1: task index out of range");

  const bool cached =
      cached_chunk_ != static_cast<std::size_t>(-1) &&
      chunks_[cached_chunk_].launch == launch &&
      task >= chunks_[cached_chunk_].first_task &&
      task < chunks_[cached_chunk_].first_task + chunks_[cached_chunk_].num_tasks;
  if (!cached) {
    // Binary search the launch's chunk range for the frame holding `task`.
    std::size_t lo = static_cast<std::size_t>(l.first_chunk);
    std::size_t hi = lo + static_cast<std::size_t>(l.num_chunks);
    while (hi - lo > 1) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (chunks_[mid].first_task <= task) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    load_chunk(lo);
  }
  const TraceChunkInfo& c = chunks_[cached_chunk_];
  const std::vector<Access>& accesses =
      cached_tasks_[static_cast<std::size_t>(task - c.first_task)];
  out.insert(out.end(), accesses.begin(), accesses.end());
}

void TraceReader::verify() {
  // Pass 1: recompute the content hash over the whole file (header prefix,
  // chunk region, patched header values, footer) and compare.
  unsigned char buf[65536];
  is_.clear();
  is_.seekg(0);
  is_.read(reinterpret_cast<char*>(buf), 40);
  if (!is_) throw TraceError("UVMTRB1: truncated header in " + path_);
  std::uint64_t h = fnv1a64(buf, 24, kFnvOffset);  // [24,40) joins after the chunks
  std::uint64_t left = footer_offset_ - 40;
  while (left > 0) {
    const std::size_t take = static_cast<std::size_t>(std::min<std::uint64_t>(left, sizeof buf));
    is_.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(take));
    if (!is_ && is_.gcount() != static_cast<std::streamsize>(take))
      throw TraceError("UVMTRB1: short read while verifying " + path_);
    h = fnv1a64(buf, take, h);
    left -= take;
  }
  h = fnv1a64(&footer_offset_, sizeof footer_offset_, h);
  h = fnv1a64(&meta_.total_records, sizeof meta_.total_records, h);
  std::uint64_t footer_left = file_bytes_ - footer_offset_ - 8;
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(footer_offset_));
  while (footer_left > 0) {
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(footer_left, sizeof buf));
    is_.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(take));
    if (!is_ && is_.gcount() != static_cast<std::streamsize>(take))
      throw TraceError("UVMTRB1: short read while verifying " + path_);
    h = fnv1a64(buf, take, h);
    footer_left -= take;
  }
  if (h != stored_hash_)
    throw TraceError("UVMTRB1: content hash mismatch (corrupted trace) in " + path_);

  // Pass 2: decode every chunk (frame headers are cross-checked against the
  // directory by load_chunk) and re-tally the record counts.
  std::vector<std::uint64_t> launch_records(meta_.launches.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    load_chunk(i);
    std::uint64_t records = 0;
    for (const std::vector<Access>& t : cached_tasks_) records += t.size();
    launch_records[chunks_[i].launch] += records;
    total += records;
  }
  for (std::size_t li = 0; li < meta_.launches.size(); ++li) {
    if (launch_records[li] != meta_.launches[li].num_records)
      throw TraceError("UVMTRB1: decoded record count disagrees with the directory");
  }
  if (total != meta_.total_records)
    throw TraceError("UVMTRB1: decoded record total disagrees with the header");
}

// --------------------------------------------------------------------------
// Format conversions

void write_trb(std::ostream& os, const RecordedTrace& trace, TraceWriter::Provenance prov,
               std::uint64_t records_per_task) {
  if (records_per_task == 0) records_per_task = 1;
  TraceWriter w(os, std::move(prov));
  std::vector<TraceAllocInfo> allocs;
  allocs.reserve(trace.allocations.size());
  for (const auto& [name, size] : trace.allocations)
    allocs.push_back(TraceAllocInfo{name, size});
  w.set_allocations(std::move(allocs));
  std::vector<Access> task;
  for (const RecordedLaunch& l : trace.launches) {
    // Launches with no records are dropped: TraceWorkload (the UVMTRC1
    // replayer) skips them too, so both replays see the same launch count.
    if (l.records.empty()) continue;
    w.begin_launch(l.kernel);
    for (std::size_t i = 0; i < l.records.size(); i += records_per_task) {
      const std::size_t last =
          std::min(l.records.size(), i + static_cast<std::size_t>(records_per_task));
      task.clear();
      for (std::size_t r = i; r < last; ++r) {
        const TraceRecord& rec = l.records[r];
        task.push_back(Access{rec.addr, rec.type, rec.count, rec.gap});
      }
      w.append_task(task);
    }
  }
  w.finalize();
}

RecordedTrace read_trb_as_recorded(const std::string& path) {
  TraceReader reader(path);
  RecordedTrace out;
  for (const TraceAllocInfo& a : reader.meta().allocations)
    out.allocations.emplace_back(a.name, a.user_size);
  std::vector<Access> task;
  for (std::size_t li = 0; li < reader.meta().launches.size(); ++li) {
    const TraceLaunchInfo& l = reader.meta().launches[li];
    RecordedLaunch rl;
    rl.kernel = l.kernel;
    rl.records.reserve(static_cast<std::size_t>(l.num_records));
    for (std::uint64_t t = 0; t < l.num_tasks; ++t) {
      task.clear();
      reader.read_task(static_cast<std::uint32_t>(li), t, task);
      for (const Access& a : task)
        rl.records.push_back(TraceRecord{a.addr, a.count, a.type, a.gap});
    }
    out.launches.push_back(std::move(rl));
  }
  return out;
}

RecordedTrace load_any_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw TraceError("trace: cannot open " + path);
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is) throw TraceError("trace: truncated file " + path);
  if (magic == kTrbMagic) return read_trb_as_recorded(path);
  is.seekg(0);
  try {
    return RecordedTrace::load(is);
  } catch (const std::exception& e) {
    throw TraceError(std::string(e.what()) + " (" + path + ")");
  }
}

}  // namespace uvmsim
