// Tracing hooks for the workload-characterization figures (Figs 2 and 3 of
// the paper): per-page access-frequency histograms split by access type, and
// down-sampled (cycle, page) time series tagged with the kernel launch index.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "sim/types.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

/// Receives every GPU access when SimConfig::collect_traces is set.
///
/// Beyond the access stream, the driver also reports its memory-management
/// *decisions* through the default-no-op hooks below. They exist for
/// lockstep oracles (check/refmodel.hpp): an observer that maintains an
/// independent copy of the driver state needs to see exactly which policy
/// decision was taken, which blocks were evicted/migrated and when transfers
/// landed. All hooks are pure observation — the driver never changes
/// behavior based on an attached sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                         bool device_resident) = 0;
  /// Called by the simulator before each kernel launch.
  virtual void on_kernel_begin(std::uint32_t launch_index, const std::string& name) = 0;

  /// The allocation layout, reported by the simulator once the workload has
  /// built its address space (after advice hooks ran), before any launch.
  virtual void on_layout(const AddressSpace& /*space*/) {}
  /// One non-empty task access stream, reported by the GPU model at the
  /// moment a warp claims the task — i.e. in exact hand-out order. Because
  /// warps claim tasks dynamically, this order (not the task ids) is what a
  /// recorder must preserve to replay a run bit-identically. `task` is the
  /// kernel-assigned id; empty tasks are skipped and never reported.
  virtual void on_task(std::uint64_t /*task*/, const std::vector<Access>& /*accesses*/) {}

  /// Policy consultation for a host-resident block: fires immediately after
  /// on_access() for the same access, carrying the counter snapshot the
  /// policy saw and the final decision (advice/throttle overrides applied).
  virtual void on_decision(Cycle /*now*/, VirtAddr /*addr*/, AccessType /*type*/,
                           std::uint32_t /*post_count*/, std::uint32_t /*round_trips*/,
                           MigrationDecision /*decision*/, bool /*write_forced*/) {}
  /// One eviction pass: `victims` (all in one 2 MB chunk) were selected
  /// while servicing a fault on `faulting_chunk` and are now host-resident.
  virtual void on_eviction(Cycle /*now*/, ChunkNum /*faulting_chunk*/,
                           const std::vector<BlockNum>& /*victims*/) {}
  /// A block transfer H2D was enqueued (device space already reserved).
  /// `demand` distinguishes demand faults from prefetch expansion.
  virtual void on_migration(Cycle /*now*/, BlockNum /*block*/, bool /*demand*/) {}
  /// An in-flight migration landed; the block is device-resident now.
  virtual void on_arrival(Cycle /*now*/, BlockNum /*block*/) {}
  /// The device ran out of free space (DeviceMemory::note_full — the sticky
  /// event that gates the "Oversub" static scheme).
  virtual void on_device_full(Cycle /*now*/) {}
  /// The fault engine drained a batch of `blocks` faults at `start`; the
  /// 45 us handling completes (and servicing begins) at `end`.
  virtual void on_fault_batch(Cycle /*start*/, Cycle /*end*/, std::size_t /*blocks*/) {}
  /// An access saturated its counter and the whole table was halved;
  /// `total_halvings` is the run-cumulative count after this halving.
  virtual void on_counter_halving(Cycle /*now*/, std::uint64_t /*total_halvings*/) {}
  /// The thrash throttle (mitigation ablations) pinned `block` to host
  /// memory until cycle `until`.
  virtual void on_throttle_pin(Cycle /*now*/, BlockNum /*block*/, Cycle /*until*/) {}
  /// Chunk `c` was promoted to a coalesced 2 MB mapping (mem.coalescing,
  /// docs/GRANULARITY.md). Fires right after the arrival that completed the
  /// chunk, i.e. after on_arrival() for that block.
  virtual void on_coalesce(Cycle /*now*/, ChunkNum /*c*/) {}
  /// Coalesced chunk `c` splintered back to per-block mappings. For the
  /// eviction reasons this fires inside the eviction pass, before the
  /// on_eviction() hook reporting the victims.
  virtual void on_splinter(Cycle /*now*/, ChunkNum /*c*/, SplinterReason /*reason*/) {}
};

/// Fig 2: per-4KB-page access counts, split into read-only pages and pages
/// that were also written, reported per allocation.
class PageHistogram final : public TraceSink {
 public:
  explicit PageHistogram(const AddressSpace& space);

  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override;
  void on_kernel_begin(std::uint32_t, const std::string&) override {}

  [[nodiscard]] std::uint64_t reads(PageNum p) const { return reads_.at(p); }
  [[nodiscard]] std::uint64_t writes(PageNum p) const { return writes_.at(p); }
  [[nodiscard]] std::uint64_t total(PageNum p) const { return reads_.at(p) + writes_.at(p); }

  /// Per-allocation summary used by the Fig 2 harness.
  struct AllocSummary {
    std::string name;
    std::uint64_t pages = 0;
    std::uint64_t touched_pages = 0;
    std::uint64_t read_only_pages = 0;   ///< touched, never written
    std::uint64_t written_pages = 0;
    std::uint64_t total_accesses = 0;
    std::uint64_t max_page_accesses = 0;
    double mean_accesses_per_touched_page = 0.0;
    /// Fraction of all accesses landing on the hottest 10 % of touched pages
    /// (1.0 = perfectly skewed, ~0.1 = perfectly uniform).
    double top_decile_share = 0.0;
  };
  [[nodiscard]] std::vector<AllocSummary> summarize() const;

  /// CSV: allocation,page_index,reads,writes.
  void write_csv(std::ostream& os) const;

 private:
  const AddressSpace& space_;
  std::vector<std::uint64_t> reads_;
  std::vector<std::uint64_t> writes_;
};

/// Fig 3: down-sampled access time series (one row every `stride` accesses).
class TimeSeriesSampler final : public TraceSink {
 public:
  explicit TimeSeriesSampler(std::uint64_t stride = 64) : stride_(stride) {}

  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override;
  void on_kernel_begin(std::uint32_t launch_index, const std::string& name) override;

  struct Sample {
    Cycle cycle;
    PageNum page;
    std::uint32_t launch;
    AccessType type;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::uint32_t launches() const noexcept { return launch_; }
  [[nodiscard]] const std::vector<std::string>& launch_names() const noexcept { return names_; }

  /// CSV: cycle,page,launch,kernel,type.
  void write_csv(std::ostream& os) const;

 private:
  std::uint64_t stride_;
  std::uint64_t seen_ = 0;
  std::uint32_t launch_ = 0;
  std::vector<std::string> names_;
  std::vector<Sample> samples_;
};

/// Fan-out sink for running several sinks in one simulation.
class MultiSink final : public TraceSink {
 public:
  void add(TraceSink* s) { sinks_.push_back(s); }
  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override {
    for (auto* s : sinks_) s->on_access(now, addr, type, count, device_resident);
  }
  void on_kernel_begin(std::uint32_t launch_index, const std::string& name) override {
    for (auto* s : sinks_) s->on_kernel_begin(launch_index, name);
  }
  void on_layout(const AddressSpace& space) override {
    for (auto* s : sinks_) s->on_layout(space);
  }
  void on_task(std::uint64_t task, const std::vector<Access>& accesses) override {
    for (auto* s : sinks_) s->on_task(task, accesses);
  }
  void on_decision(Cycle now, VirtAddr addr, AccessType type, std::uint32_t post_count,
                   std::uint32_t round_trips, MigrationDecision decision,
                   bool write_forced) override {
    for (auto* s : sinks_)
      s->on_decision(now, addr, type, post_count, round_trips, decision, write_forced);
  }
  void on_eviction(Cycle now, ChunkNum faulting_chunk,
                   const std::vector<BlockNum>& victims) override {
    for (auto* s : sinks_) s->on_eviction(now, faulting_chunk, victims);
  }
  void on_migration(Cycle now, BlockNum block, bool demand) override {
    for (auto* s : sinks_) s->on_migration(now, block, demand);
  }
  void on_arrival(Cycle now, BlockNum block) override {
    for (auto* s : sinks_) s->on_arrival(now, block);
  }
  void on_device_full(Cycle now) override {
    for (auto* s : sinks_) s->on_device_full(now);
  }
  void on_fault_batch(Cycle start, Cycle end, std::size_t blocks) override {
    for (auto* s : sinks_) s->on_fault_batch(start, end, blocks);
  }
  void on_counter_halving(Cycle now, std::uint64_t total_halvings) override {
    for (auto* s : sinks_) s->on_counter_halving(now, total_halvings);
  }
  void on_throttle_pin(Cycle now, BlockNum block, Cycle until) override {
    for (auto* s : sinks_) s->on_throttle_pin(now, block, until);
  }
  void on_coalesce(Cycle now, ChunkNum c) override {
    for (auto* s : sinks_) s->on_coalesce(now, c);
  }
  void on_splinter(Cycle now, ChunkNum c, SplinterReason reason) override {
    for (auto* s : sinks_) s->on_splinter(now, c, reason);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace uvmsim
