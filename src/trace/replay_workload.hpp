// ReplayWorkload: drives a UVMTRB1 trace (trace/trace_binary.hpp) back
// through the simulator as a Workload. Because UVMTRB1 records whole task
// streams in warp hand-out order, the replayed run re-issues byte-identical
// task streams and therefore reproduces the recorded run's SimStats exactly
// (under the same SimConfig). Registered in the workload registry under the
// slug "replay"; select it with WorkloadParams::trace_file.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_binary.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

class ReplayWorkload final : public Workload {
 public:
  /// Takes a reader whose trace has at least one launch and one allocation;
  /// throws TraceError otherwise (CLIs map that to exit code 2).
  explicit ReplayWorkload(std::shared_ptr<TraceReader> reader);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool irregular() const override { return false; }
  void build(AddressSpace& space) override;
  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override;

  [[nodiscard]] const TraceMeta& meta() const noexcept { return reader_->meta(); }
  [[nodiscard]] const std::shared_ptr<TraceReader>& reader() const noexcept { return reader_; }

 private:
  std::shared_ptr<TraceReader> reader_;
};

/// Registry factory for the "replay" slug: opens WorkloadParams::trace_file,
/// sniffs the magic, and returns a ReplayWorkload (UVMTRB1, bit-identical
/// replay) or a TraceWorkload (legacy UVMTRC1, equivalent replay). Throws
/// TraceError on a missing/malformed file.
[[nodiscard]] std::unique_ptr<Workload> make_replay_workload(const WorkloadParams& p);

}  // namespace uvmsim
