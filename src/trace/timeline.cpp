#include "trace/timeline.hpp"

#include <ostream>

namespace uvmsim {

void Timeline::write_csv(std::ostream& os) const {
  os << "cycle,occupancy,used_blocks,far_faults,remote_accesses,pages_thrashed,"
     << "bytes_h2d,bytes_d2h,blocks_migrated,blocks_prefetched,peer_accesses\n";
  for (const TimelineSample& s : samples_) {
    os << s.cycle << ',' << s.occupancy() << ',' << s.used_blocks << ',' << s.far_faults
       << ',' << s.remote_accesses << ',' << s.pages_thrashed << ',' << s.bytes_h2d << ','
       << s.bytes_d2h << ',' << s.blocks_migrated << ',' << s.blocks_prefetched << ','
       << s.peer_accesses << '\n';
  }
}

}  // namespace uvmsim
