#include "trace/replay.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace uvmsim {

namespace {

constexpr std::array<char, 8> kMagic{'U', 'V', 'M', 'T', 'R', 'C', '1', '\0'};

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("RecordedTrace: truncated input");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const auto len = get<std::uint32_t>(is);
  if (len > (1u << 20)) throw std::runtime_error("RecordedTrace: absurd string length");
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw std::runtime_error("RecordedTrace: truncated string");
  return s;
}

}  // namespace

std::uint64_t RecordedTrace::total_records() const noexcept {
  std::uint64_t n = 0;
  for (const auto& l : launches) n += l.records.size();
  return n;
}

void RecordedTrace::save(std::ostream& os) const {
  os.write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(os, static_cast<std::uint32_t>(allocations.size()));
  for (const auto& [name, size] : allocations) {
    put_string(os, name);
    put<std::uint64_t>(os, size);
  }
  put<std::uint32_t>(os, static_cast<std::uint32_t>(launches.size()));
  for (const auto& l : launches) {
    put_string(os, l.kernel);
    put<std::uint64_t>(os, l.records.size());
    for (const TraceRecord& r : l.records) {
      put<std::uint64_t>(os, r.addr);
      put<std::uint16_t>(os, r.count);
      put<std::uint8_t>(os, static_cast<std::uint8_t>(r.type));
      put<std::uint8_t>(os, 0);
      put<std::uint16_t>(os, r.gap);
    }
  }
}

RecordedTrace RecordedTrace::load(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || magic != kMagic) throw std::runtime_error("RecordedTrace: bad magic");

  RecordedTrace t;
  const auto num_allocs = get<std::uint32_t>(is);
  t.allocations.reserve(num_allocs);
  for (std::uint32_t i = 0; i < num_allocs; ++i) {
    std::string name = get_string(is);
    const auto size = get<std::uint64_t>(is);
    t.allocations.emplace_back(std::move(name), size);
  }
  const auto num_launches = get<std::uint32_t>(is);
  t.launches.resize(num_launches);
  for (auto& l : t.launches) {
    l.kernel = get_string(is);
    const auto n = get<std::uint64_t>(is);
    l.records.resize(n);
    for (auto& r : l.records) {
      r.addr = get<std::uint64_t>(is);
      r.count = get<std::uint16_t>(is);
      r.type = static_cast<AccessType>(get<std::uint8_t>(is));
      (void)get<std::uint8_t>(is);
      r.gap = get<std::uint16_t>(is);
    }
  }
  return t;
}

void TraceRecorder::capture_layout(const AddressSpace& space) {
  trace_.allocations.clear();
  for (const Allocation& a : space.allocations()) {
    trace_.allocations.emplace_back(a.name, a.user_size);
  }
}

void TraceRecorder::on_access(Cycle /*now*/, VirtAddr addr, AccessType type,
                              std::uint32_t count, bool /*device_resident*/) {
  if (trace_.launches.empty()) trace_.launches.push_back({"<implicit>", {}});
  trace_.launches.back().records.push_back(
      TraceRecord{addr, static_cast<std::uint16_t>(count), type, gap_});
}

void TraceRecorder::on_kernel_begin(std::uint32_t /*launch_index*/, const std::string& name) {
  trace_.launches.push_back({name, {}});
}

namespace {

class ReplayKernel final : public Kernel {
 public:
  ReplayKernel(const RecordedLaunch& launch, std::uint64_t per_task)
      : launch_(launch), per_task_(per_task) {}

  [[nodiscard]] std::string name() const override { return launch_.kernel + "@replay"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(launch_.records.size(), per_task_);
  }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const std::size_t first = task * per_task_;
    const std::size_t last = std::min(launch_.records.size(), first + per_task_);
    out.reserve(out.size() + (last - first));
    for (std::size_t i = first; i < last; ++i) {
      const TraceRecord& r = launch_.records[i];
      out.push_back(Access{r.addr, r.type, r.count, r.gap});
    }
  }

 private:
  const RecordedLaunch& launch_;
  std::uint64_t per_task_;
};

}  // namespace

void TraceWorkload::build(AddressSpace& space) {
  if (trace_.allocations.empty())
    throw std::invalid_argument("TraceWorkload: trace has no allocation layout");
  for (const auto& [name, size] : trace_.allocations) {
    (void)space.allocate(name, size);
  }
}

std::vector<std::shared_ptr<const Kernel>> TraceWorkload::schedule() const {
  std::vector<std::shared_ptr<const Kernel>> seq;
  for (const auto& l : trace_.launches) {
    if (l.records.empty()) continue;
    seq.push_back(std::make_shared<ReplayKernel>(l, 256));
  }
  if (seq.empty()) throw std::invalid_argument("TraceWorkload: empty trace");
  return seq;
}

}  // namespace uvmsim
