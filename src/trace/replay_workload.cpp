#include "trace/replay_workload.hpp"

#include <fstream>
#include <utility>

namespace uvmsim {

namespace {

/// One recorded launch: task `t` replays the `t`-th non-empty task stream
/// the original run handed out. Kernels with zero recorded tasks replay the
/// original's degenerate empty-kernel path (they still consume a launch
/// slot and its overhead, which byte-identical replay requires).
class TrbReplayKernel final : public Kernel {
 public:
  TrbReplayKernel(std::shared_ptr<TraceReader> reader, std::uint32_t launch)
      : reader_(std::move(reader)), launch_(launch) {}

  [[nodiscard]] std::string name() const override {
    return reader_->meta().launches[launch_].kernel;
  }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return reader_->meta().launches[launch_].num_tasks;
  }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    reader_->read_task(launch_, task, out);
  }

 private:
  std::shared_ptr<TraceReader> reader_;
  std::uint32_t launch_;
};

}  // namespace

ReplayWorkload::ReplayWorkload(std::shared_ptr<TraceReader> reader)
    : reader_(std::move(reader)) {
  if (reader_ == nullptr) throw TraceError("ReplayWorkload: null trace reader");
  if (reader_->meta().allocations.empty())
    throw TraceError("ReplayWorkload: trace declares no allocations");
  if (reader_->meta().launches.empty())
    throw TraceError("ReplayWorkload: trace has no launches");
}

std::string ReplayWorkload::name() const {
  const std::string& recorded = reader_->meta().workload;
  return "replay:" + (recorded.empty() ? "<unknown>" : recorded);
}

void ReplayWorkload::build(AddressSpace& space) {
  for (const TraceAllocInfo& a : reader_->meta().allocations)
    (void)space.allocate(a.name, a.user_size);
}

std::vector<std::shared_ptr<const Kernel>> ReplayWorkload::schedule() const {
  std::vector<std::shared_ptr<const Kernel>> seq;
  seq.reserve(reader_->meta().launches.size());
  for (std::uint32_t l = 0; l < reader_->meta().launches.size(); ++l)
    seq.push_back(std::make_shared<TrbReplayKernel>(reader_, l));
  return seq;
}

std::unique_ptr<Workload> make_replay_workload(const WorkloadParams& p) {
  if (p.trace_file.empty())
    throw TraceError("replay workload: WorkloadParams::trace_file is not set");
  std::ifstream sniff(p.trace_file, std::ios::binary);
  if (!sniff) throw TraceError("replay workload: cannot open " + p.trace_file);
  std::array<char, 8> magic{};
  sniff.read(magic.data(), magic.size());
  if (!sniff) throw TraceError("replay workload: truncated trace " + p.trace_file);
  if (magic == kTrbMagic)
    return std::make_unique<ReplayWorkload>(std::make_shared<TraceReader>(p.trace_file));
  // Legacy UVMTRC1: whole-trace load, equivalent (not bit-identical) replay.
  sniff.seekg(0);
  try {
    return std::make_unique<TraceWorkload>(RecordedTrace::load(sniff));
  } catch (const std::exception& e) {
    throw TraceError(std::string(e.what()) + " (" + p.trace_file + ")");
  }
}

}  // namespace uvmsim
