// UVMTRB1: the compact binary trace format for record / replay.
//
// The legacy UVMTRC1 form (trace/replay.hpp) stores one flat 12-byte record
// per access and re-chunks the stream into fixed 256-record tasks on replay,
// so a replayed run is equivalent but not bit-identical and the whole trace
// must sit in memory. UVMTRB1 fixes both:
//
//   * it records at *task* granularity — the exact access stream each warp
//     claimed, in hand-out order (TraceSink::on_task) — so replay re-issues
//     byte-identical task streams and reproduces SimStats exactly;
//   * records are varint-delta encoded (typically 2-4 bytes instead of 12);
//   * tasks are grouped into self-describing chunk frames, so million-access
//     traces stream through a single-chunk cache with bounded RSS.
//
// File layout (little-endian):
//
//   header (40 bytes):
//     magic "UVMTRB1\0"
//     u32 version (= 1), u32 flags (= 0)
//     u64 config_digest          digest of the recording SimConfig, see
//                                config_digest() in sim/config_parse.hpp;
//                                0 = unknown (e.g. converted traces)
//     u64 footer_offset          patched on finalize()
//     u64 total_records          patched on finalize()
//   chunk frames, each:
//     'C', varint launch, varint first_task, varint num_tasks,
//     varint payload_bytes, payload
//   footer:
//     'F'
//     varint num_allocations;  per: varint name_len, name, varint user_size
//     varint num_launches;     per: varint name_len, name, varint num_tasks,
//                                   varint num_records, varint first_chunk,
//                                   varint num_chunks
//     varint num_chunks;       per: varint launch, varint first_task,
//                                   varint num_tasks, varint offset,
//                                   varint payload_bytes
//     varint workload_len, workload, varint seed      (provenance)
//     u64 content_hash (fixed 8 bytes)
//
// Chunk payload, per task: varint num_records, then per record a flags byte
// (bit0 write, bit1 count-follows, bit2 gap-follows; higher bits must be 0),
// a zigzag-varint address delta (previous address resets to 0 per task), and
// the optional count / gap varints (omitted = 1 / 0).
//
// The content hash is FNV-1a 64 over the header prefix (bytes [0,24)), every
// chunk frame, the footer_offset and total_records values, and the footer up
// to the hash itself — so any byte flip anywhere in the file is caught by
// TraceReader::verify(); there is no silent acceptance of corrupted input.
//
// All malformed-input failures throw TraceError; CLIs map it to exit code 2.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mem/address_space.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

/// Malformed or unreadable trace input. CLIs map this to exit code 2
/// (usage/input error), distinct from internal failures (exit code 1).
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::array<char, 8> kTrbMagic{'U', 'V', 'M', 'T', 'R', 'B', '1', '\0'};
inline constexpr std::uint32_t kTrbVersion = 1;

/// FNV-1a 64-bit over `len` bytes, chainable via `seed`.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t len,
                                    std::uint64_t seed = 0xcbf29ce484222325ull) noexcept;

struct TraceAllocInfo {
  std::string name;
  std::uint64_t user_size = 0;
};

struct TraceLaunchInfo {
  std::string kernel;
  std::uint64_t num_tasks = 0;    ///< non-empty task streams recorded
  std::uint64_t num_records = 0;  ///< accesses across those tasks
  std::uint64_t first_chunk = 0;  ///< index into the chunk directory
  std::uint64_t num_chunks = 0;
};

/// One chunk frame as listed in the footer directory.
struct TraceChunkInfo {
  std::uint32_t launch = 0;
  std::uint64_t first_task = 0;  ///< launch-local task index of the first task
  std::uint32_t num_tasks = 0;
  std::uint64_t offset = 0;  ///< absolute file offset of the 'C' frame
  std::uint64_t payload_bytes = 0;
};

/// Everything about a trace except the access payload.
struct TraceMeta {
  std::uint32_t version = kTrbVersion;
  std::uint64_t config_digest = 0;
  std::uint64_t total_records = 0;
  std::string workload;  ///< provenance: slug of the recorded workload
  std::uint64_t seed = 0;
  std::vector<TraceAllocInfo> allocations;
  std::vector<TraceLaunchInfo> launches;
};

/// Streaming UVMTRB1 writer. Attach as RunOptions::trace_sink to record a
/// run (the simulator feeds on_layout / on_kernel_begin, the GPU model feeds
/// on_task), or drive begin_launch()/append_task() directly (converters).
/// finalize() must be called exactly once after the run; nothing before it
/// constitutes a valid trace.
class TraceWriter final : public TraceSink {
 public:
  struct Provenance {
    std::string workload;  ///< slug of the workload being recorded
    std::uint64_t seed = 0;
    std::uint64_t config_digest = 0;
  };
  struct Limits {
    std::uint32_t max_tasks_per_chunk = 512;
    std::uint64_t soft_payload_bytes = 256 * 1024;  ///< flush when exceeded
  };

  TraceWriter(std::ostream& os, Provenance prov, Limits limits);
  TraceWriter(std::ostream& os, Provenance prov) : TraceWriter(os, std::move(prov), Limits{}) {}

  // --- TraceSink hooks (recording path) ---------------------------------
  void on_access(Cycle, VirtAddr, AccessType, std::uint32_t, bool) override {}
  void on_kernel_begin(std::uint32_t, const std::string& name) override { begin_launch(name); }
  void on_layout(const AddressSpace& space) override;
  void on_task(std::uint64_t, const std::vector<Access>& accesses) override {
    append_task(accesses);
  }

  // --- direct API (converters, tests) -----------------------------------
  void set_allocations(std::vector<TraceAllocInfo> allocs);
  void begin_launch(const std::string& kernel);
  void append_task(const std::vector<Access>& accesses);
  /// Flush the pending chunk, write the footer and patch the header. The
  /// stream is positioned at end-of-file afterwards. Throws TraceError on a
  /// failed or non-seekable stream.
  void finalize();

  [[nodiscard]] std::uint64_t records_written() const noexcept { return total_records_; }
  [[nodiscard]] std::uint64_t tasks_written() const noexcept { return total_tasks_; }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

 private:
  void flush_chunk();
  void hashed_write(const void* data, std::size_t len);

  std::ostream& os_;
  Provenance prov_;
  Limits limits_;
  std::vector<TraceAllocInfo> allocs_;
  std::vector<TraceLaunchInfo> launches_;
  std::vector<TraceChunkInfo> chunks_;
  std::string payload_;  ///< pending chunk payload (encoded)
  std::uint32_t chunk_tasks_ = 0;
  std::uint64_t chunk_first_task_ = 0;
  std::uint64_t total_records_ = 0;
  std::uint64_t total_tasks_ = 0;
  std::uint64_t hash_;
  std::uint64_t pos_ = 0;  ///< bytes written so far
  bool finalized_ = false;
};

/// Streaming UVMTRB1 reader. Construction parses the header + footer and
/// structurally validates the directory (every other failure mode is caught
/// by the content hash in verify()). Task payloads are decoded one chunk at
/// a time through a single-chunk cache, so peak memory is bounded by the
/// largest chunk, not the trace.
class TraceReader {
 public:
  explicit TraceReader(std::string path);

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const std::vector<TraceChunkInfo>& chunks() const noexcept { return chunks_; }
  [[nodiscard]] std::uint64_t file_bytes() const noexcept { return file_bytes_; }
  /// End of the rebuilt address span; every recorded access must fit below.
  [[nodiscard]] std::uint64_t span_end() const noexcept { return span_end_; }

  /// Append the access stream of `task` (dense, launch-local) of `launch`
  /// to `out`. Decodes (and caches) the containing chunk on demand.
  void read_task(std::uint32_t launch, std::uint64_t task, std::vector<Access>& out);

  /// Full-file integrity pass: re-streams every byte, recomputes the content
  /// hash, cross-checks chunk frames against the directory and decodes every
  /// payload. Throws TraceError on any mismatch.
  void verify();

  /// Largest decoded-chunk footprint seen so far (bytes of Access storage) —
  /// the streaming-RSS bound reported by the bench lane.
  [[nodiscard]] std::uint64_t peak_decoded_bytes() const noexcept { return peak_decoded_; }

 private:
  void load_chunk(std::size_t chunk_index);

  std::string path_;
  std::ifstream is_;
  TraceMeta meta_;
  std::vector<TraceChunkInfo> chunks_;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t footer_offset_ = 0;
  std::uint64_t span_end_ = 0;
  std::uint64_t stored_hash_ = 0;

  std::size_t cached_chunk_ = static_cast<std::size_t>(-1);
  std::vector<std::vector<Access>> cached_tasks_;
  std::uint64_t peak_decoded_ = 0;
};

/// Convert a legacy in-memory UVMTRC1 trace (fuzzer sidecars) to UVMTRB1,
/// slicing launches into `records_per_task`-sized tasks — the same chunking
/// TraceWorkload uses, so replaying the converted file is stat-identical to
/// replaying the .trc through TraceWorkload.
void write_trb(std::ostream& os, const RecordedTrace& trace, TraceWriter::Provenance prov,
               std::uint64_t records_per_task = 256);

/// Flatten a UVMTRB1 file into the legacy in-memory form (task framing is
/// folded into the per-launch record stream). Throws TraceError.
[[nodiscard]] RecordedTrace read_trb_as_recorded(const std::string& path);

/// Load a trace in either format into the legacy in-memory form, sniffing
/// the magic: UVMTRB1 files are flattened, UVMTRC1 files load natively.
[[nodiscard]] RecordedTrace load_any_trace(const std::string& path);

}  // namespace uvmsim
