// Trace record / replay: capture the exact access stream of a simulation
// (including allocation layout and kernel boundaries) to a file, and replay
// it later as a Workload. Replaying the same trace under different driver
// configurations gives policy comparisons on literally identical inputs.
//
// Binary format (little-endian, version 1):
//   magic "UVMTRC1\0"
//   u32 num_allocations; per allocation: u32 name_len, bytes, u64 size
//   u32 num_launches;    per launch: u32 name_len, bytes, u64 num_records
//   records: u64 addr, u16 count, u8 type, u8 pad, u16 gap  (12 bytes)
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

struct TraceRecord {
  VirtAddr addr = 0;
  std::uint16_t count = 1;
  AccessType type = AccessType::kRead;
  std::uint16_t gap = 0;
};

struct RecordedLaunch {
  std::string kernel;
  std::vector<TraceRecord> records;
};

struct RecordedTrace {
  std::vector<std::pair<std::string, std::uint64_t>> allocations;  ///< name, user size
  std::vector<RecordedLaunch> launches;

  [[nodiscard]] std::uint64_t total_records() const noexcept;

  void save(std::ostream& os) const;
  [[nodiscard]] static RecordedTrace load(std::istream& is);  ///< throws on bad input
};

/// Sink that captures every access plus the kernel boundaries. Register the
/// allocation layout once via capture_layout() before/after the run.
class TraceRecorder final : public TraceSink {
 public:
  void capture_layout(const AddressSpace& space);

  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override;
  void on_kernel_begin(std::uint32_t launch_index, const std::string& name) override;
  /// The simulator reports the built layout through the sink now, so a
  /// recording run no longer needs the explicit capture_layout() call.
  void on_layout(const AddressSpace& space) override { capture_layout(space); }

  [[nodiscard]] const RecordedTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] RecordedTrace take() && noexcept { return std::move(trace_); }

  /// Fixed inter-access gap stamped on recorded accesses (the original gaps
  /// are not observable at the sink; a constant is adequate for replay).
  void set_replay_gap(std::uint16_t gap) noexcept { gap_ = gap; }

 private:
  RecordedTrace trace_;
  std::uint16_t gap_ = 0;
};

/// Workload replaying a recorded trace: identical allocation layout, one
/// kernel launch per recorded launch, accesses in recorded order chunked
/// into tasks. NOTE: replay order across warps is not bit-identical to the
/// original interleaving (tasks redistribute), but the per-launch access
/// multiset and sequence are.
class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(RecordedTrace trace) : trace_(std::move(trace)) {}

  [[nodiscard]] std::string name() const override { return "trace-replay"; }
  [[nodiscard]] bool irregular() const override { return false; }
  void build(AddressSpace& space) override;
  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override;

  [[nodiscard]] const RecordedTrace& trace() const noexcept { return trace_; }

 private:
  RecordedTrace trace_;
};

}  // namespace uvmsim
