// Timeline: periodic snapshots of driver state over the simulation —
// device occupancy and the cumulative fault / migration / prefetch / remote
// / thrash / PCIe-byte counters — for plotting the temporal behaviour of a
// policy (how fast memory fills, when thrash sets in, how the remote share
// evolves). Stat column names match the metric registry (obs/metrics.def).
//
// Timeline is the small fixed-column sampler the figure harnesses plot from;
// obs/metrics_recorder.hpp is its registry-complete generalization (every
// registered metric, delta + cumulative, shared-clock alignment).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

struct TimelineSample {
  Cycle cycle = 0;
  std::uint64_t used_blocks = 0;
  std::uint64_t capacity_blocks = 0;
  std::uint64_t far_faults = 0;
  std::uint64_t remote_accesses = 0;
  std::uint64_t pages_thrashed = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  // Appended columns (the header long promised cumulative migrations):
  std::uint64_t blocks_migrated = 0;
  std::uint64_t blocks_prefetched = 0;
  std::uint64_t peer_accesses = 0;

  [[nodiscard]] double occupancy() const noexcept {
    return capacity_blocks == 0
               ? 0.0
               : static_cast<double>(used_blocks) / static_cast<double>(capacity_blocks);
  }
};

class Timeline {
 public:
  void add(const TimelineSample& s) { samples_.push_back(s); }
  [[nodiscard]] const std::vector<TimelineSample>& samples() const noexcept {
    return samples_;
  }

  /// CSV: cycle,occupancy,used_blocks,far_faults,remote_accesses,
  /// pages_thrashed,bytes_h2d,bytes_d2h,blocks_migrated,blocks_prefetched,
  /// peer_accesses.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<TimelineSample> samples_;
};

}  // namespace uvmsim
