// Bandwidth regulator: models a shared channel of fixed bytes/cycle capacity
// with FIFO occupancy. A request of N bytes issued at cycle `now` begins when
// the channel frees up and occupies it for N / bytes_per_cycle cycles.
// Fractional occupancy is accumulated exactly (in bytes) so small transfers
// do not quantize to whole cycles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/types.hpp"

namespace uvmsim {

class BandwidthRegulator {
 public:
  explicit BandwidthRegulator(double bytes_per_cycle)
      : bytes_per_cycle_(bytes_per_cycle) {}

  /// Reserve channel time for `bytes` starting no earlier than `now`.
  /// Returns the cycle at which the last byte has crossed the channel.
  Cycle acquire(Cycle now, std::uint64_t bytes) noexcept {
    const double start = std::max(free_at_, static_cast<double>(now));
    // Memoize the occupancy quotient: acquire runs once per device-resident
    // access and the request size repeats (warp transactions, block copies),
    // so the FP divide almost always reuses the previous result. Identical
    // operands give an identical IEEE quotient, so timing is unchanged.
    if (bytes != memo_bytes_) {
      memo_bytes_ = bytes;
      memo_cost_ = static_cast<double>(bytes) / bytes_per_cycle_;
    }
    const double end = start + memo_cost_;
    free_at_ = end;
    total_bytes_ += bytes;
    busy_cycles_ += end - start;
    return static_cast<Cycle>(std::ceil(end));
  }

  /// First cycle at which the channel is idle.
  [[nodiscard]] Cycle free_at() const noexcept {
    return static_cast<Cycle>(std::ceil(free_at_));
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] double busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] double bytes_per_cycle() const noexcept { return bytes_per_cycle_; }

 private:
  double bytes_per_cycle_;
  double free_at_ = 0.0;
  double busy_cycles_ = 0.0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t memo_bytes_ = 0;  ///< last request size (0 bytes costs 0.0)
  double memo_cost_ = 0.0;        ///< memo_bytes_ / bytes_per_cycle_
};

}  // namespace uvmsim
