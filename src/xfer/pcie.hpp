// PCIe 3.0 x16 interconnect model: two independent directions (H2D, D2H),
// each a bandwidth-regulated channel with a fixed per-transfer latency.
// Both bulk DMA migrations and zero-copy remote accesses share the channels,
// so heavy remote traffic saturates exactly like the paper describes.
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "xfer/bandwidth.hpp"

namespace uvmsim {

enum class PcieDir : std::uint8_t { kHostToDevice, kDeviceToHost };

class PcieFabric {
 public:
  explicit PcieFabric(const SimConfig& cfg)
      : h2d_(cfg.pcie_bytes_per_cycle()),
        d2h_(cfg.pcie_bytes_per_cycle()),
        latency_(cfg.xfer.pcie_latency) {}

  /// Reserve the channel for a bulk transfer of `bytes`, earliest at
  /// max(now, not_before). Returns the completion cycle (channel drain +
  /// per-transfer latency).
  Cycle transfer(PcieDir dir, Cycle now, Cycle not_before, std::uint64_t bytes) noexcept {
    BandwidthRegulator& ch = channel(dir);
    const Cycle start = now > not_before ? now : not_before;
    return ch.acquire(start, bytes) + latency_;
  }

  /// Zero-copy transaction: same channel occupancy, but the caller adds the
  /// remote-access latency itself (it differs from bulk-DMA latency).
  Cycle remote_transaction(PcieDir dir, Cycle now, std::uint64_t bytes) noexcept {
    return channel(dir).acquire(now, bytes);
  }

  [[nodiscard]] const BandwidthRegulator& h2d() const noexcept { return h2d_; }
  [[nodiscard]] const BandwidthRegulator& d2h() const noexcept { return d2h_; }
  [[nodiscard]] Cycle latency() const noexcept { return latency_; }

 private:
  [[nodiscard]] BandwidthRegulator& channel(PcieDir dir) noexcept {
    return dir == PcieDir::kHostToDevice ? h2d_ : d2h_;
  }
  BandwidthRegulator h2d_;
  BandwidthRegulator d2h_;
  Cycle latency_;
};

}  // namespace uvmsim
