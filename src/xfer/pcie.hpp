// PCIe 3.0 x16 interconnect model: two independent directions (H2D, D2H),
// each a bandwidth-regulated channel with a fixed per-transfer latency.
// Both bulk DMA migrations and zero-copy remote accesses share the channels,
// so heavy remote traffic saturates exactly like the paper describes.
//
// The fabric keeps per-direction byte ledgers split by traffic class (bulk
// DMA vs zero-copy); the invariant auditor cross-validates them against the
// channel regulators and the driver's stats bookkeeping (byte conservation).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/config.hpp"
#include "sim/types.hpp"
#include "xfer/bandwidth.hpp"

namespace uvmsim {

enum class PcieDir : std::uint8_t { kHostToDevice, kDeviceToHost };

class PcieFabric {
 public:
  explicit PcieFabric(const SimConfig& cfg)
      : h2d_(cfg.pcie_bytes_per_cycle()),
        d2h_(cfg.pcie_bytes_per_cycle()),
        latency_(cfg.xfer.pcie_latency) {}

  /// Reserve the channel for a bulk transfer of `bytes`, earliest at
  /// max(now, not_before). Returns the completion cycle (channel drain +
  /// per-transfer latency).
  Cycle transfer(PcieDir dir, Cycle now, Cycle not_before, std::uint64_t bytes) noexcept;

  /// Zero-copy transaction: same channel occupancy, but the caller adds the
  /// remote-access latency itself (it differs from bulk-DMA latency).
  Cycle remote_transaction(PcieDir dir, Cycle now, std::uint64_t bytes) noexcept;

  [[nodiscard]] const BandwidthRegulator& h2d() const noexcept { return h2d_; }
  [[nodiscard]] const BandwidthRegulator& d2h() const noexcept { return d2h_; }
  [[nodiscard]] Cycle latency() const noexcept { return latency_; }

  /// Bulk-DMA bytes ever accepted in `dir` (migrations, writebacks).
  [[nodiscard]] std::uint64_t dma_bytes(PcieDir dir) const noexcept {
    return dma_bytes_[index(dir)];
  }
  /// Zero-copy bytes ever accepted in `dir` (remote loads/stores, wire
  /// overhead included).
  [[nodiscard]] std::uint64_t remote_bytes(PcieDir dir) const noexcept {
    return remote_bytes_[index(dir)];
  }

 private:
  [[nodiscard]] static constexpr std::size_t index(PcieDir dir) noexcept {
    return dir == PcieDir::kHostToDevice ? 0 : 1;
  }
  [[nodiscard]] BandwidthRegulator& channel(PcieDir dir) noexcept {
    return dir == PcieDir::kHostToDevice ? h2d_ : d2h_;
  }
  BandwidthRegulator h2d_;
  BandwidthRegulator d2h_;
  Cycle latency_;
  std::uint64_t dma_bytes_[2] = {0, 0};
  std::uint64_t remote_bytes_[2] = {0, 0};
};

}  // namespace uvmsim
