// PcieFabric is header-only today; this TU anchors the module in the build
// and is the home for future non-inline additions (e.g. link power states).
#include "xfer/pcie.hpp"

namespace uvmsim {
// Intentionally empty.
}  // namespace uvmsim
