#include "xfer/pcie.hpp"

namespace uvmsim {

Cycle PcieFabric::transfer(PcieDir dir, Cycle now, Cycle not_before,
                           std::uint64_t bytes) noexcept {
  dma_bytes_[index(dir)] += bytes;
  BandwidthRegulator& ch = channel(dir);
  const Cycle start = now > not_before ? now : not_before;
  return ch.acquire(start, bytes) + latency_;
}

Cycle PcieFabric::remote_transaction(PcieDir dir, Cycle now,
                                     std::uint64_t bytes) noexcept {
  remote_bytes_[index(dir)] += bytes;
  return channel(dir).acquire(now, bytes);
}

}  // namespace uvmsim
