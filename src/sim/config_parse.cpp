#include "sim/config_parse.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "policy/policy_registry.hpp"
#include "trace/trace_binary.hpp"

namespace uvmsim {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool parse_bool(const std::string& key, const std::string& v) {
  const std::string s = lower(v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::invalid_argument("config: bad boolean for " + key + ": " + v);
}

std::uint64_t parse_u64(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::uint64_t out = std::stoull(v, &pos, 0);
    // Allow unit suffixes KB/MB/GB (powers of two).
    const std::string suffix = lower(trim(v.substr(pos)));
    if (suffix.empty()) return out;
    if (suffix == "kb" || suffix == "k") return out << 10;
    if (suffix == "mb" || suffix == "m") return out << 20;
    if (suffix == "gb" || suffix == "g") return out << 30;
    throw std::invalid_argument("bad suffix");
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad integer for " + key + ": " + v);
  }
}

double parse_f64(const std::string& key, const std::string& v) {
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: bad number for " + key + ": " + v);
  }
}

void parse_policy_into(PolicyConfig& pc, const std::string& key, const std::string& v) {
  // Registry lookup (policy/policy_registry.hpp): paper names set the enum,
  // any other registered slug is recorded in pc.slug.
  if (!apply_policy_name(pc, v))
    throw std::invalid_argument("config: bad policy for " + key + ": " + v +
                                " (registered: " + registered_policy_names() + ")");
}

EvictionKind parse_eviction(const std::string& key, const std::string& v) {
  const std::string s = lower(v);
  if (s == "lru") return EvictionKind::kLru;
  if (s == "lfu") return EvictionKind::kLfu;
  if (s == "tree") return EvictionKind::kTree;
  throw std::invalid_argument("config: bad eviction for " + key + ": " + v);
}

PrefetcherKind parse_prefetcher(const std::string& key, const std::string& v) {
  const std::string s = lower(v);
  if (s == "none") return PrefetcherKind::kNone;
  if (s == "sequential") return PrefetcherKind::kSequential;
  if (s == "random") return PrefetcherKind::kRandom;
  if (s == "tree") return PrefetcherKind::kTree;
  throw std::invalid_argument("config: bad prefetcher for " + key + ": " + v);
}

using Setter = std::function<void(SimConfig&, const std::string&, const std::string&)>;

const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> table{
      // GPU.
      {"gpu.num_sms",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.num_sms = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"gpu.warps_per_sm",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.warps_per_sm = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"gpu.core_clock_ghz",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.core_clock_ghz = parse_f64(k, v);
       }},
      {"gpu.dram_latency",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.dram_latency = parse_u64(k, v);
       }},
      {"gpu.dram_bandwidth_gbps",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.dram_bandwidth_gbps = parse_f64(k, v);
       }},
      {"gpu.page_walk_latency",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.page_walk_latency = parse_u64(k, v);
       }},
      {"gpu.tlb_entries_per_sm",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.tlb_entries_per_sm = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"gpu.l2.enabled",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.l2.enabled = parse_bool(k, v);
       }},
      {"gpu.l2.size_bytes",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.l2.size_bytes = parse_u64(k, v);
       }},
      {"gpu.l2.ways",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.gpu.l2.ways = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      // Interconnect.
      {"xfer.pcie_bandwidth_gbps",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.pcie_bandwidth_gbps = parse_f64(k, v);
       }},
      {"xfer.host_memory_bandwidth_gbps",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.host_memory_bandwidth_gbps = parse_f64(k, v);
       }},
      {"xfer.pcie_latency",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.pcie_latency = parse_u64(k, v);
       }},
      {"xfer.remote_access_latency",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.remote_access_latency = parse_u64(k, v);
       }},
      {"xfer.remote_overhead_bytes",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.remote_overhead_bytes = parse_u64(k, v);
       }},
      {"xfer.far_fault_latency_us",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.far_fault_latency_us = parse_f64(k, v);
       }},
      {"xfer.fault_batch_max",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.fault_batch_max = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"xfer.fault_batch_window",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.xfer.fault_batch_window = parse_u64(k, v);
       }},
      // Memory management.
      {"mem.device_capacity_bytes",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.device_capacity_bytes = parse_u64(k, v);
       }},
      {"mem.eviction",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.eviction = parse_eviction(k, v);
       }},
      {"mem.prefetcher",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.prefetcher = parse_prefetcher(k, v);
       }},
      {"mem.eviction_granularity",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.eviction_granularity = parse_u64(k, v);
       }},
      {"mem.eviction_protect_cycles",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.eviction_protect_cycles = parse_u64(k, v);
       }},
      {"mem.counter_granularity",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.counter_granularity = parse_u64(k, v);
       }},
      {"mem.counter_count_bits",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.counter_count_bits = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"mem.oversubscription",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.oversubscription = parse_f64(k, v);
       }},
      {"mem.coalescing",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.coalescing = parse_bool(k, v);
       }},
      {"mem.splinter_on_evict",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mem.splinter_on_evict = parse_bool(k, v);
       }},
      // Policy.
      {"policy",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         parse_policy_into(c.policy, k, v);
       }},
      {"policy.static_threshold",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.policy.static_threshold = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"policy.migration_penalty",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.policy.migration_penalty = parse_u64(k, v);
       }},
      {"policy.write_triggers_migration",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.policy.write_triggers_migration = parse_bool(k, v);
       }},
      {"policy.adaptive_write_migrates",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.policy.adaptive_write_migrates = parse_bool(k, v);
       }},
      {"policy.historic_counters_override",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.policy.historic_counters_override = parse_bool(k, v);
       }},
      // Mitigation.
      {"mitigation.enabled",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mitigation.enabled = parse_bool(k, v);
       }},
      {"mitigation.detect_faults",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mitigation.detect_faults = static_cast<std::uint32_t>(parse_u64(k, v));
       }},
      {"mitigation.pin_cooldown",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.mitigation.pin_cooldown = parse_u64(k, v);
       }},
      // Invariant auditing.
      {"audit.enabled",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.audit.enabled = parse_bool(k, v);
       }},
      {"audit.interval_events",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.audit.interval_events = parse_u64(k, v);
       }},
      {"audit.fail_fast",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.audit.fail_fast = parse_bool(k, v);
       }},
      // Misc.
      {"rng_seed",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.rng_seed = parse_u64(k, v);
       }},
      {"copy_then_execute",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.copy_then_execute = parse_bool(k, v);
       }},
      {"kernel_launch_overhead_us",
       [](SimConfig& c, const std::string& k, const std::string& v) {
         c.kernel_launch_overhead_us = parse_f64(k, v);
       }},
  };
  return table;
}

}  // namespace

void apply_config_setting(SimConfig& cfg, const std::string& key, const std::string& value) {
  const std::string k = lower(trim(key));
  const auto it = setters().find(k);
  if (it == setters().end()) {
    throw std::invalid_argument("config: unknown key '" + k + "'");
  }
  it->second(cfg, k, trim(value));
}

void apply_config_setting(SimConfig& cfg, const std::string& assignment) {
  const auto eq = assignment.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("config: expected key=value, got '" + assignment + "'");
  }
  apply_config_setting(cfg, assignment.substr(0, eq), assignment.substr(eq + 1));
}

std::size_t load_config_stream(SimConfig& cfg, std::istream& is) {
  std::size_t applied = 0;
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    apply_config_setting(cfg, line);
    ++applied;
  }
  return applied;
}

std::string to_config_string(const SimConfig& c) {
  std::ostringstream os;
  os.precision(17);
  auto b = [](bool v) { return v ? "true" : "false"; };
  const std::string policy = c.policy.resolved_slug();
  const char* eviction = c.mem.eviction == EvictionKind::kLru   ? "lru"
                         : c.mem.eviction == EvictionKind::kLfu ? "lfu"
                                                                : "tree";
  const char* prefetcher = "tree";
  switch (c.mem.prefetcher) {
    case PrefetcherKind::kNone: prefetcher = "none"; break;
    case PrefetcherKind::kSequential: prefetcher = "sequential"; break;
    case PrefetcherKind::kRandom: prefetcher = "random"; break;
    case PrefetcherKind::kTree: prefetcher = "tree"; break;
  }
  os << "gpu.num_sms = " << c.gpu.num_sms << '\n'
     << "gpu.warps_per_sm = " << c.gpu.warps_per_sm << '\n'
     << "gpu.core_clock_ghz = " << c.gpu.core_clock_ghz << '\n'
     << "gpu.dram_latency = " << c.gpu.dram_latency << '\n'
     << "gpu.dram_bandwidth_gbps = " << c.gpu.dram_bandwidth_gbps << '\n'
     << "gpu.page_walk_latency = " << c.gpu.page_walk_latency << '\n'
     << "gpu.tlb_entries_per_sm = " << c.gpu.tlb_entries_per_sm << '\n'
     << "gpu.l2.enabled = " << b(c.gpu.l2.enabled) << '\n'
     << "gpu.l2.size_bytes = " << c.gpu.l2.size_bytes << '\n'
     << "gpu.l2.ways = " << c.gpu.l2.ways << '\n'
     << "xfer.pcie_bandwidth_gbps = " << c.xfer.pcie_bandwidth_gbps << '\n'
     << "xfer.host_memory_bandwidth_gbps = " << c.xfer.host_memory_bandwidth_gbps << '\n'
     << "xfer.pcie_latency = " << c.xfer.pcie_latency << '\n'
     << "xfer.remote_access_latency = " << c.xfer.remote_access_latency << '\n'
     << "xfer.remote_overhead_bytes = " << c.xfer.remote_overhead_bytes << '\n'
     << "xfer.far_fault_latency_us = " << c.xfer.far_fault_latency_us << '\n'
     << "xfer.fault_batch_max = " << c.xfer.fault_batch_max << '\n'
     << "xfer.fault_batch_window = " << c.xfer.fault_batch_window << '\n'
     << "mem.device_capacity_bytes = " << c.mem.device_capacity_bytes << '\n'
     << "mem.eviction = " << eviction << '\n'
     << "mem.prefetcher = " << prefetcher << '\n'
     << "mem.eviction_granularity = " << c.mem.eviction_granularity << '\n'
     << "mem.eviction_protect_cycles = " << c.mem.eviction_protect_cycles << '\n'
     << "mem.counter_granularity = " << c.mem.counter_granularity << '\n'
     << "mem.counter_count_bits = " << c.mem.counter_count_bits << '\n'
     << "mem.oversubscription = " << c.mem.oversubscription << '\n'
     << "mem.coalescing = " << b(c.mem.coalescing) << '\n'
     << "mem.splinter_on_evict = " << b(c.mem.splinter_on_evict) << '\n'
     << "policy = " << policy << '\n'
     << "policy.static_threshold = " << c.policy.static_threshold << '\n'
     << "policy.migration_penalty = " << c.policy.migration_penalty << '\n'
     << "policy.write_triggers_migration = " << b(c.policy.write_triggers_migration) << '\n'
     << "policy.adaptive_write_migrates = " << b(c.policy.adaptive_write_migrates) << '\n'
     << "policy.historic_counters_override = " << b(c.policy.historic_counters_override)
     << '\n'
     << "audit.enabled = " << b(c.audit.enabled) << '\n'
     << "audit.interval_events = " << c.audit.interval_events << '\n'
     << "audit.fail_fast = " << b(c.audit.fail_fast) << '\n'
     << "mitigation.enabled = " << b(c.mitigation.enabled) << '\n'
     << "mitigation.detect_faults = " << c.mitigation.detect_faults << '\n'
     << "mitigation.pin_cooldown = " << c.mitigation.pin_cooldown << '\n'
     << "rng_seed = " << c.rng_seed << '\n'
     << "copy_then_execute = " << b(c.copy_then_execute) << '\n'
     << "kernel_launch_overhead_us = " << c.kernel_launch_overhead_us << '\n';
  return os.str();
}

const std::vector<std::string>& config_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> v;
    for (const auto& [k, _] : setters()) v.push_back(k);
    return v;
  }();
  return keys;
}

std::uint64_t config_digest(const SimConfig& cfg) {
  SimConfig canonical = cfg;
  canonical.collect_traces = false;  // sinks observe; they do not steer
  const std::string text = to_config_string(canonical);
  return fnv1a64(text.data(), text.size());
}

}  // namespace uvmsim
