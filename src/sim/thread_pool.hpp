// Fixed-size worker pool for the batch-run engine. Deliberately minimal: a
// locked deque plus condition variables — no work stealing, no futures. The
// simulator's unit of work (one full run) is seconds, so queue contention is
// irrelevant and a predictable FIFO keeps scheduling easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uvmsim {

class ThreadPool {
 public:
  /// `threads` == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown began.
  /// A task that throws does not kill its worker: the first in-flight
  /// exception is captured and rethrown by the next wait_idle() call.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle. Rethrows the
  /// first exception that escaped a task since the previous wait_idle()
  /// (later ones from the same interval are dropped).
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes workers
  std::condition_variable idle_cv_;   ///< wakes wait_idle()
  std::size_t active_ = 0;            ///< tasks currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace uvmsim
