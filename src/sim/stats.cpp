#include "sim/stats.hpp"

#include <sstream>
#include <string_view>

#include "obs/registry.hpp"

namespace uvmsim {

void SimStats::accumulate(const SimStats& o) noexcept {
  // Field walk over the metric registry: a stat added to obs/metrics.def is
  // summed here automatically, so accumulate can never miss a field.
  for (const obs::MetricDesc& d : obs::metrics()) obs::value(*this, d) += obs::value(o, d);
  if (last_violation.empty()) last_violation = o.last_violation;
}

std::string SimStats::report() const {
  std::ostringstream os;
  for (const char* cat : obs::metric_categories()) {
    const std::string_view category(cat);
    // The audit line only appears when the auditor actually ran.
    if (category == "audit" && audit_passes == 0 && audit_violations == 0) continue;
    os << cat << ':';
    for (std::size_t pad = category.size() + 1; pad < 10; ++pad) os << ' ';
    bool first = true;
    for (const obs::MetricDesc& d : obs::metrics()) {
      if (category != d.category) continue;
      if (!first) os << ' ';
      first = false;
      os << d.name << '=' << obs::value(*this, d);
    }
    if (category == "audit" && !last_violation.empty())
      os << " last=\"" << last_violation << '"';
    os << '\n';
  }
  return os.str();
}

}  // namespace uvmsim
