#include "sim/stats.hpp"

#include <sstream>

namespace uvmsim {

void SimStats::accumulate(const SimStats& o) noexcept {
  total_accesses += o.total_accesses;
  local_accesses += o.local_accesses;
  remote_accesses += o.remote_accesses;
  peer_accesses += o.peer_accesses;
  tlb_hits += o.tlb_hits;
  tlb_misses += o.tlb_misses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  far_faults += o.far_faults;
  fault_batches += o.fault_batches;
  replayed_accesses += o.replayed_accesses;
  blocks_migrated += o.blocks_migrated;
  blocks_prefetched += o.blocks_prefetched;
  bytes_h2d += o.bytes_h2d;
  bytes_d2h += o.bytes_d2h;
  evictions += o.evictions;
  pages_evicted += o.pages_evicted;
  writeback_pages += o.writeback_pages;
  pages_thrashed += o.pages_thrashed;
  distinct_pages_thrashed += o.distinct_pages_thrashed;
  counter_halvings += o.counter_halvings;
  audit_passes += o.audit_passes;
  audit_violations += o.audit_violations;
  if (last_violation.empty()) last_violation = o.last_violation;
  decide_migrate += o.decide_migrate;
  decide_remote += o.decide_remote;
  write_forced_migrations += o.write_forced_migrations;
  kernel_cycles += o.kernel_cycles;
  total_cycles += o.total_cycles;
}

std::string SimStats::report() const {
  std::ostringstream os;
  os << "accesses: total=" << total_accesses << " local=" << local_accesses
     << " remote=" << remote_accesses << " peer=" << peer_accesses
     << " tlb_hit=" << tlb_hits
     << " tlb_miss=" << tlb_misses << " l2_hit=" << l2_hits << " l2_miss="
     << l2_misses << '\n'
     << "faults:   far=" << far_faults << " batches=" << fault_batches
     << " replays=" << replayed_accesses << '\n'
     << "traffic:  demand_blocks=" << blocks_migrated << " prefetch_blocks="
     << blocks_prefetched << " h2d_bytes=" << bytes_h2d << " d2h_bytes="
     << bytes_d2h << '\n'
     << "eviction: ops=" << evictions << " pages=" << pages_evicted
     << " writeback_pages=" << writeback_pages << " thrashed="
     << pages_thrashed << " distinct_thrashed=" << distinct_pages_thrashed
     << '\n'
     << "policy:   migrate=" << decide_migrate << " remote=" << decide_remote
     << " write_forced=" << write_forced_migrations << " halvings="
     << counter_halvings << '\n'
     << "timing:   kernel_cycles=" << kernel_cycles << " total_cycles="
     << total_cycles << '\n';
  if (audit_passes > 0 || audit_violations > 0) {
    os << "audit:    passes=" << audit_passes << " violations=" << audit_violations;
    if (!last_violation.empty()) os << " last=\"" << last_violation << '"';
    os << '\n';
  }
  return os.str();
}

}  // namespace uvmsim
