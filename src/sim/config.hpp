// Simulator configuration: Table I of the paper, expressed as one value
// struct with validated invariants. Every experiment harness starts from
// SimConfig{} (the bold defaults in Table I) and overrides what it sweeps.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/types.hpp"

namespace uvmsim {

/// Page replacement policy for 2 MB large-page eviction.
enum class EvictionKind : std::uint8_t {
  kLru,   ///< migration/access-timestamp LRU (NVIDIA default)
  kLfu,   ///< access-counter-driven LFU with read-only priority (this paper)
  kTree,  ///< tree-based replacement (Ganguly et al. ISCA'19, related work):
          ///< LRU chunk selection, but eviction of the largest fully-resident
          ///< subtree around its LRU block instead of the whole large page
};

/// Hardware prefetcher attached to the fault handler.
enum class PrefetcherKind : std::uint8_t {
  kNone,
  kSequential,  ///< next-block neighbourhood (Zheng et al. style)
  kRandom,      ///< random block within the faulting 2 MB chunk
  kTree         ///< CUDA tree-based neighbourhood prefetcher (default)
};

/// Migration policy evaluated by the paper.
enum class PolicyKind : std::uint8_t {
  kFirstTouch,      ///< Baseline / "Disabled": migrate on first touch
  kStaticAlways,    ///< "Always": static threshold from the start
  kStaticOversub,   ///< "Oversub": static threshold only after oversubscription
  kAdaptive         ///< this paper: dynamic threshold (Equation 1)
};

[[nodiscard]] std::string to_string(EvictionKind k);
[[nodiscard]] std::string to_string(PrefetcherKind k);
[[nodiscard]] std::string to_string(PolicyKind k);

/// Short machine-friendly policy identifier used by every serialized report
/// (run CSV/JSON, artifact filenames): baseline | always | oversub |
/// adaptive. An out-of-domain enum value throws CheckFailure instead of
/// silently serializing as "?".
[[nodiscard]] const char* policy_slug(PolicyKind k);

/// Optional L2 cache model (off by default: the workload generators emit
/// post-cache streams; enable for fidelity ablations).
struct L2ModelConfig {
  bool enabled = false;
  std::uint64_t size_bytes = 2883584;  ///< 2.75 MB (GTX 1080 Ti)
  std::uint32_t ways = 16;
  Cycle hit_latency = 30;
};

/// GPU core and shader configuration (GeForce GTX 1080 Ti, Pascal-like).
struct GpuConfig {
  std::uint32_t num_sms = 28;
  std::uint32_t warps_per_sm = 4;       ///< concurrent warp contexts modelled per SM
  double core_clock_ghz = 1.481;        ///< 1481 MHz
  Cycle dram_latency = 100;             ///< device DRAM access latency [2]
  double dram_bandwidth_gbps = 484.0;   ///< GTX 1080 Ti peak
  Cycle page_walk_latency = 100;        ///< page table walk on TLB miss
  std::uint32_t tlb_entries_per_sm = 64;
  L2ModelConfig l2;
};

/// CPU-GPU interconnect configuration (PCI-e 3.0 16x).
struct InterconnectConfig {
  double pcie_bandwidth_gbps = 15.75;   ///< 8 GT/s x16, 128b/130b encoded
  /// Host DRAM bandwidth shared by migrations, writebacks and zero-copy
  /// traffic. Irrelevant for one GPU (PCIe binds first) but the contended
  /// resource when several GPUs collaborate over the same host memory.
  double host_memory_bandwidth_gbps = 60.0;
  Cycle pcie_latency = 100;             ///< per-transfer latency in core cycles
  Cycle remote_access_latency = 200;    ///< zero-copy load/store round trip
  /// Per-transaction wire overhead of zero-copy accesses (TLP headers,
  /// read-completion round trips): 128 B remote reads reach well under half
  /// of the bulk-DMA bandwidth on PCIe 3.0, which this models.
  std::uint64_t remote_overhead_bytes = 160;
  double far_fault_latency_us = 45.0;   ///< fault handling (page walk + mgmt)
  std::uint32_t fault_batch_max = 256;  ///< fault-buffer entries drained per batch
  /// How long the fault engine lets the fault buffer fill before draining a
  /// batch; amortizes the 45 us handling over trickling faults.
  Cycle fault_batch_window = 3000;
};

/// Memory-management configuration (the knobs the paper sweeps).
struct MemConfig {
  std::uint64_t device_capacity_bytes = 64ull << 20;  ///< usable device memory
  EvictionKind eviction = EvictionKind::kLru;
  PrefetcherKind prefetcher = PrefetcherKind::kTree;
  std::uint64_t eviction_granularity = kLargePageSize;
  /// Large pages accessed within this many cycles are not eviction
  /// candidates while anything colder exists (the "not currently addressed
  /// by scheduled warps" rule).
  Cycle eviction_protect_cycles = 65536;
  /// Access-counter granularity; 64 KB (paper's optimization) or 4 KB.
  std::uint64_t counter_granularity = kBasicBlockSize;
  /// Width of the access-count field in each 32-bit counter register; the
  /// round-trip field gets the remaining 32 - counter_count_bits bits.
  /// Default 27/5 is the hardware split. Smaller widths saturate (and thus
  /// halve the whole table) earlier — the differential fuzzer shrinks this
  /// so halving bugs reproduce in a handful of accesses.
  std::uint32_t counter_count_bits = 27;
  /// When > 0, device capacity is derived from the workload footprint as
  /// footprint / oversubscription (e.g. 1.25 => working set is 125 % of the
  /// device memory), overriding device_capacity_bytes. This mirrors the
  /// paper's methodology of shrinking free space rather than scaling inputs.
  double oversubscription = 0.0;
  /// Mosaic-style huge-page management (docs/GRANULARITY.md): coalesce a
  /// fully-resident, never-written chunk into one 2 MB mapping; splinter it
  /// back on write sharing or eviction. Off by default — the paper's fixed
  /// 64 KB/2 MB geometry — and off leaves every code path bit-identical.
  bool coalescing = false;
  /// When a victim chunk is coalesced: true splinters it first and evicts at
  /// the configured eviction granularity; false (default) evicts the whole
  /// chunk atomically, preserving the huge mapping until it leaves device
  /// memory. No effect unless coalescing is enabled.
  bool splinter_on_evict = false;
};

/// Migration-policy configuration.
struct PolicyConfig {
  PolicyKind policy = PolicyKind::kFirstTouch;
  /// Registry slug selecting a non-paper policy (policy/policy_registry.hpp).
  /// Empty (the default) means `policy` picks one of the four paper schemes;
  /// non-empty overrides the enum and is looked up in the registry.
  std::string slug;
  std::uint32_t static_threshold = 8;        ///< ts in {8, 16, 32}
  std::uint64_t migration_penalty = 8;       ///< p in {2, 4, 8, 1048576}
  /// Volta semantics for the *static* threshold schemes: a write to a
  /// host-resident page migrates it immediately, irrespective of frequency.
  bool write_triggers_migration = true;
  /// The adaptive scheme subsumes writes into the dynamic threshold so that
  /// highly-thrashed write pages can stay host-pinned (zero-copy writes);
  /// set true to force Volta write semantics there as well (ablation knob).
  bool adaptive_write_migrates = false;
  /// Counter maintenance semantics (paper §IV "Access Counter Maintenance"):
  /// the Volta hardware counters track only remote accesses and are cleared
  /// when the page migrates, while the paper's framework keeps a historic
  /// count of both local and remote accesses that survives migration.
  /// "Always" models the stock Volta scheme; "Oversub" and "Adaptive" are
  /// framework schemes and use the historic semantics (this combination is
  /// the only one consistent with Fig 6, where Always and Oversub diverge
  /// sharply on ra). Knob exists for ablation.
  bool historic_counters_override = false;  ///< force historic for all policies

  /// The slug every serialized report (CSV/JSON, artifact filenames) and the
  /// policy registry key on: the explicit `slug` when set, otherwise the
  /// paper scheme's canonical slug (baseline | always | oversub | adaptive).
  [[nodiscard]] std::string resolved_slug() const {
    return slug.empty() ? std::string(policy_slug(policy)) : slug;
  }

  /// True when this policy keeps historic (local+remote, never reset)
  /// counters; false for the Volta remote-only semantics. The stock Volta
  /// semantics exist to model Baseline and Always; every framework scheme —
  /// including all registry (non-paper) policies — uses historic counters.
  [[nodiscard]] bool historic_counters() const noexcept {
    if (historic_counters_override) return true;
    if (!slug.empty()) return slug != "baseline" && slug != "always";
    return policy == PolicyKind::kAdaptive || policy == PolicyKind::kStaticOversub;
  }
};

/// nvidia-uvm style thrashing mitigation (state of practice, paper §I).
/// Off by default — not part of the paper's framework; used for ablations.
struct ThrashThrottleConfig {
  bool enabled = false;
  /// Residency round trips (evictions) after which a block counts as
  /// thrashing and its next migration attempt pins it to host instead.
  std::uint32_t detect_faults = 3;
  /// Once detected, the block is host-pinned for this long; afterwards
  /// migration is retried (and typically re-pins a still-thrashing block).
  Cycle pin_cooldown = 2000000;
};

/// Invariant-audit configuration (check/audit.hpp). The cheap UVM_CHECK tier
/// is always on; this enables the expensive whole-structure cross-validation
/// tier (UVM_AUDIT) at a configurable event interval.
struct AuditConfig {
  bool enabled = false;
  /// Driver events (accesses, arrivals, fault batches) between full passes.
  std::uint64_t interval_events = 4096;
  /// Throw CheckFailure on the first violation so run_batch() fails the
  /// affected run; false collects counts only (stats still report them).
  bool fail_fast = true;
};

/// Top-level simulator configuration (Table I).
struct SimConfig {
  GpuConfig gpu;
  InterconnectConfig xfer;
  MemConfig mem;
  PolicyConfig policy;
  ThrashThrottleConfig mitigation;
  AuditConfig audit;
  std::uint64_t rng_seed = 0x5eedc0ffee;
  bool collect_traces = false;   ///< enable Fig 2/3 style tracing hooks
  /// Host-side kernel launch overhead between consecutive launches (real
  /// systems: ~5-10 us). Default 0: the paper's metric is kernel time, and
  /// the benchmark calibration excludes launch gaps. Matters for workloads
  /// with hundreds of launches (nw, road-input bfs).
  double kernel_launch_overhead_us = 0.0;
  /// Classic pre-UVM execution model (paper §II-A): copy every managed
  /// allocation to the device upfront, then run. Requires the working set
  /// to fit — refusing to oversubscribe is precisely its limitation.
  bool copy_then_execute = false;

  /// Far-fault handling latency converted to core cycles.
  [[nodiscard]] Cycle far_fault_cycles() const noexcept;
  /// Kernel launch overhead converted to core cycles.
  [[nodiscard]] Cycle launch_overhead_cycles() const noexcept;
  /// PCIe bytes moved per core cycle (one direction).
  [[nodiscard]] double pcie_bytes_per_cycle() const noexcept;
  /// Device DRAM bytes served per core cycle.
  [[nodiscard]] double dram_bytes_per_cycle() const noexcept;
  /// Total concurrent warp contexts.
  [[nodiscard]] std::uint32_t total_warps() const noexcept {
    return gpu.num_sms * gpu.warps_per_sm;
  }

  /// Throws std::invalid_argument when a field is out of its legal domain.
  void validate() const;
};

/// Human-readable multi-line rendering of the configuration (Table I shape).
[[nodiscard]] std::string describe(const SimConfig& cfg);

}  // namespace uvmsim
