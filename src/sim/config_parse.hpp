// Key=value configuration parsing: apply textual settings to a SimConfig.
// Used by the CLI's --set and --config-file options so experiment scripts
// can drive every knob without recompiling.
//
//   policy = adaptive
//   mem.eviction = lfu
//   policy.static_threshold = 16
//   xfer.pcie_bandwidth_gbps = 31.5   # PCIe 4.0
//   gpu.l2.enabled = true
//
// Lines starting with '#' (or after an inline '#') are comments; blank
// lines are ignored. Unknown keys and malformed values throw
// std::invalid_argument with the offending key in the message.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace uvmsim {

/// Apply one "key = value" assignment to `cfg`. Throws on unknown keys or
/// unparsable values.
void apply_config_setting(SimConfig& cfg, const std::string& key, const std::string& value);

/// Parse "key=value" (one string, as passed to --set).
void apply_config_setting(SimConfig& cfg, const std::string& assignment);

/// Read a whole config file (one assignment per line, # comments).
/// Returns the number of assignments applied.
std::size_t load_config_stream(SimConfig& cfg, std::istream& is);

/// The list of recognized keys (for --help and error messages).
[[nodiscard]] const std::vector<std::string>& config_keys();

/// Serialize `cfg` as key=value lines that load_config_stream() re-applies
/// to reproduce it exactly (experiment provenance). Covers every key in
/// config_keys().
[[nodiscard]] std::string to_config_string(const SimConfig& cfg);

/// Stable 64-bit digest of a configuration, stamped into UVMTRB1 trace
/// headers so replay can flag config drift. Computed over the canonical
/// to_config_string() form with `collect_traces` normalized to false —
/// recording attaches a sink (pure observation), so a replay run without
/// one is still driven by an identical configuration.
[[nodiscard]] std::uint64_t config_digest(const SimConfig& cfg);

}  // namespace uvmsim
