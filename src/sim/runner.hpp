// Batch-run engine: a value-typed RunRequest names everything one simulation
// needs (workload, params, config, oversubscription, seed via params.seed),
// run_request() executes exactly one, and run_batch() fans a vector of them
// out over a fixed-size thread pool.
//
// Determinism contract: a request fully determines its run. All randomness
// derives from WorkloadParams::seed / SimConfig::rng_seed carried inside the
// request; the engine owns no RNG and shares no mutable state between runs
// (the workload-input cache in workloads/input_cache.hpp is immutable once
// published). run_batch() therefore yields bit-identical per-run results for
// any jobs count, and entries come back in request order regardless of
// completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "trace/replay.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {

/// Everything needed to reproduce one simulation run.
struct RunRequest {
  std::string workload;      ///< name accepted by make_workload()
  WorkloadParams params;     ///< scale / iterations / seed / graph input
  SimConfig config;          ///< full simulator configuration
  /// Working-set / device-capacity factor; <= 0 keeps config's capacity.
  double oversub = 0.0;
  std::string label;         ///< free-form tag carried into the BatchEntry
  /// When set, the run replays this recorded trace (TraceWorkload) instead
  /// of building `workload` by name. Shared so a fuzz batch can reference
  /// one trace from many requests without copying record vectors.
  std::shared_ptr<const RecordedTrace> trace;
};

/// The single request-based entry point every harness funnels through.
/// run_workload() and bench::run() are thin wrappers over this.
[[nodiscard]] RunResult run_request(const RunRequest& request, const RunOptions& opts = {});

/// Outcome of one request inside a batch. A throwing run does not abort the
/// batch: the exception message lands in `error` and the other entries are
/// unaffected.
struct BatchEntry {
  RunRequest request;
  RunResult result;          ///< valid only when ok()
  std::string error;         ///< empty on success, exception text on failure
  double wall_ms = 0.0;      ///< host wall-clock time of this run
  std::uint64_t peak_footprint_bytes = 0;  ///< managed footprint of the run
  std::uint64_t audit_passes = 0;          ///< invariant-audit passes (audit mode)
  std::uint64_t audit_violations = 0;      ///< invariant violations observed

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

struct BatchResult {
  std::vector<BatchEntry> entries;  ///< request order, not completion order
  double wall_ms = 0.0;             ///< whole-batch wall-clock time
  unsigned jobs = 1;                ///< worker threads actually used
  std::size_t failed = 0;           ///< entries with !ok()
  std::uint64_t peak_footprint_bytes = 0;  ///< max over entries
  std::uint64_t audit_violations = 0;      ///< sum over entries (audit mode)

  [[nodiscard]] bool all_ok() const noexcept { return failed == 0; }
};

struct BatchOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Clamped to
  /// the number of requests. jobs == 1 runs inline on the calling thread.
  unsigned jobs = 0;
  /// Progress callback, invoked after each run completes with the finished
  /// entry and the completed/total counts. Calls are serialized (at most one
  /// at a time) but arrive in completion order, not request order.
  std::function<void(const BatchEntry&, std::size_t done, std::size_t total)> on_done;
  /// Per-run observation factory: called on the executing worker thread just
  /// before each run to build its RunOptions (trace sinks, advice hooks, …).
  /// The returned options — and anything they point at — must stay valid for
  /// the duration of that run. Unset = observe nothing.
  std::function<RunOptions(const RunRequest&, std::size_t index)> make_options;
};

/// Execute every request (concurrently when opts.jobs != 1) and collect the
/// outcomes in request order. Never throws on a failed run — see BatchEntry.
[[nodiscard]] BatchResult run_batch(const std::vector<RunRequest>& requests,
                                    const BatchOptions& opts = {});

}  // namespace uvmsim
