// Fundamental types and memory-geometry constants shared across the
// simulator. Geometry follows the NVIDIA UVM driver conventions described in
// the paper: 4 KB pages, 64 KB basic blocks (migration/prefetch unit),
// 2 MB large pages (eviction unit).
#pragma once

#include <cstdint>
#include <limits>

namespace uvmsim {

using Cycle = std::uint64_t;          ///< GPU core clock cycles.
using VirtAddr = std::uint64_t;       ///< Byte address in the unified VA space.
using PageNum = std::uint64_t;        ///< VA >> kPageShift.
using BlockNum = std::uint64_t;       ///< VA >> kBasicBlockShift.
using ChunkNum = std::uint64_t;       ///< VA >> kLargePageShift.
using WarpId = std::uint32_t;
using AllocId = std::uint32_t;
using KernelId = std::uint32_t;

inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();
inline constexpr AllocId kInvalidAlloc = std::numeric_limits<AllocId>::max();

inline constexpr std::uint64_t kPageShift = 12;                 // 4 KB
inline constexpr std::uint64_t kPageSize = 1ull << kPageShift;
inline constexpr std::uint64_t kBasicBlockShift = 16;           // 64 KB
inline constexpr std::uint64_t kBasicBlockSize = 1ull << kBasicBlockShift;
inline constexpr std::uint64_t kLargePageShift = 21;            // 2 MB
inline constexpr std::uint64_t kLargePageSize = 1ull << kLargePageShift;

inline constexpr std::uint64_t kPagesPerBlock = kBasicBlockSize / kPageSize;        // 16
inline constexpr std::uint64_t kBlocksPerLargePage = kLargePageSize / kBasicBlockSize; // 32
inline constexpr std::uint64_t kPagesPerLargePage = kLargePageSize / kPageSize;     // 512

/// Size of one coalesced warp memory transaction (32 threads x 4 B).
inline constexpr std::uint32_t kWarpAccessBytes = 128;

[[nodiscard]] constexpr PageNum page_of(VirtAddr a) noexcept { return a >> kPageShift; }
[[nodiscard]] constexpr BlockNum block_of(VirtAddr a) noexcept { return a >> kBasicBlockShift; }
[[nodiscard]] constexpr ChunkNum chunk_of(VirtAddr a) noexcept { return a >> kLargePageShift; }
[[nodiscard]] constexpr BlockNum block_of_page(PageNum p) noexcept {
  return p >> (kBasicBlockShift - kPageShift);
}
[[nodiscard]] constexpr ChunkNum chunk_of_block(BlockNum b) noexcept {
  return b >> (kLargePageShift - kBasicBlockShift);
}
[[nodiscard]] constexpr BlockNum first_block_of_chunk(ChunkNum c) noexcept {
  return c << (kLargePageShift - kBasicBlockShift);
}
[[nodiscard]] constexpr PageNum first_page_of_block(BlockNum b) noexcept {
  return b << (kBasicBlockShift - kPageShift);
}
[[nodiscard]] constexpr VirtAddr addr_of_block(BlockNum b) noexcept {
  return b << kBasicBlockShift;
}

[[nodiscard]] constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t align) noexcept {
  return (v + align - 1) / align * align;
}
[[nodiscard]] constexpr std::uint64_t div_ceil(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Where a block's backing physical copy currently lives.
enum class Residence : std::uint8_t {
  kHost,    ///< resident only in host memory (default after allocation)
  kDevice,  ///< resident in device local memory
  kInFlight ///< migration H2D in progress; readers stall until arrival
};

/// Residence name for diagnostics (UVM_CHECK context, audit reports).
[[nodiscard]] constexpr const char* to_cstr(Residence r) noexcept {
  switch (r) {
    case Residence::kHost: return "host";
    case Residence::kDevice: return "device";
    case Residence::kInFlight: return "in-flight";
  }
  return "?";
}

/// Kind of memory access issued by a warp.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// Mapping granularity of one 2 MB chunk (docs/GRANULARITY.md). Split keeps
/// per-64 KB-block state (the paper's fixed geometry); coalesced models one
/// Mosaic-style huge-page mapping over a fully-resident read-mostly chunk.
enum class MappingGranularity : std::uint8_t { kSplit, kCoalesced };

[[nodiscard]] constexpr const char* to_cstr(MappingGranularity g) noexcept {
  switch (g) {
    case MappingGranularity::kSplit: return "split";
    case MappingGranularity::kCoalesced: return "coalesced";
  }
  return "?";
}

/// Why a coalesced chunk splintered back to per-block mappings.
enum class SplinterReason : std::uint8_t {
  kWriteShare,     ///< first write to the chunk broke the read-mostly gate
  kEviction,       ///< partial eviction under mem.splinter_on_evict
  kAtomicEviction  ///< whole-chunk eviction demoted the mapping in one step
};

[[nodiscard]] constexpr const char* to_cstr(SplinterReason r) noexcept {
  switch (r) {
    case SplinterReason::kWriteShare: return "write-share";
    case SplinterReason::kEviction: return "eviction";
    case SplinterReason::kAtomicEviction: return "atomic-eviction";
  }
  return "?";
}

/// Outcome of the migration-policy consultation for a host-resident block.
enum class MigrationDecision : std::uint8_t {
  kMigrate,      ///< raise a far-fault and migrate the block to the device
  kRemoteAccess  ///< service over PCIe zero-copy; block stays on host
};

}  // namespace uvmsim
