#include "sim/config.hpp"

#include <cmath>
#include <sstream>

#include "check/check.hpp"

namespace uvmsim {

std::string to_string(EvictionKind k) {
  switch (k) {
    case EvictionKind::kLru: return "LRU";
    case EvictionKind::kLfu: return "LFU";
    case EvictionKind::kTree: return "tree";
  }
  return "?";
}

std::string to_string(PrefetcherKind k) {
  switch (k) {
    case PrefetcherKind::kNone: return "none";
    case PrefetcherKind::kSequential: return "sequential";
    case PrefetcherKind::kRandom: return "random";
    case PrefetcherKind::kTree: return "tree";
  }
  return "?";
}

std::string to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFirstTouch: return "first-touch (Baseline/Disabled)";
    case PolicyKind::kStaticAlways: return "static threshold (Always)";
    case PolicyKind::kStaticOversub: return "static threshold after oversub (Oversub)";
    case PolicyKind::kAdaptive: return "dynamic threshold (Adaptive)";
  }
  return "?";
}

const char* policy_slug(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFirstTouch: return "baseline";
    case PolicyKind::kStaticAlways: return "always";
    case PolicyKind::kStaticOversub: return "oversub";
    case PolicyKind::kAdaptive: return "adaptive";
  }
  UVM_CHECK(false, "policy_slug: out-of-domain PolicyKind "
                       << static_cast<unsigned>(k));
  return "";  // unreachable; UVM_CHECK throws
}

Cycle SimConfig::far_fault_cycles() const noexcept {
  return static_cast<Cycle>(std::llround(xfer.far_fault_latency_us * 1e3 *
                                         gpu.core_clock_ghz));
}

Cycle SimConfig::launch_overhead_cycles() const noexcept {
  return static_cast<Cycle>(std::llround(kernel_launch_overhead_us * 1e3 *
                                         gpu.core_clock_ghz));
}

double SimConfig::pcie_bytes_per_cycle() const noexcept {
  // GB/s / (Gcycle/s) = bytes/cycle.
  return xfer.pcie_bandwidth_gbps / gpu.core_clock_ghz;
}

double SimConfig::dram_bytes_per_cycle() const noexcept {
  return gpu.dram_bandwidth_gbps / gpu.core_clock_ghz;
}

void SimConfig::validate() const {
  auto fail = [](const std::string& what) { throw std::invalid_argument("SimConfig: " + what); };
  if (gpu.num_sms == 0) fail("num_sms must be > 0");
  if (gpu.warps_per_sm == 0) fail("warps_per_sm must be > 0");
  if (gpu.core_clock_ghz <= 0) fail("core_clock_ghz must be > 0");
  if (gpu.dram_bandwidth_gbps <= 0) fail("dram_bandwidth_gbps must be > 0");
  if (xfer.pcie_bandwidth_gbps <= 0) fail("pcie_bandwidth_gbps must be > 0");
  if (xfer.far_fault_latency_us < 0) fail("far_fault_latency_us must be >= 0");
  if (xfer.fault_batch_max == 0) fail("fault_batch_max must be > 0");
  if (mem.device_capacity_bytes < kLargePageSize)
    fail("device_capacity_bytes must hold at least one 2MB large page");
  if (mem.device_capacity_bytes % kBasicBlockSize != 0)
    fail("device_capacity_bytes must be a multiple of the 64KB basic block");
  if (mem.eviction_granularity != kLargePageSize &&
      mem.eviction_granularity != kBasicBlockSize)
    fail("eviction_granularity must be 2MB or 64KB");
  if (mem.counter_granularity != kBasicBlockSize &&
      mem.counter_granularity != kPageSize)
    fail("counter_granularity must be 64KB or 4KB");
  if (mem.counter_count_bits < 8 || mem.counter_count_bits > 30)
    fail("counter_count_bits must be in [8, 30]");
  if (policy.static_threshold == 0) fail("static_threshold (ts) must be >= 1");
  if (policy.migration_penalty == 0) fail("migration_penalty (p) must be >= 1");
  if (audit.interval_events == 0) fail("audit.interval_events must be >= 1");
}

std::string describe(const SimConfig& cfg) {
  std::ostringstream os;
  os << "Simulator               uvmsim (GPGPU-Sim UVM Smart equivalent)\n"
     << "GPU Architecture        Pascal-like, " << cfg.gpu.num_sms << " SMs @ "
     << cfg.gpu.core_clock_ghz * 1e3 << " MHz, " << cfg.gpu.warps_per_sm
     << " warp contexts/SM\n"
     << "Page Size               " << kPageSize / 1024 << " KB\n"
     << "Basic Block             " << kBasicBlockSize / 1024 << " KB\n"
     << "Page Table Walk Latency " << cfg.gpu.page_walk_latency << " core cycles\n"
     << "CPU-GPU Interconnect    PCIe 3.0 16x, " << cfg.xfer.pcie_bandwidth_gbps
     << " GB/s, " << cfg.xfer.pcie_latency << " core cycles latency\n"
     << "DRAM Latency            " << cfg.gpu.dram_latency << " core cycles\n"
     << "Remote Zero-copy Latency " << cfg.xfer.remote_access_latency
     << " core cycles\n"
     << "Device Capacity         " << (cfg.mem.device_capacity_bytes >> 20)
     << " MB\n"
     << "Eviction Granularity    " << (cfg.mem.eviction_granularity >> 10)
     << " KB\n"
     << "Page Replacement Policy " << to_string(cfg.mem.eviction) << "\n"
     << "Far-fault Handling      " << cfg.xfer.far_fault_latency_us << " us ("
     << cfg.far_fault_cycles() << " cycles)\n"
     << "Hardware Prefetcher     " << to_string(cfg.mem.prefetcher) << "\n"
     << "Migration Policy        "
     << (cfg.policy.slug.empty() ? to_string(cfg.policy.policy)
                                 : cfg.policy.slug + " (registry policy)")
     << "\n"
     << "Static Access Threshold ts = " << cfg.policy.static_threshold << "\n"
     << "Migration Penalty       p = " << cfg.policy.migration_penalty << "\n"
     << "Counter Granularity     " << (cfg.mem.counter_granularity >> 10)
     << " KB\n";
  return os.str();
}

}  // namespace uvmsim
