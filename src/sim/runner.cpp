#include "sim/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "sim/thread_pool.hpp"

namespace uvmsim {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

}  // namespace

RunResult run_request(const RunRequest& request, const RunOptions& opts) {
  SimConfig cfg = request.config;
  cfg.mem.oversubscription = request.oversub;
  Simulator sim(cfg);
  if (request.trace) {
    TraceWorkload workload(*request.trace);
    return sim.run(workload, opts);
  }
  auto workload = make_workload(request.workload, request.params);
  return sim.run(*workload, opts);
}

BatchResult run_batch(const std::vector<RunRequest>& requests, const BatchOptions& opts) {
  BatchResult batch;
  batch.entries.resize(requests.size());

  unsigned jobs = opts.jobs != 0 ? opts.jobs
                                 : std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(1, requests.size())));
  batch.jobs = jobs;

  const auto batch_start = Clock::now();
  std::mutex done_mutex;
  std::size_t done = 0;

  auto execute = [&](std::size_t i) {
    BatchEntry& entry = batch.entries[i];
    entry.request = requests[i];
    const auto run_start = Clock::now();
    try {
      const RunOptions run_opts =
          opts.make_options ? opts.make_options(requests[i], i) : RunOptions{};
      entry.result = run_request(requests[i], run_opts);
      entry.peak_footprint_bytes = entry.result.footprint_bytes;
      entry.audit_passes = entry.result.stats.audit_passes;
      entry.audit_violations = entry.result.stats.audit_violations;
    } catch (const std::exception& e) {
      entry.error = e.what();
      if (entry.error.empty()) entry.error = "unknown error";
    } catch (...) {
      entry.error = "unknown error";
    }
    entry.wall_ms = elapsed_ms(run_start);
    const std::lock_guard<std::mutex> lock(done_mutex);
    ++done;
    if (opts.on_done) opts.on_done(entry, done, requests.size());
  };

  if (jobs == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) execute(i);
  } else {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      pool.submit([&execute, i] { execute(i); });
    }
    pool.wait_idle();
  }

  batch.wall_ms = elapsed_ms(batch_start);
  for (const BatchEntry& entry : batch.entries) {
    if (!entry.ok()) ++batch.failed;
    batch.peak_footprint_bytes = std::max(batch.peak_footprint_bytes,
                                          entry.peak_footprint_bytes);
    batch.audit_violations += entry.audit_violations;
  }
  return batch;
}

}  // namespace uvmsim
