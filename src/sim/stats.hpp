// Run statistics collected by the simulator. A plain value struct: each
// Simulator owns one and returns it in RunResult.
//
// The serialization schema for these fields is owned by the metric registry
// (obs/metrics.def): every numeric field below has exactly one registry
// entry, from which accumulate(), report(), the run CSV, the run JSON and
// the metrics recorder are all derived. Adding a field here requires adding
// its UVMSIM_METRIC entry — a sizeof static_assert in obs/registry.cpp and
// the round-trip test (tests/obs/) enforce that, so the sinks cannot drift.
#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace uvmsim {

struct SimStats {
  // Access mix.
  std::uint64_t total_accesses = 0;
  std::uint64_t local_accesses = 0;       ///< device-resident hits
  std::uint64_t remote_accesses = 0;      ///< zero-copy over PCIe
  std::uint64_t peer_accesses = 0;        ///< zero-copy served from a peer GPU
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t l2_hits = 0;        ///< only when the L2 model is enabled
  std::uint64_t l2_misses = 0;

  // Fault path.
  std::uint64_t far_faults = 0;           ///< warp-visible faults raised
  std::uint64_t fault_batches = 0;        ///< batches the fault engine drained
  std::uint64_t replayed_accesses = 0;    ///< accesses resumed after a fault

  // Migration traffic.
  std::uint64_t blocks_migrated = 0;      ///< 64 KB H2D migrations (demand)
  std::uint64_t blocks_prefetched = 0;    ///< 64 KB H2D migrations (prefetch)
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;

  // Eviction / thrashing.
  std::uint64_t evictions = 0;            ///< large-page eviction operations
  std::uint64_t pages_evicted = 0;        ///< 4 KB pages displaced
  std::uint64_t writeback_pages = 0;      ///< dirty 4 KB pages written back
  std::uint64_t pages_thrashed = 0;       ///< re-migrations of evicted pages
  std::uint64_t distinct_pages_thrashed = 0;

  // Counter maintenance.
  std::uint64_t counter_halvings = 0;

  // Mapping granularity (docs/GRANULARITY.md); all zero unless
  // mem.coalescing. Conservation: chunk_coalesces == chunk_splinters +
  // chunk_coalesced_evictions + currently-coalesced chunks (audited).
  std::uint64_t chunk_coalesces = 0;            ///< split -> coalesced promotions
  std::uint64_t chunk_splinters = 0;            ///< write-share/partial-evict demotions
  std::uint64_t chunk_coalesced_evictions = 0;  ///< atomic whole-chunk evictions

  // Invariant auditing (check/audit.hpp); populated when audit.enabled.
  std::uint64_t audit_passes = 0;      ///< full cross-validation passes run
  std::uint64_t audit_violations = 0;  ///< invariant violations detected
  std::string last_violation;          ///< text of the most recent violation

  // Policy decisions.
  std::uint64_t decide_migrate = 0;
  std::uint64_t decide_remote = 0;
  std::uint64_t write_forced_migrations = 0;

  // Timing.
  Cycle kernel_cycles = 0;                ///< sum over kernel launches
  Cycle total_cycles = 0;                 ///< end-of-simulation clock

  /// Merge (sum) another stats block into this one; field walk derived from
  /// the metric registry (obs/registry.hpp).
  void accumulate(const SimStats& other) noexcept;

  /// Field-wise equality — the batch-run determinism guarantee is asserted
  /// in terms of this (serial and parallel runs must match exactly).
  [[nodiscard]] bool operator==(const SimStats&) const noexcept = default;

  /// Multi-line human-readable report.
  [[nodiscard]] std::string report() const;
};

}  // namespace uvmsim
