// Discrete-event kernel: a monotonic cycle clock plus a priority queue of
// (cycle, sequence, action) events. Sequence numbers break ties so that
// same-cycle events fire in schedule order (deterministic replay).
//
// Hot-path layout (see docs/PERF.md): actions live in a slot pool recycled
// through an intrusive free list, and the priority queue is a 4-ary min-heap
// of plain (when, seq, slot) triples — comparisons touch only the heap array
// (no pointer chase into the pool), sifts move 24-byte PODs instead of
// type-erased callables, and the shallower 4-ary tree roughly halves the
// comparison depth of a binary heap. Actions are EventAction (small-buffer
// type-erased callables), so in the steady state schedule/fire performs no
// heap allocation at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

/// Move-only type-erased `void()` callable with inline storage sized for the
/// simulator's capture sizes (the driver/GPU `[this, b]`-style lambdas and a
/// libstdc++ std::function both fit), so scheduling allocates nothing.
/// Larger callables — or ones whose move may throw — fall back to the heap.
class EventAction {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventAction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventAction> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  EventAction(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &HeapOps<D>::vt;
    }
  }

  EventAction(EventAction&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      if (vt_->trivial)
        std::memcpy(buf_, other.buf_, kInlineSize);
      else
        vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        if (vt_->trivial)
          std::memcpy(buf_, other.buf_, kInlineSize);
        else
          vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { reset(); }

  /// Destroy the held callable (if any); the action becomes empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct the callable into `dst` from `src` and destroy `src`
    /// (for heap-held callables this just transfers the owning pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    /// Relocation is a plain byte copy and destruction a no-op — lets the
    /// hot move/reset paths skip the indirect calls entirely (true for the
    /// driver's pointer-and-integer capture lambdas).
    bool trivial;
  };

  template <typename D>
  struct InlineOps {
    static D* self(void* p) noexcept { return static_cast<D*>(p); }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy,
                               std::is_trivially_copyable_v<D> &&
                                   std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct HeapOps {
    static D** self(void* p) noexcept { return static_cast<D**>(p); }
    static void invoke(void* p) { (**self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(*self(src));
    }
    static void destroy(void* p) noexcept { delete *self(p); }
    static constexpr VTable vt{&invoke, &relocate, &destroy, false};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

class EventQueue {
 public:
  using Action = EventAction;

  /// Schedule `act` to run at absolute cycle `when` (must be >= now(); the
  /// clock never runs backwards, so a past event could never fire).
  void schedule_at(Cycle when, Action act);
  /// Schedule `act` to run `delay` cycles after now().
  void schedule_in(Cycle delay, Action act) { schedule_at(now_ + delay, std::move(act)); }

  /// Pop and run the next event; returns false when the queue is empty.
  bool step();
  /// Run until the queue drains; returns the final clock value.
  Cycle run();
  /// Run at most `max_events` events (guard for tests); returns events run.
  std::uint64_t run_bounded(std::uint64_t max_events);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  struct Slot {
    EventAction act;
    std::uint32_t next_free = kNoSlot;  ///< free-list link while recycled
  };

  /// Heap node: ordering keys inline so comparisons never touch the pool.
  struct HeapEntry {
    Cycle when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Strict (when, seq) order; seq is unique, so ties never reach the heap's
  /// arbitrary layout — pop order is fully deterministic.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap of (when, seq, slot)
  std::vector<Slot> slots_;      ///< grows to the high-water mark, then stable
  std::uint32_t free_head_ = kNoSlot;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace uvmsim
