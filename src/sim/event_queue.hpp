// Discrete-event kernel: a monotonic cycle clock plus a priority queue of
// (cycle, sequence, action) events. Sequence numbers break ties so that
// same-cycle events fire in schedule order (deterministic replay).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace uvmsim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `act` to run at absolute cycle `when` (must be >= now()).
  void schedule_at(Cycle when, Action act);
  /// Schedule `act` to run `delay` cycles after now().
  void schedule_in(Cycle delay, Action act) { schedule_at(now_ + delay, std::move(act)); }

  /// Pop and run the next event; returns false when the queue is empty.
  bool step();
  /// Run until the queue drains; returns the final clock value.
  Cycle run();
  /// Run at most `max_events` events (guard for tests); returns events run.
  std::uint64_t run_bounded(std::uint64_t max_events);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Node {
    Cycle when;
    std::uint64_t seq;
    Action act;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const noexcept {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  std::priority_queue<Node, std::vector<Node>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace uvmsim
