// Discrete-event kernel: a monotonic cycle clock plus a priority queue of
// (cycle, sequence, action) events. Sequence numbers break ties so that
// same-cycle events fire in schedule order (deterministic replay).
//
// Hot-path layout (see docs/PERF.md): the queue is a hierarchical timing
// wheel over a 4-ary heap fallback. Events landing within the wheel span
// (`when - now < kWheelSpan`, which covers warp gaps, DRAM/PCIe latencies
// and the fault-batch window — the overwhelming majority) are appended to a
// per-cycle bucket in O(1); only far events (the 45 us far-fault service
// delay, coarse timeline samples) reach the heap. Because the global
// sequence counter is monotone, a bucket is sorted by construction, so pop
// is "merge heap top with the front of the earliest non-empty bucket" —
// strict (when, seq) order is preserved exactly and replay stays
// bit-identical with the heap-only implementation.
//
// Two event flavours share the wheel and the heap:
//   * actions — EventAction (small-buffer type-erased callables) in a slot
//     pool recycled through an intrusive free list;
//   * warp steps — a plain WarpId routed to a registered warp stepper
//     (fn + ctx). GpuModel schedules tens of millions of these per run;
//     carrying a 4-byte id instead of a 48-byte callable keeps the hot
//     schedule/fire cycle allocation-free and memcpy-light.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "sim/types.hpp"

/// Feature-test macro for out-of-tree consumers built against both this
/// queue and the pre-wheel one (bench/perf_hotpath.cpp is grafted onto the
/// baseline worktree by scripts/bench.sh).
#define UVMSIM_EVENTQ_HAS_WHEEL 1

namespace uvmsim {

/// Move-only type-erased `void()` callable with inline storage sized for the
/// simulator's capture sizes (the driver/GPU `[this, b]`-style lambdas and a
/// libstdc++ std::function both fit), so scheduling allocates nothing.
/// Larger callables — or ones whose move may throw — fall back to the heap.
class EventAction {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventAction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventAction> &&
                                 std::is_invocable_r_v<void, D&>,
                             int> = 0>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function
  EventAction(F&& f) {
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vt;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &HeapOps<D>::vt;
    }
  }

  EventAction(EventAction&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      if (vt_->trivial)
        std::memcpy(buf_, other.buf_, kInlineSize);
      else
        vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  EventAction& operator=(EventAction&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        if (vt_->trivial)
          std::memcpy(buf_, other.buf_, kInlineSize);
        else
          vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { reset(); }

  /// Destroy the held callable (if any); the action becomes empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      if (!vt_->trivial) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct the callable into `dst` from `src` and destroy `src`
    /// (for heap-held callables this just transfers the owning pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    /// Relocation is a plain byte copy and destruction a no-op — lets the
    /// hot move/reset paths skip the indirect calls entirely (true for the
    /// driver's pointer-and-integer capture lambdas).
    bool trivial;
  };

  template <typename D>
  struct InlineOps {
    static D* self(void* p) noexcept { return static_cast<D*>(p); }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy,
                               std::is_trivially_copyable_v<D> &&
                                   std::is_trivially_destructible_v<D>};
  };

  template <typename D>
  struct HeapOps {
    static D** self(void* p) noexcept { return static_cast<D**>(p); }
    static void invoke(void* p) { (**self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(*self(src));
    }
    static void destroy(void* p) noexcept { delete *self(p); }
    static constexpr VTable vt{&invoke, &relocate, &destroy, false};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

class EventQueue {
 public:
  using Action = EventAction;
  /// Warp-step handler: a plain function pointer + context so firing a warp
  /// step is one indirect call with no type-erased callable in between.
  using WarpStepFn = void (*)(void* ctx, WarpId w);

  /// Cycles covered by the near-future wheel; events further out go to the
  /// heap fallback. Public so the equivalence property test can generate
  /// delays that straddle the boundary.
  static constexpr Cycle kWheelSpan = 4096;

  /// Schedule `act` to run at absolute cycle `when` (must be >= now(); the
  /// clock never runs backwards, so a past event could never fire).
  /// Inline along with schedule_warp_at and push_entry: scheduling happens
  /// once per simulated access, and the wheel append is small enough that the
  /// call overhead dominated it.
  void schedule_at(Cycle when, Action act) {
    // Timestamp monotonicity: the clock only moves forward, so an event in
    // the past could never fire (deterministic-replay invariant).
    UVM_CHECK(when >= now_, "EventQueue: scheduling into the past; when=" << when
                  << " now=" << now_ << " pending=" << pending());
    std::uint32_t si;
    if (free_head_ != kNoSlot) {
      si = free_head_;
      Slot& s = slots_[si];
      free_head_ = s.next_free;
      s.act = std::move(act);
    } else {
      si = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{std::move(act), kNoSlot});
    }
    push_entry(when, si, kKindAction);
  }
  /// Schedule `act` to run `delay` cycles after now().
  void schedule_in(Cycle delay, Action act) { schedule_at(now_ + delay, std::move(act)); }

  /// Register a warp-step handler and get back an opaque nonzero handle for
  /// schedule_warp_at. One handler per GpuModel: multi-GPU simulations share
  /// a single queue across several models, so the handle routes each warp
  /// step back to the model that owns the warp.
  std::uint32_t register_warp_stepper(WarpStepFn fn, void* ctx);

  /// Schedule warp `w` of handler `stepper` to step at absolute cycle `when`
  /// (same monotonicity rule as schedule_at). Shares the global (when, seq)
  /// order with every action event.
  void schedule_warp_at(Cycle when, std::uint32_t stepper, WarpId w) {
    UVM_CHECK(when >= now_, "EventQueue: scheduling warp step into the past; when="
                  << when << " now=" << now_);
    UVM_CHECK(stepper != kKindAction && stepper <= steppers_.size(),
              "EventQueue: unknown warp stepper handle " << stepper);
    push_entry(when, w, stepper);
  }
  void schedule_warp_in(Cycle delay, std::uint32_t stepper, WarpId w) {
    schedule_warp_at(now_ + delay, stepper, w);
  }

  /// Pop and run the next event; returns false when the queue is empty.
  bool step();
  /// Run until the queue drains; returns the final clock value.
  Cycle run();
  /// Run at most `max_events` events (guard for tests); returns events run.
  std::uint64_t run_bounded(std::uint64_t max_events);

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return wheel_count_ == 0 && heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size() + wheel_count_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
  /// Entry kind 0 is an action (payload = slot index); kind k >= 1 is a warp
  /// step for steppers_[k - 1] (payload = WarpId).
  static constexpr std::uint32_t kKindAction = 0;

  static constexpr std::size_t kWheelMask = static_cast<std::size_t>(kWheelSpan) - 1;
  static constexpr std::size_t kOccWords = static_cast<std::size_t>(kWheelSpan) / 64;
  static_assert((kWheelSpan & (kWheelSpan - 1)) == 0, "wheel span must be a power of two");

  struct Slot {
    EventAction act;
    std::uint32_t next_free = kNoSlot;  ///< free-list link while recycled
  };

  /// Wheel bucket entry. All live entries of one bucket share the same
  /// absolute cycle (every wheel event satisfies when ∈ [now, now+span), so
  /// two cycles can never alias to one bucket), and the monotone global seq
  /// means appends keep each bucket sorted — the front entry is the minimum.
  struct Entry {
    std::uint64_t seq;
    std::uint32_t payload;
    std::uint32_t kind;
  };

  /// Heap node: ordering keys inline so comparisons never touch the pool.
  struct HeapEntry {
    Cycle when;
    std::uint64_t seq;
    std::uint32_t payload;
    std::uint32_t kind;
  };

  struct WarpStepper {
    WarpStepFn fn;
    void* ctx;
  };

  /// Strict (when, seq) order; seq is unique, so ties never reach the heap's
  /// arbitrary layout — pop order is fully deterministic.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;

  void push_entry(Cycle when, std::uint32_t payload, std::uint32_t kind) {
    const std::uint64_t seq = next_seq_++;
    if (when - now_ < kWheelSpan) {
      const std::size_t b = static_cast<std::size_t>(when) & kWheelMask;
      std::vector<Entry>& bucket = buckets_[b];
      if (bucket.empty()) occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
      bucket.push_back(Entry{seq, payload, kind});
      ++wheel_count_;
      if (when < wheel_next_) wheel_next_ = when;
    } else {
      heap_.push_back(HeapEntry{when, seq, payload, kind});
      sift_up(heap_.size() - 1);
    }
  }
  void fire(std::uint32_t payload, std::uint32_t kind);
  /// Smallest occupied wheel cycle >= `from`, assuming every wheel event lies
  /// in [from, from + span) — the caller guarantees wheel_count_ > 0.
  [[nodiscard]] Cycle rescan_wheel_from(Cycle from) const noexcept;

  std::vector<HeapEntry> heap_;  ///< 4-ary min-heap fallback for far events
  std::vector<Slot> slots_;      ///< grows to the high-water mark, then stable
  std::uint32_t free_head_ = kNoSlot;

  std::array<std::vector<Entry>, kWheelSpan> buckets_;
  std::array<std::uint64_t, kOccWords> occ_{};  ///< bucket-occupancy bitmap
  std::size_t wheel_count_ = 0;   ///< undrained entries across all buckets
  Cycle wheel_next_ = kNeverCycle;  ///< earliest occupied wheel cycle
  /// Drain cursor into the bucket currently firing. A partially drained
  /// bucket is always the one at now_ (nothing else in the wheel can fire
  /// before it empties, and same-cycle pushes append to it), so one
  /// (cycle, pos) pair suffices; the bucket is cleared the moment the cursor
  /// reaches its end.
  Cycle drain_cycle_ = kNeverCycle;
  std::size_t drain_pos_ = 0;

  std::vector<WarpStepper> steppers_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace uvmsim
