// Deterministic pseudo-random number generation for workload synthesis.
// xoshiro256** seeded via splitmix64 — fast, reproducible across platforms,
// and independent of libstdc++'s distribution implementations (we implement
// the few distributions we need ourselves so traces are bit-stable).
#pragma once

#include <cmath>
#include <cstdint>

namespace uvmsim {

/// splitmix64 step; used for seeding and cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0xdecafbadull) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the modulo bias negligible for our bounds.
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  constexpr bool chance(double probability) noexcept { return uniform() < probability; }

  /// Zipf-like rank selection over [0, n): returns small ranks with
  /// probability proportional to rank^-alpha (approximate inverse-CDF via
  /// rejection-free power transform; adequate for workload skew synthesis).
  std::uint64_t zipf(std::uint64_t n, double alpha) noexcept {
    if (n <= 1) return 0;
    if (alpha <= 0.0) return below(n);
    // Inverse-transform of the continuous Pareto envelope, clamped to [0,n).
    const double u = uniform();
    const double exponent = 1.0 / (1.0 - alpha + 1e-12);
    double x;
    if (alpha > 0.999 && alpha < 1.001) {
      x = std::exp(u * std::log(static_cast<double>(n))) - 1.0;
    } else {
      const double nn = static_cast<double>(n);
      x = std::pow(u * (std::pow(nn, 1.0 - alpha) - 1.0) + 1.0, exponent) - 1.0;
    }
    auto r = static_cast<std::uint64_t>(x);
    return r >= n ? n - 1 : r;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace uvmsim
