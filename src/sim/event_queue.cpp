#include "sim/event_queue.hpp"

#include <utility>

#include "check/check.hpp"

namespace uvmsim {

void EventQueue::schedule_at(Cycle when, Action act) {
  // Timestamp monotonicity: the clock only moves forward, so an event in the
  // past could never fire (deterministic-replay invariant).
  UVM_CHECK(when >= now_, "EventQueue: scheduling into the past; when=" << when
                << " now=" << now_ << " pending=" << heap_.size());
  heap_.push(Node{when, next_seq_++, std::move(act)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the action must be moved out, so copy the
  // node header and take the action via const_cast before pop (safe: the node
  // is discarded immediately).
  auto& top = const_cast<Node&>(heap_.top());
  Cycle when = top.when;
  Action act = std::move(top.act);
  heap_.pop();
  now_ = when;
  ++executed_;
  act();
  return true;
}

Cycle EventQueue::run() {
  while (step()) {
  }
  return now_;
}

std::uint64_t EventQueue::run_bounded(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace uvmsim
