#include "sim/event_queue.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace uvmsim {

void EventQueue::schedule_at(Cycle when, Action act) {
  // Timestamp monotonicity: the clock only moves forward, so an event in the
  // past could never fire (deterministic-replay invariant).
  UVM_CHECK(when >= now_, "EventQueue: scheduling into the past; when=" << when
                << " now=" << now_ << " pending=" << heap_.size());
  std::uint32_t si;
  if (free_head_ != kNoSlot) {
    si = free_head_;
    Slot& s = slots_[si];
    free_head_ = s.next_free;
    s.act = std::move(act);
  } else {
    si = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(Slot{std::move(act), kNoSlot});
  }
  heap_.push_back(HeapEntry{when, next_seq_++, si});
  sift_up(heap_.size() - 1);
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const HeapEntry v = heap_[i];
  while (i != 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = v;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const HeapEntry v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], v)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = v;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  const HeapEntry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  Slot& s = slots_[e.slot];
  now_ = e.when;
  EventAction act = std::move(s.act);
  // Recycle the slot before firing: the action may schedule (reusing this
  // slot) or grow the pool, which would invalidate `s`.
  s.next_free = free_head_;
  free_head_ = e.slot;
  ++executed_;
  act();
  return true;
}

Cycle EventQueue::run() {
  while (step()) {
  }
  return now_;
}

std::uint64_t EventQueue::run_bounded(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace uvmsim
