#include "sim/event_queue.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace uvmsim {

std::uint32_t EventQueue::register_warp_stepper(WarpStepFn fn, void* ctx) {
  UVM_CHECK(fn != nullptr, "EventQueue: null warp stepper");
  steppers_.push_back(WarpStepper{fn, ctx});
  return static_cast<std::uint32_t>(steppers_.size());  // 1-based: 0 = action
}

Cycle EventQueue::rescan_wheel_from(Cycle from) const noexcept {
  const std::size_t start = static_cast<std::size_t>(from) & kWheelMask;
  const std::size_t word = start >> 6;
  const unsigned bit = static_cast<unsigned>(start & 63);
  // Bits at or above `bit` in the first word are cycles from..(end of word).
  const std::uint64_t head = occ_[word] >> bit;
  if (head != 0) return from + static_cast<Cycle>(std::countr_zero(head));
  Cycle dist = 64 - bit;
  for (std::size_t i = 1; i < kOccWords; ++i) {
    const std::uint64_t w = occ_[(word + i) & (kOccWords - 1)];
    if (w != 0) return from + dist + static_cast<Cycle>(std::countr_zero(w));
    dist += 64;
  }
  // Wrapped tail of the first word: bits below `bit` are cycles just short
  // of from + span.
  const std::uint64_t tail = bit != 0 ? occ_[word] & ((std::uint64_t{1} << bit) - 1) : 0;
  if (tail != 0) return from + dist + static_cast<Cycle>(std::countr_zero(tail));
  return kNeverCycle;  // caller guarantees wheel_count_ > 0 — unreachable
}

void EventQueue::sift_up(std::size_t i) noexcept {
  const HeapEntry v = heap_[i];
  while (i != 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = v;
}

void EventQueue::sift_down(std::size_t i) noexcept {
  const HeapEntry v = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], v)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = v;
}

void EventQueue::fire(std::uint32_t payload, std::uint32_t kind) {
  ++executed_;
  if (kind == kKindAction) {
    Slot& s = slots_[payload];
    EventAction act = std::move(s.act);
    // Recycle the slot before firing: the action may schedule (reusing this
    // slot) or grow the pool, which would invalidate `s`.
    s.next_free = free_head_;
    free_head_ = payload;
    act();
  } else {
    const WarpStepper& st = steppers_[kind - 1];
    st.fn(st.ctx, payload);
  }
}

bool EventQueue::step() {
  const bool have_wheel = wheel_count_ != 0;
  // Heap events stay in the heap even once the clock brings them inside the
  // wheel span — ordering is enforced by merging the two fronts here.
  bool take_wheel = have_wheel;
  if (have_wheel && !heap_.empty()) {
    const HeapEntry& h = heap_.front();
    if (h.when != wheel_next_) {
      take_wheel = wheel_next_ < h.when;
    } else {
      const std::vector<Entry>& bucket =
          buckets_[static_cast<std::size_t>(wheel_next_) & kWheelMask];
      const std::size_t pos = drain_cycle_ == wheel_next_ ? drain_pos_ : 0;
      take_wheel = bucket[pos].seq < h.seq;
    }
  } else if (!have_wheel && heap_.empty()) {
    return false;
  }

  if (take_wheel) {
    const std::size_t b = static_cast<std::size_t>(wheel_next_) & kWheelMask;
    std::vector<Entry>& bucket = buckets_[b];
    if (drain_cycle_ != wheel_next_) {
      drain_cycle_ = wheel_next_;
      drain_pos_ = 0;
    }
    const Entry e = bucket[drain_pos_++];
    --wheel_count_;
    now_ = wheel_next_;
    if (drain_pos_ == bucket.size()) {
      bucket.clear();
      drain_pos_ = 0;
      occ_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
      // Everything left in the wheel is strictly later than now_ (same-cycle
      // pushes would have landed in the bucket just drained); a later push at
      // now_ re-lowers wheel_next_ via the min in push_entry.
      wheel_next_ = wheel_count_ != 0 ? rescan_wheel_from(now_ + 1) : kNeverCycle;
    }
    fire(e.payload, e.kind);
  } else {
    const HeapEntry e = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    now_ = e.when;
    fire(e.payload, e.kind);
  }
  return true;
}

Cycle EventQueue::run() {
  while (step()) {
  }
  return now_;
}

std::uint64_t EventQueue::run_bounded(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace uvmsim
