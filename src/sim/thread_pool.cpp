#include "sim/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace uvmsim {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace uvmsim
