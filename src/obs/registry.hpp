// Metric registry: the one-definition-rule for the run-statistics schema.
//
// Every numeric SimStats field is enumerated exactly once in obs/metrics.def;
// this header turns that table into a queryable descriptor array. Everything
// that serializes SimStats — accumulate(), report(), the run CSV, the run
// JSON, the per-interval metrics recorder — walks this array instead of
// hand-enumerating fields, so a metric added to the table appears in every
// sink at once and cannot drift (docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "sim/stats.hpp"

namespace uvmsim::obs {

/// Counter: monotone cumulative total over the run. Gauge: instantaneous
/// value (none in SimStats today; recorders derive gauges per sample).
enum class MetricKind : std::uint8_t { kCounter, kGauge };

/// One registered metric: name/category/doc plus the member it reads.
struct MetricDesc {
  const char* name;                ///< serialized identifier (CSV/JSON key)
  const char* category;            ///< report() grouping: access, fault, ...
  const char* doc;                 ///< one-line description
  MetricKind kind;
  std::uint64_t SimStats::* field; ///< the field this metric reads/writes
};

// Count the UVMSIM_METRIC entries without repeating the list.
#define UVMSIM_METRIC(field, kind, category, doc) +1
inline constexpr std::size_t kMetricCount = 0
#include "obs/metrics.def"
    ;  // NOLINT(whitespace/semicolon)
#undef UVMSIM_METRIC

/// All registered metrics, in registry (= serialization) order.
[[nodiscard]] std::span<const MetricDesc, kMetricCount> metrics() noexcept;

/// Descriptor for `name`, or nullptr when no metric has that name.
[[nodiscard]] const MetricDesc* find_metric(std::string_view name) noexcept;

/// Category labels in report() display order; every MetricDesc::category is
/// one of these (enforced by the registry self-test).
[[nodiscard]] std::span<const char* const> metric_categories() noexcept;

/// Read / write a metric on a stats block through its descriptor.
[[nodiscard]] inline std::uint64_t value(const SimStats& s, const MetricDesc& d) noexcept {
  return s.*(d.field);
}
[[nodiscard]] inline std::uint64_t& value(SimStats& s, const MetricDesc& d) noexcept {
  return s.*(d.field);
}

}  // namespace uvmsim::obs
