#include "obs/metrics_recorder.hpp"

#include <ostream>

namespace uvmsim::obs {

void MetricsRecorder::sample(Cycle now, const SimStats& stats, std::uint64_t used_blocks,
                             std::uint64_t capacity_blocks) {
  Sample s;
  s.cycle = now;
  s.used_blocks = used_blocks;
  s.capacity_blocks = capacity_blocks;
  std::size_t i = 0;
  for (const MetricDesc& d : metrics()) s.values[i++] = value(stats, d);
  samples_.push_back(s);
}

void MetricsRecorder::write_csv(std::ostream& os) const {
  os << "cycle,occupancy,used_blocks,capacity_blocks";
  for (const MetricDesc& d : metrics()) os << ',' << d.name << ',' << d.name << "_delta";
  os << '\n';
  const Sample* prev = nullptr;
  for (const Sample& s : samples_) {
    os << s.cycle << ',' << s.occupancy() << ',' << s.used_blocks << ','
       << s.capacity_blocks;
    for (std::size_t i = 0; i < kMetricCount; ++i) {
      const std::uint64_t delta = prev != nullptr ? s.values[i] - prev->values[i]
                                                  : s.values[i];
      os << ',' << s.values[i] << ',' << delta;
    }
    os << '\n';
    prev = &s;
  }
}

}  // namespace uvmsim::obs
