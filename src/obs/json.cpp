#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace uvmsim::obs {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  os << v;
}

}  // namespace uvmsim::obs
