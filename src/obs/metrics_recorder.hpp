// Per-interval time-series recorder over the metric registry: where Timeline
// snapshots a fixed handful of driver numbers, MetricsRecorder snapshots
// *every* registered SimStats metric (obs/metrics.def) plus the device
// occupancy gauges, so a new metric shows up in the time series without any
// recorder change.
//
// Sampling is driven by Simulator::run (RunOptions::metrics): samples land at
// absolute multiples of the sampling interval — a shared clock — so the
// series of every entry in a run_batch() align row-by-row and can be compared
// or aggregated without resampling.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/registry.hpp"
#include "sim/types.hpp"

namespace uvmsim::obs {

class MetricsRecorder {
 public:
  struct Sample {
    Cycle cycle = 0;
    std::uint64_t used_blocks = 0;      ///< device occupancy gauge
    std::uint64_t capacity_blocks = 0;
    /// Cumulative value of every registered metric, registry order.
    std::array<std::uint64_t, kMetricCount> values{};

    [[nodiscard]] double occupancy() const noexcept {
      return capacity_blocks == 0 ? 0.0
                                  : static_cast<double>(used_blocks) /
                                        static_cast<double>(capacity_blocks);
    }
  };

  /// Record one snapshot of `stats` (plus the occupancy gauges) at `now`.
  void sample(Cycle now, const SimStats& stats, std::uint64_t used_blocks,
              std::uint64_t capacity_blocks);

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// CSV: cycle,occupancy,used_blocks,capacity_blocks, then for every
  /// registered metric its cumulative column `<name>` and per-interval
  /// column `<name>_delta` (delta vs the previous sample; first row equals
  /// the cumulative value). Column names come from the registry.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace uvmsim::obs
