// Minimal JSON writing helpers shared by every JSON-emitting sink (the run
// JSON exporter and the Chrome trace exporter). No external dependencies;
// the point is that string escaping and non-finite-number handling live in
// exactly one place.
#pragma once

#include <iosfwd>
#include <string_view>

namespace uvmsim::obs {

/// Write `s` as a JSON string literal (quotes included): `"` `\` and control
/// characters below 0x20 are escaped, so any simulator-produced text (audit
/// violation messages, workload/file names) round-trips through a parser.
void write_json_string(std::ostream& os, std::string_view s);

/// Write `v` as a JSON number. NaN and infinities are not representable in
/// JSON; they serialize as `null` instead of producing an unparseable
/// document.
void write_json_number(std::ostream& os, double v);

}  // namespace uvmsim::obs
