#include "obs/registry.hpp"

#include <array>
#include <string>

namespace uvmsim::obs {

namespace {

#define UVMSIM_METRIC(field_, kind_, category_, doc_) \
  MetricDesc{#field_, #category_, doc_, MetricKind::k##kind_, &SimStats::field_},
constexpr std::array<MetricDesc, kMetricCount> kMetrics = {{
#include "obs/metrics.def"
}};
#undef UVMSIM_METRIC

constexpr const char* kCategories[] = {"access", "fault",  "traffic", "eviction",
                                       "policy", "timing", "audit"};

}  // namespace

// The one-definition-rule enforcement: SimStats is kMetricCount u64 fields
// plus the last_violation string (8-byte members, no padding). A field added
// to SimStats without a matching obs/metrics.def entry changes sizeof and
// fails this assert — the schema cannot silently drift out of the registry.
static_assert(sizeof(SimStats) ==
                  kMetricCount * sizeof(std::uint64_t) + sizeof(std::string),
              "SimStats and obs/metrics.def disagree: every numeric SimStats "
              "field needs exactly one UVMSIM_METRIC entry");

std::span<const MetricDesc, kMetricCount> metrics() noexcept { return kMetrics; }

const MetricDesc* find_metric(std::string_view name) noexcept {
  for (const MetricDesc& d : kMetrics) {
    if (name == d.name) return &d;
  }
  return nullptr;
}

std::span<const char* const> metric_categories() noexcept { return kCategories; }

}  // namespace uvmsim::obs
