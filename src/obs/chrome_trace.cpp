#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <iterator>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace uvmsim::obs {

namespace {

// Track (tid) layout inside the single simulator "process". Thread-name
// metadata events label them in the viewer.
constexpr std::uint32_t kKernelTrack = 0;
constexpr std::uint32_t kFaultTrack = 1;
constexpr std::uint32_t kDmaTrack = 2;
constexpr std::uint32_t kEvictionTrack = 3;
constexpr std::uint32_t kCounterTrack = 4;
constexpr std::uint32_t kThrottleTrack = 5;

constexpr const char* kTrackNames[] = {"kernels",          "fault engine",
                                       "dma migrations",   "eviction",
                                       "access counters",  "thrash throttle"};

}  // namespace

ChromeTraceWriter::ChromeTraceWriter(const SimConfig& cfg)
    : core_clock_ghz_(cfg.gpu.core_clock_ghz), eviction_slug_(to_string(cfg.mem.eviction)) {}

void ChromeTraceWriter::on_access(Cycle, VirtAddr, AccessType, std::uint32_t, bool) {
  // Per-access events would dwarf everything else; the access mix is covered
  // by the metrics recorder instead.
}

void ChromeTraceWriter::on_kernel_begin(std::uint32_t launch_index, const std::string& name) {
  Event e;
  e.ph = 'i';
  e.tid = kKernelTrack;
  e.name = name;
  std::ostringstream args;
  args << "{\"launch\":" << launch_index << '}';
  e.args = args.str();
  // on_kernel_begin carries no cycle; the simulator invokes it back-to-back
  // with the launch, which the surrounding events timestamp. Reuse the last
  // buffered timestamp (0 for the first launch).
  e.ts = events_.empty() ? 0 : events_.back().ts;
  push(std::move(e));
}

void ChromeTraceWriter::on_eviction(Cycle now, ChunkNum faulting_chunk,
                                    const std::vector<BlockNum>& victims) {
  Event e;
  e.ts = now;
  e.ph = 'i';
  e.tid = kEvictionTrack;
  e.name = "evict";
  std::ostringstream args;
  args << "{\"faulting_chunk\":" << faulting_chunk << ",\"victims\":" << victims.size()
       << ",\"victim_chunk\":" << (victims.empty() ? 0 : chunk_of_block(victims.front()))
       << ",\"policy\":";
  std::ostringstream quoted;
  write_json_string(quoted, eviction_slug_);
  args << quoted.str() << '}';
  e.args = args.str();
  push(std::move(e));
}

void ChromeTraceWriter::push_dma_counter(Cycle now) {
  Event e;
  e.ts = now;
  e.ph = 'C';
  e.tid = kDmaTrack;
  e.name = "pcie_dma_occupancy";
  std::ostringstream args;
  args << "{\"inflight\":" << open_dma_.size() << '}';
  e.args = args.str();
  push(std::move(e));
}

void ChromeTraceWriter::on_migration(Cycle now, BlockNum block, bool demand) {
  open_dma_.emplace(block, demand);
  Event e;
  e.ts = now;
  e.ph = 'b';
  e.tid = kDmaTrack;
  e.id = block;
  e.name = demand ? "migrate" : "prefetch";
  std::ostringstream args;
  args << "{\"block\":" << block << '}';
  e.args = args.str();
  push(std::move(e));
  push_dma_counter(now);
}

void ChromeTraceWriter::on_arrival(Cycle now, BlockNum block) {
  // Arrivals without a matching on_migration exist (preload_all enqueues
  // transfers without consulting the fault path); only close what we opened.
  const auto it = open_dma_.find(block);
  if (it == open_dma_.end()) return;
  Event e;
  e.ts = now;
  e.ph = 'e';
  e.tid = kDmaTrack;
  e.id = block;
  e.name = it->second ? "migrate" : "prefetch";
  open_dma_.erase(it);
  push(std::move(e));
  push_dma_counter(now);
}

void ChromeTraceWriter::on_device_full(Cycle now) {
  Event e;
  e.ts = now;
  e.ph = 'i';
  e.tid = kEvictionTrack;
  e.name = "device_full";
  push(std::move(e));
}

void ChromeTraceWriter::on_fault_batch(Cycle start, Cycle end, std::size_t blocks) {
  Event e;
  e.ts = start;
  e.dur = end - start;
  e.ph = 'X';
  e.tid = kFaultTrack;
  e.name = "fault_batch";
  std::ostringstream args;
  args << "{\"blocks\":" << blocks << '}';
  e.args = args.str();
  push(std::move(e));
}

void ChromeTraceWriter::on_counter_halving(Cycle now, std::uint64_t total_halvings) {
  Event e;
  e.ts = now;
  e.ph = 'i';
  e.tid = kCounterTrack;
  e.name = "counter_halving";
  std::ostringstream args;
  args << "{\"halvings\":" << total_halvings << '}';
  e.args = args.str();
  push(std::move(e));
}

void ChromeTraceWriter::on_throttle_pin(Cycle now, BlockNum block, Cycle until) {
  Event e;
  e.ts = now;
  e.dur = until > now ? until - now : 0;
  e.ph = 'X';
  e.tid = kThrottleTrack;
  e.name = "throttle_pin";
  std::ostringstream args;
  args << "{\"block\":" << block << '}';
  e.args = args.str();
  push(std::move(e));
}

void ChromeTraceWriter::write(std::ostream& os) const {
  std::vector<const Event*> order;
  order.reserve(events_.size());
  for (const Event& e : events_) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  // Cycle -> microsecond: ts is what the viewers expect in the "ts" field.
  const double us_per_cycle = 1.0 / (core_clock_ghz_ * 1e3);

  os << "{\"traceEvents\":[\n";
  bool first = true;
  // Track-name metadata first (ph "M" carries no timestamp semantics).
  for (std::uint32_t tid = 0; tid < std::size(kTrackNames); ++tid) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(os, kTrackNames[tid]);
    os << "}}";
  }
  for (const Event* e : order) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":";
    write_json_string(os, e->name);
    os << ",\"ph\":\"" << e->ph << "\",\"pid\":0,\"tid\":" << e->tid << ",\"ts\":";
    write_json_number(os, static_cast<double>(e->ts) * us_per_cycle);
    if (e->ph == 'X') {
      os << ",\"dur\":";
      write_json_number(os, static_cast<double>(e->dur) * us_per_cycle);
    }
    if (e->ph == 'b' || e->ph == 'e') {
      os << ",\"cat\":\"dma\",\"id\":" << e->id;
    }
    if (!e->args.empty()) os << ",\"args\":" << e->args;
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace uvmsim::obs
