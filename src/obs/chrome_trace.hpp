// Chrome trace-event exporter: a TraceSink that turns the driver's
// observation hooks into the Trace Event JSON format, so a simulation run
// opens directly in chrome://tracing or Perfetto (ui.perfetto.dev).
//
// Event mapping (docs/OBSERVABILITY.md):
//   kernel launches    -> instant events on the "kernels" track
//   fault batches      -> duration events on the "fault engine" track
//                         (drain -> end of the 45 us handling window)
//   64 KB migrations   -> async begin/end pairs (id = block number) on the
//                         "dma" category, named "migrate" or "prefetch"
//   eviction passes    -> instant events with chunk / victim count / policy
//   device-full        -> instant events on the eviction track
//   counter halvings   -> instant events on the counters track
//   throttle pins      -> duration events spanning the pin cooldown
//   PCIe DMA occupancy -> counter events tracking in-flight H2D transfers
//
// Pure observation: attaching the writer never changes simulation behaviour
// or SimStats (asserted by tests/obs/test_chrome_trace.cpp). Events are
// buffered in memory and written sorted by timestamp, so the emitted `ts`
// sequence is monotone — a property the CI smoke validates.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace uvmsim::obs {

class ChromeTraceWriter final : public TraceSink {
 public:
  /// `cfg` supplies the core clock (cycle -> microsecond conversion) and the
  /// eviction policy label attached to eviction events.
  explicit ChromeTraceWriter(const SimConfig& cfg);

  void on_access(Cycle now, VirtAddr addr, AccessType type, std::uint32_t count,
                 bool device_resident) override;
  void on_kernel_begin(std::uint32_t launch_index, const std::string& name) override;
  void on_eviction(Cycle now, ChunkNum faulting_chunk,
                   const std::vector<BlockNum>& victims) override;
  void on_migration(Cycle now, BlockNum block, bool demand) override;
  void on_arrival(Cycle now, BlockNum block) override;
  void on_device_full(Cycle now) override;
  void on_fault_batch(Cycle start, Cycle end, std::size_t blocks) override;
  void on_counter_halving(Cycle now, std::uint64_t total_halvings) override;
  void on_throttle_pin(Cycle now, BlockNum block, Cycle until) override;

  [[nodiscard]] std::size_t event_count() const noexcept { return events_.size(); }

  /// Emit the buffered events as one Trace Event JSON document
  /// (`{"traceEvents": [...], ...}`), sorted by timestamp.
  void write(std::ostream& os) const;

 private:
  struct Event {
    Cycle ts = 0;
    Cycle dur = 0;           ///< 'X' events only
    char ph = 'i';           ///< trace-event phase: X i C b e
    std::uint32_t tid = 0;
    std::uint64_t id = 0;    ///< async ('b'/'e') events only
    std::string name;
    std::string args;        ///< pre-rendered JSON object, or empty
  };

  void push(Event e) { events_.push_back(std::move(e)); }
  void push_dma_counter(Cycle now);

  double core_clock_ghz_;
  std::string eviction_slug_;
  std::vector<Event> events_;
  /// Open H2D transfers: block -> (enqueue cycle, demand?).
  std::unordered_map<BlockNum, bool> open_dma_;
};

}  // namespace uvmsim::obs
