// Rule `determinism`: every simulation result must be fully determined by
// its RunRequest (sim/runner.hpp), so process-global entropy, wall-clock
// reads and hash-order-dependent iteration are banned from src/ and tools/.
// This replaces the tools/lint_determinism grep with a token-level check:
// comments and string literals can no longer trip it, and unordered-
// container iteration is matched against the names actually declared as
// std::unordered_* in the file rather than a two-line regex window.
//
// Telemetry whitelist: the batch runner's wall-clock per-run telemetry
// (wall_ms in BatchEntry) is the one sanctioned clock read — it reports how
// long a run took, and nothing in the simulation consumes it. Anything else
// needs an inline `// UVMSIM-ALLOW(determinism): reason`.
#include <array>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/rules.hpp"
#include "analyze/rules_common.hpp"

namespace uvmsim::analyze {

namespace {

constexpr std::array<std::string_view, 1> kWallClockWhitelist = {"src/sim/runner.cpp"};

constexpr std::array<std::string_view, 7> kBannedCalls = {
    "rand", "srand", "random", "drand48", "lrand48", "gettimeofday", "clock_gettime",
};

[[nodiscard]] bool ends_with_clock(std::string_view s) {
  constexpr std::string_view kSuffixA = "clock";
  constexpr std::string_view kSuffixB = "Clock";
  return (s.size() >= kSuffixA.size() &&
          s.substr(s.size() - kSuffixA.size()) == kSuffixA) ||
         (s.size() >= kSuffixB.size() && s.substr(s.size() - kSuffixB.size()) == kSuffixB);
}

class DeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "determinism"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "no process-global RNG, wall-clock reads or unordered-iteration in src/ and tools/";
  }

  void run(const Corpus& corpus, std::vector<Finding>& out) const override {
    for (const SourceFile& file : corpus.files) {
      if (!starts_with(file.path, "src/") && !starts_with(file.path, "tools/")) continue;
      scan_banned_calls(file, out);

      // Members are usually declared in the header and iterated in the .cpp,
      // so a .cpp inherits its .hpp twin's unordered names.
      std::set<std::string> unordered_names = collect_unordered_names(file);
      if (file.path.size() > 4 && file.path.substr(file.path.size() - 4) == ".cpp") {
        const SourceFile* header =
            corpus.find(file.path.substr(0, file.path.size() - 4) + ".hpp");
        if (header != nullptr) unordered_names.merge(collect_unordered_names(*header));
      }
      scan_unordered_iteration(file, unordered_names, out);
    }
  }

 private:
  [[nodiscard]] static bool wall_clock_whitelisted(std::string_view path) {
    for (const std::string_view p : kWallClockWhitelist)
      if (path == p) return true;
    return false;
  }

  void add(const SourceFile& file, int line, std::string message,
           std::vector<Finding>& out) const {
    out.push_back(
        Finding{std::string(name()), file.path, line, std::move(message), Severity::kError});
  }

  void scan_banned_calls(const SourceFile& file, std::vector<Finding>& out) const {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string& t = toks[i].text;

      // Process-global RNG / libc clocks: flag `f(` and `std::f(`, never
      // `obj.f(` or `Other::f(` (a member or foreign class is not libc).
      for (const std::string_view banned : kBannedCalls) {
        if (t != banned || !is_direct_call(toks, i)) continue;
        const Token* prev = tok_at(toks, i, -1);
        if (tok_is(prev, "::") && !qualified_by(toks, i, "std")) continue;
        add(file, toks[i].line,
            "call to '" + t + "' — use the request-seeded RNG (sim/rng.hpp)" +
                (t == "gettimeofday" || t == "clock_gettime"
                     ? " / keep wall-clock out of simulation code"
                     : ""),
            out);
      }

      if (t == "random_device") {
        add(file, toks[i].line,
            "std::random_device is process-global entropy — seed from the RunRequest instead",
            out);
      }
      if (t == "time" && is_direct_call(toks, i)) {
        const Token* prev = tok_at(toks, i, -1);
        if (!tok_is(prev, "::") || qualified_by(toks, i, "std"))
          add(file, toks[i].line, "call to 'time(' reads the wall clock", out);
      }
      if (t == "clock" && is_direct_call(toks, i) && tok_is(tok_at(toks, i, +2), ")")) {
        const Token* prev = tok_at(toks, i, -1);
        if (!tok_is(prev, "::") || qualified_by(toks, i, "std"))
          add(file, toks[i].line, "call to 'clock()' reads CPU time", out);
      }

      // std::chrono::*_clock::now() outside the telemetry whitelist — also
      // through an alias (`using Clock = std::chrono::steady_clock`): any
      // `X::now()` where X names a clock counts.
      if (t == "now" && is_direct_call(toks, i) && tok_is(tok_at(toks, i, -1), "::") &&
          !wall_clock_whitelisted(file.path)) {
        const Token* q = tok_at(toks, i, -2);
        if (q != nullptr && q->kind == TokenKind::kIdentifier &&
            (ends_with_clock(q->text))) {
          add(file, toks[i].line,
              q->text + "::now() reads the wall clock outside the telemetry "
                        "whitelist (src/sim/runner.cpp)",
              out);
        }
      }
    }
  }

  /// Names declared with a std::unordered_* type in this file.
  [[nodiscard]] static std::set<std::string> collect_unordered_names(const SourceFile& file) {
    const std::vector<Token>& toks = file.tokens;
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t != "unordered_map" && t != "unordered_set" && t != "unordered_multimap" &&
          t != "unordered_multiset")
        continue;
      if (!tok_is(tok_at(toks, i, +1), "<")) continue;
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after < toks.size() && toks[after].kind == TokenKind::kIdentifier)
        names.insert(toks[after].text);
    }
    return names;
  }

  /// Iterating a std::unordered_* makes element order depend on hashing —
  /// banned wherever it could reach output (practically: anywhere; an
  /// order-independent pass documents that with an UVMSIM-ALLOW reason).
  void scan_unordered_iteration(const SourceFile& file,
                                const std::set<std::string>& unordered_names,
                                std::vector<Finding>& out) const {
    const std::vector<Token>& toks = file.tokens;
    if (unordered_names.empty()) return;

    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Range-for whose sequence expression mentions an unordered name.
      if (toks[i].text == "for" && tok_is(tok_at(toks, i, +1), "(")) {
        const std::size_t end = skip_parens(toks, i + 1);
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < end; ++j) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")") --depth;
          if (toks[j].text == ":" && depth == 1 && !tok_is(tok_at(toks, j, -1), ":") &&
              !tok_is(tok_at(toks, j, +1), ":")) {
            colon = j;
            break;
          }
        }
        if (colon != 0) {
          for (std::size_t j = colon + 1; j < end; ++j) {
            if (toks[j].kind == TokenKind::kIdentifier &&
                unordered_names.count(toks[j].text) != 0) {
              add(file, toks[j].line,
                  "range-for over unordered container '" + toks[j].text +
                      "' — iteration order depends on hashing; sort keys first",
                  out);
              break;
            }
          }
        }
      }
      // Explicit iterator loops: name.begin() / name.cbegin().
      if (toks[i].kind == TokenKind::kIdentifier &&
          unordered_names.count(toks[i].text) != 0 &&
          (tok_is(tok_at(toks, i, +1), ".") || tok_is(tok_at(toks, i, +1), "->"))) {
        const Token* method = tok_at(toks, i, +2);
        if (method != nullptr && (method->text == "begin" || method->text == "cbegin") &&
            tok_is(tok_at(toks, i, +3), "(")) {
          add(file, method->line,
              "iterating unordered container '" + toks[i].text +
                  "' — iteration order depends on hashing; sort keys first",
              out);
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_determinism_rule() { return std::make_unique<DeterminismRule>(); }

}  // namespace uvmsim::analyze
