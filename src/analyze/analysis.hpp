// uvmsim-analyze core: the corpus model, the rule interface and the driver
// that runs rules, applies inline suppressions and the checked-in baseline,
// and renders text / stable-sorted JSON reports. See docs/ANALYSIS.md for
// the rule catalog and the suppression / baseline workflow.
//
// Design constraints:
//   * Library-first: tests construct corpora from in-memory snippets and run
//     rules in-process; tools/uvmsim_analyze.cpp is a thin CLI.
//   * Deterministic: output depends only on file contents — findings are
//     stable-sorted, reports carry no timestamps — so CI can diff reports.
//   * Self-contained: no libclang, no external processes.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/lexer.hpp"

namespace uvmsim::analyze {

enum class Severity {
  kError,    ///< fails the run (exit 1)
  kWarning,  ///< reported, never fails the run
};

struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative
  int line = 0;
  std::string message;
  Severity severity = Severity::kError;

  /// Baseline identity: deliberately excludes the line number so a finding
  /// does not escape the baseline when unrelated edits shift it around.
  [[nodiscard]] std::string fingerprint() const;
};

/// Everything a rule may look at. `files` is sorted by path; `extra_files`
/// carries non-C++ inputs some rules cross-check (docs/POLICIES.md).
struct Corpus {
  std::string root;  ///< absolute repo root ("" for in-memory corpora)
  std::vector<SourceFile> files;
  std::vector<std::pair<std::string, std::string>> extra_files;  ///< path -> raw text

  [[nodiscard]] const SourceFile* find(std::string_view path) const;
  [[nodiscard]] const std::string* extra(std::string_view path) const;

  /// Lex `content` and insert it keeping `files` sorted by path.
  void add_file(std::string path, std::string_view content);
};

/// Load every *.cpp / *.hpp / *.def under `roots` (repo-relative directories)
/// plus the extra files rules need. Directories that do not exist are
/// skipped; file order is path-sorted so analysis is independent of
/// readdir() order. Throws std::runtime_error when `root` is not a repo
/// (no src/ directory).
[[nodiscard]] Corpus load_corpus(const std::string& root,
                                 const std::vector<std::string>& roots = {
                                     "src", "tools", "include", "bench", "examples", "tests"});

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;
  virtual void run(const Corpus& corpus, std::vector<Finding>& out) const = 0;
};

/// The five shipped rules: layering, determinism, obs-purity,
/// check-coverage, registry-hygiene (docs/ANALYSIS.md).
[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_default_rules();

struct AnalysisOptions {
  /// Empty = every default rule. Unknown names throw std::invalid_argument.
  std::vector<std::string> rules;
  /// Baseline fingerprints (load_baseline). Matching findings are demoted to
  /// `baselined` instead of `findings`.
  std::vector<std::string> baseline;
};

struct AnalysisResult {
  std::vector<Finding> findings;   ///< active: fail the run when any is kError
  std::vector<Finding> baselined;  ///< matched the checked-in baseline
  int suppressed = 0;              ///< silenced by a reasoned UVMSIM-ALLOW
  std::vector<std::string> rules_run;

  [[nodiscard]] bool clean() const noexcept;
  /// 0 clean, 1 findings. (The CLI layers usage errors = 2 on top.)
  [[nodiscard]] int exit_code() const noexcept { return clean() ? 0 : 1; }
};

/// Run `opts.rules` over the corpus. Suppression semantics: a finding is
/// silenced by an `UVMSIM-ALLOW(<rule>): <reason>` comment on the same line
/// or the line directly above, when the rule matches the finding's rule and the
/// reason is non-empty. An ALLOW with an empty reason is itself reported
/// (rule `suppression`), as is one naming an unknown rule.
[[nodiscard]] AnalysisResult run_analysis(const Corpus& corpus, const AnalysisOptions& opts);

// ---- Baseline I/O -------------------------------------------------------
// One fingerprint per line; '#' comments and blank lines ignored. Written
// sorted so the checked-in file diffs cleanly.
[[nodiscard]] std::vector<std::string> load_baseline(std::istream& is);
void write_baseline(std::ostream& os, const std::vector<Finding>& findings);

// ---- Reporters ----------------------------------------------------------
void write_text_report(std::ostream& os, const AnalysisResult& result);
/// Stable-sorted, timestamp-free JSON (schema: docs/ANALYSIS.md).
void write_json_report(std::ostream& os, const AnalysisResult& result);

}  // namespace uvmsim::analyze
