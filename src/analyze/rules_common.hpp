// Token-stream pattern helpers shared by the uvmsim-analyze rules. All of
// these operate on the flat Token vector produced by analyze/lexer.hpp; none
// allocate beyond their return values.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/lexer.hpp"

namespace uvmsim::analyze {

[[nodiscard]] inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] inline const Token* tok_at(const std::vector<Token>& toks, std::size_t i,
                                         std::ptrdiff_t offset) {
  const std::ptrdiff_t at = static_cast<std::ptrdiff_t>(i) + offset;
  if (at < 0 || at >= static_cast<std::ptrdiff_t>(toks.size())) return nullptr;
  return &toks[static_cast<std::size_t>(at)];
}

[[nodiscard]] inline bool tok_is(const Token* t, std::string_view text) {
  return t != nullptr && t->text == text;
}

/// True when token `i` (an identifier) is used as a direct call: the next
/// token is `(` and the identifier is not accessed as a member (`x.f(`,
/// `x->f(`). Qualified uses (`ns::f(`) still count as direct.
[[nodiscard]] inline bool is_direct_call(const std::vector<Token>& toks, std::size_t i) {
  if (!tok_is(tok_at(toks, i, +1), "(")) return false;
  const Token* prev = tok_at(toks, i, -1);
  return !(tok_is(prev, ".") || tok_is(prev, "->"));
}

/// True when the identifier at `i` is qualified exactly by `qualifier::`
/// (e.g. qualifier "std" matches `std::rand`).
[[nodiscard]] inline bool qualified_by(const std::vector<Token>& toks, std::size_t i,
                                       std::string_view qualifier) {
  return tok_is(tok_at(toks, i, -1), "::") && tok_is(tok_at(toks, i, -2), qualifier);
}

/// Index just past the `)` matching the `(` at `open` (which must be a `(`),
/// or toks.size() when unbalanced.
[[nodiscard]] inline std::size_t skip_parens(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")" && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Index just past the `>` closing the `<` at `open`, treating `>>` as two
/// closers (the lexer folds it into one token). Best-effort: returns
/// toks.size() on unbalanced input.
[[nodiscard]] inline std::size_t skip_template_args(const std::vector<Token>& toks,
                                                    std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") --depth;
    if (t == ">>") depth -= 2;
    if (depth <= 0 && i > open) return i + 1;
  }
  return toks.size();
}

/// C++ keywords that can precede `(` without being a function name.
[[nodiscard]] inline const std::set<std::string, std::less<>>& control_keywords() {
  static const std::set<std::string, std::less<>> kw = {
      "if",       "for",     "while",   "switch",   "return",   "sizeof",
      "alignof",  "decltype", "noexcept", "static_assert", "catch", "throw",
      "void",     "bool",    "int",     "char",     "auto",     "new",
      "delete",   "typeid",  "alignas", "explicit", "constexpr", "const",
  };
  return kw;
}

}  // namespace uvmsim::analyze
