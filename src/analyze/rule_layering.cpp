// Rule `layering`: the inter-module dependency DAG.
//
// Every source file is assigned a module — by default the directory under
// src/ it lives in, refined by the override table below (interface headers
// such as trace/trace.hpp are "obs-hooks" regardless of directory; the
// Simulator facade and batch runner form the "engine" module above core).
// A `#include "x/y.hpp"` then induces a module edge, which must appear in
// the declarative allowed-edges table. The observed graph is additionally
// checked for cycles, and the table itself must be a DAG — a bad table
// edit is reported instead of silently legalizing a cycle.
//
// The module hierarchy (docs/ANALYSIS.md has the rationale):
//
//   base        value types, config, stats struct, RNG, event queue, UVM_CHECK
//   xfer        PCIe fabric + bandwidth regulators
//   policy      migration policies (pure decision logic — depends on base only)
//   mitigation  thrash throttle
//   mem         block table, device memory, counters, eviction (+ peer directory)
//   obs-hooks   observation interfaces the driver fires: TraceSink, auditor
//   obs         observation-only sinks: metric registry, recorder, chrome trace
//   prefetch    prefetchers
//   trace       trace record/replay + timeline (concrete sinks)
//   workloads   workload generators (+ registry; may wrap trace replay)
//   core        UvmDriver: the fault-servicing pipeline
//   gpu         SM / TLB / L2 model (raises faults into core)
//   engine      Simulator facade + RunRequest batch runner + config parsing
//   multigpu    multi-GPU orchestration over engine
//   report      CSV/JSON/table reporting over engine results
//   check       differential oracle, fuzzer, tournament (test harnesses)
//   analyze     this static analyzer (standalone + obs JSON helpers)
//   tools       CLIs, tests, benches, examples, umbrella header — may use all
#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/rules.hpp"
#include "analyze/rules_common.hpp"

namespace uvmsim::analyze {

namespace {

struct ModuleOverride {
  std::string_view path;
  std::string_view module;
};

/// Files whose module is not their directory. Keep this list small: it is
/// the precise statement of which headers are interface-grade.
constexpr ModuleOverride kOverrides[] = {
    // Primitive value/infrastructure layer usable from anywhere in src/.
    {"src/sim/types.hpp", "base"},
    {"src/sim/config.hpp", "base"},
    {"src/sim/config.cpp", "base"},
    {"src/sim/stats.hpp", "base"},
    {"src/sim/rng.hpp", "base"},
    {"src/sim/event_queue.hpp", "base"},
    {"src/sim/event_queue.cpp", "base"},
    {"src/sim/thread_pool.hpp", "base"},
    {"src/sim/thread_pool.cpp", "base"},
    {"src/check/check.hpp", "base"},
    {"src/check/check.cpp", "base"},
    // SimStats::report()/accumulate() walk the metric registry, so the
    // implementation lives with the observation layer even though the plain
    // struct is base.
    {"src/sim/stats.cpp", "obs"},
    // Observation hooks the driver fires: the TraceSink interface and the
    // invariant auditor. core may depend on these; concrete sinks may not
    // reach back into core.
    {"src/trace/trace.hpp", "obs-hooks"},
    {"src/trace/trace.cpp", "obs-hooks"},
    {"src/check/audit.hpp", "obs-hooks"},
    {"src/check/audit.cpp", "obs-hooks"},
    // The peer directory is passive residency bookkeeping shared between
    // drivers — mem-grade state, not multi-GPU orchestration.
    {"src/multigpu/peer_directory.hpp", "mem"},
    // The Access/Kernel/Workload vocabulary is interface-grade: the trace
    // sink hooks speak it (on_task carries Access records), so it sits with
    // the passive-data layer rather than the generator implementations.
    {"src/workloads/workload.hpp", "mem"},
    // The Simulator facade + batch engine sit above core and gpu.
    {"src/core/simulator.hpp", "engine"},
    {"src/core/simulator.cpp", "engine"},
    {"src/sim/runner.hpp", "engine"},
    {"src/sim/runner.cpp", "engine"},
    {"src/sim/config_parse.hpp", "engine"},
    {"src/sim/config_parse.cpp", "engine"},
};

struct AllowedEdges {
  std::string_view module;
  std::vector<std::string_view> may_include;  ///< besides itself
};

/// The declarative DAG. `tools` is the only wildcard.
const std::vector<AllowedEdges>& allowed_table() {
  static const std::vector<AllowedEdges> table = {
      {"base", {}},
      {"xfer", {"base"}},
      {"policy", {"base"}},
      {"mitigation", {"base"}},
      {"mem", {"xfer", "base"}},
      {"obs-hooks", {"mem", "policy", "xfer", "base"}},
      {"obs", {"obs-hooks", "base"}},
      {"prefetch", {"mem", "base"}},
      {"workloads", {"trace", "mem", "base"}},
      {"trace", {"obs-hooks", "mem", "base"}},
      {"core", {"obs-hooks", "mem", "mitigation", "policy", "prefetch", "xfer", "base"}},
      {"gpu", {"core", "workloads", "obs-hooks", "mem", "base"}},
      {"engine",
       {"core", "gpu", "trace", "obs", "obs-hooks", "workloads", "policy", "mem", "base"}},
      {"multigpu", {"engine", "core", "gpu", "workloads", "mem", "xfer", "base"}},
      {"report", {"engine", "obs", "base"}},
      {"check", {"engine", "mem", "obs", "obs-hooks", "policy", "trace", "base"}},
      {"analyze", {"obs", "base"}},
      {"tools", {"*"}},
  };
  return table;
}

[[nodiscard]] std::string module_of(std::string_view path) {
  for (const ModuleOverride& o : kOverrides)
    if (path == o.path) return std::string(o.module);
  if (starts_with(path, "src/")) {
    const std::size_t slash = path.find('/', 4);
    if (slash != std::string_view::npos) return std::string(path.substr(4, slash - 4));
  }
  return "tools";  // tools/, tests/, bench/, examples/, include/
}

class LayeringRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "layering"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "inter-module #include edges must follow the allowed-edges DAG";
  }

  void run(const Corpus& corpus, std::vector<Finding>& out) const override {
    std::map<std::string, const AllowedEdges*> table;
    for (const AllowedEdges& e : allowed_table()) table[std::string(e.module)] = &e;
    check_table_acyclic(table, out);

    // Observed module graph (one representative include per edge).
    std::map<std::pair<std::string, std::string>, std::pair<std::string, int>> observed;

    for (const SourceFile& file : corpus.files) {
      const std::string src_mod = module_of(file.path);
      for (const IncludeDirective& inc : file.includes) {
        if (inc.angled) continue;  // system headers carry no layering info
        const std::string target = resolve(corpus, inc.target);
        if (target.empty()) continue;  // not an in-repo header
        const std::string dst_mod = module_of(target);
        if (src_mod == dst_mod) continue;
        observed.try_emplace({src_mod, dst_mod}, file.path, inc.line);

        const auto entry = table.find(src_mod);
        if (entry == table.end()) {
          out.push_back(Finding{
              std::string(name()), file.path, inc.line,
              "module '" + src_mod + "' is not in the layering table (src/analyze/" +
                  "rule_layering.cpp) — new modules must declare their allowed edges",
              Severity::kError});
          continue;
        }
        if (!allows(*entry->second, dst_mod)) {
          out.push_back(Finding{
              std::string(name()), file.path, inc.line,
              "forbidden include edge " + src_mod + " -> " + dst_mod + " (" + inc.target +
                  "); allowed from '" + src_mod + "': " + allowed_list(*entry->second),
              Severity::kError});
        }
      }
    }
    check_observed_acyclic(observed, out);
  }

 private:
  [[nodiscard]] static bool allows(const AllowedEdges& e, const std::string& dst) {
    return std::any_of(e.may_include.begin(), e.may_include.end(),
                       [&](std::string_view m) { return m == "*" || m == dst; });
  }

  [[nodiscard]] static std::string allowed_list(const AllowedEdges& e) {
    if (e.may_include.empty()) return "(nothing)";
    std::string out;
    for (const std::string_view m : e.may_include) {
      if (!out.empty()) out += ", ";
      out += m;
    }
    return out;
  }

  /// "core/uvm_driver.hpp" -> "src/core/uvm_driver.hpp" when that file is in
  /// the corpus; "" for includes that do not resolve to a repo source file
  /// (e.g. tool-local "flag_parse.hpp" relative includes).
  [[nodiscard]] static std::string resolve(const Corpus& corpus, const std::string& target) {
    const std::string candidate = "src/" + target;
    if (corpus.find(candidate) != nullptr) return candidate;
    if (corpus.find(target) != nullptr) return target;
    return "";
  }

  static void check_table_acyclic(const std::map<std::string, const AllowedEdges*>& table,
                                  std::vector<Finding>& out) {
    // DFS with colors over the declared edges ('*' wildcards excluded — the
    // tools sink is terminal by construction).
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> cycle;
    const std::function<bool(const std::string&)> visit = [&](const std::string& m) -> bool {
      color[m] = 1;
      const auto it = table.find(m);
      if (it != table.end()) {
        for (const std::string_view raw : it->second->may_include) {
          if (raw == "*") continue;
          const std::string next(raw);
          if (color[next] == 1) {
            cycle.push_back(next);
            cycle.push_back(m);
            return false;
          }
          if (color[next] == 0 && !visit(next)) {
            cycle.push_back(m);
            return false;
          }
        }
      }
      color[m] = 2;
      return true;
    };
    for (const auto& [m, _] : table) {
      if (color[m] == 0 && !visit(m)) {
        std::string path;
        for (auto it = cycle.rbegin(); it != cycle.rend(); ++it)
          path += (path.empty() ? "" : " -> ") + *it;
        out.push_back(Finding{"layering", "src/analyze/rule_layering.cpp", 0,
                              "allowed-edges table is cyclic: " + path, Severity::kError});
        return;
      }
    }
  }

  static void check_observed_acyclic(
      const std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>& observed,
      std::vector<Finding>& out) {
    std::map<std::string, std::vector<std::string>> g;
    for (const auto& [edge, _] : observed) g[edge.first].push_back(edge.second);
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::string cycle_text;
    const std::function<void(const std::string&)> visit = [&](const std::string& m) {
      color[m] = 1;
      stack.push_back(m);
      const auto it = g.find(m);
      if (it != g.end()) {
        for (const std::string& next : it->second) {
          if (!cycle_text.empty()) return;
          if (color[next] == 1) {
            const auto at = std::find(stack.begin(), stack.end(), next);
            for (auto s = at; s != stack.end(); ++s) cycle_text += *s + " -> ";
            cycle_text += next;
            return;
          }
          if (color[next] == 0) visit(next);
        }
      }
      stack.pop_back();
      color[m] = 2;
    };
    for (const auto& [m, _] : g) {
      if (color[m] == 0 && cycle_text.empty()) visit(m);
    }
    if (!cycle_text.empty()) {
      const auto& [file, line] = observed.begin()->second;
      out.push_back(Finding{"layering", file, line,
                            "observed include graph is cyclic: " + cycle_text,
                            Severity::kError});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_layering_rule() { return std::make_unique<LayeringRule>(); }

}  // namespace uvmsim::analyze
