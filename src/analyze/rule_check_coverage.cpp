// Rule `check-coverage`: simulation code fails through UVM_CHECK
// (check/check.hpp), never through bare assert()/abort(). UVM_CHECK fires in
// every build type, carries a formatted message into UvmCheckError, and the
// differential harnesses catch it as a structured failure — a bare assert
// vanishes in NDEBUG builds and an abort() kills the fuzzer without a repro.
// src/check itself is exempt: it implements the macro and the harnesses that
// intentionally die.
#include <memory>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/rules.hpp"
#include "analyze/rules_common.hpp"

namespace uvmsim::analyze {

namespace {

class CheckCoverageRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "check-coverage"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "src/ outside src/check must use UVM_CHECK instead of bare assert()/abort()";
  }

  void run(const Corpus& corpus, std::vector<Finding>& out) const override {
    for (const SourceFile& file : corpus.files) {
      if (!starts_with(file.path, "src/") || starts_with(file.path, "src/check/")) continue;
      const std::vector<Token>& toks = file.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokenKind::kIdentifier) continue;
        const std::string& t = toks[i].text;
        if (t != "assert" && t != "abort") continue;
        if (!is_direct_call(toks, i)) continue;
        // std::abort is as fatal as abort; any other qualifier is a
        // different function (e.g. SomeClass::abort).
        const Token* prev = tok_at(toks, i, -1);
        if (tok_is(prev, "::") && !qualified_by(toks, i, "std")) continue;
        out.push_back(Finding{
            std::string(name()), file.path, toks[i].line,
            t == "assert"
                ? "bare assert() vanishes in NDEBUG builds — use UVM_CHECK (check/check.hpp)"
                : "abort() kills the process without a structured failure — use UVM_CHECK "
                  "(check/check.hpp)",
            Severity::kError});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_check_coverage_rule() { return std::make_unique<CheckCoverageRule>(); }

}  // namespace uvmsim::analyze
