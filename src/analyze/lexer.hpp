// A lightweight C++ lexer for uvmsim-analyze (docs/ANALYSIS.md). It is NOT a
// compiler front end: it produces a flat token stream that is exact about the
// three things source-level rules care about —
//   * comments and string/char literals never leak into the token stream
//     (so `"rand()"` in a doc string can't trip the determinism rule),
//   * preprocessor #include directives are extracted as structured records,
//   * line numbers survive, including through backslash continuations and
//     raw string literals,
// and deliberately naive about everything else (no macro expansion, no name
// lookup). Rules that need structure (class bodies, for-headers) walk the
// token stream with small local pattern matchers.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace uvmsim::analyze {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the lexer does not distinguish)
  kNumber,
  kString,  ///< text excludes quotes; raw strings are decoded
  kChar,
  kPunct,  ///< one token per multi-char operator (::, ->, ...)
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;  ///< 1-based
};

/// One `#include` directive.
struct IncludeDirective {
  std::string target;  ///< path between the delimiters
  bool angled;         ///< <...> vs "..."
  int line;
};

/// One comment, with `//` / `/* */` delimiters stripped.
struct Comment {
  std::string text;
  int line;  ///< line the comment starts on
};

/// An inline `// UVMSIM-ALLOW(<rule>): <reason>` suppression parsed out of a
/// comment. The reason may be empty — the analyzer reports that as its own
/// finding, a suppression without a recorded justification is worse than the
/// violation it hides.
struct Suppression {
  std::string rule;
  std::string reason;
  int line;
};

/// The lexed form of one source file.
struct SourceFile {
  std::string path;  ///< repo-relative, '/'-separated
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  std::vector<Comment> comments;
  std::vector<Suppression> suppressions;

  [[nodiscard]] bool has_token_text(std::string_view text) const;
};

/// Lex `content` as the file `path`. Never throws on malformed input: an
/// unterminated literal or comment simply runs to end of file — the analyzer
/// must degrade gracefully on code the real compiler would reject.
[[nodiscard]] SourceFile lex_file(std::string path, std::string_view content);

}  // namespace uvmsim::analyze
