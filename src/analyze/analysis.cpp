#include "analyze/analysis.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analyze/rules.hpp"
#include "obs/json.hpp"

namespace uvmsim::analyze {

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(make_layering_rule());
  rules.push_back(make_determinism_rule());
  rules.push_back(make_obs_purity_rule());
  rules.push_back(make_check_coverage_rule());
  rules.push_back(make_registry_hygiene_rule());
  return rules;
}

namespace fs = std::filesystem;

std::string Finding::fingerprint() const { return rule + "|" + file + "|" + message; }

const SourceFile* Corpus::find(std::string_view path) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), path,
      [](const SourceFile& f, std::string_view p) { return f.path < p; });
  return it != files.end() && it->path == path ? &*it : nullptr;
}

const std::string* Corpus::extra(std::string_view path) const {
  for (const auto& [p, text] : extra_files)
    if (p == path) return &text;
  return nullptr;
}

void Corpus::add_file(std::string path, std::string_view content) {
  SourceFile f = lex_file(std::move(path), content);
  const auto at = std::lower_bound(
      files.begin(), files.end(), f.path,
      [](const SourceFile& a, const std::string& p) { return a.path < p; });
  files.insert(at, std::move(f));
}

namespace {

[[nodiscard]] std::string read_whole_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

[[nodiscard]] bool analyzable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".def";
}

}  // namespace

Corpus load_corpus(const std::string& root, const std::vector<std::string>& roots) {
  const fs::path base(root);
  if (!fs::is_directory(base / "src"))
    throw std::runtime_error("'" + root + "' has no src/ — not a repo root");

  Corpus corpus;
  corpus.root = fs::absolute(base).lexically_normal().string();
  for (const std::string& sub : roots) {
    const fs::path dir = base / sub;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) continue;
      if (!analyzable(it->path())) continue;
      const std::string rel = fs::relative(it->path(), base).generic_string();
      corpus.files.push_back(lex_file(rel, read_whole_file(it->path())));
    }
  }
  std::sort(corpus.files.begin(), corpus.files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });

  // Non-C++ inputs cross-checked by rules (missing files stay absent — the
  // rule that needs one reports that itself).
  for (const char* extra : {"docs/POLICIES.md", "docs/WORKLOADS.md"}) {
    const fs::path p = base / extra;
    if (fs::is_regular_file(p)) corpus.extra_files.emplace_back(extra, read_whole_file(p));
  }
  return corpus;
}

bool AnalysisResult::clean() const noexcept {
  return std::none_of(findings.begin(), findings.end(),
                      [](const Finding& f) { return f.severity == Severity::kError; });
}

namespace {

void sort_findings(std::vector<Finding>& v) {
  std::sort(v.begin(), v.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
}

/// Suppressions + hygiene: silence findings carrying a reasoned ALLOW on the
/// same or previous line; report reason-less or unknown-rule ALLOWs.
void apply_suppressions(const Corpus& corpus, const std::set<std::string>& known_rules,
                        std::vector<Finding>& findings, AnalysisResult& result) {
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    const SourceFile* file = corpus.find(f.file);
    bool suppressed = false;
    if (file != nullptr) {
      for (const Suppression& s : file->suppressions) {
        if (s.rule == f.rule && !s.reason.empty() &&
            (s.line == f.line || s.line == f.line - 1)) {
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed)
      ++result.suppressed;
    else
      kept.push_back(std::move(f));
  }
  findings = std::move(kept);

  for (const SourceFile& file : corpus.files) {
    for (const Suppression& s : file.suppressions) {
      if (s.reason.empty()) {
        findings.push_back(Finding{
            "suppression", file.path, s.line,
            "UVMSIM-ALLOW(" + s.rule + ") has no reason — every suppression must record why",
            Severity::kError});
      } else if (known_rules.count(s.rule) == 0) {
        findings.push_back(Finding{
            "suppression", file.path, s.line,
            "UVMSIM-ALLOW names unknown rule '" + s.rule + "'", Severity::kError});
      }
    }
  }
}

}  // namespace

AnalysisResult run_analysis(const Corpus& corpus, const AnalysisOptions& opts) {
  const std::vector<std::unique_ptr<Rule>> all = make_default_rules();

  std::vector<const Rule*> selected;
  if (opts.rules.empty()) {
    for (const auto& r : all) selected.push_back(r.get());
  } else {
    for (const std::string& want : opts.rules) {
      const auto it = std::find_if(all.begin(), all.end(),
                                   [&](const auto& r) { return r->name() == want; });
      if (it == all.end()) throw std::invalid_argument("unknown rule '" + want + "'");
      selected.push_back(it->get());
    }
  }

  std::set<std::string> known_rules;
  for (const auto& r : all) known_rules.emplace(r->name());
  known_rules.insert("suppression");

  AnalysisResult result;
  std::vector<Finding> findings;
  for (const Rule* rule : selected) {
    result.rules_run.emplace_back(rule->name());
    rule->run(corpus, findings);
  }
  apply_suppressions(corpus, known_rules, findings, result);

  const std::set<std::string> baseline(opts.baseline.begin(), opts.baseline.end());
  for (Finding& f : findings) {
    if (baseline.count(f.fingerprint()) != 0)
      result.baselined.push_back(std::move(f));
    else
      result.findings.push_back(std::move(f));
  }
  sort_findings(result.findings);
  sort_findings(result.baselined);
  return result;
}

std::vector<std::string> load_baseline(std::istream& is) {
  std::vector<std::string> out;
  std::string line;
  while (std::getline(is, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  return out;
}

void write_baseline(std::ostream& os, const std::vector<Finding>& findings) {
  os << "# uvmsim-analyze baseline — one finding fingerprint per line\n"
     << "# (rule|file|message; regenerate with uvmsim-analyze --write-baseline)\n";
  std::vector<std::string> lines;
  lines.reserve(findings.size());
  for (const Finding& f : findings) lines.push_back(f.fingerprint());
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  for (const std::string& l : lines) os << l << "\n";
}

void write_text_report(std::ostream& os, const AnalysisResult& result) {
  for (const Finding& f : result.findings) {
    os << f.file << ":" << f.line << ": "
       << (f.severity == Severity::kError ? "error" : "warning") << " [" << f.rule << "] "
       << f.message << "\n";
  }
  os << "uvmsim-analyze: " << result.findings.size() << " finding"
     << (result.findings.size() == 1 ? "" : "s");
  if (result.suppressed != 0) os << ", " << result.suppressed << " suppressed";
  if (!result.baselined.empty()) os << ", " << result.baselined.size() << " baselined";
  os << " (rules:";
  for (const std::string& r : result.rules_run) os << " " << r;
  os << ")\n";
}

void write_json_report(std::ostream& os, const AnalysisResult& result) {
  const auto write_finding_array = [&os](const std::vector<Finding>& v) {
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Finding& f = v[i];
      if (i != 0) os << ",";
      os << "\n    {\"rule\": ";
      obs::write_json_string(os, f.rule);
      os << ", \"file\": ";
      obs::write_json_string(os, f.file);
      os << ", \"line\": " << f.line << ", \"severity\": "
         << (f.severity == Severity::kError ? "\"error\"" : "\"warning\"")
         << ", \"message\": ";
      obs::write_json_string(os, f.message);
      os << "}";
    }
    os << (v.empty() ? "]" : "\n  ]");
  };

  os << "{\n  \"version\": 1,\n  \"rules\": [";
  for (std::size_t i = 0; i < result.rules_run.size(); ++i) {
    if (i != 0) os << ", ";
    obs::write_json_string(os, result.rules_run[i]);
  }
  os << "],\n  \"findings\": ";
  write_finding_array(result.findings);
  os << ",\n  \"baselined\": ";
  write_finding_array(result.baselined);
  os << ",\n  \"suppressed\": " << result.suppressed
     << ",\n  \"clean\": " << (result.clean() ? "true" : "false") << "\n}\n";
}

}  // namespace uvmsim::analyze
