#include "analyze/lexer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace uvmsim::analyze {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators we keep as single tokens. Rules match on
/// `::`, `->` and friends, so splitting them into single chars would force
/// every matcher to re-assemble them. Longest-match-first.
constexpr std::array<std::string_view, 21> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "++", "--", "+=", "-=", "*=", "/=",
    "##",
};

class Lexer {
 public:
  Lexer(std::string path, std::string_view src) : src_(src) { out_.path = std::move(path); }

  SourceFile run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == '\\' && peek(1) == '\n') {  // line continuation
        ++line_;
        pos_ += 2;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '"') {
        string_literal();
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        number();
        continue;
      }
      punct();
    }
    return std::move(out_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void add(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void record_comment(std::string text, int line) {
    parse_suppression(text, line);
    out_.comments.push_back(Comment{std::move(text), line});
  }

  /// Recognize `UVMSIM-ALLOW(<rule>): <reason>` anywhere inside a comment.
  /// The rule name must be a plain slug ([A-Za-z0-9_-]+) — prose that merely
  /// *mentions* the syntax with a placeholder is not a suppression.
  void parse_suppression(std::string_view text, int line) {
    constexpr std::string_view kTag = "UVMSIM-ALLOW(";
    const std::size_t at = text.find(kTag);
    if (at == std::string_view::npos) return;
    const std::size_t open = at + kTag.size();
    const std::size_t close = text.find(')', open);
    if (close == std::string_view::npos) return;
    const std::string_view rule = text.substr(open, close - open);
    if (rule.empty()) return;
    for (const char c : rule) {
      if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '_') return;
    }
    Suppression s;
    s.rule = std::string(rule);
    s.line = line;
    std::size_t rest = close + 1;
    if (rest < text.size() && text[rest] == ':') ++rest;
    while (rest < text.size() && std::isspace(static_cast<unsigned char>(text[rest])) != 0)
      ++rest;
    std::size_t end = text.size();
    while (end > rest && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) --end;
    s.reason = std::string(text.substr(rest, end - rest));
    out_.suppressions.push_back(std::move(s));
  }

  void line_comment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && peek(1) == '\n') {  // comment continues
        text += '\n';
        ++line_;
        pos_ += 2;
        continue;
      }
      text += src_[pos_++];
    }
    record_comment(std::move(text), start_line);
  }

  void block_comment() {
    const int start_line = line_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    record_comment(std::move(text), start_line);
  }

  /// A preprocessor line. `#include` becomes a structured record; the bodies
  /// of every other directive are lexed into the normal token stream (a
  /// banned call hidden in a macro body must still be visible to rules).
  void directive() {
    const int start_line = line_;
    ++pos_;  // '#'
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) ++pos_;
    std::string name;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) name += src_[pos_++];
    at_line_start_ = false;
    if (name != "include") {
      add(TokenKind::kPunct, "#", start_line);
      if (!name.empty()) add(TokenKind::kIdentifier, std::move(name), start_line);
      return;  // rest of the line lexes normally
    }
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t')) ++pos_;
    if (pos_ >= src_.size()) return;
    const char open = src_[pos_];
    if (open != '"' && open != '<') return;  // computed include: ignore
    const char close = open == '<' ? '>' : '"';
    ++pos_;
    std::string target;
    while (pos_ < src_.size() && src_[pos_] != close && src_[pos_] != '\n')
      target += src_[pos_++];
    if (pos_ < src_.size() && src_[pos_] == close) ++pos_;
    out_.includes.push_back(IncludeDirective{std::move(target), open == '<', start_line});
  }

  void string_literal() {
    const int start_line = line_;
    // Raw string? The caller dispatches on '"', so look back for R prefix —
    // identifier() handles R"..." itself; this path is plain strings only.
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // unterminated: stop at EOL
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '"') ++pos_;
    add(TokenKind::kString, std::move(text), start_line);
  }

  /// Entered with pos_ on the opening quote (the R prefix, with any encoding
  /// prefix, has already been consumed by identifier()).
  void raw_string_literal() {
    const int start_line = line_;
    ++pos_;  // '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string terminator = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() && src_.compare(pos_, terminator.size(), terminator) != 0) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    pos_ = std::min(pos_ + terminator.size(), src_.size());
    add(TokenKind::kString, std::move(text), start_line);
  }

  void char_literal() {
    const int start_line = line_;
    ++pos_;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    add(TokenKind::kChar, std::move(text), start_line);
  }

  void identifier() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) text += src_[pos_++];
    // Raw / encoded string literal prefixes glued to a quote.
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (text == "R" || text == "u8R" || text == "uR" || text == "UR" || text == "LR") {
        raw_string_literal();  // pos_ sits on the opening quote
        return;
      }
      if (text == "u8" || text == "u" || text == "U" || text == "L") {
        string_literal();  // prefix token dropped; content is what matters
        return;
      }
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      char_literal();
      return;
    }
    add(TokenKind::kIdentifier, std::move(text), start_line);
  }

  void number() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() &&
           (is_ident_char(src_[pos_]) || src_[pos_] == '.' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
              text.back() == 'P')))) {
      text += src_[pos_++];
    }
    add(TokenKind::kNumber, std::move(text), start_line);
  }

  void punct() {
    for (const std::string_view p : kPuncts) {
      if (src_.compare(pos_, p.size(), p) == 0) {
        add(TokenKind::kPunct, std::string(p), line_);
        pos_ += p.size();
        return;
      }
    }
    add(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  SourceFile out_;
};

}  // namespace

bool SourceFile::has_token_text(std::string_view text) const {
  return std::any_of(tokens.begin(), tokens.end(),
                     [&](const Token& t) { return t.text == text; });
}

SourceFile lex_file(std::string path, std::string_view content) {
  return Lexer(std::move(path), content).run();
}

}  // namespace uvmsim::analyze
