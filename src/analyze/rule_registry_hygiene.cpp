// Rule `registry-hygiene`: the two places where the repo promises "every X
// is registered" are cross-checked mechanically.
//
//   * Every numeric SimStats field (src/sim/stats.hpp) must have exactly one
//     UVMSIM_METRIC entry in obs/metrics.def, and vice versa. The build
//     already static_asserts the *count* (obs/registry.cpp); this rule names
//     the exact missing or stale field instead of just failing sizeof.
//   * Every policy slug registered in src/policy/ must have a backticked
//     entry in docs/POLICIES.md — an undocumented policy is invisible to
//     anyone reading the catalog, and a documented-but-removed slug is a lie.
//   * Every workload slug in the factory table of src/workloads/registry.cpp
//     must have a backticked entry in docs/WORKLOADS.md, for the same
//     reason: `uvmsim --workload X` is only discoverable through that doc.
//   * Every key the config setter table accepts must be written back by
//     to_config_string and vice versa (both in src/sim/config_parse.cpp) —
//     a one-sided key silently breaks the parse/serialize round trip that
//     replay sidecars and config_digest depend on.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/rules.hpp"
#include "analyze/rules_common.hpp"

namespace uvmsim::analyze {

namespace {

constexpr std::string_view kStatsPath = "src/sim/stats.hpp";
constexpr std::string_view kMetricsPath = "src/obs/metrics.def";
constexpr std::string_view kPoliciesDoc = "docs/POLICIES.md";
constexpr std::string_view kWorkloadRegistry = "src/workloads/registry.cpp";
constexpr std::string_view kWorkloadsDoc = "docs/WORKLOADS.md";
constexpr std::string_view kConfigParse = "src/sim/config_parse.cpp";

/// Numeric fields of struct SimStats: `uint64_t name = ...;` / `Cycle name;`
/// at depth 1 of the struct body. Non-numeric members (std::string
/// last_violation) are intentionally outside the metric schema.
[[nodiscard]] std::map<std::string, int> collect_stats_fields(const SourceFile& file) {
  std::map<std::string, int> fields;
  const std::vector<Token>& toks = file.tokens;

  std::size_t body = toks.size();
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "struct" && toks[i + 1].text == "SimStats" &&
        toks[i + 2].text == "{") {
      body = i + 3;
      break;
    }
  }
  if (body == toks.size()) return fields;

  int depth = 1;
  for (std::size_t i = body; i < toks.size() && depth > 0; ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") ++depth;
    if (t == "}") --depth;
    if (depth != 1 || toks[i].kind != TokenKind::kIdentifier) continue;
    const Token* prev = tok_at(toks, i, -1);
    if (prev == nullptr || prev->kind != TokenKind::kIdentifier) continue;
    if (prev->text != "uint64_t" && prev->text != "Cycle") continue;
    const Token* next = tok_at(toks, i, +1);
    if (!tok_is(next, "=") && !tok_is(next, ";")) continue;
    fields.emplace(t, toks[i].line);
  }
  return fields;
}

/// First argument of each UVMSIM_METRIC(field, ...) invocation.
[[nodiscard]] std::map<std::string, int> collect_metric_entries(const SourceFile& file) {
  std::map<std::string, int> entries;
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "UVMSIM_METRIC" || toks[i + 1].text != "(") continue;
    if (toks[i + 2].kind == TokenKind::kIdentifier)
      entries.emplace(toks[i + 2].text, toks[i + 2].line);
  }
  return entries;
}

class RegistryHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "registry-hygiene"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "SimStats fields <-> obs/metrics.def entries; policy slugs documented in "
           "docs/POLICIES.md; workload slugs documented in docs/WORKLOADS.md; config "
           "setter keys <-> to_config_string keys";
  }

  void run(const Corpus& corpus, std::vector<Finding>& out) const override {
    check_metric_registry(corpus, out);
    check_policy_docs(corpus, out);
    check_workload_docs(corpus, out);
    check_config_keys(corpus, out);
  }

 private:
  void add(std::string file, int line, std::string message, std::vector<Finding>& out) const {
    out.push_back(Finding{std::string(name()), std::move(file), line, std::move(message),
                          Severity::kError});
  }

  void check_metric_registry(const Corpus& corpus, std::vector<Finding>& out) const {
    const SourceFile* stats = corpus.find(kStatsPath);
    const SourceFile* metrics = corpus.find(kMetricsPath);
    if (stats == nullptr || metrics == nullptr) return;  // partial corpora (fixtures)

    const std::map<std::string, int> fields = collect_stats_fields(*stats);
    const std::map<std::string, int> entries = collect_metric_entries(*metrics);
    if (fields.empty()) {
      add(std::string(kStatsPath), 0,
          "could not locate any numeric SimStats fields — rule parser out of date?", out);
      return;
    }
    for (const auto& [field, line] : fields) {
      if (entries.count(field) == 0) {
        add(std::string(kStatsPath), line,
            "SimStats field '" + field + "' has no UVMSIM_METRIC entry in obs/metrics.def",
            out);
      }
    }
    for (const auto& [entry, line] : entries) {
      if (fields.count(entry) == 0) {
        add(std::string(kMetricsPath), line,
            "UVMSIM_METRIC entry '" + entry + "' has no matching numeric SimStats field",
            out);
      }
    }
  }

  void check_policy_docs(const Corpus& corpus, std::vector<Finding>& out) const {
    // Slugs registered in src/policy/: `<registry>.add({"slug", ...})` and
    // static `PolicyRegistrar{"slug", ...}` registrations.
    std::map<std::string, std::pair<std::string, int>> slugs;  // slug -> (file, line)
    bool saw_registration_site = false;
    for (const SourceFile& file : corpus.files) {
      if (!starts_with(file.path, "src/policy/")) continue;
      const std::vector<Token>& toks = file.tokens;
      for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (toks[i].text == "add" && toks[i + 1].text == "(" && toks[i + 2].text == "{" &&
            toks[i + 3].kind == TokenKind::kString) {
          slugs.try_emplace(toks[i + 3].text, std::make_pair(file.path, toks[i + 3].line));
          saw_registration_site = true;
          continue;
        }
        // `PolicyRegistrar kReg{"slug", ...}` / `PolicyRegistrar{"slug", ...}`.
        if (toks[i].text == "PolicyRegistrar") {
          std::size_t j = i + 1;
          if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) ++j;
          if (j + 1 < toks.size() && (toks[j].text == "{" || toks[j].text == "(") &&
              toks[j + 1].kind == TokenKind::kString) {
            slugs.try_emplace(toks[j + 1].text, std::make_pair(file.path, toks[j + 1].line));
            saw_registration_site = true;
          }
        }
      }
    }
    if (!saw_registration_site) return;  // fixture corpus without the policy layer

    const std::string* doc = corpus.extra(kPoliciesDoc);
    if (doc == nullptr) {
      const auto& [file, line] = slugs.begin()->second;
      add(file, line,
          "policy slugs are registered but docs/POLICIES.md is missing from the repo", out);
      return;
    }
    for (const auto& [slug, where] : slugs) {
      if (doc->find("`" + slug + "`") == std::string::npos) {
        add(where.first, where.second,
            "policy slug '" + slug + "' has no `" + slug + "` entry in docs/POLICIES.md",
            out);
      }
    }
  }

  void check_workload_docs(const Corpus& corpus, std::vector<Finding>& out) const {
    // Workload slugs are the string keys of the factory table in
    // src/workloads/registry.cpp: `{"slug", make_xxx}` initializer entries.
    const SourceFile* registry = corpus.find(kWorkloadRegistry);
    if (registry == nullptr) return;  // partial corpora (fixtures)

    std::map<std::string, int> slugs;  // slug -> line
    const std::vector<Token>& toks = registry->tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].text != "{" || toks[i + 1].kind != TokenKind::kString ||
          toks[i + 2].text != ",")
        continue;
      if (toks[i + 3].kind == TokenKind::kIdentifier &&
          starts_with(toks[i + 3].text, "make_")) {
        slugs.try_emplace(toks[i + 1].text, toks[i + 1].line);
      }
    }
    if (slugs.empty()) return;  // table refactored away; nothing to check

    const std::string* doc = corpus.extra(kWorkloadsDoc);
    if (doc == nullptr) {
      add(std::string(kWorkloadRegistry), slugs.begin()->second,
          "workload slugs are registered but docs/WORKLOADS.md is missing from the repo",
          out);
      return;
    }
    for (const auto& [slug, line] : slugs) {
      if (doc->find("`" + slug + "`") == std::string::npos) {
        add(std::string(kWorkloadRegistry), line,
            "workload slug '" + slug + "' has no `" + slug + "` entry in docs/WORKLOADS.md",
            out);
      }
    }
  }
  void check_config_keys(const Corpus& corpus, std::vector<Finding>& out) const {
    const SourceFile* file = corpus.find(kConfigParse);
    if (file == nullptr) return;  // partial corpora (fixtures)
    const std::vector<Token>& toks = file->tokens;

    // Setter-map keys: the `{"key", <lambda>}` entries of the setters() table.
    std::map<std::string, int> setter_keys;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kString) continue;
      if (toks[i - 1].text != "{" || toks[i + 1].text != ",") continue;
      if (toks[i].text.find(' ') != std::string::npos) continue;
      setter_keys.try_emplace(toks[i].text, toks[i].line);
    }

    // Serialized keys: the `<< "key = "` literals of to_config_string.
    std::map<std::string, int> serialized;
    for (const Token& t : toks) {
      if (t.kind != TokenKind::kString) continue;
      const std::string& s = t.text;
      if (s.size() <= 3 || s.compare(s.size() - 3, 3, " = ") != 0) continue;
      const std::string key = s.substr(0, s.size() - 3);
      if (key.find(' ') != std::string::npos) continue;
      serialized.try_emplace(key, t.line);
    }
    if (setter_keys.empty() || serialized.empty()) return;  // refactored away

    for (const auto& [key, line] : setter_keys) {
      if (serialized.count(key) == 0) {
        add(std::string(kConfigParse), line,
            "config key '" + key +
                "' is parseable but never written by to_config_string (round-trip hole)",
            out);
      }
    }
    for (const auto& [key, line] : serialized) {
      if (setter_keys.count(key) == 0) {
        add(std::string(kConfigParse), line,
            "to_config_string writes key '" + key +
                "' that no setter accepts (unparseable output)",
            out);
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_registry_hygiene_rule() {
  return std::make_unique<RegistryHygieneRule>();
}

}  // namespace uvmsim::analyze
