// Factories for the shipped uvmsim-analyze rules. One translation unit per
// rule; make_default_rules() (analysis.cpp) assembles them in report order.
// Adding a rule: implement Rule in a new rule_<name>.cpp, declare its
// factory here, append it in make_default_rules(), document it in
// docs/ANALYSIS.md and cover it with a fixture test (tests/analyze/).
#pragma once

#include <memory>

#include "analyze/analysis.hpp"

namespace uvmsim::analyze {

std::unique_ptr<Rule> make_layering_rule();
std::unique_ptr<Rule> make_determinism_rule();
std::unique_ptr<Rule> make_obs_purity_rule();
std::unique_ptr<Rule> make_check_coverage_rule();
std::unique_ptr<Rule> make_registry_hygiene_rule();

}  // namespace uvmsim::analyze
