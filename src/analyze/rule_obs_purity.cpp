// Rule `obs-purity`: observation code observes, it never steers.
//
// Files under src/obs/ and every TraceSink implementation (trace/trace.hpp
// guarantees "the driver never changes behavior based on an attached sink")
// may not call non-const methods of the simulation's mutable cores:
// UvmDriver, Simulator and BlockTable. The mutator list is not hand-written
// — it is extracted from those class declarations at analysis time, so a
// newly added driver mutator is covered the moment it is declared.
//
// Name-based: a method name counts as a mutator only when *every* overload
// is non-const (BlockTable::block() has const and non-const overloads — a
// name-level check cannot tell which one a call resolves to, so such names
// are skipped rather than guessed at).
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analyze/analysis.hpp"
#include "analyze/rules.hpp"
#include "analyze/rules_common.hpp"

namespace uvmsim::analyze {

namespace {

struct MutatorSource {
  std::string_view file;
  std::string_view cls;
};

constexpr MutatorSource kMutatorSources[] = {
    {"src/core/uvm_driver.hpp", "UvmDriver"},
    {"src/core/simulator.hpp", "Simulator"},
    {"src/mem/block_table.hpp", "BlockTable"},
};

/// Method names declared in class `cls` of `file`, split by constness.
struct MethodScan {
  std::set<std::string> const_names;
  std::set<std::string> nonconst_names;
};

[[nodiscard]] MethodScan scan_class_methods(const SourceFile& file, std::string_view cls) {
  MethodScan scan;
  const std::vector<Token>& toks = file.tokens;

  // Locate `class <cls> ... {`.
  std::size_t body = toks.size();
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if ((toks[i].text == "class" || toks[i].text == "struct") && toks[i + 1].text == cls) {
      for (std::size_t j = i + 2; j < toks.size(); ++j) {
        if (toks[j].text == ";") break;  // forward declaration
        if (toks[j].text == "{") {
          body = j + 1;
          break;
        }
      }
      if (body != toks.size()) break;
    }
  }
  if (body == toks.size()) return scan;

  int depth = 1;
  for (std::size_t i = body; i < toks.size() && depth > 0; ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      ++depth;
      continue;
    }
    if (t == "}") {
      --depth;
      continue;
    }
    if (depth != 1) continue;  // nested types / inline bodies are not decls
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (!tok_is(tok_at(toks, i, +1), "(")) continue;
    if (t == cls) continue;  // constructor
    if (tok_is(tok_at(toks, i, -1), "~") || tok_is(tok_at(toks, i, -1), "operator")) continue;
    if (control_keywords().count(t) != 0) continue;

    // Constness: `const` between the parameter list's `)` and the
    // declaration terminator (';', '{' or '=' for defaulted/deleted).
    const std::size_t after_params = skip_parens(toks, i + 1);
    bool is_const = false;
    for (std::size_t j = after_params; j < toks.size(); ++j) {
      const std::string& q = toks[j].text;
      if (q == ";" || q == "{" || q == "=") break;
      if (q == "const") {
        is_const = true;
        break;
      }
    }
    (is_const ? scan.const_names : scan.nonconst_names).insert(t);
  }
  return scan;
}

class ObsPurityRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "obs-purity"; }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "src/obs and TraceSink implementations must not call UvmDriver/Simulator/"
           "BlockTable mutators";
  }

  void run(const Corpus& corpus, std::vector<Finding>& out) const override {
    // name -> owning classes (for the message).
    std::map<std::string, std::string> mutators;
    for (const MutatorSource& src : kMutatorSources) {
      const SourceFile* file = corpus.find(src.file);
      if (file == nullptr) continue;
      const MethodScan scan = scan_class_methods(*file, src.cls);
      for (const std::string& m : scan.nonconst_names) {
        if (scan.const_names.count(m) != 0) continue;  // const overload exists
        auto [it, inserted] = mutators.try_emplace(m, std::string(src.cls));
        if (!inserted) {
          it->second += '/';
          it->second += src.cls;
        }
      }
    }
    if (mutators.empty()) return;

    for (const SourceFile& file : corpus.files) {
      if (!is_observation_file(corpus, file)) continue;
      scan_call_sites(file, mutators, out);
    }
  }

 private:
  /// src/obs/**, plus any src/ file declaring a TraceSink subclass, plus the
  /// .cpp twin of such a header (sink methods are implemented there).
  [[nodiscard]] static bool is_observation_file(const Corpus& corpus, const SourceFile& file) {
    if (!starts_with(file.path, "src/")) return false;
    if (starts_with(file.path, "src/obs/")) return true;
    if (file.path == "src/trace/trace.hpp") return false;  // declares the interface itself
    if (declares_sink(file)) return true;
    if (file.path.size() > 4 && file.path.substr(file.path.size() - 4) == ".cpp") {
      const std::string header = file.path.substr(0, file.path.size() - 4) + ".hpp";
      const SourceFile* h = corpus.find(header);
      return h != nullptr && h->path != "src/trace/trace.hpp" && declares_sink(*h);
    }
    return false;
  }

  [[nodiscard]] static bool declares_sink(const SourceFile& file) {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].text == "public" && toks[i + 1].text == "TraceSink") return true;
    }
    return false;
  }

  void scan_call_sites(const SourceFile& file, const std::map<std::string, std::string>& mutators,
                       std::vector<Finding>& out) const {
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const auto it = mutators.find(toks[i].text);
      if (it == mutators.end()) continue;
      if (!tok_is(tok_at(toks, i, +1), "(")) continue;
      const Token* access = tok_at(toks, i, -1);
      if (!tok_is(access, ".") && !tok_is(access, "->")) continue;
      const Token* object = tok_at(toks, i, -2);
      if (tok_is(object, "this")) continue;  // the sink's own method
      out.push_back(Finding{
          std::string(name()), file.path, toks[i].line,
          "observation-only code calls mutating method '" + toks[i].text + "' (a " +
              it->second + " mutator) — sinks must never change simulation state",
          Severity::kError});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_obs_purity_rule() { return std::make_unique<ObsPurityRule>(); }

}  // namespace uvmsim::analyze
