// Online-adaptive migration policies built on the PolicyFeatures API
// (ROADMAP item 5, in the direction of "An Intelligent Framework for
// Oversubscription Management in CPU-GPU Unified Memory"). Both are
// integer-only and stateful-but-deterministic: decisions depend solely on
// the consultation sequence, never on wall clock or process-global RNG.
//
// * TunedThresholdPolicy ("tuned") — hill-climbing threshold tuner. Runs
//   first-touch until the device first fills, then applies a static-style
//   threshold it re-tunes every epoch of kEpochEvents consultations: the
//   epoch's fault-service cost (migrations weighted far-fault-heavy, remote
//   accesses cheap, plus eviction pressure) is compared against the previous
//   epoch's, the climb direction reverses when cost worsened, and the
//   threshold steps by max(1, ts/4) within [1, 8*ts_base].
//
// * LearnedTablePolicy ("learned") — table-based learned predictor. A
//   256-entry table indexed by quantized (round_trips, occupancy,
//   fault-arrival-rate) holds per-bucket outcome counters (clean migrations
//   vs re-migrations of previously evicted blocks). Each bucket's threshold
//   hardens from ts toward ts*(1+p) as its observed thrash ratio grows —
//   a per-regime version of Equation 1's multiplicative pinning.
#pragma once

#include <array>
#include <cstdint>

#include "policy/migration_policy.hpp"

namespace uvmsim {

class PolicyRegistry;

class TunedThresholdPolicy final : public MigrationPolicy {
 public:
  /// Consultations per tuning epoch: long enough to smooth single-block
  /// noise, short enough to adapt within one oversubscribed kernel launch.
  static constexpr std::uint32_t kEpochEvents = 256;
  /// Decision costs, roughly the latency ratio between a far fault
  /// (~45 us handling) and a zero-copy remote access (~200 cycles); the
  /// eviction term charges the thrash externality of migrating under
  /// pressure.
  static constexpr std::uint64_t kMigrateCost = 64;
  static constexpr std::uint64_t kRemoteCost = 1;
  static constexpr std::uint64_t kEvictCost = 32;

  TunedThresholdPolicy(std::uint32_t ts, bool write_migrates)
      : ts_base_(ts == 0 ? 1 : ts), ts_cur_(ts_base_), ts_max_(8 * ts_base_),
        write_migrates_(write_migrates) {}

  [[nodiscard]] std::string name() const override { return "tuned"; }
  [[nodiscard]] MigrationDecision decide(const PolicyFeatures& f) override;
  [[nodiscard]] std::uint64_t effective_threshold(const PolicyFeatures& f) const override {
    return f.oversubscribed ? ts_cur_ : 1;
  }

  /// Current tuned threshold (test hook).
  [[nodiscard]] std::uint32_t current_threshold() const noexcept { return ts_cur_; }

 private:
  void end_epoch(std::uint64_t total_evictions);

  std::uint32_t ts_base_;
  std::uint32_t ts_cur_;
  std::uint32_t ts_max_;
  bool write_migrates_;
  int direction_ = 1;  ///< climb direction; reversed when an epoch worsened cost
  std::uint32_t epoch_events_ = 0;
  std::uint64_t epoch_cost_ = 0;
  std::uint64_t epoch_start_evictions_ = 0;
  bool have_prev_cost_ = false;
  std::uint64_t prev_cost_ = 0;
};

class LearnedTablePolicy final : public MigrationPolicy {
 public:
  static constexpr std::uint32_t kTripBuckets = 8;
  static constexpr std::uint32_t kOccBuckets = 8;
  static constexpr std::uint32_t kRateBuckets = 4;
  static constexpr std::uint32_t kCells = kTripBuckets * kOccBuckets * kRateBuckets;
  /// Saturation cap on the per-cell counters; keeps the threshold product
  /// far from uint64 overflow even with the paper's p = 2^20 sweep point.
  static constexpr std::uint32_t kCounterCap = 65535;

  LearnedTablePolicy(std::uint32_t ts, std::uint64_t penalty, bool write_migrates)
      : ts_(ts == 0 ? 1 : ts), penalty_(penalty), write_migrates_(write_migrates) {}

  [[nodiscard]] std::string name() const override { return "learned"; }
  [[nodiscard]] MigrationDecision decide(const PolicyFeatures& f) override;
  [[nodiscard]] std::uint64_t effective_threshold(const PolicyFeatures& f) const override {
    return f.oversubscribed ? cell_threshold(table_[cell_index(f)]) : 1;
  }

  /// Quantized feature-cell index (test hook).
  [[nodiscard]] static std::uint32_t cell_index(const PolicyFeatures& f) noexcept;

 private:
  struct Cell {
    std::uint32_t migrations = 0;  ///< first-residency migrations observed
    std::uint32_t thrashes = 0;    ///< re-migrations of previously evicted blocks
  };

  [[nodiscard]] std::uint64_t cell_threshold(const Cell& c) const noexcept {
    // ts .. ts*(1+p) as the bucket's thrash ratio goes 0 -> 1; the +1 in the
    // denominator is a prior that keeps unseen buckets at plain ts.
    return ts_ + ts_ * penalty_ * c.thrashes / (c.migrations + c.thrashes + 1);
  }

  std::uint32_t ts_;
  std::uint64_t penalty_;
  bool write_migrates_;
  std::array<Cell, kCells> table_{};
};

/// Called by register_builtin_policies(); registers "tuned" and "learned".
void register_adaptive_policies(PolicyRegistry& registry);

}  // namespace uvmsim
