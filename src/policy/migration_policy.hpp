// Migration policies (paper §IV and §VI): given an access to a
// host-resident basic block, decide between raising a far-fault (migrate)
// and servicing the access remotely over zero-copy PCIe.
//
// * FirstTouchPolicy   — Baseline / "Disabled": always migrate.
// * StaticThresholdPolicy (gate_on_oversub = false) — "Always": Volta-style
//   static access-counter threshold ts from the start; writes migrate
//   immediately.
// * StaticThresholdPolicy (gate_on_oversub = true) — "Oversub": first-touch
//   until the device first runs out of memory, static threshold afterwards.
// * AdaptivePolicy     — this paper: dynamic threshold td (Equation 1)
//       td = ts * allocated/total + 1      while never oversubscribed
//       td = ts * (r + 1) * p              once oversubscribed
//   where r is the block's round-trip (eviction) count. The dynamic
//   threshold degrades to first touch on an empty device and hardens the
//   pinning of thrashed blocks multiplicatively.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace uvmsim {

/// Memory state snapshot the policy may consult.
struct PolicyContext {
  std::uint64_t resident_pages = 0;   ///< 4 KB pages currently allocated on device
  std::uint64_t capacity_pages = 0;   ///< device capacity in 4 KB pages
  /// The device has actually run out of space at least once (first eviction).
  /// This dynamic event gates the "Oversub" static scheme.
  bool oversubscribed = false;
  /// The managed-allocation footprint exceeds device capacity — known to the
  /// driver at allocation time. This is what selects Equation 1's branch for
  /// the Adaptive scheme: under an overcommitted working set the dynamic
  /// threshold hardens from the very first access, which is what lets a huge
  /// penalty p approximate pure host-pinned zero-copy (paper §VI-D).
  bool overcommitted = false;
};

/// Per-unit counter snapshot (value already includes this access).
struct CounterSnapshot {
  std::uint32_t post_count = 0;   ///< access count after the increment
  std::uint32_t round_trips = 0;  ///< evictions suffered (r)
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual MigrationDecision decide(AccessType type, const CounterSnapshot& c,
                                                 const PolicyContext& ctx) const = 0;
  /// Effective migration threshold for diagnostics ('inf' semantics never
  /// arise: thresholds are finite).
  [[nodiscard]] virtual std::uint64_t effective_threshold(const CounterSnapshot& c,
                                                          const PolicyContext& ctx) const = 0;
};

class FirstTouchPolicy final : public MigrationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "first-touch"; }
  [[nodiscard]] MigrationDecision decide(AccessType, const CounterSnapshot&,
                                         const PolicyContext&) const override {
    return MigrationDecision::kMigrate;
  }
  [[nodiscard]] std::uint64_t effective_threshold(const CounterSnapshot&,
                                                  const PolicyContext&) const override {
    return 1;
  }
};

class StaticThresholdPolicy final : public MigrationPolicy {
 public:
  StaticThresholdPolicy(std::uint32_t ts, bool write_migrates, bool gate_on_oversub)
      : ts_(ts), write_migrates_(write_migrates), gate_on_oversub_(gate_on_oversub) {}

  [[nodiscard]] std::string name() const override {
    return gate_on_oversub_ ? "static-oversub" : "static-always";
  }
  [[nodiscard]] MigrationDecision decide(AccessType type, const CounterSnapshot& c,
                                         const PolicyContext& ctx) const override;
  [[nodiscard]] std::uint64_t effective_threshold(const CounterSnapshot&,
                                                  const PolicyContext& ctx) const override;

 private:
  std::uint32_t ts_;
  bool write_migrates_;
  bool gate_on_oversub_;
};

/// Equation 1 of the paper, exposed standalone for unit testing.
[[nodiscard]] std::uint64_t adaptive_threshold(std::uint32_t ts, std::uint64_t resident_pages,
                                               std::uint64_t capacity_pages, bool oversubscribed,
                                               std::uint32_t round_trips,
                                               std::uint64_t penalty) noexcept;

class AdaptivePolicy final : public MigrationPolicy {
 public:
  AdaptivePolicy(std::uint32_t ts, std::uint64_t penalty, bool write_migrates)
      : ts_(ts), penalty_(penalty), write_migrates_(write_migrates) {}

  [[nodiscard]] std::string name() const override { return "adaptive"; }
  [[nodiscard]] MigrationDecision decide(AccessType type, const CounterSnapshot& c,
                                         const PolicyContext& ctx) const override;
  [[nodiscard]] std::uint64_t effective_threshold(const CounterSnapshot& c,
                                                  const PolicyContext& ctx) const override;

 private:
  std::uint32_t ts_;
  std::uint64_t penalty_;
  bool write_migrates_;
};

[[nodiscard]] std::unique_ptr<MigrationPolicy> make_policy(const PolicyConfig& cfg);

}  // namespace uvmsim
