// Migration policies (paper §IV and §VI): given an access to a
// host-resident basic block, decide between raising a far-fault (migrate)
// and servicing the access remotely over zero-copy PCIe.
//
// Every policy consumes one `PolicyFeatures` snapshot per consultation — a
// flat value struct the driver populates allocation-free on the fault path.
// Policies are instantiated through the slug-keyed registry
// (policy/policy_registry.hpp); the four paper schemes are:
//
// * FirstTouchPolicy ("baseline") — Baseline / "Disabled": always migrate.
// * StaticThresholdPolicy ("always", gate_on_oversub = false) — Volta-style
//   static access-counter threshold ts from the start; writes migrate
//   immediately.
// * StaticThresholdPolicy ("oversub", gate_on_oversub = true) — first-touch
//   until the device first runs out of memory, static threshold afterwards.
// * AdaptivePolicy ("adaptive") — this paper: dynamic threshold td (Eq. 1)
//       td = ts * allocated/total + 1      while never oversubscribed
//       td = ts * (r + 1) * p              once oversubscribed
//   where r is the block's round-trip (eviction) count. The dynamic
//   threshold degrades to first touch on an empty device and hardens the
//   pinning of thrashed blocks multiplicatively.
//
// Online-adaptive policies ("tuned", "learned") live in
// policy/adaptive_policies.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace uvmsim {

/// Cycle length of the driver's fault/eviction activity window feeding
/// PolicyFeatures::window_*. Matches the eviction-protection window so one
/// window covers roughly "what scheduled warps touch right now".
inline constexpr Cycle kFeatureWindowCycles = 65536;

/// Feature vector a policy consultation sees: the access being decided, the
/// per-block counter state, device occupancy, and windowed driver activity.
/// Populated by UvmDriver on the fault path — plain integers only, no
/// allocation, so adding a consumer costs nothing on the hot path.
struct PolicyFeatures {
  // --- the access under decision -----------------------------------------
  AccessType type = AccessType::kRead;
  std::uint32_t post_count = 0;   ///< access count after the increment
  std::uint32_t round_trips = 0;  ///< evictions this block suffered (r)

  // --- device occupancy ---------------------------------------------------
  std::uint64_t resident_pages = 0;  ///< 4 KB pages currently allocated on device
  std::uint64_t capacity_pages = 0;  ///< device capacity in 4 KB pages
  /// The device has actually run out of space at least once (first eviction).
  /// This dynamic event gates the "Oversub" static scheme.
  bool oversubscribed = false;
  /// The managed-allocation footprint exceeds device capacity — known to the
  /// driver at allocation time. This is what selects Equation 1's branch for
  /// the Adaptive scheme: under an overcommitted working set the dynamic
  /// threshold hardens from the very first access, which is what lets a huge
  /// penalty p approximate pure host-pinned zero-copy (paper §VI-D).
  bool overcommitted = false;
  /// Fraction of chunks holding resident blocks that are coalesced into a
  /// 2 MB mapping (docs/GRANULARITY.md). Always 0 unless mem.coalescing.
  double coalesced_ratio = 0.0;

  // --- clock and windowed activity ----------------------------------------
  Cycle now = 0;  ///< simulation clock at the consultation
  /// Far faults raised / large pages evicted inside the current
  /// kFeatureWindowCycles window and the immediately preceding one. The
  /// previous-window values smooth the sawtooth a fresh window starts with.
  std::uint32_t window_faults = 0;
  std::uint32_t prev_window_faults = 0;
  std::uint32_t window_evictions = 0;
  std::uint32_t prev_window_evictions = 0;
  std::uint64_t total_faults = 0;     ///< cumulative far faults
  std::uint64_t total_evictions = 0;  ///< cumulative large-page evictions

  /// Device occupancy ratio in [0, 1].
  [[nodiscard]] double occupancy() const noexcept {
    return capacity_pages == 0
               ? 0.0
               : static_cast<double>(resident_pages) / static_cast<double>(capacity_pages);
  }
  /// Fault-arrival rate proxy: faults over the last two windows.
  [[nodiscard]] std::uint32_t fault_arrival_rate() const noexcept {
    return window_faults + prev_window_faults;
  }
  /// Eviction pressure proxy: evictions over the last two windows.
  [[nodiscard]] std::uint32_t eviction_pressure() const noexcept {
    return window_evictions + prev_window_evictions;
  }
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// The registry slug this policy was constructed under (e.g. "adaptive").
  [[nodiscard]] virtual std::string name() const = 0;

  /// One consultation per policy-routed access to a host-resident block.
  /// Non-const: online-adaptive policies update internal state here, so the
  /// driver must consult exactly once per decided access.
  [[nodiscard]] virtual MigrationDecision decide(const PolicyFeatures& f) = 0;

  /// Effective migration threshold for diagnostics ('inf' semantics never
  /// arise: thresholds are finite). Const: safe for audits and probes.
  [[nodiscard]] virtual std::uint64_t effective_threshold(const PolicyFeatures& f) const = 0;

  /// Counterfactual probe: would a *read* with these features migrate? Used
  /// by the driver to tag write-forced migrations (a write that migrated
  /// only because of Volta write semantics) without a mutating consultation.
  [[nodiscard]] virtual bool read_would_migrate(const PolicyFeatures& f) const {
    return f.post_count >= effective_threshold(f);
  }
};

class FirstTouchPolicy final : public MigrationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "baseline"; }
  [[nodiscard]] MigrationDecision decide(const PolicyFeatures&) override {
    return MigrationDecision::kMigrate;
  }
  [[nodiscard]] std::uint64_t effective_threshold(const PolicyFeatures&) const override {
    return 1;
  }
  [[nodiscard]] bool read_would_migrate(const PolicyFeatures&) const override { return true; }
};

class StaticThresholdPolicy final : public MigrationPolicy {
 public:
  StaticThresholdPolicy(std::uint32_t ts, bool write_migrates, bool gate_on_oversub)
      : ts_(ts), write_migrates_(write_migrates), gate_on_oversub_(gate_on_oversub) {}

  [[nodiscard]] std::string name() const override {
    return gate_on_oversub_ ? "oversub" : "always";
  }
  [[nodiscard]] MigrationDecision decide(const PolicyFeatures& f) override;
  [[nodiscard]] std::uint64_t effective_threshold(const PolicyFeatures& f) const override;
  [[nodiscard]] bool read_would_migrate(const PolicyFeatures& f) const override;

 private:
  std::uint32_t ts_;
  bool write_migrates_;
  bool gate_on_oversub_;
};

/// Equation 1 of the paper, exposed standalone for unit testing.
[[nodiscard]] std::uint64_t adaptive_threshold(std::uint32_t ts, std::uint64_t resident_pages,
                                               std::uint64_t capacity_pages, bool oversubscribed,
                                               std::uint32_t round_trips,
                                               std::uint64_t penalty) noexcept;

class AdaptivePolicy final : public MigrationPolicy {
 public:
  AdaptivePolicy(std::uint32_t ts, std::uint64_t penalty, bool write_migrates)
      : ts_(ts), penalty_(penalty), write_migrates_(write_migrates) {}

  [[nodiscard]] std::string name() const override { return "adaptive"; }
  [[nodiscard]] MigrationDecision decide(const PolicyFeatures& f) override;
  [[nodiscard]] std::uint64_t effective_threshold(const PolicyFeatures& f) const override;

 private:
  std::uint32_t ts_;
  std::uint64_t penalty_;
  bool write_migrates_;
};

/// Instantiate the policy selected by `cfg.resolved_slug()` through the
/// registry (policy/policy_registry.hpp). Throws std::invalid_argument for
/// an unregistered slug.
[[nodiscard]] std::unique_ptr<MigrationPolicy> make_policy(const PolicyConfig& cfg);

}  // namespace uvmsim
