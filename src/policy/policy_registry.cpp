#include "policy/policy_registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "policy/adaptive_policies.hpp"

namespace uvmsim {

namespace {

std::string lower_copy(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// The four paper schemes plus the in-tree online-adaptive policies.
/// Explicitly invoked from instance() — a self-registering static in a
/// static library would be dead-stripped by the linker.
void register_builtin_policies(PolicyRegistry& r) {
  r.add({"baseline", "migrate on first touch (paper Baseline / \"Disabled\")",
         [](const PolicyConfig&) -> std::unique_ptr<MigrationPolicy> {
           return std::make_unique<FirstTouchPolicy>();
         }});
  r.add({"always", "static access-counter threshold ts from the start (paper \"Always\")",
         [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
           return std::make_unique<StaticThresholdPolicy>(
               cfg.static_threshold, cfg.write_triggers_migration, /*gate_on_oversub=*/false);
         }});
  r.add({"oversub",
         "first-touch until the device first fills, threshold ts afterwards (paper "
         "\"Oversub\")",
         [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
           return std::make_unique<StaticThresholdPolicy>(
               cfg.static_threshold, cfg.write_triggers_migration, /*gate_on_oversub=*/true);
         }});
  r.add({"adaptive", "dynamic threshold td per Equation 1 (this paper)",
         [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
           return std::make_unique<AdaptivePolicy>(cfg.static_threshold, cfg.migration_penalty,
                                                   cfg.adaptive_write_migrates);
         }});
  register_adaptive_policies(r);
}

}  // namespace

PolicyRegistry& PolicyRegistry::instance() {
  // Magic-static: thread-safe one-time construction; built-ins registered
  // before the first lookup can observe the registry.
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry;  // leaked intentionally: process lifetime
    register_builtin_policies(*r);
    return r;
  }();
  return *reg;
}

void PolicyRegistry::add(PolicyInfo info) {
  if (info.slug.empty()) throw std::invalid_argument("PolicyRegistry: empty slug");
  if (!info.make) throw std::invalid_argument("PolicyRegistry: null factory for " + info.slug);
  if (find(info.slug) != nullptr)
    throw std::invalid_argument("PolicyRegistry: duplicate slug " + info.slug);
  entries_.push_back(std::move(info));
}

const PolicyInfo* PolicyRegistry::find(std::string_view slug) const {
  for (const PolicyInfo& e : entries_)
    if (e.slug == slug) return &e;
  return nullptr;
}

std::vector<std::string> PolicyRegistry::slugs() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const PolicyInfo& e : entries_) out.push_back(e.slug);
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<MigrationPolicy> PolicyRegistry::make(const PolicyConfig& cfg) const {
  const std::string slug = cfg.resolved_slug();
  const PolicyInfo* info = find(slug);
  if (info == nullptr)
    throw std::invalid_argument("unknown policy '" + slug +
                                "' (registered: " + registered_policy_names() + ")");
  return info->make(cfg);
}

PolicyRegistrar::PolicyRegistrar(std::string slug, std::string summary, PolicyFactory make) {
  PolicyRegistry::instance().add({std::move(slug), std::move(summary), std::move(make)});
}

bool apply_policy_name(PolicyConfig& cfg, std::string_view name) {
  const std::string s = lower_copy(name);
  PolicyKind kind{};
  bool is_paper = true;
  if (s == "baseline" || s == "first-touch" || s == "disabled")
    kind = PolicyKind::kFirstTouch;
  else if (s == "always")
    kind = PolicyKind::kStaticAlways;
  else if (s == "oversub")
    kind = PolicyKind::kStaticOversub;
  else if (s == "adaptive")
    kind = PolicyKind::kAdaptive;
  else
    is_paper = false;
  if (is_paper) {
    cfg.policy = kind;
    cfg.slug.clear();
    return true;
  }
  if (PolicyRegistry::instance().find(s) == nullptr) return false;
  cfg.slug = s;
  return true;
}

std::string registered_policy_names() {
  std::string out;
  for (const std::string& s : PolicyRegistry::instance().slugs()) {
    if (!out.empty()) out += "|";
    out += s;
  }
  return out;
}

}  // namespace uvmsim
