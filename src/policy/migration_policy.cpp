#include "policy/migration_policy.hpp"

#include "policy/policy_registry.hpp"

namespace uvmsim {

MigrationDecision StaticThresholdPolicy::decide(const PolicyFeatures& f) {
  if (gate_on_oversub_ && !f.oversubscribed) return MigrationDecision::kMigrate;
  if (f.type == AccessType::kWrite && write_migrates_) return MigrationDecision::kMigrate;
  return f.post_count >= ts_ ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

std::uint64_t StaticThresholdPolicy::effective_threshold(const PolicyFeatures& f) const {
  if (gate_on_oversub_ && !f.oversubscribed) return 1;
  return ts_;
}

bool StaticThresholdPolicy::read_would_migrate(const PolicyFeatures& f) const {
  if (gate_on_oversub_ && !f.oversubscribed) return true;
  return f.post_count >= ts_;
}

std::uint64_t adaptive_threshold(std::uint32_t ts, std::uint64_t resident_pages,
                                 std::uint64_t capacity_pages, bool oversubscribed,
                                 std::uint32_t round_trips, std::uint64_t penalty) noexcept {
  if (!oversubscribed) {
    // td = ts * allocated/total + 1; integer arithmetic floors the product,
    // giving td = 1 (first touch) below 1/ts occupancy and td = ts just
    // before the device fills, exactly as the paper's example walks through.
    if (capacity_pages == 0) return 1;
    return ts * resident_pages / capacity_pages + 1;
  }
  return static_cast<std::uint64_t>(ts) * (static_cast<std::uint64_t>(round_trips) + 1) *
         penalty;
}

MigrationDecision AdaptivePolicy::decide(const PolicyFeatures& f) {
  if (f.type == AccessType::kWrite && write_migrates_) return MigrationDecision::kMigrate;
  const std::uint64_t td = adaptive_threshold(ts_, f.resident_pages, f.capacity_pages,
                                              f.overcommitted, f.round_trips, penalty_);
  return f.post_count >= td ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

std::uint64_t AdaptivePolicy::effective_threshold(const PolicyFeatures& f) const {
  return adaptive_threshold(ts_, f.resident_pages, f.capacity_pages, f.overcommitted,
                            f.round_trips, penalty_);
}

std::unique_ptr<MigrationPolicy> make_policy(const PolicyConfig& cfg) {
  return PolicyRegistry::instance().make(cfg);
}

}  // namespace uvmsim
