#include "policy/migration_policy.hpp"

namespace uvmsim {

MigrationDecision StaticThresholdPolicy::decide(AccessType type, const CounterSnapshot& c,
                                                const PolicyContext& ctx) const {
  if (gate_on_oversub_ && !ctx.oversubscribed) return MigrationDecision::kMigrate;
  if (type == AccessType::kWrite && write_migrates_) return MigrationDecision::kMigrate;
  return c.post_count >= ts_ ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

std::uint64_t StaticThresholdPolicy::effective_threshold(const CounterSnapshot&,
                                                         const PolicyContext& ctx) const {
  if (gate_on_oversub_ && !ctx.oversubscribed) return 1;
  return ts_;
}

std::uint64_t adaptive_threshold(std::uint32_t ts, std::uint64_t resident_pages,
                                 std::uint64_t capacity_pages, bool oversubscribed,
                                 std::uint32_t round_trips, std::uint64_t penalty) noexcept {
  if (!oversubscribed) {
    // td = ts * allocated/total + 1; integer arithmetic floors the product,
    // giving td = 1 (first touch) below 1/ts occupancy and td = ts just
    // before the device fills, exactly as the paper's example walks through.
    if (capacity_pages == 0) return 1;
    return ts * resident_pages / capacity_pages + 1;
  }
  return static_cast<std::uint64_t>(ts) * (static_cast<std::uint64_t>(round_trips) + 1) *
         penalty;
}

MigrationDecision AdaptivePolicy::decide(AccessType type, const CounterSnapshot& c,
                                         const PolicyContext& ctx) const {
  if (type == AccessType::kWrite && write_migrates_) return MigrationDecision::kMigrate;
  const std::uint64_t td = adaptive_threshold(ts_, ctx.resident_pages, ctx.capacity_pages,
                                              ctx.overcommitted, c.round_trips, penalty_);
  return c.post_count >= td ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

std::uint64_t AdaptivePolicy::effective_threshold(const CounterSnapshot& c,
                                                  const PolicyContext& ctx) const {
  return adaptive_threshold(ts_, ctx.resident_pages, ctx.capacity_pages, ctx.overcommitted,
                            c.round_trips, penalty_);
}

std::unique_ptr<MigrationPolicy> make_policy(const PolicyConfig& cfg) {
  switch (cfg.policy) {
    case PolicyKind::kFirstTouch:
      return std::make_unique<FirstTouchPolicy>();
    case PolicyKind::kStaticAlways:
      return std::make_unique<StaticThresholdPolicy>(cfg.static_threshold,
                                                     cfg.write_triggers_migration, false);
    case PolicyKind::kStaticOversub:
      return std::make_unique<StaticThresholdPolicy>(cfg.static_threshold,
                                                     cfg.write_triggers_migration, true);
    case PolicyKind::kAdaptive:
      return std::make_unique<AdaptivePolicy>(cfg.static_threshold, cfg.migration_penalty,
                                              cfg.adaptive_write_migrates);
  }
  return nullptr;
}

}  // namespace uvmsim
