#include "policy/adaptive_policies.hpp"

#include <algorithm>
#include <memory>

#include "policy/policy_registry.hpp"

namespace uvmsim {

MigrationDecision TunedThresholdPolicy::decide(const PolicyFeatures& f) {
  // Pre-oversubscription there is nothing to tune: migrating is free while
  // the device has room, exactly like the paper's "Oversub" gate.
  if (!f.oversubscribed) return MigrationDecision::kMigrate;

  const bool migrate = (f.type == AccessType::kWrite && write_migrates_) ||
                       f.post_count >= ts_cur_;
  if (epoch_events_ == 0) epoch_start_evictions_ = f.total_evictions;
  epoch_cost_ += migrate ? kMigrateCost : kRemoteCost;
  if (++epoch_events_ >= kEpochEvents) end_epoch(f.total_evictions);
  return migrate ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

void TunedThresholdPolicy::end_epoch(std::uint64_t total_evictions) {
  epoch_cost_ += (total_evictions - epoch_start_evictions_) * kEvictCost;
  if (have_prev_cost_ && epoch_cost_ > prev_cost_) direction_ = -direction_;
  prev_cost_ = epoch_cost_;
  have_prev_cost_ = true;
  epoch_cost_ = 0;
  epoch_events_ = 0;
  const std::uint32_t step = std::max<std::uint32_t>(1, ts_cur_ / 4);
  if (direction_ > 0)
    ts_cur_ = std::min(ts_cur_ + step, ts_max_);
  else
    ts_cur_ = ts_cur_ > step ? ts_cur_ - step : 1;
}

std::uint32_t LearnedTablePolicy::cell_index(const PolicyFeatures& f) noexcept {
  const std::uint32_t trips = std::min(f.round_trips, kTripBuckets - 1);
  const std::uint32_t occ =
      f.capacity_pages == 0
          ? 0
          : static_cast<std::uint32_t>(std::min<std::uint64_t>(
                f.resident_pages * kOccBuckets / f.capacity_pages, kOccBuckets - 1));
  const std::uint32_t rate_raw = f.fault_arrival_rate();
  const std::uint32_t rate = rate_raw == 0 ? 0 : rate_raw <= 8 ? 1 : rate_raw <= 64 ? 2 : 3;
  return (trips * kOccBuckets + occ) * kRateBuckets + rate;
}

MigrationDecision LearnedTablePolicy::decide(const PolicyFeatures& f) {
  if (!f.oversubscribed) return MigrationDecision::kMigrate;

  Cell& cell = table_[cell_index(f)];
  const bool migrate = (f.type == AccessType::kWrite && write_migrates_) ||
                       f.post_count >= cell_threshold(cell);
  if (migrate) {
    // A migration of a block that already took a round trip is direct thrash
    // evidence for this feature regime; a first migration is a clean one.
    std::uint32_t& counter = f.round_trips > 0 ? cell.thrashes : cell.migrations;
    if (counter < kCounterCap) ++counter;
  }
  return migrate ? MigrationDecision::kMigrate : MigrationDecision::kRemoteAccess;
}

void register_adaptive_policies(PolicyRegistry& registry) {
  registry.add({"tuned",
                "hill-climbing threshold tuner: first-touch until oversubscribed, then "
                "re-tunes ts per epoch by windowed fault-service cost",
                [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
                  return std::make_unique<TunedThresholdPolicy>(
                      cfg.static_threshold, cfg.write_triggers_migration);
                }});
  registry.add({"learned",
                "table-based learned predictor: per-(round_trips, occupancy, fault-rate) "
                "bucket thresholds hardened online by observed thrash",
                [](const PolicyConfig& cfg) -> std::unique_ptr<MigrationPolicy> {
                  return std::make_unique<LearnedTablePolicy>(
                      cfg.static_threshold, cfg.migration_penalty,
                      cfg.write_triggers_migration);
                }});
}

}  // namespace uvmsim
