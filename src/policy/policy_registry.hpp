// Slug-keyed migration-policy factory.
//
// The registry replaces the old hard-coded PolicyKind switch: every policy —
// the four paper schemes and any experimental one — is constructed by name
// through `PolicyRegistry::instance().make(cfg)`, and the CLIs/config parser
// resolve user-supplied names with `apply_policy_name()`. New policies
// register either from `register_builtin_policies()` (in-tree) or by a
// static `PolicyRegistrar` object (out-of-tree / tests):
//
//   namespace {
//   const uvmsim::PolicyRegistrar kReg{
//       "my-policy", "one-line summary",
//       [](const uvmsim::PolicyConfig& cfg) {
//         return std::make_unique<MyPolicy>(cfg.static_threshold);
//       }};
//   }  // namespace
//
// Determinism: the registry is append-only after first use and iterated in
// registration order; `slugs()` returns a sorted copy for stable artifacts.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "policy/migration_policy.hpp"

namespace uvmsim {

using PolicyFactory = std::function<std::unique_ptr<MigrationPolicy>(const PolicyConfig&)>;

struct PolicyInfo {
  std::string slug;     ///< registry key; MigrationPolicy::name() must match
  std::string summary;  ///< one-liner for --help output and docs
  PolicyFactory make;
};

class PolicyRegistry {
 public:
  /// The process-wide registry. First use registers the built-in policies
  /// (an explicit call, not static-initializer magic, so a static-library
  /// link cannot dead-strip them).
  static PolicyRegistry& instance();

  /// Register a policy. Throws std::invalid_argument on a duplicate slug or
  /// an empty slug/factory.
  void add(PolicyInfo info);

  /// Entry for `slug`, or nullptr when unregistered.
  [[nodiscard]] const PolicyInfo* find(std::string_view slug) const;

  /// All entries in registration order.
  [[nodiscard]] const std::vector<PolicyInfo>& entries() const { return entries_; }

  /// All registered slugs, sorted (stable across registration order).
  [[nodiscard]] std::vector<std::string> slugs() const;

  /// Instantiate the policy `cfg.resolved_slug()` selects. Throws
  /// std::invalid_argument (listing the registered slugs) when unknown.
  [[nodiscard]] std::unique_ptr<MigrationPolicy> make(const PolicyConfig& cfg) const;

 private:
  std::vector<PolicyInfo> entries_;
};

/// Registers a policy on construction; declare one at namespace scope in the
/// translation unit defining the policy.
struct PolicyRegistrar {
  PolicyRegistrar(std::string slug, std::string summary, PolicyFactory make);
};

/// Resolve a user-supplied policy name into `cfg`: the paper schemes
/// (including the historical aliases "first-touch" and "disabled" for
/// "baseline") set `cfg.policy` and clear `cfg.slug`; any other registered
/// slug is recorded in `cfg.slug`. Returns false — leaving `cfg` untouched —
/// when the name matches nothing. Matching is case-insensitive.
[[nodiscard]] bool apply_policy_name(PolicyConfig& cfg, std::string_view name);

/// "baseline|always|oversub|adaptive|..." — sorted slug list for error
/// messages (the rc=2 unknown-policy path of the CLIs).
[[nodiscard]] std::string registered_policy_names();

}  // namespace uvmsim
