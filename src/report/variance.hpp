// Multi-seed statistics: irregular workloads are input-dependent (random
// graphs, random tables), so any reported factor should come with its
// spread. Runs the same configuration across N workload seeds and reports
// mean / stddev / min / max of the kernel time and of any derived ratio.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulator.hpp"

namespace uvmsim {

struct SampleStats {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double cv() const noexcept { return mean == 0.0 ? 0.0 : stddev / mean; }
};

/// Summary statistics over a sample (empty input -> zeros).
[[nodiscard]] SampleStats summarize_samples(const std::vector<double>& samples);

/// Run `workload` under `cfg` at `oversub` for `num_seeds` different
/// workload seeds (params.seed + i); returns the per-seed kernel cycles.
[[nodiscard]] std::vector<double> kernel_cycles_across_seeds(const std::string& workload,
                                                             const SimConfig& cfg,
                                                             double oversub,
                                                             WorkloadParams params,
                                                             std::size_t num_seeds);

}  // namespace uvmsim
