// Tidy-CSV export of RunResult statistics: one row per simulation with the
// configuration axes as leading columns — the format the sweep tool emits
// for downstream plotting of the paper's figures.
#pragma once

#include <iosfwd>
#include <string>

#include "core/simulator.hpp"
#include "sim/config.hpp"

namespace uvmsim {

/// Column header line (no trailing newline handling: writes '\n').
void write_run_csv_header(std::ostream& os);

/// One row describing `result` obtained with `cfg` on `workload`.
void append_run_csv(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& result);

}  // namespace uvmsim
