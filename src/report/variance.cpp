#include "report/variance.hpp"

#include <algorithm>
#include <cmath>

namespace uvmsim {

SampleStats summarize_samples(const std::vector<double>& samples) {
  SampleStats s;
  s.n = samples.size();
  if (samples.empty()) return s;

  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (const double v : samples) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return s;
}

std::vector<double> kernel_cycles_across_seeds(const std::string& workload,
                                               const SimConfig& cfg, double oversub,
                                               WorkloadParams params,
                                               std::size_t num_seeds) {
  std::vector<double> out;
  out.reserve(num_seeds);
  const std::uint64_t base_seed = params.seed;
  for (std::size_t i = 0; i < num_seeds; ++i) {
    params.seed = base_seed + i;
    const RunResult r = run_workload(workload, cfg, oversub, params);
    out.push_back(static_cast<double>(r.stats.kernel_cycles));
  }
  return out;
}

}  // namespace uvmsim
