// Small result-table builder: collects labelled rows and renders them as
// aligned text, CSV, or Markdown. Used by the sweep tool and available to
// downstream users for their own experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace uvmsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; fill it with the chained cell() calls.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v) { return cell(std::string(v)); }
  Table& cell(double v, int precision = 3);
  Table& cell(std::uint64_t v);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Rendering. to_text aligns columns; to_csv quotes cells containing
  /// commas/quotes; to_markdown emits a GitHub-style pipe table.
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_csv() const;
  [[nodiscard]] std::string to_markdown() const;

  /// Throws std::logic_error if any row has a different arity than the
  /// header (call before rendering when assembling dynamically).
  void validate() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uvmsim
