#include "report/run_csv.hpp"

#include <ostream>

#include "obs/registry.hpp"

namespace uvmsim {

// Columns: the configuration axes first, then one column per registered
// metric in registry order (obs/metrics.def). The registry preserves the
// pre-registry column order as its prefix and only ever appends, so the
// schema evolves append-only for positional consumers.

void write_run_csv_header(std::ostream& os) {
  os << "workload,policy,eviction,prefetcher,ts,penalty,oversub,"
     << "footprint_bytes,capacity_bytes";
  for (const obs::MetricDesc& d : obs::metrics()) os << ',' << d.name;
  os << '\n';
}

void append_run_csv(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& r) {
  os << workload << ',' << cfg.policy.resolved_slug() << ','
     << to_string(cfg.mem.eviction) << ',' << to_string(cfg.mem.prefetcher) << ','
     << cfg.policy.static_threshold << ',' << cfg.policy.migration_penalty << ','
     << oversub << ',' << r.footprint_bytes << ',' << r.capacity_bytes;
  for (const obs::MetricDesc& d : obs::metrics()) os << ',' << obs::value(r.stats, d);
  os << '\n';
}

}  // namespace uvmsim
