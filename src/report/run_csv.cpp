#include "report/run_csv.hpp"

#include <ostream>

namespace uvmsim {

void write_run_csv_header(std::ostream& os) {
  os << "workload,policy,eviction,prefetcher,ts,penalty,oversub,"
     << "footprint_bytes,capacity_bytes,kernel_cycles,total_cycles,"
     << "total_accesses,local_accesses,remote_accesses,far_faults,"
     << "fault_batches,blocks_migrated,blocks_prefetched,bytes_h2d,bytes_d2h,"
     << "evictions,pages_evicted,writeback_pages,pages_thrashed,"
     << "distinct_pages_thrashed,tlb_hits,tlb_misses\n";
}

namespace {
const char* policy_slug(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFirstTouch: return "baseline";
    case PolicyKind::kStaticAlways: return "always";
    case PolicyKind::kStaticOversub: return "oversub";
    case PolicyKind::kAdaptive: return "adaptive";
  }
  return "?";
}
}  // namespace

void append_run_csv(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& r) {
  const SimStats& s = r.stats;
  os << workload << ',' << policy_slug(cfg.policy.policy) << ','
     << to_string(cfg.mem.eviction) << ',' << to_string(cfg.mem.prefetcher) << ','
     << cfg.policy.static_threshold << ',' << cfg.policy.migration_penalty << ','
     << oversub << ',' << r.footprint_bytes << ',' << r.capacity_bytes << ','
     << s.kernel_cycles << ',' << s.total_cycles << ',' << s.total_accesses << ','
     << s.local_accesses << ',' << s.remote_accesses << ',' << s.far_faults << ','
     << s.fault_batches << ',' << s.blocks_migrated << ',' << s.blocks_prefetched << ','
     << s.bytes_h2d << ',' << s.bytes_d2h << ',' << s.evictions << ','
     << s.pages_evicted << ',' << s.writeback_pages << ',' << s.pages_thrashed << ','
     << s.distinct_pages_thrashed << ',' << s.tlb_hits << ',' << s.tlb_misses << '\n';
}

}  // namespace uvmsim
