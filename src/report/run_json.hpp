// JSON export of run results — one self-describing object per simulation,
// convenient for notebooks and dashboards (the CSV exporter is the
// column-oriented sibling).
#pragma once

#include <iosfwd>
#include <string>

#include "core/simulator.hpp"
#include "sim/config.hpp"

namespace uvmsim {

/// Serialize `result` (with its configuration axes) as a JSON object.
/// Pretty-printed with two-space indentation; no external dependencies.
void write_run_json(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& result);

}  // namespace uvmsim
