#include "report/run_json.hpp"

#include <cstdint>
#include <ostream>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace uvmsim {

namespace {

// Comma-prefixed field writers: the object stays valid JSON regardless of
// which (conditional) field comes last.
class JsonObject {
 public:
  explicit JsonObject(std::ostream& os) : os_(os) { os_ << "{"; }

  void field(const char* key, const std::string& v) {
    begin(key);
    obs::write_json_string(os_, v);
  }
  void field(const char* key, std::uint64_t v) {
    begin(key);
    os_ << v;
  }
  void field(const char* key, double v) {
    begin(key);
    obs::write_json_number(os_, v);
  }
  void close() { os_ << "\n}\n"; }

 private:
  void begin(const char* key) {
    os_ << (first_ ? "\n" : ",\n") << "  \"" << key << "\": ";
    first_ = false;
  }
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void write_run_json(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& r) {
  const SimStats& s = r.stats;
  JsonObject obj(os);
  obj.field("workload", workload);
  obj.field("policy", cfg.policy.resolved_slug());
  obj.field("eviction", to_string(cfg.mem.eviction));
  obj.field("prefetcher", to_string(cfg.mem.prefetcher));
  obj.field("ts", static_cast<std::uint64_t>(cfg.policy.static_threshold));
  obj.field("penalty", cfg.policy.migration_penalty);
  obj.field("oversub", oversub);
  obj.field("footprint_bytes", r.footprint_bytes);
  obj.field("capacity_bytes", r.capacity_bytes);
  obj.field("preload_cycles", r.preload_cycles);
  obj.field("kernel_ms", r.kernel_ms(cfg.gpu.core_clock_ghz));
  // Every registered metric, registry order — the same set the CSV carries
  // (enforced by the round-trip test in tests/obs/).
  for (const obs::MetricDesc& d : obs::metrics()) obj.field(d.name, obs::value(s, d));
  // Audit context beyond the counters: only meaningful when auditing ran.
  if ((s.audit_passes > 0 || s.audit_violations > 0) && !s.last_violation.empty())
    obj.field("last_violation", s.last_violation);
  obj.close();
}

}  // namespace uvmsim
