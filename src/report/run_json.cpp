#include "report/run_json.hpp"

#include <ostream>

namespace uvmsim {

namespace {

const char* policy_slug(PolicyKind k) {
  switch (k) {
    case PolicyKind::kFirstTouch: return "baseline";
    case PolicyKind::kStaticAlways: return "always";
    case PolicyKind::kStaticOversub: return "oversub";
    case PolicyKind::kAdaptive: return "adaptive";
  }
  return "?";
}

void field(std::ostream& os, const char* key, const std::string& v, bool comma = true) {
  os << "  \"" << key << "\": \"" << v << '"' << (comma ? ",\n" : "\n");
}
void field(std::ostream& os, const char* key, std::uint64_t v, bool comma = true) {
  os << "  \"" << key << "\": " << v << (comma ? ",\n" : "\n");
}
void field(std::ostream& os, const char* key, double v, bool comma = true) {
  os << "  \"" << key << "\": " << v << (comma ? ",\n" : "\n");
}

}  // namespace

void write_run_json(std::ostream& os, const std::string& workload, const SimConfig& cfg,
                    double oversub, const RunResult& r) {
  const SimStats& s = r.stats;
  os << "{\n";
  field(os, "workload", workload);
  field(os, "policy", policy_slug(cfg.policy.policy));
  field(os, "eviction", to_string(cfg.mem.eviction));
  field(os, "prefetcher", to_string(cfg.mem.prefetcher));
  field(os, "ts", static_cast<std::uint64_t>(cfg.policy.static_threshold));
  field(os, "penalty", cfg.policy.migration_penalty);
  field(os, "oversub", oversub);
  field(os, "footprint_bytes", r.footprint_bytes);
  field(os, "capacity_bytes", r.capacity_bytes);
  field(os, "preload_cycles", r.preload_cycles);
  field(os, "kernel_cycles", s.kernel_cycles);
  field(os, "kernel_ms", r.kernel_ms(cfg.gpu.core_clock_ghz));
  field(os, "total_cycles", s.total_cycles);
  field(os, "total_accesses", s.total_accesses);
  field(os, "local_accesses", s.local_accesses);
  field(os, "remote_accesses", s.remote_accesses);
  field(os, "peer_accesses", s.peer_accesses);
  field(os, "far_faults", s.far_faults);
  field(os, "fault_batches", s.fault_batches);
  field(os, "blocks_migrated", s.blocks_migrated);
  field(os, "blocks_prefetched", s.blocks_prefetched);
  field(os, "bytes_h2d", s.bytes_h2d);
  field(os, "bytes_d2h", s.bytes_d2h);
  field(os, "evictions", s.evictions);
  field(os, "pages_evicted", s.pages_evicted);
  field(os, "writeback_pages", s.writeback_pages);
  field(os, "pages_thrashed", s.pages_thrashed);
  field(os, "distinct_pages_thrashed", s.distinct_pages_thrashed);
  field(os, "tlb_hits", s.tlb_hits);
  field(os, "tlb_misses", s.tlb_misses);
  field(os, "l2_hits", s.l2_hits);
  field(os, "l2_misses", s.l2_misses, /*comma=*/false);
  os << "}\n";
}

}  // namespace uvmsim
