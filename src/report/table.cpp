#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace uvmsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& v) {
  if (rows_.empty()) throw std::logic_error("Table: cell() before row()");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

void Table::validate() const {
  for (const auto& r : rows_) {
    if (r.size() != headers_.size())
      throw std::logic_error("Table: row arity mismatch");
  }
}

std::string Table::to_text() const {
  validate();
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << cells[c];
      os << std::right;
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  validate();
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::to_markdown() const {
  validate();
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (const auto& c : cells) os << ' ' << c << " |";
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace uvmsim
