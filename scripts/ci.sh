#!/usr/bin/env bash
# ci.sh — the full verification pipeline: build + test every preset
# (default, asan, ubsan, tsan), smoke an audited oversubscribed run under
# each sanitizer, then static analysis (uvmsim-analyze rule engine,
# clang-tidy when installed).
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --quick    # default preset + analysis only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

presets=(default asan ubsan tsan)
[[ $quick -eq 1 ]] && presets=(default)

declare -A build_dir=(
  [default]=build [asan]=build-asan [ubsan]=build-ubsan [tsan]=build-tsan)

for preset in "${presets[@]}"; do
  echo "==> [$preset] configure + build"
  cmake --preset "$preset" > /dev/null
  cmake --build --preset "$preset" -j "$jobs"

  echo "==> [$preset] ctest"
  ctest --preset "$preset" -j "$jobs"

  # Audit smoke: bfs at 75 % residency (working set / capacity = 4/3) with
  # the invariant auditor fail-fast — any violation fails the pipeline.
  echo "==> [$preset] audited oversubscription smoke"
  "${build_dir[$preset]}/tools/uvmsim" --workload bfs --policy adaptive \
      --oversub 1.3333 --scale 0.1 --audit | grep '^audit:'
done

echo "==> perf smoke (scripts/bench.sh --smoke)"
scripts/bench.sh --smoke --out build/BENCH_hotpath_smoke.json
python3 - build/BENCH_hotpath_smoke.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
for key in ("eviction_microbench", "event_queue", "sim_wall_ms"):
    assert key in doc["current"], f"BENCH_hotpath missing {key}"
print("perf smoke: BENCH_hotpath JSON well-formed")
PY

# Bench smoke: run the hot-path benchmark binary directly and validate the
# full report schema — the headline rates (faults/accesses per second), the
# isolation microbenches, and the per-subsystem cycle attribution whose
# shares must cover sim_wall exactly (docs/PERF.md).
echo "==> bench smoke (perf_hotpath --smoke schema)"
build/bench/perf_hotpath --smoke > /tmp/uvmsim_bench_smoke.json
python3 - /tmp/uvmsim_bench_smoke.json <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("sim_runs", "sim_wall_ms", "faults_per_sec", "accesses_per_sec",
            "eviction_microbench", "event_queue", "event_queue_warp_ring",
            "driver_storm", "tlb_storm", "attribution", "peak_rss_kb"):
    assert key in doc, f"perf_hotpath report missing {key}"
assert doc["faults_per_sec"] > 0, "faults_per_sec must be positive"
assert doc["accesses_per_sec"] > 0, "accesses_per_sec must be positive"
assert doc["sim_runs"], "no sim rows"
for row in doc["sim_runs"]:
    for key in ("workload", "oversub", "wall_ms", "far_faults", "accesses"):
        assert key in row, f"sim row missing {key}: {row}"
att = doc["attribution"]
for lane in ("event_dispatch", "driver", "tlb_l2", "eviction", "other"):
    assert lane in att, f"attribution missing {lane} lane"
    assert "est_ms" in att[lane] and "est_share" in att[lane], att[lane]
    if lane != "other":
        assert "ns_per_op" in att[lane] and "ops" in att[lane], att[lane]
# The "other" lane is the remainder, so shares sum to ~1.0 (modulo rounding)
# unless the isolated per-op costs overshoot sim_wall — allow that skew but
# catch nonsense (negative lanes, wildly wrong scaling).
total_share = sum(l["est_share"] for l in att.values())
assert all(l["est_share"] >= 0 for l in att.values()), "negative attribution share"
assert 0.98 <= total_share <= 3.0, f"attribution shares sum to {total_share}"
print(f"bench smoke: schema ok, attribution covers "
      f"{total_share:.0%} of sim_wall")
PY

# Observability smoke: an audited oversubscribed run with the Chrome trace
# writer and the registry-complete metrics recorder attached must produce a
# parseable trace (monotone timestamps, every event family present) and a
# metrics CSV whose header carries the registry's cumulative+delta columns
# (docs/OBSERVABILITY.md).
echo "==> observability smoke (--chrome-trace / --metrics)"
build/tools/uvmsim --workload bfs --policy oversub --oversub 1.3333 \
    --scale 0.1 --audit --set mem.counter_count_bits=8 \
    --chrome-trace /tmp/uvmsim_trace.json --metrics /tmp/uvmsim_metrics.csv \
    | grep '^audit:'
python3 - /tmp/uvmsim_trace.json /tmp/uvmsim_metrics.csv <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
assert events, "trace has no events"
ts = [e["ts"] for e in events]
assert ts == sorted(ts), "trace timestamps are not monotone"
names = {e["name"] for e in events}
for need in ("fault_batch", "migrate", "evict", "counter_halving",
             "pcie_dma_occupancy"):
    assert need in names, f"trace is missing {need} events"
header = open(sys.argv[2]).readline().strip().split(",")
assert header[:2] == ["cycle", "occupancy"], header[:2]
assert "far_faults" in header and "far_faults_delta" in header, \
    "metrics CSV header is missing registry columns"
print(f"observability smoke: {len(events)} trace events, "
      f"{len(header)} metric columns")
PY

# Victim-parity audit: the auditor cross-validates the incremental eviction
# index against the reference scan (check_eviction_index); any divergence is
# a violation and fails the pipeline.
echo "==> victim-parity audit smoke"
build/tools/uvmsim --workload sssp --policy adaptive \
    --oversub 1.3333 --scale 0.1 --audit | grep '^audit:' | tee /tmp/parity_audit.log
grep -q 'violations=0' /tmp/parity_audit.log || {
  echo "victim-parity audit reported violations"; exit 1; }

# Differential fuzz smoke: N seeded sim-vs-model iterations must end with
# zero divergences (the oracle self-tests that prove the harness CAN detect
# divergences run inside ctest, tests/check/test_fuzz_selftest.cpp).
echo "==> fuzz smoke (differential oracle, seed 1)"
build/tools/uvmsim-fuzz --seed 1 --iters 500 --quiet
if [[ $quick -eq 0 ]]; then
  build-asan/tools/uvmsim-fuzz --seed 1 --iters 50 --quiet
fi
# The CLI must reject garbage flags loudly (exit 2), never run a degenerate
# campaign silently.
rc=0
build/tools/uvmsim-fuzz --seed nope > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-fuzz accepted a garbage --seed (rc=$rc, want 2)"; exit 1
fi
rc=0
build/tools/uvmsim-fuzz --policy no-such-policy > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-fuzz accepted an unknown --policy (rc=$rc, want 2)"; exit 1
fi

# Record/replay smoke (docs/TRACES.md): an oversubscribed bfs run recorded
# to a binary UVMTRB1 trace and replayed under the same configuration must
# report byte-identical JSON; the converter must round-trip a fuzz-corpus
# sidecar through the binary format with the content hash verifying; a
# trace-seeded fuzz campaign must stay divergence-free; and both CLIs must
# reject garbage trace files with exit 2.
echo "==> record/replay smoke (UVMTRB1 round trip)"
build/tools/uvmsim --workload bfs --policy adaptive --oversub 1.3333 \
    --scale 0.1 --record /tmp/uvmsim_ci.trb --json > /tmp/uvmsim_ci_rec.json
build/tools/uvmsim --replay /tmp/uvmsim_ci.trb --policy adaptive \
    --oversub 1.3333 --json > /tmp/uvmsim_ci_rep.json
cmp /tmp/uvmsim_ci_rec.json /tmp/uvmsim_ci_rep.json || {
  echo "replayed stats JSON differs from the recorded run"; exit 1; }
build/tools/uvmsim-trace verify /tmp/uvmsim_ci.trb > /dev/null
corpus_trc=$(ls tests/data/fuzz_corpus/*.trc | head -1)
build/tools/uvmsim-trace convert "$corpus_trc" /tmp/uvmsim_ci_corpus.trb
build/tools/uvmsim-trace verify /tmp/uvmsim_ci_corpus.trb > /dev/null
build/tools/uvmsim-trace convert /tmp/uvmsim_ci_corpus.trb /tmp/uvmsim_ci_corpus.trc
build/tools/uvmsim-fuzz --trace /tmp/uvmsim_ci.trb --iters 8 --quiet
echo "garbage" > /tmp/uvmsim_ci_garbage.trb
rc=0
build/tools/uvmsim --replay /tmp/uvmsim_ci_garbage.trb > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim --replay accepted a garbage trace (rc=$rc, want 2)"; exit 1
fi
rc=0
build/tools/uvmsim-trace verify /tmp/uvmsim_ci_garbage.trb > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-trace verify accepted a garbage trace (rc=$rc, want 2)"; exit 1
fi

# Granularity smoke (docs/GRANULARITY.md): the 2 MB coalescing state
# machine is off by default, so exercise it explicitly — an audited
# oversubscribed run with coalescing + splinter-on-evict must report zero
# violations (the granularity audit pass covers the read-mostly gate, the
# O(1) coalesced count and the conservation law), and targeted fuzz
# campaigns on the two churn stream families must stay divergence-free.
echo "==> granularity smoke (mem.coalescing audited + churn fuzz)"
build/tools/uvmsim --workload bfs --policy adaptive --oversub 1.3333 \
    --scale 0.1 --audit --set mem.coalescing=true \
    --set mem.splinter_on_evict=true | grep '^audit:' | tee /tmp/gran_audit.log
grep -q 'violations=0' /tmp/gran_audit.log || {
  echo "granularity audit reported violations"; exit 1; }
build/tools/uvmsim-fuzz --seed 1 --iters 200 --coalescing on \
    --pattern coalesce-churn --quiet
build/tools/uvmsim-fuzz --seed 1 --iters 200 --coalescing on \
    --pattern splinter-storm --quiet

# Adaptive-policy fuzz smoke: force every case onto an online-adaptive
# policy; the oracle runs in skip-decision mode (decisions adopted from the
# driver, memory-state invariants still verified) and must stay clean.
echo "==> fuzz smoke (adaptive policy, oracle skip-decision mode)"
build/tools/uvmsim-fuzz --seed 1 --iters 200 --policy learned --quiet

# Tournament smoke: a small grid over every registered policy must produce a
# schema-valid JSON leaderboard, and the CSV artifact must be byte-identical
# for --jobs 1 and --jobs 2 (determinism contract, docs/POLICIES.md).
echo "==> tournament smoke (all registered policies)"
build/tools/uvmsim-tournament --seed 1 --scenarios 4 --jobs 1 \
    --out-csv /tmp/uvmsim_tournament_j1.csv --out-json /tmp/uvmsim_tournament.json --quiet
build/tools/uvmsim-tournament --seed 1 --scenarios 4 --jobs 2 \
    --out-csv /tmp/uvmsim_tournament_j2.csv --quiet > /dev/null
cmp /tmp/uvmsim_tournament_j1.csv /tmp/uvmsim_tournament_j2.csv || {
  echo "tournament CSV differs between --jobs 1 and --jobs 2"; exit 1; }
python3 - /tmp/uvmsim_tournament.json /tmp/uvmsim_tournament_j1.csv <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("seed", "scenarios", "cells", "leaderboard"):
    assert key in doc, f"tournament JSON missing {key}"
assert any(s["thrash"] for s in doc["scenarios"]), "no oversubscribed thrash scenario"
policies = {row["policy"] for row in doc["leaderboard"]}
assert len(policies) >= 6, f"expected >=6 policies on the leaderboard, got {policies}"
assert len(doc["cells"]) == len(doc["scenarios"]) * len(doc["leaderboard"])
for cell in doc["cells"]:
    assert cell["ok"], f"tournament cell failed: {cell}"
ranks = [row["rank"] for row in doc["leaderboard"]]
assert ranks == list(range(1, len(ranks) + 1)), ranks
costs = [row["fault_cost"] for row in doc["leaderboard"]]
assert costs == sorted(costs), "leaderboard not ranked by fault_cost"
header = open(sys.argv[2]).readline().strip()
assert header.startswith("rank,policy,wins,failed,fault_cost"), header
print(f"tournament smoke: {len(doc['leaderboard'])} policies x "
      f"{len(doc['scenarios'])} scenarios ok")
PY
rc=0
build/tools/uvmsim-tournament --policies no-such-policy > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-tournament accepted an unknown --policies entry (rc=$rc, want 2)"; exit 1
fi

if [[ $quick -eq 0 ]]; then
  echo "==> coverage gate (src/policy + src/check vs scripts/coverage_baseline.txt)"
  scripts/coverage.sh
fi

# Static analysis (uvmsim-analyze, docs/ANALYSIS.md): the full rule set over
# the tree must be clean modulo the checked-in baseline — which ships empty,
# so in practice: clean. The JSON report must be byte-stable across runs
# (no timestamps, sorted findings) so CI artifacts diff cleanly, and the CLI
# must reject garbage flags with exit 2 like every other uvmsim tool.
echo "==> static analysis (uvmsim-analyze)"
build/tools/uvmsim-analyze --root . --baseline tools/uvmsim_analyze.baseline
build/tools/uvmsim-analyze --root . --json > /tmp/uvmsim_analyze_1.json
build/tools/uvmsim-analyze --root . --json > /tmp/uvmsim_analyze_2.json
cmp /tmp/uvmsim_analyze_1.json /tmp/uvmsim_analyze_2.json || {
  echo "uvmsim-analyze --json is not byte-stable across runs"; exit 1; }
rc=0
build/tools/uvmsim-analyze --rules no-such-rule > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-analyze accepted an unknown --rules entry (rc=$rc, want 2)"; exit 1
fi
rc=0
build/tools/uvmsim-analyze --max-findings nope > /dev/null 2>&1 || rc=$?
if [[ $rc -ne 2 ]]; then
  echo "uvmsim-analyze accepted a garbage --max-findings (rc=$rc, want 2)"; exit 1
fi
# The deprecated grep-lint wrapper must keep forwarding successfully.
tools/lint_determinism > /dev/null

if command -v clang-tidy > /dev/null 2>&1; then
  echo "==> clang-tidy (curated checks over compile_commands.json)"
  # Presets export compile_commands.json; reconfigure only if it is missing.
  [[ -f build/compile_commands.json ]] || cmake --preset default > /dev/null
  # shellcheck disable=SC2046
  clang-tidy -p build --quiet $(find src tools -name '*.cpp') | tee /tmp/ct.log
  if grep -qE "error:|warning:" /tmp/ct.log; then
    echo "clang-tidy reported findings (curated set must stay clean)"
    exit 1
  fi
else
  echo "==> clang-tidy not installed; skipping (config: .clang-tidy)"
fi

echo "CI: all green"
