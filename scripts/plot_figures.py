#!/usr/bin/env python3
"""Plot the paper's figures from the CSV artifacts the benches emit.

Usage:
    # after running the fig benches (they drop figN_*.csv in the cwd):
    python3 scripts/plot_figures.py [--dir DIR] [--out DIR]

Produces one PNG per available figure CSV. Requires matplotlib; degrades to
a text summary when it is not installed (the CSVs are the ground truth).
"""

import argparse
import csv
import pathlib
import sys

FIGS = {
    "fig1_oversub_sensitivity.csv": {
        "title": "Fig 1: Baseline runtime vs oversubscription",
        "ylabel": "runtime (normalized to fits)",
        "log": True,
    },
    "fig4_static_threshold.csv": {
        "title": "Fig 4: sensitivity to static threshold ts (Always)",
        "ylabel": "runtime (normalized to ts=8)",
        "log": False,
    },
    "fig5_no_oversub.csv": {
        "title": "Fig 5: no oversubscription",
        "ylabel": "runtime (normalized to Baseline)",
        "log": False,
    },
    "fig6_oversub_runtime.csv": {
        "title": "Fig 6: runtime at 125% oversubscription",
        "ylabel": "runtime (normalized to Baseline)",
        "log": False,
    },
    "fig7_thrashing.csv": {
        "title": "Fig 7: pages thrashed at 125% oversubscription",
        "ylabel": "pages thrashed (normalized to Baseline)",
        "log": False,
        "drop_cols": ["base_pages"],
    },
    "fig8_penalty_sensitivity.csv": {
        "title": "Fig 8: sensitivity to migration penalty p",
        "ylabel": "runtime (normalized to Baseline)",
        "log": False,
    },
}


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def text_summary(name, rows):
    print(f"== {name} ==")
    if not rows:
        print("  (empty)")
        return
    cols = list(rows[0].keys())
    print("  " + "  ".join(f"{c:>10}" for c in cols))
    for r in rows:
        print("  " + "  ".join(f"{r[c]:>10}" for c in cols))


def plot(name, rows, spec, outdir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    workloads = [r["workload"] for r in rows]
    series = [c for c in rows[0] if c != "workload" and c not in spec.get("drop_cols", [])]

    x = range(len(workloads))
    width = 0.8 / max(1, len(series))
    fig, ax = plt.subplots(figsize=(9, 4))
    for i, s in enumerate(series):
        vals = [float(r[s]) for r in rows]
        ax.bar([xi + i * width for xi in x], vals, width, label=s)
    ax.set_xticks([xi + 0.4 - width / 2 for xi in x])
    ax.set_xticklabels(workloads, rotation=20)
    ax.set_ylabel(spec["ylabel"])
    ax.set_title(spec["title"])
    if spec.get("log"):
        ax.set_yscale("log")
    ax.axhline(1.0, color="gray", linewidth=0.8, linestyle="--")
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = outdir / (pathlib.Path(name).stem + ".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--dir", default=".", help="directory containing the figN CSVs")
    ap.add_argument("--out", default=".", help="output directory for PNGs")
    args = ap.parse_args()

    indir = pathlib.Path(args.dir)
    outdir = pathlib.Path(args.out)
    outdir.mkdir(parents=True, exist_ok=True)

    try:
        import matplotlib  # noqa: F401

        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not available; printing text summaries instead", file=sys.stderr)

    found = 0
    for name, spec in FIGS.items():
        path = indir / name
        if not path.exists():
            continue
        found += 1
        rows = load(path)
        if have_mpl:
            plot(name, rows, spec, outdir)
        else:
            text_summary(name, rows)
    if found == 0:
        print(
            "no figure CSVs found — run the bench binaries first "
            "(for b in build/bench/fig*; do $b; done)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
