#!/usr/bin/env bash
# Hot-path perf harness: runs bench/perf_hotpath (fixed seeds) from the
# current tree and, unless skipped, from a pre-overhaul baseline checkout,
# then writes BENCH_hotpath.json recording both runs plus the speedups —
# the perf trajectory every future PR has to beat (docs/PERF.md).
#
#   scripts/bench.sh [--smoke] [--out FILE] [--baseline-ref REF] [--skip-baseline]
#
# --smoke        small workloads/iteration counts (CI); implies
#                --skip-baseline unless --baseline-ref is given explicitly
# --baseline-ref git ref to benchmark against (default: HEAD — i.e. the last
#                commit, which excludes uncommitted changes)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
OUT="BENCH_hotpath.json"
BASE_REF=""
SKIP_BASE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE="--smoke" ;;
    --out) OUT="$2"; shift ;;
    --baseline-ref) BASE_REF="$2"; shift ;;
    --skip-baseline) SKIP_BASE=1 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done
if [[ -n "$SMOKE" && -z "$BASE_REF" ]]; then
  SKIP_BASE=1
fi

echo "== bench: building current tree =="
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)" --target perf_hotpath >/dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "== bench: running current perf_hotpath $SMOKE =="
./build/bench/perf_hotpath $SMOKE --label current > "$TMP/current.json"

if [[ "$SKIP_BASE" -eq 0 ]]; then
  REF="${BASE_REF:-HEAD}"
  echo "== bench: building baseline ($REF) =="
  WT="$TMP/baseline-tree"
  git worktree add --detach "$WT" "$REF" >/dev/null
  # The bench predates the baseline ref: graft it (it only uses APIs common
  # to both trees; the eviction index is feature-detected via __has_include).
  cp bench/perf_hotpath.cpp "$WT/bench/"
  grep -q 'uvmsim_bench(perf_hotpath)' "$WT/bench/CMakeLists.txt" ||
    echo 'uvmsim_bench(perf_hotpath)' >> "$WT/bench/CMakeLists.txt"
  cmake -B "$WT/build" -S "$WT" >/dev/null
  cmake --build "$WT/build" -j"$(nproc)" --target perf_hotpath >/dev/null
  echo "== bench: running baseline perf_hotpath $SMOKE =="
  "$WT/build/bench/perf_hotpath" $SMOKE --label "baseline:$REF" > "$TMP/baseline.json"
  git worktree remove --force "$WT" >/dev/null
fi

python3 - "$TMP" "$OUT" <<'PY'
import json, sys, os
tmp, out = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp, "current.json")) as f:
    current = json.load(f)
baseline = None
base_path = os.path.join(tmp, "baseline.json")
if os.path.exists(base_path):
    with open(base_path) as f:
        baseline = json.load(f)
doc = {"generated_by": "scripts/bench.sh", "smoke": current.get("smoke"),
       "current": current, "baseline": baseline}
if baseline is not None:
    def ratio(a, b):
        return round(a / b, 2) if b else None
    doc["speedup"] = {
        "eviction_microbench": ratio(baseline["eviction_microbench"]["wall_ms"],
                                     current["eviction_microbench"]["wall_ms"]),
        "event_queue": ratio(baseline["event_queue"]["wall_ms"],
                             current["event_queue"]["wall_ms"]),
        "sim_wall": ratio(baseline["sim_wall_ms"], current["sim_wall_ms"]),
    }
    if baseline.get("faults_per_sec") and current.get("faults_per_sec"):
        doc["speedup"]["faults_per_sec"] = ratio(current["faults_per_sec"],
                                                 baseline["faults_per_sec"])
    # Regression gate: a current tree measurably slower than the baseline on
    # the headline sim number fails the run (3% grace absorbs wall-clock
    # noise). The verdict is recorded in the merged JSON either way.
    GATE_MIN = 0.97
    sim_speedup = doc["speedup"]["sim_wall"]
    gate_fail = sim_speedup is not None and sim_speedup < GATE_MIN
    doc["gate"] = {"min_sim_wall_speedup": GATE_MIN,
                   "sim_wall_speedup": sim_speedup,
                   "result": "fail" if gate_fail else "pass"}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
if baseline is not None:
    print("speedup:", doc["speedup"])
    if doc["gate"]["result"] == "fail":
        print(f"GATE FAILED: sim_wall speedup {sim_speedup} < {GATE_MIN} "
              "(current tree is slower than the baseline)", file=sys.stderr)
        sys.exit(1)
    print("gate: pass")
PY
