#!/usr/bin/env bash
# coverage.sh — line-coverage gate for the layers the differential fuzzer
# protects: src/policy (migration decisions) and src/check (oracle, stream
# generator, shrinker, auditor). Builds with UVMSIM_COVERAGE=ON, runs the
# test suite, aggregates gcov line coverage per layer, and fails when either
# layer drops below scripts/coverage_baseline.txt.
#
#   scripts/coverage.sh            # gate against the recorded baseline
#   scripts/coverage.sh --record   # rewrite the baseline from this run
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
record=0
[[ "${1:-}" == "--record" ]] && record=1

builddir=build-cov
echo "==> [coverage] configure + build ($builddir)"
cmake -S . -B "$builddir" -DCMAKE_BUILD_TYPE=Debug -DUVMSIM_COVERAGE=ON \
  -DUVMSIM_BUILD_BENCH=OFF -DUVMSIM_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$builddir" -j "$jobs" > /dev/null

echo "==> [coverage] ctest"
# Stale counters from a previous run would inflate the numbers.
find "$builddir" -name '*.gcda' -delete
ctest --test-dir "$builddir" -j "$jobs" --output-on-failure > /dev/null

echo "==> [coverage] aggregate (gcov)"
python3 - "$builddir" "$record" <<'PY'
import collections
import json
import pathlib
import subprocess
import sys

build, record = sys.argv[1], sys.argv[2] == "1"
layers = ["src/policy", "src/check"]
baseline_path = pathlib.Path("scripts/coverage_baseline.txt")
repo = pathlib.Path.cwd()

covered = collections.defaultdict(set)
instrumented = collections.defaultdict(set)
for gcda in pathlib.Path(build).rglob("*.gcda"):
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", str(gcda.resolve())],
        capture_output=True, cwd=gcda.parent, check=False)
    for line in proc.stdout.splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        for f in doc.get("files", []):
            try:
                rel = pathlib.Path(f["file"]).resolve().relative_to(repo).as_posix()
            except ValueError:
                continue
            layer = next((l for l in layers if rel.startswith(l + "/")), None)
            if layer is None:
                continue
            for ln in f["lines"]:
                key = (rel, ln["line_number"])
                instrumented[layer].add(key)
                if ln["count"] > 0:
                    covered[layer].add(key)

current = {}
for layer in layers:
    total = len(instrumented[layer])
    hit = len(covered[layer])
    if total == 0:
        sys.exit(f"coverage: no instrumented lines found for {layer} "
                 "(build not instrumented?)")
    current[layer] = 100.0 * hit / total
    print(f"  {layer}: {current[layer]:.2f}% ({hit}/{total} lines)")

if record:
    baseline_path.write_text(
        "".join(f"{layer} {current[layer]:.2f}\n" for layer in layers))
    print(f"coverage: baseline recorded to {baseline_path}")
    sys.exit(0)

if not baseline_path.exists():
    sys.exit(f"coverage: {baseline_path} missing; run scripts/coverage.sh --record")
baseline = {}
for line in baseline_path.read_text().splitlines():
    name, pct = line.rsplit(None, 1)
    baseline[name] = float(pct)

# Allow a sliver of slack for gcov attribution shifts across compiler
# releases; real regressions are whole uncovered branches, not 0.2 %.
slack = 0.25
failed = False
for layer in layers:
    base = baseline.get(layer)
    if base is None:
        sys.exit(f"coverage: {baseline_path} has no entry for {layer}")
    if current[layer] < base - slack:
        print(f"coverage: {layer} dropped to {current[layer]:.2f}% "
              f"(baseline {base:.2f}%)")
        failed = True
if failed:
    sys.exit(1)
print("coverage: no layer below baseline")
PY
