// Figure 1: sensitivity of workloads to the percentage of memory
// oversubscription. Baseline (first-touch + tree prefetcher + 2 MB LRU),
// runtime normalized to the no-oversubscription run of each workload.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 1: runtime vs memory oversubscription (Baseline)",
               "runtime normalized to the no-oversubscription run");
  print_row_header({"no-oversub", "125%", "150%"});

  Table csv({"workload", "fits", "over125", "over150"});
  for (const auto& name : workload_names()) {
    const SimConfig cfg = make_cfg(PolicyKind::kFirstTouch);
    const RunResult fit = run(name, cfg, 0.0);
    const RunResult o125 = run(name, cfg, 1.25);
    const RunResult o150 = run(name, cfg, 1.50);
    const auto base = static_cast<double>(fit.stats.kernel_cycles);
    const double v125 = static_cast<double>(o125.stats.kernel_cycles) / base;
    const double v150 = static_cast<double>(o150.stats.kernel_cycles) / base;
    print_row(name, {1.0, v125, v150});
    csv.row().cell(name).cell(1.0).cell(v125).cell(v150);
  }
  save_csv(csv, "fig1_oversub_sensitivity.csv");

  print_paper_reference(
      "Fig 1, GeForceGTX 1080 Ti hardware",
      {
          {"backprop", {1.0, 1.02, 1.32}}, {"fdtd", {1.0, 1.67, 1.89}},
          {"hotspot", {1.0, 1.46, 1.55}},  {"srad", {1.0, 2.00, 2.11}},
          {"bfs", {1.0, 4.46, 15.36}},     {"nw", {1.0, 1.59, 9.84}},
          {"ra", {1.0, 15.22, 20.83}},     {"sssp", {1.0, 1.11, 1.48}},
      },
      {"no-oversub", "125%", "150%"});
  std::printf(
      "\nNote: paper Fig 1 is measured on real hardware; shapes (irregular >>\n"
      "regular degradation) are the reproduction target, not absolute factors.\n");
  return 0;
}
