// Ablation: the state-of-practice per-block thrash throttling (nvidia-uvm
// style, paper §I) vs the paper's adaptive framework, at 125 %
// oversubscription. Quantifies how much of the adaptive win plain
// throttling recovers — and where each approach leaves performance behind.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Ablation: thrash throttling vs adaptive framework (125% oversub)",
               "runtime normalized to the unmitigated Baseline");
  print_row_header({"Baseline", "throttle", "Adaptive", "thr_remote"});

  for (const auto& name : workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 1.25);
    SimConfig throttled = make_cfg(PolicyKind::kFirstTouch);
    throttled.mitigation.enabled = true;
    const RunResult mitigated = run(name, throttled, 1.25);
    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 1.25);

    const auto b = static_cast<double>(base.stats.kernel_cycles);
    print_row(name,
              {1.0, static_cast<double>(mitigated.stats.kernel_cycles) / b,
               static_cast<double>(adaptive.stats.kernel_cycles) / b,
               static_cast<double>(mitigated.stats.remote_accesses > 0
                                       ? mitigated.stats.remote_accesses
                                       : 0)});
  }

  std::printf(
      "\nReading: per-block pinning recovers much of the thrash cost on the\n"
      "extreme workloads (it converges to hard host-pinning, the p=2^20\n"
      "configuration of Fig 8), but it is reactive — each block must thrash\n"
      "several times before being pinned — and page-wise throttling forfeits\n"
      "bulk prefetching, which is the paper's §I criticism of this approach.\n"
      "The adaptive framework reaches similar or better points proactively.\n");
  return 0;
}
