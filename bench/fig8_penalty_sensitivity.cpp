// Figure 8: sensitivity of the Adaptive scheme to the multiplicative
// migration penalty p at 125 % oversubscription, normalized to Baseline.
// p = 1048576 approximates hard host-pinning (pure zero-copy).
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 8: sensitivity to the multiplicative migration penalty",
               "Adaptive at 125% oversubscription, normalized to Baseline");
  print_row_header({"Baseline", "p=2", "p=4", "p=8", "p=1048576"});

  Table csv({"workload", "baseline", "p2", "p4", "p8", "p1048576"});
  for (const auto& name : workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 1.25);
    const auto b = static_cast<double>(base.stats.kernel_cycles);
    std::vector<double> row{1.0};
    for (const std::uint64_t p : {2ull, 4ull, 8ull, 1048576ull}) {
      const RunResult r = run(name, make_cfg(PolicyKind::kAdaptive, 8, p), 1.25);
      row.push_back(static_cast<double>(r.stats.kernel_cycles) / b);
    }
    print_row(name, row);
    csv.row().cell(name);
    for (const double v : row) csv.cell(v);
  }
  save_csv(csv, "fig8_penalty_sensitivity.csv");

  print_paper_reference(
      "Fig 8 (simulator)",
      {
          {"backprop", {1.0, 1.0008, 1.0022, 1.0050, 1.7407}},
          {"fdtd", {1.0, 1.0027, 0.9994, 1.0077, 0.9073}},
          {"hotspot", {1.0, 0.9998, 1.0237, 1.0022, 1.3965}},
          {"srad", {1.0, 1.0001, 1.0001, 1.0001, 2.3838}},
          {"bfs", {1.0, 0.8360, 0.7872, 0.7821, 1.0020}},
          {"nw", {1.0, 0.9229, 0.8419, 0.6718, 0.0604}},
          {"ra", {1.0, 0.2903, 0.1951, 0.2177, 0.1355}},
          {"sssp", {1.0, 0.6446, 0.5135, 0.4021, 0.2855}},
      },
      {"Baseline", "p=2", "p=4", "p=8", "p=1048576"});
  std::printf(
      "\nExpected shape: regular workloads are flat for p in 2..8 but suffer\n"
      "under extreme pinning (dense access over PCIe); irregular workloads\n"
      "improve monotonically with p in 2..8.\n");
  return 0;
}
