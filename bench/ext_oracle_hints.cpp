// Extension experiment: programmer-agnostic vs hand-tuned. The paper's
// central pitch is that the adaptive framework removes the need for
// cudaMemAdvise-style hints derived from intrusive profiling (§I, §III-C).
// Here an "oracle" programmer pins exactly the cold allocations of each
// irregular workload with the AccessedBy hint (permanent zero-copy mapping)
// and we check how close the hint-free adaptive scheme gets.
#include <map>
#include <vector>

#include "harness.hpp"

namespace {

using namespace uvmsim;
using namespace uvmsim::bench;

// The cold allocations per workload — knowledge the oracle has from
// profiling (Fig 2) and that the adaptive scheme must discover online.
const std::map<std::string, std::vector<std::string>>& oracle_cold_sets() {
  static const std::map<std::string, std::vector<std::string>> sets{
      {"bfs", {"graph_edges"}},
      {"nw", {"reference"}},
      {"ra", {"update_table"}},
      {"sssp", {"graph_edges", "edge_weights"}},
  };
  return sets;
}

}  // namespace

int main() {
  print_header("Extension: oracle cudaMemAdvise hints vs adaptive (125% oversub)",
               "runtime normalized to Baseline; oracle pins the cold data zero-copy");
  print_row_header({"Baseline", "oracle-hints", "Adaptive"});

  WorkloadParams params;
  params.scale = kScale;

  for (const auto& [name, cold] : oracle_cold_sets()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 1.25);

    // Oracle: baseline driver + hand-placed AccessedBy hints.
    SimConfig oracle_cfg = make_cfg(PolicyKind::kFirstTouch);
    oracle_cfg.mem.oversubscription = 1.25;
    auto wl = make_workload(name, params);
    Simulator oracle_sim(oracle_cfg);
    RunOptions oracle_opts;
    oracle_opts.advice_hook = [&](AddressSpace& space) {
      for (const auto& alloc : cold) {
        if (!space.advise(alloc, MemAdvice::kAccessedBy)) {
          std::fprintf(stderr, "no allocation named %s in %s\n", alloc.c_str(),
                       name.c_str());
        }
      }
    };
    const RunResult oracle = oracle_sim.run(*wl, oracle_opts);

    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 1.25);

    const auto b = static_cast<double>(base.stats.kernel_cycles);
    print_row(name, {1.0, static_cast<double>(oracle.stats.kernel_cycles) / b,
                     static_cast<double>(adaptive.stats.kernel_cycles) / b});
  }

  std::printf(
      "\nReading: the hint-free adaptive scheme should approach the oracle's\n"
      "hand-tuned placement — the paper's value proposition. Where adaptive\n"
      "beats the oracle, the workload's \"cold\" data had enough hot spots\n"
      "that migrating them (which a blanket hint forbids) pays off.\n");
  return 0;
}
