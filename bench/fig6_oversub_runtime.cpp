// Figure 6: runtime under 125 % oversubscription — Baseline (Disabled) vs
// Always vs Oversub vs Adaptive (ts = 8, p = 8), normalized to Baseline.
// The paper's headline result: Adaptive improves irregular workloads by
// 22 % (bfs) to 78 % (ra) while leaving regular workloads untouched.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 6: runtime at 125% oversubscription (ts=8, p=8)",
               "normalized to Baseline (first-touch + LRU)");
  print_row_header({"Baseline", "Always", "Oversub", "Adaptive"});

  // Describe the whole 8x4 grid upfront and fan it out on the batch engine.
  constexpr PolicyKind kSchemes[] = {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                                     PolicyKind::kStaticOversub, PolicyKind::kAdaptive};
  std::vector<RunRequest> grid;
  for (const auto& name : workload_names())
    for (const PolicyKind policy : kSchemes) grid.push_back(make_request(name, make_cfg(policy), 1.25));
  const std::vector<RunResult> results = run_grid(grid);

  Table csv({"workload", "baseline", "always", "oversub", "adaptive"});
  std::size_t i = 0;
  for (const auto& name : workload_names()) {
    const RunResult& base = results[i++];
    const RunResult& always = results[i++];
    const RunResult& oversub = results[i++];
    const RunResult& adaptive = results[i++];
    const auto b = static_cast<double>(base.stats.kernel_cycles);
    const double va = static_cast<double>(always.stats.kernel_cycles) / b;
    const double vo = static_cast<double>(oversub.stats.kernel_cycles) / b;
    const double vd = static_cast<double>(adaptive.stats.kernel_cycles) / b;
    print_row(name, {1.0, va, vo, vd});
    csv.row().cell(name).cell(1.0).cell(va).cell(vo).cell(vd);
  }
  save_csv(csv, "fig6_oversub_runtime.csv");

  print_paper_reference(
      "Fig 6 (simulator)",
      {
          {"backprop", {1.0, 0.9962, 1.0002, 1.0050}},
          {"fdtd", {1.0, 1.0068, 1.0052, 1.0077}},
          {"hotspot", {1.0, 0.9204, 0.9946, 1.0022}},
          {"srad", {1.0, 1.0004, 1.0000, 1.0001}},
          {"bfs", {1.0, 0.8015, 0.9064, 0.7821}},
          {"nw", {1.0, 1.0050, 0.9868, 0.6718}},
          {"ra", {1.0, 0.2437, 1.0000, 0.2177}},
          {"sssp", {1.0, 0.7462, 0.7612, 0.4021}},
      },
      {"Baseline", "Always", "Oversub", "Adaptive"});
  std::printf(
      "\nExpected shape: regular ~= 1.00 under every scheme; Adaptive is the\n"
      "best (or tied best) scheme on every irregular workload, 22-78%% faster\n"
      "than Baseline.\n");
  return 0;
}
