// Figure 3: page access pattern over time across iterations — fdtd repeats
// the same dense sequential sweep every iteration; sssp kernel1 is sparse
// and drifts across the address space between rounds while kernel2 stays
// dense and sequential. Prints per-launch summaries and writes the sampled
// (cycle, page) series to CSV.
#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "harness.hpp"
#include "trace/trace.hpp"

namespace {

using namespace uvmsim;
using namespace uvmsim::bench;

struct LaunchSummary {
  std::string kernel;
  std::uint64_t samples = 0;
  std::set<PageNum> pages;
  PageNum min_page = ~PageNum{0};
  PageNum max_page = 0;
};

void characterize(const std::string& name) {
  WorkloadParams params;
  params.scale = kScale;
  SimConfig cfg = make_cfg(PolicyKind::kFirstTouch);
  cfg.collect_traces = true;

  TimeSeriesSampler ts(/*stride=*/32);
  auto wl = make_workload(name, params);
  Simulator sim(cfg);
  RunOptions opts;
  opts.trace_sink = &ts;
  (void)sim.run(*wl, opts);

  std::map<std::uint32_t, LaunchSummary> launches;
  for (const auto& s : ts.samples()) {
    auto& l = launches[s.launch];
    l.samples++;
    l.pages.insert(s.page);
    l.min_page = std::min(l.min_page, s.page);
    l.max_page = std::max(l.max_page, s.page);
  }

  std::printf("\n%s: sampled access pattern per kernel launch\n", name.c_str());
  std::printf("%-8s %-14s %9s %10s %10s %10s %9s\n", "launch", "kernel", "samples",
              "pages", "min_page", "max_page", "density");
  for (auto& [idx, l] : launches) {
    l.kernel = idx < ts.launch_names().size() ? ts.launch_names()[idx] : "?";
    const double span = static_cast<double>(l.max_page - l.min_page + 1);
    std::printf("%-8u %-14s %9llu %10zu %10llu %10llu %8.1f%%\n", idx, l.kernel.c_str(),
                static_cast<unsigned long long>(l.samples), l.pages.size(),
                static_cast<unsigned long long>(l.min_page),
                static_cast<unsigned long long>(l.max_page),
                100.0 * static_cast<double>(l.pages.size()) / span);
  }

  const std::string csv = "fig3_" + name + "_timeseries.csv";
  std::ofstream out(csv);
  ts.write_csv(out);
  std::printf("sampled (cycle,page) series written to %s\n", csv.c_str());
}

}  // namespace

int main() {
  print_header("Figure 3: access pattern over iterations",
               "fdtd iterations repeat; sssp kernel1 is sparse, kernel2 dense");
  characterize("fdtd");
  characterize("sssp");
  std::printf(
      "\nExpected shape (paper Fig 3): fdtd launches cover their arrays densely\n"
      "and identically across iterations; sssp kernel1 touches a sparse subset\n"
      "that varies between rounds, kernel2 scans the status arrays densely.\n");
  return 0;
}
