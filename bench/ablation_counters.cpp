// Ablation: access-counter design choices (paper §IV).
//  (a) counter granularity — 64 KB basic block (the paper's optimization)
//      vs 4 KB page;
//  (b) counter maintenance — historic local+remote counts (the framework)
//      vs Volta remote-only counts for the Always scheme;
//  (c) write handling under Adaptive — dynamic threshold (default) vs
//      Volta forced write-migration.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Ablation: access-counter design choices (125% oversub)",
               "each column normalized to the same workload's Baseline run");
  print_row_header({"adpt/64K", "adpt/4K", "alwys/volta", "alwys/hist", "adpt/wr-td",
                    "adpt/wr-mig"});

  for (const auto& name : workload_names()) {
    const auto base = static_cast<double>(
        run(name, make_cfg(PolicyKind::kFirstTouch), 1.25).stats.kernel_cycles);
    std::vector<double> row;

    // (a) counter granularity under Adaptive.
    for (const std::uint64_t gran : {kBasicBlockSize, kPageSize}) {
      SimConfig cfg = make_cfg(PolicyKind::kAdaptive);
      cfg.mem.counter_granularity = gran;
      row.push_back(static_cast<double>(run(name, cfg, 1.25).stats.kernel_cycles) / base);
    }
    // (b) counter maintenance under Always.
    for (const bool historic : {false, true}) {
      SimConfig cfg = make_cfg(PolicyKind::kStaticAlways);
      cfg.policy.historic_counters_override = historic;
      row.push_back(static_cast<double>(run(name, cfg, 1.25).stats.kernel_cycles) / base);
    }
    // (c) write handling under Adaptive.
    for (const bool write_migrates : {false, true}) {
      SimConfig cfg = make_cfg(PolicyKind::kAdaptive);
      cfg.policy.adaptive_write_migrates = write_migrates;
      row.push_back(static_cast<double>(run(name, cfg, 1.25).stats.kernel_cycles) / base);
    }
    print_row(name, row);
  }

  std::printf(
      "\nReading: 4 KB counters refine hot/cold separation slightly at 16x\n"
      "the register cost; historic counts neutralize the Always scheme (old\n"
      "counts stay above ts, so delayed migration degenerates to first\n"
      "touch); forcing write-migration under Adaptive erases much of the\n"
      "benefit on write-containing irregular workloads.\n");
  return 0;
}
