// Extension experiment: input-structure sensitivity. The paper's graph
// benchmarks come from suites whose inputs range from Rodinia-style random
// graphs (few huge frontiers) to Lonestar road networks (high diameter,
// tiny frontiers). This bench runs bfs/sssp on both structures and shows
// how the input regime changes the oversubscription pathology and how much
// the adaptive scheme recovers in each.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Extension: graph input structure (125% oversubscription)",
               "per input: Baseline slowdown vs fits, and Adaptive/Baseline ratio");
  std::printf("%-8s %-10s %14s %16s %14s\n", "app", "input", "base-slowdown",
              "adaptive-ratio", "base-thrash-MB");

  for (const auto& app : {"bfs", "sssp"}) {
    for (const auto& graph : {"powerlaw", "road"}) {
      WorkloadParams params;
      params.scale = kScale;
      params.graph = graph;

      SimConfig base_cfg = make_cfg(PolicyKind::kFirstTouch);
      SimConfig adpt_cfg = make_cfg(PolicyKind::kAdaptive);

      const RunResult fits = run_workload(app, base_cfg, 0.0, params);
      const RunResult base = run_workload(app, base_cfg, 1.25, params);
      const RunResult adpt = run_workload(app, adpt_cfg, 1.25, params);

      std::printf("%-8s %-10s %14.2f %16.3f %14.1f\n", app, graph,
                  static_cast<double>(base.stats.kernel_cycles) /
                      static_cast<double>(fits.stats.kernel_cycles),
                  static_cast<double>(adpt.stats.kernel_cycles) /
                      static_cast<double>(base.stats.kernel_cycles),
                  static_cast<double>(base.stats.pages_thrashed) * kPageSize / (1 << 20));
    }
  }

  std::printf(
      "\nReading: the two input structures stress different parts of the\n"
      "memory system. Power-law inputs touch most of the edge array every\n"
      "level (sparse-phase thrash); road inputs run hundreds of tiny levels\n"
      "whose Rodinia-style dense status scans pay the cyclic-reuse thrash\n"
      "repeatedly. The adaptive scheme should win in both regimes.\n");
  return 0;
}
