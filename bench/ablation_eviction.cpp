// Ablation: LRU vs access-counter LFU eviction under each migration policy
// at 125 % oversubscription. The paper pairs Baseline with LRU and the
// counter-based schemes with its LFU; this bench separates the two choices.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Ablation: eviction policy x migration policy (125% oversub)",
               "runtime normalized to first-touch + LRU");

  const std::vector<std::pair<std::string, PolicyKind>> policies{
      {"baseline", PolicyKind::kFirstTouch},
      {"always", PolicyKind::kStaticAlways},
      {"adaptive", PolicyKind::kAdaptive},
  };

  for (const auto& name : workload_names()) {
    SimConfig ref_cfg = make_cfg(PolicyKind::kFirstTouch);
    ref_cfg.mem.eviction = EvictionKind::kLru;
    const auto ref =
        static_cast<double>(run(name, ref_cfg, 1.25).stats.kernel_cycles);

    std::printf("%-10s", name.c_str());
    for (const auto& [label, kind] : policies) {
      for (const EvictionKind ev :
           {EvictionKind::kLru, EvictionKind::kLfu, EvictionKind::kTree}) {
        SimConfig cfg = make_cfg(kind);
        cfg.mem.eviction = ev;
        const RunResult r = run(name, cfg, 1.25);
        const char* ev_name = ev == EvictionKind::kLru   ? "lru"
                              : ev == EvictionKind::kLfu ? "lfu"
                                                         : "tree";
        std::printf(" %s/%s=%6.2f", label.c_str(), ev_name,
                    static_cast<double>(r.stats.kernel_cycles) / ref);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "\nReading: tree eviction (ISCA'19) evicts subtree-granularity victims\n"
      "around the LRU block instead of whole large pages. The LFU gain\n"
      "concentrates where hot/cold frequency splits exist (irregular\n"
      "workloads); under uniform frequencies LFU falls back to LRU order, so\n"
      "regular workloads are unaffected by the choice.\n");
  return 0;
}
