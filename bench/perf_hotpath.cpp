// perf_hotpath: microbenchmark of the simulator's two hottest paths — victim
// selection under heavy oversubscription (eviction-dominated bfs/sssp runs)
// and raw event-kernel churn — reported as JSON on stdout. scripts/bench.sh
// runs this binary from the current tree and from a pre-overhaul baseline
// checkout and combines both into BENCH_hotpath.json, so this file must only
// use APIs that exist in both trees (run_request, EventQueue, SimStats,
// UvmDriver, Tlb); anything newer is feature-gated (UVMSIM_EVENTQ_HAS_WHEEL
// for the warp-stepper ring, __has_include for the eviction index).
//
//   perf_hotpath [--smoke] [--label NAME]
//
// All runs are fully seeded; the numbers below are deterministic up to
// wall-clock noise.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <uvmsim/uvmsim.hpp>

#include "core/uvm_driver.hpp"
#include "gpu/tlb.hpp"
#include "mem/eviction.hpp"
#include "sim/rng.hpp"

// The incremental eviction index only exists post-overhaul; the baseline
// checkout falls back to the reference scan (which is the point: same loop,
// two victim-selection implementations).
#if __has_include("mem/eviction_index.hpp")
#define UVMSIM_HAS_EVICTION_INDEX 1
#endif

// The binary trace subsystem (record/replay) is also newer than the
// baseline checkout; its round-trip lane is gated the same way.
#if __has_include("trace/trace_binary.hpp")
#include "trace/trace_binary.hpp"
#define UVMSIM_HAS_TRACE_BINARY 1
#endif

namespace {

using namespace uvmsim;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

/// Eviction-heavy configuration: adaptive policy + access-counter LFU at
/// 150 % oversubscription, the regime where select_victims dominates.
SimConfig eviction_heavy_cfg() {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.mem.eviction = EvictionKind::kLfu;
  return cfg;
}

struct SimRow {
  std::string workload;
  double oversub = 0.0;
  double wall_ms = 0.0;
  std::uint64_t far_faults = 0;
  std::uint64_t evictions = 0;
  std::uint64_t accesses = 0;
  Cycle total_cycles = 0;
};

SimRow bench_sim(const std::string& workload, double oversub, double scale) {
  RunRequest req;
  req.workload = workload;
  req.params.scale = scale;
  req.config = eviction_heavy_cfg();
  req.oversub = oversub;

  const auto t0 = Clock::now();
  const RunResult res = run_request(req);
  SimRow row;
  row.workload = workload;
  row.oversub = oversub;
  row.wall_ms = ms_since(t0);
  row.far_faults = res.stats.far_faults;
  row.evictions = res.stats.evictions;
  row.accesses = res.stats.total_accesses;
  row.total_cycles = res.stats.total_cycles;
  return row;
}

struct EvictRow {
  std::uint64_t selections = 0;
  std::uint64_t victims = 0;
  double wall_ms = 0.0;
};

/// The eviction-heavy oversubscribed steady state, distilled: a large device
/// of `kChunks` sparsely-populated large pages (irregular workloads leave
/// chunks partial) where every fault must select a victim chunk, evict it,
/// and migrate its blocks back in — one select_victims per iteration under
/// LFU (the paper's access-counter scheme), with live counter/touch traffic
/// so recency and frequency keep changing. Sparse residency keeps the
/// per-eviction block shuffling small, so the victim-selection scan itself
/// dominates the loop — exactly the regime the incremental index targets.
EvictRow bench_eviction_selection(std::uint64_t iters) {
  constexpr ChunkNum kChunks = 2048;       // 4 GB footprint: a scan-heavy device
  constexpr std::uint32_t kSparse = 4;     // resident blocks per chunk
  AddressSpace space;
  space.allocate("a", kChunks * kLargePageSize);
  BlockTable table(space);
  AccessCounterTable counters(div_ceil(space.span_end(), std::uint64_t{1} << 16), 16);
  EvictionManager mgr(EvictionKind::kLfu, kLargePageSize);
#ifdef UVMSIM_HAS_EVICTION_INDEX
  mgr.attach_index(table, counters);
#endif
  Rng rng(0x5EED);
  Cycle now = 1;
  for (ChunkNum c = 0; c < kChunks; ++c) {
    const BlockNum first = first_block_of_chunk(c);
    for (std::uint32_t k = 0; k < kSparse; ++k) {
      table.mark_in_flight(first + k);
      table.mark_resident(first + k, now);
    }
  }

  EvictRow row;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    now += 1 + rng.below(3);
    for (int k = 0; k < 4; ++k) {
      const ChunkNum c = rng.below(kChunks);
      const BlockNum b = first_block_of_chunk(c) + rng.below(kSparse);
      table.touch(b, rng.chance(0.25) ? AccessType::kWrite : AccessType::kRead, now);
      counters.record_access(addr_of_block(b),
                             1 + static_cast<std::uint32_t>(rng.below(8)));
    }
    const ChunkNum fc = rng.below(table.num_chunks());
    const std::vector<BlockNum> victims =
        mgr.select_victims(table, counters, VictimQuery{fc, true, now, 512});
    for (const BlockNum v : victims) {
      table.mark_evicted(v);
      counters.record_round_trip(addr_of_block(v));
    }
    // Re-migrate immediately: the device stays full, as under real
    // oversubscription where every eviction makes room for a fault. The
    // faulted-in blocks are accessed (that's why they came back), which
    // rotates the victim choice across chunks instead of re-evicting the
    // same frequency minimum forever.
    for (const BlockNum v : victims) {
      table.mark_in_flight(v);
      table.mark_resident(v, now);
      counters.record_access(addr_of_block(v),
                             1 + static_cast<std::uint32_t>(rng.below(16)));
    }
    row.victims += victims.size();
  }
  row.wall_ms = ms_since(t0);
  row.selections = iters;
  return row;
}

struct ChurnRow {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
};

/// Raw event-kernel churn at the simulator's steady-state queue depth: a few
/// hundred events stay pending (each firing reschedules its replacement with
/// a varied delay) — the access pattern the fault/transfer engines induce.
/// The action carries a 32-byte capture, the driver's `[this, block, cycle,
/// type]`-style size class that the event kernel's inline storage is sized
/// for (and that overflows std::function's small-buffer optimization).
struct ChurnCtx {
  EventQueue q;
  std::uint64_t fired = 0;
  std::uint64_t target = 0;
  std::uint64_t checksum = 0;

  struct Tick {
    ChurnCtx* ctx;
    std::uint64_t block;
    Cycle stamp;
    std::uint64_t salt;
    void operator()() const { ctx->fire(block ^ salt, stamp); }
  };

  void fire(std::uint64_t token, Cycle stamp) {
    ++fired;
    checksum += token ^ stamp;
    if (fired + q.pending() < target) {
      // Vary the delay so the heap is reordered, not just rotated.
      q.schedule_in(1 + (fired * 7) % 13,
                    Tick{this, fired, q.now(), fired * 0x9E3779B97F4A7C15ull});
    }
  }
};

ChurnRow bench_event_churn(std::uint64_t target_events) {
  constexpr std::uint64_t kDepth = 256;
  ChurnCtx ctx;
  ctx.target = target_events;
  const auto t0 = Clock::now();
  for (std::uint64_t lane = 0; lane < kDepth; ++lane) {
    ctx.q.schedule_at(static_cast<Cycle>(lane % 5),
                      ChurnCtx::Tick{&ctx, lane, 0, lane});
  }
  ctx.q.run();
  ChurnRow row;
  row.events = ctx.q.executed();
  row.wall_ms = ms_since(t0);
  if (ctx.checksum == 0xDEADBEEF) std::fprintf(stderr, "!\n");  // keep live
  return row;
}

#ifdef UVMSIM_EVENTQ_HAS_WHEEL
/// Warp-ring churn: the same steady-state queue depth as bench_event_churn,
/// but every event is a warp step scheduled through the registered-stepper
/// ring (plain WarpId payloads, no closure capture) — the shape the GPU model
/// puts on the queue once per access.
struct RingCtx {
  EventQueue q;
  std::uint32_t stepper = 0;
  std::uint64_t fired = 0;
  std::uint64_t target = 0;
  std::uint64_t checksum = 0;

  static void step(void* self, WarpId w) {
    auto* ctx = static_cast<RingCtx*>(self);
    ++ctx->fired;
    ctx->checksum += w;
    if (ctx->fired + ctx->q.pending() < ctx->target) {
      ctx->q.schedule_warp_in(1 + (ctx->fired * 7) % 13, ctx->stepper, w + 1);
    }
  }
};

ChurnRow bench_warp_ring_churn(std::uint64_t target_events) {
  constexpr std::uint64_t kDepth = 256;
  RingCtx ctx;
  ctx.target = target_events;
  ctx.stepper = ctx.q.register_warp_stepper(&RingCtx::step, &ctx);
  const auto t0 = Clock::now();
  for (std::uint64_t lane = 0; lane < kDepth; ++lane) {
    ctx.q.schedule_warp_at(static_cast<Cycle>(lane % 5), ctx.stepper,
                           static_cast<WarpId>(lane));
  }
  ctx.q.run();
  ChurnRow row;
  row.events = ctx.q.executed();
  row.wall_ms = ms_since(t0);
  if (ctx.checksum == 0xDEADBEEF) std::fprintf(stderr, "!\n");  // keep live
  return row;
}
#endif  // UVMSIM_EVENTQ_HAS_WHEEL

struct StormRow {
  std::uint64_t ops = 0;
  double wall_ms = 0.0;
  [[nodiscard]] double ns_per_op() const {
    return ops > 0 ? wall_ms * 1e6 / static_cast<double>(ops) : 0.0;
  }
};

/// Driver fast path in isolation: every block preloaded, then a storm of
/// device-resident accesses — counter increments, recency touches and the
/// DRAM-latency completion, with no faults and no observation sinks. This is
/// the per-access driver overhead that rides on every one of the billions of
/// local accesses a run services.
StormRow bench_driver_storm(std::uint64_t accesses) {
  SimConfig cfg;
  AddressSpace space;
  const std::uint64_t kSpan = 64ull << 20;  // 64 MB working set
  space.allocate("a", kSpan);
  EventQueue q;
  SimStats stats;
  UvmDriver drv(cfg, space, 2 * kSpan, q, stats);  // no oversubscription
  drv.preload_all([](Cycle) {});
  q.run();

  Rng rng(0xACCE55);
  StormRow row;
  std::uint64_t checksum = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < accesses; ++i) {
    const VirtAddr addr = (i * 256 + rng.below(128)) % kSpan;
    const AccessType type = rng.chance(0.25) ? AccessType::kWrite : AccessType::kRead;
    const AccessOutcome out =
        drv.access(static_cast<WarpId>(i & 63), addr, type, 1, q.now() + i);
    checksum += out.done;
  }
  row.wall_ms = ms_since(t0);
  row.ops = accesses;
  if (checksum == 0xDEADBEEF) std::fprintf(stderr, "!\n");  // keep live
  return row;
}

/// Per-SM TLB in isolation: the lookup-or-install that runs once per access,
/// over a stream mixing sequential runs (hits) with scattered jumps (misses).
StormRow bench_tlb_storm(std::uint64_t lookups) {
  Tlb tlb(64);
  Rng rng(0x71B);
  StormRow row;
  std::uint64_t hits = 0;
  PageNum p = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < lookups; ++i) {
    p = (i & 7) != 0 ? p + 1 : rng.below(1u << 20);  // 7 sequential : 1 jump
    if (tlb.access(p)) ++hits;
  }
  row.wall_ms = ms_since(t0);
  row.ops = lookups;
  if (hits == 0xDEADBEEF) std::fprintf(stderr, "!\n");  // keep live
  return row;
}

#ifdef UVMSIM_HAS_TRACE_BINARY
struct TraceRow {
  std::uint64_t records = 0;
  std::uint64_t file_bytes = 0;
  std::uint64_t peak_decoded_bytes = 0;
  double record_wall_ms = 0.0;
  double replay_wall_ms = 0.0;
  bool stats_equal = false;
};

/// Record→replay round trip of an oversubscribed run: recording overhead on
/// top of the bare sim, replay throughput from the streaming reader, and the
/// reader's bounded decoded footprint (peak_decoded_bytes ≪ file size for a
/// chunked trace — the RSS guarantee for million-access captures).
TraceRow bench_trace_roundtrip(double scale) {
  const std::string path = "perf_hotpath_trace.trb";
  TraceRow row;
  RunRequest req;
  req.workload = "ra";
  req.params.scale = scale;
  req.config = eviction_heavy_cfg();
  req.oversub = 1.3333;

  RunResult recorded;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    TraceWriter writer(os, {req.workload, req.params.seed, 0});
    SimConfig cfg = req.config;
    cfg.collect_traces = true;
    RunRequest rec = req;
    rec.config = cfg;
    RunOptions opts;
    opts.trace_sink = &writer;
    const auto t0 = Clock::now();
    recorded = run_request(rec, opts);
    writer.finalize();
    row.record_wall_ms = ms_since(t0);
    row.records = writer.records_written();
  }
  {
    RunRequest rep = req;
    rep.workload = "replay";
    rep.params.trace_file = path;
    const auto t0 = Clock::now();
    const RunResult replayed = run_request(rep);
    row.replay_wall_ms = ms_since(t0);
    row.stats_equal = replayed.stats == recorded.stats;
  }
  {
    TraceReader reader(path);
    row.file_bytes = reader.file_bytes();
    std::vector<Access> task;
    for (std::uint32_t l = 0; l < reader.meta().launches.size(); ++l) {
      for (std::uint64_t t = 0; t < reader.meta().launches[l].num_tasks; ++t) {
        task.clear();
        reader.read_task(l, t, task);
      }
    }
    row.peak_decoded_bytes = reader.peak_decoded_bytes();
  }
  std::remove(path.c_str());
  return row;
}
#endif  // UVMSIM_HAS_TRACE_BINARY

/// One attribution lane: a measured per-op cost scaled by the op count the
/// sim runs actually performed, expressed as a share of sim_wall_ms.
struct Lane {
  const char* key;
  double ns_per_op;
  std::uint64_t ops;
  [[nodiscard]] double est_ms() const {
    return ns_per_op * static_cast<double>(ops) / 1e6;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string label = "current";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    } else {
      std::fprintf(stderr, "usage: perf_hotpath [--smoke] [--label NAME]\n");
      return 2;
    }
  }

  const double scale = smoke ? 0.05 : 0.3;
  const std::uint64_t churn_events = smoke ? 400000 : 4000000;
  const std::uint64_t evict_iters = smoke ? 1500 : 15000;
  const std::uint64_t storm_accesses = smoke ? 200000 : 2000000;
  const std::uint64_t tlb_lookups = smoke ? 1000000 : 10000000;

  std::vector<SimRow> rows;
  for (const char* wl : {"bfs", "sssp"}) {
    for (const double oversub : {1.25, 1.5}) {
      rows.push_back(bench_sim(wl, oversub, scale));
    }
  }
  const EvictRow evict = bench_eviction_selection(evict_iters);
  const ChurnRow churn = bench_event_churn(churn_events);
#ifdef UVMSIM_EVENTQ_HAS_WHEEL
  const ChurnRow ring = bench_warp_ring_churn(churn_events);
#endif
  const StormRow driver = bench_driver_storm(storm_accesses);
  const StormRow tlb = bench_tlb_storm(tlb_lookups);
#ifdef UVMSIM_HAS_TRACE_BINARY
  const TraceRow trace = bench_trace_roundtrip(scale);
#endif

  double sim_wall_ms = 0.0;
  std::uint64_t faults = 0;
  std::uint64_t accesses = 0;
  std::uint64_t sim_evictions = 0;
  for (const SimRow& r : rows) {
    sim_wall_ms += r.wall_ms;
    faults += r.far_faults;
    accesses += r.accesses;
    sim_evictions += r.evictions;
  }

  // Cycle attribution: per-op costs from the isolation microbenches scaled by
  // the op counts the sim runs performed. Event-dispatch ops approximate the
  // queue traffic (one warp step per access plus engine/transfer events); the
  // remainder lane absorbs everything unmeasured (kernel task generation, the
  // policy layer, stats, allocator noise).
  const double churn_ns =
      churn.events > 0 ? churn.wall_ms * 1e6 / static_cast<double>(churn.events) : 0.0;
#ifdef UVMSIM_EVENTQ_HAS_WHEEL
  const double dispatch_ns =
      ring.events > 0 ? ring.wall_ms * 1e6 / static_cast<double>(ring.events) : churn_ns;
#else
  const double dispatch_ns = churn_ns;
#endif
  const double evict_ns =
      evict.selections > 0 ? evict.wall_ms * 1e6 / static_cast<double>(evict.selections)
                           : 0.0;
  const std::uint64_t dispatch_ops = accesses + 2 * faults;
  const Lane lanes[] = {
      {"event_dispatch", dispatch_ns, dispatch_ops},
      {"driver", driver.ns_per_op(), accesses},
      {"tlb_l2", tlb.ns_per_op(), accesses},
      {"eviction", evict_ns, sim_evictions},
  };

  std::printf("{\n  \"label\": \"%s\",\n  \"smoke\": %s,\n  \"scale\": %g,\n",
              label.c_str(), smoke ? "true" : "false", scale);
  std::printf("  \"sim_runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SimRow& r = rows[i];
    std::printf("    {\"workload\": \"%s\", \"oversub\": %.2f, \"wall_ms\": %.2f, "
                "\"far_faults\": %llu, \"evictions\": %llu, \"accesses\": %llu, "
                "\"total_cycles\": %llu}%s\n",
                r.workload.c_str(), r.oversub, r.wall_ms,
                static_cast<unsigned long long>(r.far_faults),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.accesses),
                static_cast<unsigned long long>(r.total_cycles),
                i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"sim_wall_ms\": %.2f,\n", sim_wall_ms);
  std::printf("  \"eviction_microbench\": {\"chunks\": 2048, \"selections\": %llu, "
              "\"victims\": %llu, \"wall_ms\": %.2f, \"selections_per_sec\": %.0f},\n",
              static_cast<unsigned long long>(evict.selections),
              static_cast<unsigned long long>(evict.victims), evict.wall_ms,
              evict.wall_ms > 0
                  ? static_cast<double>(evict.selections) * 1000.0 / evict.wall_ms
                  : 0.0);
  std::printf("  \"faults_per_sec\": %.0f,\n",
              sim_wall_ms > 0 ? static_cast<double>(faults) * 1000.0 / sim_wall_ms : 0.0);
  std::printf("  \"accesses_per_sec\": %.0f,\n",
              sim_wall_ms > 0 ? static_cast<double>(accesses) * 1000.0 / sim_wall_ms
                              : 0.0);
  std::printf("  \"event_queue\": {\"events\": %llu, \"wall_ms\": %.2f, "
              "\"events_per_sec\": %.0f},\n",
              static_cast<unsigned long long>(churn.events), churn.wall_ms,
              churn.wall_ms > 0
                  ? static_cast<double>(churn.events) * 1000.0 / churn.wall_ms
                  : 0.0);
#ifdef UVMSIM_EVENTQ_HAS_WHEEL
  std::printf("  \"event_queue_warp_ring\": {\"events\": %llu, \"wall_ms\": %.2f, "
              "\"events_per_sec\": %.0f},\n",
              static_cast<unsigned long long>(ring.events), ring.wall_ms,
              ring.wall_ms > 0
                  ? static_cast<double>(ring.events) * 1000.0 / ring.wall_ms
                  : 0.0);
#endif
  std::printf("  \"driver_storm\": {\"accesses\": %llu, \"wall_ms\": %.2f, "
              "\"ns_per_access\": %.1f},\n",
              static_cast<unsigned long long>(driver.ops), driver.wall_ms,
              driver.ns_per_op());
  std::printf("  \"tlb_storm\": {\"lookups\": %llu, \"wall_ms\": %.2f, "
              "\"ns_per_lookup\": %.2f},\n",
              static_cast<unsigned long long>(tlb.ops), tlb.wall_ms, tlb.ns_per_op());
  std::printf("  \"attribution\": {\n");
  double attributed_ms = 0.0;
  for (const Lane& lane : lanes) {
    attributed_ms += lane.est_ms();
    std::printf("    \"%s\": {\"ns_per_op\": %.2f, \"ops\": %llu, \"est_ms\": %.2f, "
                "\"est_share\": %.3f},\n",
                lane.key, lane.ns_per_op, static_cast<unsigned long long>(lane.ops),
                lane.est_ms(),
                sim_wall_ms > 0 ? lane.est_ms() / sim_wall_ms : 0.0);
  }
  const double other_ms = sim_wall_ms > attributed_ms ? sim_wall_ms - attributed_ms : 0.0;
  std::printf("    \"other\": {\"est_ms\": %.2f, \"est_share\": %.3f}\n  },\n", other_ms,
              sim_wall_ms > 0 ? other_ms / sim_wall_ms : 0.0);
#ifdef UVMSIM_HAS_TRACE_BINARY
  std::printf("  \"trace_roundtrip\": {\"records\": %llu, \"file_bytes\": %llu, "
              "\"peak_decoded_bytes\": %llu, \"record_wall_ms\": %.2f, "
              "\"replay_wall_ms\": %.2f, \"stats_equal\": %s},\n",
              static_cast<unsigned long long>(trace.records),
              static_cast<unsigned long long>(trace.file_bytes),
              static_cast<unsigned long long>(trace.peak_decoded_bytes),
              trace.record_wall_ms, trace.replay_wall_ms,
              trace.stats_equal ? "true" : "false");
#endif
  std::printf("  \"peak_rss_kb\": %ld\n}\n", peak_rss_kb());
  return 0;
}
