// Extension experiment: how input-dependent is the headline result? Runs
// the Fig 6 comparison across several workload seeds (different random
// graphs / tables) and reports the spread of the adaptive-vs-baseline
// runtime ratio. The paper reports single-input numbers; this bench shows
// the conclusion is not an artifact of one lucky input.
#include "harness.hpp"
#include "report/variance.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  constexpr std::size_t kSeeds = 5;
  print_header("Extension: seed sensitivity of the Fig 6 result (125% oversub)",
               "adaptive/baseline kernel-time ratio over 5 random inputs");
  std::printf("%-10s %10s %10s %10s %10s %8s\n", "workload", "mean", "stddev", "min",
              "max", "cv");

  WorkloadParams params;
  params.scale = 0.5;

  for (const auto& name : irregular_names()) {
    const auto base = kernel_cycles_across_seeds(
        name, make_cfg(PolicyKind::kFirstTouch), 1.25, params, kSeeds);
    const auto adpt = kernel_cycles_across_seeds(
        name, make_cfg(PolicyKind::kAdaptive), 1.25, params, kSeeds);
    std::vector<double> ratios;
    for (std::size_t i = 0; i < kSeeds; ++i) ratios.push_back(adpt[i] / base[i]);
    const SampleStats s = summarize_samples(ratios);
    std::printf("%-10s %10.3f %10.3f %10.3f %10.3f %7.1f%%\n", name.c_str(), s.mean,
                s.stddev, s.min, s.max, s.cv() * 100.0);
  }

  std::printf(
      "\nReading: a ratio < 1 across the whole [min, max] range means the\n"
      "adaptive scheme wins on every sampled input, not just the default.\n");
  return 0;
}
