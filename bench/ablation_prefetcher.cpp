// Ablation: prefetcher choice under the Baseline driver, with the working
// set fitting and at 125 % oversubscription. Reproduces the paper's §III-A
// observation that the (otherwise superior) tree prefetcher turns
// counter-productive under memory pressure on irregular workloads.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  const std::vector<std::pair<std::string, PrefetcherKind>> prefetchers{
      {"none", PrefetcherKind::kNone},
      {"seq", PrefetcherKind::kSequential},
      {"rand", PrefetcherKind::kRandom},
      {"tree", PrefetcherKind::kTree},
  };

  for (const double oversub : {0.0, 1.25}) {
    print_header(oversub == 0.0
                     ? "Ablation: prefetchers, working set fits"
                     : "Ablation: prefetchers, 125% oversubscription",
                 "Baseline driver; runtime normalized to the no-prefetch run");
    std::printf("%-10s", "workload");
    for (const auto& [label, _] : prefetchers) std::printf(" %10s", label.c_str());
    std::printf(" %12s\n", "tree_pref_MB");

    for (const auto& name : workload_names()) {
      std::printf("%-10s", name.c_str());
      double ref = 0;
      std::uint64_t tree_pref_bytes = 0;
      for (const auto& [label, kind] : prefetchers) {
        SimConfig cfg = make_cfg(PolicyKind::kFirstTouch);
        cfg.mem.prefetcher = kind;
        const RunResult r = run(name, cfg, oversub);
        const auto cycles = static_cast<double>(r.stats.kernel_cycles);
        if (kind == PrefetcherKind::kNone) ref = cycles;
        if (kind == PrefetcherKind::kTree) {
          tree_pref_bytes = r.stats.blocks_prefetched * kBasicBlockSize;
        }
        std::printf(" %10.2f", cycles / ref);
      }
      std::printf(" %12.1f\n", static_cast<double>(tree_pref_bytes) / (1 << 20));
    }
  }

  std::printf(
      "\nReading: with the working set fitting, the tree prefetcher is the\n"
      "best choice across the board (fewer far-faults, bulk transfers);\n"
      "under oversubscription its aggressive pulls evict useful data on the\n"
      "irregular workloads and the advantage shrinks or reverses.\n");
  return 0;
}
