// Figure 7: total number of pages thrashed under 125 % oversubscription —
// Baseline vs Always vs Oversub vs Adaptive, normalized to Baseline.
// The runtime gains of Fig 6 are explained by this thrash reduction.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 7: pages thrashed at 125% oversubscription (ts=8, p=8)",
               "normalized to Baseline; absolute Baseline count in last column");
  print_row_header({"Baseline", "Always", "Oversub", "Adaptive", "base-pages"});

  Table csv({"workload", "baseline", "always", "oversub", "adaptive", "base_pages"});
  for (const auto& name : workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 1.25);
    const RunResult always = run(name, make_cfg(PolicyKind::kStaticAlways), 1.25);
    const RunResult oversub = run(name, make_cfg(PolicyKind::kStaticOversub), 1.25);
    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 1.25);
    const auto b = static_cast<double>(base.stats.pages_thrashed);
    auto norm = [&](const RunResult& r) {
      return b == 0 ? 0.0 : static_cast<double>(r.stats.pages_thrashed) / b;
    };
    print_row(name, {b == 0 ? 0.0 : 1.0, norm(always), norm(oversub), norm(adaptive),
                     static_cast<double>(base.stats.pages_thrashed)},
              "%14.2f");
    csv.row().cell(name).cell(b == 0 ? 0.0 : 1.0).cell(norm(always)).cell(norm(oversub))
        .cell(norm(adaptive)).cell(base.stats.pages_thrashed);
  }
  save_csv(csv, "fig7_thrashing.csv");

  print_paper_reference(
      "Fig 7 (simulator)",
      {
          {"backprop", {0.0, 0.0, 0.0, 0.0}},
          {"fdtd", {1.0, 1.0000, 1.0000, 0.9991}},
          {"hotspot", {1.0, 0.9333, 1.0167, 1.0000}},
          {"srad", {1.0, 1.0000, 1.0000, 1.0000}},
          {"bfs", {1.0, 0.6917, 0.8150, 0.6301}},
          {"nw", {1.0, 0.9753, 0.9753, 0.7132}},
          {"ra", {1.0, 0.1667, 1.0000, 0.1014}},
          {"sssp", {1.0, 0.6429, 0.6786, 0.2143}},
      },
      {"Baseline", "Always", "Oversub", "Adaptive"});
  std::printf(
      "\nExpected shape: backprop never thrashes (no reuse); regular thrash is\n"
      "unchanged by the schemes; Adaptive cuts irregular thrash the most.\n");
  return 0;
}
