// Figure 4: sensitivity of the Always (static threshold) scheme to ts, at
// 125 % oversubscription, normalized to ts = 8.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 4: sensitivity to the static access counter threshold",
               "Always scheme, 125% oversubscription, normalized to ts=8");
  print_row_header({"ts=8", "ts=16", "ts=32"});

  Table csv({"workload", "ts8", "ts16", "ts32"});
  for (const auto& name : workload_names()) {
    std::vector<double> cycles;
    for (const std::uint32_t ts : {8u, 16u, 32u}) {
      const RunResult r = run(name, make_cfg(PolicyKind::kStaticAlways, ts), 1.25);
      cycles.push_back(static_cast<double>(r.stats.kernel_cycles));
    }
    print_row(name, {1.0, cycles[1] / cycles[0], cycles[2] / cycles[0]});
    csv.row().cell(name).cell(1.0).cell(cycles[1] / cycles[0]).cell(cycles[2] / cycles[0]);
  }
  save_csv(csv, "fig4_static_threshold.csv");

  print_paper_reference(
      "Fig 4 (simulator)",
      {
          {"backprop", {1.0, 0.9973, 1.0200}}, {"fdtd", {1.0, 1.0313, 1.0349}},
          {"hotspot", {1.0, 1.0020, 1.0064}},  {"srad", {1.0, 1.0046, 1.0105}},
          {"bfs", {1.0, 0.9230, 0.9570}},      {"nw", {1.0, 1.0042, 1.0225}},
          {"ra", {1.0, 0.9294, 0.9855}},       {"sssp", {1.0, 1.1002, 1.0692}},
      },
      {"ts=8", "ts=16", "ts=32"});
  std::printf(
      "\nExpected shape: regular workloads are insensitive to ts; irregular\n"
      "workloads move a few percent either way, input-dependently.\n");
  return 0;
}
