// Table I: configuration parameters of the simulated system.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace uvmsim;
  bench::print_header("Table I: Configuration parameters of the simulated system",
                      "(bold defaults of the paper = SimConfig{} defaults)");
  SimConfig cfg;
  std::printf("%s", describe(cfg).c_str());

  std::printf("\nSwept values:\n");
  std::printf("  Eviction Granularity      2 MB (default), 64 KB\n");
  std::printf("  Page Replacement Policy   LRU (default), LFU\n");
  std::printf("  Static Access Threshold   ts in {8, 16, 32}\n");
  std::printf("  Migration Penalty         p in {2, 4, 8, 1048576}\n");
  std::printf("  Migration policies        Baseline(Disabled), Always, Oversub, Adaptive\n");
  return 0;
}
