// Shared experiment harness for the figure-reproduction benches. Each bench
// binary reproduces one table/figure of the paper: it sweeps the relevant
// parameter, prints the paper-style normalized rows, and cites the paper's
// reported values for comparison (EXPERIMENTS.md records both).
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <uvmsim/uvmsim.hpp>

#include "report/table.hpp"

namespace uvmsim::bench {

/// Workload scale used by the figure benches. Large enough for stable
/// eviction dynamics (the device capacity must dwarf the warps' concurrent
/// sweep front — dozens of 2 MB chunks), small enough that the full
/// 8-workload x 4-policy sweeps finish in minutes.
inline constexpr double kScale = 1.0;

inline const std::vector<std::string>& regular_names() {
  static const std::vector<std::string> v{"backprop", "fdtd", "hotspot", "srad"};
  return v;
}
inline const std::vector<std::string>& irregular_names() {
  static const std::vector<std::string> v{"bfs", "nw", "ra", "sssp"};
  return v;
}

inline SimConfig make_cfg(PolicyKind policy, std::uint32_t ts = 8, std::uint64_t p = 8) {
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.policy.static_threshold = ts;
  cfg.policy.migration_penalty = p;
  // Baseline uses the stock LRU replacement; every counter-based scheme uses
  // the paper's access-counter LFU (paper §VI).
  cfg.mem.eviction =
      policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
  return cfg;
}

/// Describe one grid cell as a RunRequest (the batch engine's unit of work).
inline RunRequest make_request(const std::string& workload, const SimConfig& cfg,
                               double oversub, double scale = kScale) {
  RunRequest req;
  req.workload = workload;
  req.params.scale = scale;
  req.config = cfg;
  req.oversub = oversub;
  return req;
}

inline RunResult run(const std::string& workload, const SimConfig& cfg, double oversub,
                     double scale = kScale) {
  return run_request(make_request(workload, cfg, oversub, scale));
}

/// Execute a grid of requests on the parallel batch engine (jobs = 0 picks
/// hardware concurrency) and return the results in request order. The figure
/// benches assume every run succeeds, so any failure raises.
inline std::vector<RunResult> run_grid(const std::vector<RunRequest>& requests,
                                       unsigned jobs = 0) {
  BatchOptions opt;
  opt.jobs = jobs;
  BatchResult batch = run_batch(requests, opt);
  std::vector<RunResult> results;
  results.reserve(batch.entries.size());
  for (BatchEntry& e : batch.entries) {
    if (!e.ok())
      throw std::runtime_error("bench run failed (" + e.request.workload + "): " + e.error);
    results.push_back(std::move(e.result));
  }
  return results;
}

/// Pretty-printing helpers -------------------------------------------------

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==============================================================\n");
}

inline void print_row_header(const std::vector<std::string>& series) {
  std::printf("%-10s", "workload");
  for (const auto& s : series) std::printf(" %14s", s.c_str());
  std::printf("\n");
}

inline void print_row(const std::string& workload, const std::vector<double>& values,
                      const char* fmt = "%14.2f") {
  std::printf("%-10s", workload.c_str());
  for (const double v : values) std::printf(fmt, v);
  std::printf("\n");
}

inline void print_percent_row(const std::string& workload, const std::vector<double>& values) {
  std::printf("%-10s", workload.c_str());
  for (const double v : values) std::printf(" %13.2f%%", v * 100.0);
  std::printf("\n");
}

/// Persist a result table as a CSV artifact next to the binary's cwd.
inline void save_csv(const Table& table, const std::string& filename) {
  std::ofstream out(filename);
  out << table.to_csv();
  std::printf("\n(measured rows also written to %s)\n", filename.c_str());
}

/// Paper-reported values for side-by-side printing.
inline void print_paper_reference(const std::string& what,
                                  const std::map<std::string, std::vector<double>>& rows,
                                  const std::vector<std::string>& series) {
  std::printf("\n--- paper reported (%s) ---\n", what.c_str());
  print_row_header(series);
  for (const auto& name : workload_names()) {
    const auto it = rows.find(name);
    if (it != rows.end()) print_row(name, it->second);
  }
}

}  // namespace uvmsim::bench
