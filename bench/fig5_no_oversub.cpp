// Figure 5: Baseline vs Always vs Adaptive with no memory oversubscription,
// normalized to Baseline. (Oversub is not applicable: it only activates
// after oversubscription, so it equals Baseline here.)
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Figure 5: no oversubscription",
               "runtime normalized to Baseline (first-touch migration)");
  print_row_header({"Baseline", "Always", "Adaptive"});

  Table csv({"workload", "baseline", "always", "adaptive"});
  for (const auto& name : workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 0.0);
    const RunResult always = run(name, make_cfg(PolicyKind::kStaticAlways), 0.0);
    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 0.0);
    const auto b = static_cast<double>(base.stats.kernel_cycles);
    const double va = static_cast<double>(always.stats.kernel_cycles) / b;
    const double vd = static_cast<double>(adaptive.stats.kernel_cycles) / b;
    print_row(name, {1.0, va, vd});
    csv.row().cell(name).cell(1.0).cell(va).cell(vd);
  }
  save_csv(csv, "fig5_no_oversub.csv");

  print_paper_reference(
      "Fig 5 (simulator), Always series; Adaptive ~= 1.00 everywhere",
      {
          {"backprop", {1.0, 0.9895, 1.0}}, {"fdtd", {1.0, 0.9913, 1.0}},
          {"hotspot", {1.0, 1.0008, 1.0}},  {"srad", {1.0, 1.0001, 1.0}},
          {"bfs", {1.0, 0.9429, 1.0}},      {"nw", {1.0, 1.0172, 1.0}},
          {"ra", {1.0, 0.7687, 1.0}},       {"sssp", {1.0, 1.1099, 1.0}},
      },
      {"Baseline", "Always", "Adaptive"});
  std::printf(
      "\nExpected shape: Adaptive tracks Baseline (the dynamic threshold falls\n"
      "back to first touch); Always is unpredictable on irregular workloads\n"
      "(bfs/ra benefit, nw/sssp regress).\n");
  return 0;
}
