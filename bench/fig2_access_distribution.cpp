// Figure 2: page access-frequency distribution per managed allocation for
// fdtd (regular: uniform density, few hot lines) and sssp (irregular: hot
// read-write status arrays vs cold read-only edge data). Prints per-
// allocation summaries and writes the full per-page histograms to CSV.
#include <fstream>

#include "harness.hpp"
#include "trace/trace.hpp"

namespace {

void characterize(const std::string& name) {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  WorkloadParams params;
  params.scale = kScale;
  SimConfig cfg = make_cfg(PolicyKind::kFirstTouch);
  cfg.collect_traces = true;

  AddressSpace sizing;
  make_workload(name, params)->build(sizing);
  PageHistogram hist(sizing);

  auto wl = make_workload(name, params);
  Simulator sim(cfg);
  RunOptions opts;
  opts.trace_sink = &hist;
  (void)sim.run(*wl, opts);

  std::printf("\n%s: per-allocation page access distribution\n", name.c_str());
  std::printf("%-16s %9s %9s %9s %9s %12s %10s %8s\n", "allocation", "pages", "touched",
              "rd-only", "written", "accesses", "mean/page", "top10%");
  for (const auto& s : hist.summarize()) {
    std::printf("%-16s %9llu %9llu %9llu %9llu %12llu %10.1f %7.1f%%\n", s.name.c_str(),
                static_cast<unsigned long long>(s.pages),
                static_cast<unsigned long long>(s.touched_pages),
                static_cast<unsigned long long>(s.read_only_pages),
                static_cast<unsigned long long>(s.written_pages),
                static_cast<unsigned long long>(s.total_accesses),
                s.mean_accesses_per_touched_page, s.top_decile_share * 100.0);
  }

  const std::string csv = "fig2_" + name + "_pages.csv";
  std::ofstream out(csv);
  hist.write_csv(out);
  std::printf("full per-page histogram written to %s\n", csv.c_str());
}

}  // namespace

int main() {
  uvmsim::bench::print_header(
      "Figure 2: page access distribution, type of access per allocation",
      "fdtd (regular) vs sssp (irregular)");
  characterize("fdtd");
  characterize("sssp");
  std::printf(
      "\nExpected shape (paper Fig 2): fdtd allocations are accessed at a\n"
      "near-uniform frequency with a few equally spaced hot pages; sssp has\n"
      "hot read-write status arrays and cold read-only edge/weight arrays.\n");
  return 0;
}
