// Extension experiment (paper §VIII future work): the dynamic-threshold
// heuristic as a per-node memory throttle in a multi-GPU collaboration.
// Sweeps GPU count at a fixed aggregate 125 % oversubscription for every
// irregular workload, baseline vs adaptive.
#include "harness.hpp"
#include "multigpu/multi_gpu.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Extension: multi-GPU collaboration (aggregate 125% oversub)",
               "makespan normalized to the 1-GPU Baseline of each workload");
  std::printf("%-10s %10s %10s %10s %10s %10s %10s %10s %10s\n", "workload", "base x1",
              "base x2", "base x4", "adpt x1", "adpt x2", "adpt x4", "nvl x2", "nvl x4");

  WorkloadParams params;
  params.scale = 0.5;

  for (const auto& name : irregular_names()) {
    double ref = 0.0;
    std::vector<double> row;
    auto one = [&](PolicyKind policy, std::uint32_t gpus, bool peer) {
      SimConfig cfg = make_cfg(policy);
      cfg.mem.oversubscription = 1.25;
      auto wl = make_workload(name, params);
      MultiGpuConfig mg{gpus, /*split_capacity=*/true};
      mg.peer.enabled = peer;
      const MultiGpuResult r = MultiGpuSimulator(cfg, mg).run(*wl);
      return static_cast<double>(r.makespan);
    };
    for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kAdaptive}) {
      for (const std::uint32_t gpus : {1u, 2u, 4u}) {
        const double cycles = one(policy, gpus, false);
        if (policy == PolicyKind::kFirstTouch && gpus == 1) ref = cycles;
        row.push_back(cycles / ref);
      }
    }
    // Adaptive + NVLink peer access: shared cold reads served GPU-to-GPU.
    row.push_back(one(PolicyKind::kAdaptive, 2, true) / ref);
    row.push_back(one(PolicyKind::kAdaptive, 4, true) / ref);
    std::printf("%-10s", name.c_str());
    for (const double v : row) std::printf(" %10.3f", v);
    std::printf("\n");
  }

  std::printf(
      "\nReading: the baseline keeps thrashing on every node (independent\n"
      "LRU churn per GPU); the adaptive heuristic throttles each node's\n"
      "migrations, so collaboration scales and the aggregate PCIe churn\n"
      "drops — the behaviour the paper's future-work section anticipates.\n");
  return 0;
}
