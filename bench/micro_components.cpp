// google-benchmark microbenchmarks of the simulator's hot paths: event
// queue scheduling, access-counter updates, tree-prefetcher expansion, PCIe
// channel arbitration, eviction victim selection, and a small end-to-end
// simulation as a macro sanity point.
#include <benchmark/benchmark.h>

#include <uvmsim/uvmsim.hpp>

namespace {

using namespace uvmsim;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (std::uint64_t i = 0; i < n; ++i) {
      q.schedule_at(i % 97, [] {});
    }
    q.run();
    benchmark::DoNotOptimize(q.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_AccessCounterRecord(benchmark::State& state) {
  AccessCounterTable t(1024, 16);
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.record_access((i++ % 1024) << 16, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessCounterRecord);

void BM_AccessCounterHalveAll(benchmark::State& state) {
  AccessCounterTable t(static_cast<std::uint64_t>(state.range(0)), 16);
  for (auto _ : state) {
    t.halve_all();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AccessCounterHalveAll)->Arg(1024)->Arg(65536);

void BM_TreePrefetchExpandMask(benchmark::State& state) {
  std::uint64_t seed = 7;
  for (auto _ : state) {
    const auto occ = static_cast<std::uint32_t>(splitmix64(seed));
    const auto leaf = static_cast<std::uint32_t>(splitmix64(seed)) % 32;
    benchmark::DoNotOptimize(TreePrefetcher::expand_mask(occ | (1u << leaf), leaf, 32));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TreePrefetchExpandMask);

void BM_PcieArbitration(benchmark::State& state) {
  SimConfig cfg;
  PcieFabric p(cfg);
  Cycle now = 0;
  for (auto _ : state) {
    now = p.transfer(PcieDir::kHostToDevice, now, 0, kBasicBlockSize);
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PcieArbitration);

void BM_EvictionVictimSelection(benchmark::State& state) {
  AddressSpace space;
  space.allocate("a", 32 * kLargePageSize);
  BlockTable table(space);
  AccessCounterTable counters(space.total_blocks(), 16);
  for (BlockNum b = 0; b < space.total_blocks(); ++b) {
    table.mark_in_flight(b);
    table.mark_resident(b, b);
    counters.record_access(addr_of_block(b), static_cast<std::uint32_t>(b % 100 + 1));
  }
  EvictionManager mgr(EvictionKind::kLfu, kLargePageSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.select_victims(table, counters, VictimQuery{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvictionVictimSelection);

void BM_L2CacheAccess(benchmark::State& state) {
  L2Config cfg;
  cfg.enabled = true;
  L2Cache cache(cfg);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.below(1u << 22) * kWarpAccessBytes, false));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L2CacheAccess);

void BM_GraphGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const CsrGraph g =
        make_power_law_graph(static_cast<std::uint32_t>(state.range(0)), 10, 0.6, 42);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(10000)->Arg(50000);

void BM_EndToEndTinyWorkload(benchmark::State& state) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  for (auto _ : state) {
    const RunResult r = run_workload("fdtd", cfg, 1.25, params);
    benchmark::DoNotOptimize(r.stats.kernel_cycles);
  }
}
BENCHMARK(BM_EndToEndTinyWorkload)->Unit(benchmark::kMillisecond);

}  // namespace
