// Extension experiment: does the adaptive heuristic generalize to access
// patterns the paper did not evaluate? Runs the extra workload suite
// (kmeans, histogram, spmv, pagerank) through the Fig 6 protocol.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Extension: generalization suite at 125% oversubscription",
               "runtime normalized to Baseline (first-touch + LRU); ts=8, p=8");
  print_row_header({"Baseline", "Always", "Oversub", "Adaptive"});

  for (const auto& name : extra_workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 1.25);
    const RunResult always = run(name, make_cfg(PolicyKind::kStaticAlways), 1.25);
    const RunResult oversub = run(name, make_cfg(PolicyKind::kStaticOversub), 1.25);
    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 1.25);
    const auto b = static_cast<double>(base.stats.kernel_cycles);
    print_row(name, {1.0, static_cast<double>(always.stats.kernel_cycles) / b,
                     static_cast<double>(oversub.stats.kernel_cycles) / b,
                     static_cast<double>(adaptive.stats.kernel_cycles) / b});
  }

  std::printf("\nNo-oversubscription parity check (Adaptive vs Baseline, fits):\n");
  for (const auto& name : extra_workload_names()) {
    const RunResult base = run(name, make_cfg(PolicyKind::kFirstTouch), 0.0);
    const RunResult adaptive = run(name, make_cfg(PolicyKind::kAdaptive), 0.0);
    std::printf("  %-10s %.3f\n", name.c_str(),
                static_cast<double>(adaptive.stats.kernel_cycles) /
                    static_cast<double>(base.stats.kernel_cycles));
  }

  std::printf(
      "\nReading: the interesting case is pagerank — its edge list is cold\n"
      "by frequency but re-streamed every iteration, so hard pinning it is\n"
      "a bandwidth mistake; the dynamic threshold's round-trip hardening\n"
      "has to balance against that. kmeans/histogram should behave like the\n"
      "paper's regular workloads (unharmed).\n");
  return 0;
}
