// Ablation: simulator fidelity knobs — the optional L2 cache model and the
// eviction protect window. Verifies the headline conclusions are not
// artifacts of either simplification.
#include "harness.hpp"

int main() {
  using namespace uvmsim;
  using namespace uvmsim::bench;

  print_header("Ablation: fidelity knobs (125% oversubscription)",
               "adaptive/baseline runtime ratio under each model variant");
  print_row_header({"default", "with-L2", "no-protect"});

  for (const auto& name : {"fdtd", "bfs", "ra", "sssp"}) {
    std::vector<double> row;
    for (int variant = 0; variant < 3; ++variant) {
      SimConfig base = make_cfg(PolicyKind::kFirstTouch);
      SimConfig adaptive = make_cfg(PolicyKind::kAdaptive);
      if (variant == 1) {
        base.gpu.l2.enabled = true;
        adaptive.gpu.l2.enabled = true;
      } else if (variant == 2) {
        base.mem.eviction_protect_cycles = 0;
        adaptive.mem.eviction_protect_cycles = 0;
      }
      const RunResult b = run(name, base, 1.25);
      const RunResult a = run(name, adaptive, 1.25);
      row.push_back(static_cast<double>(a.stats.kernel_cycles) /
                    static_cast<double>(b.stats.kernel_cycles));
    }
    print_row(name, row);
  }

  std::printf(
      "\nReading: the adaptive-vs-baseline conclusion must hold (ratio < 1 on\n"
      "irregular, ~1 on regular) whether or not an L2 absorbs short reuse and\n"
      "whether or not recently used chunks are shielded from eviction.\n");
  return 0;
}
