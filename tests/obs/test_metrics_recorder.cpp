// MetricsRecorder: registry-complete time series on the shared clock. The
// load-bearing property is alignment — samples land at absolute multiples of
// the interval, so every entry of a run_batch() produces row-comparable
// series without resampling.
#include "obs/metrics_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/simulator.hpp"
#include "obs/registry.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

TEST(MetricsRecorder, CapturesEveryRegisteredMetric) {
  SimStats s;
  std::uint64_t i = 0;
  for (const obs::MetricDesc& d : obs::metrics()) obs::value(s, d) = ++i;

  obs::MetricsRecorder rec;
  rec.sample(500, s, 8, 32);
  ASSERT_EQ(rec.samples().size(), 1u);
  const auto& sample = rec.samples().front();
  EXPECT_EQ(sample.cycle, 500u);
  EXPECT_DOUBLE_EQ(sample.occupancy(), 0.25);
  i = 0;
  for (std::size_t m = 0; m < obs::kMetricCount; ++m) EXPECT_EQ(sample.values[m], ++i);
}

TEST(MetricsRecorder, CsvHeaderComesFromTheRegistry) {
  obs::MetricsRecorder rec;
  rec.sample(0, SimStats{}, 0, 0);
  std::ostringstream os;
  rec.write_csv(os);
  const std::string csv = os.str();
  std::istringstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("cycle,occupancy,used_blocks,capacity_blocks,", 0), 0u);
  for (const obs::MetricDesc& d : obs::metrics()) {
    EXPECT_NE(header.find(std::string(",") + d.name + ","), std::string::npos) << d.name;
    EXPECT_NE(header.find(std::string(d.name) + "_delta"), std::string::npos) << d.name;
  }
}

TEST(MetricsRecorder, DeltasAreDifferencesBetweenConsecutiveSamples) {
  SimStats s;
  s.far_faults = 10;
  obs::MetricsRecorder rec;
  rec.sample(0, s, 0, 4);
  s.far_faults = 25;
  rec.sample(100, s, 1, 4);

  std::ostringstream os;
  rec.write_csv(os);
  std::istringstream in(os.str());
  std::string header, row0, row1;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row0));
  ASSERT_TRUE(std::getline(in, row1));

  // Locate the far_faults cumulative/delta column pair via the header.
  std::vector<std::string> cols;
  {
    std::istringstream h(header);
    std::string c;
    while (std::getline(h, c, ',')) cols.push_back(c);
  }
  std::size_t cum_idx = cols.size();
  for (std::size_t i = 0; i < cols.size(); ++i)
    if (cols[i] == "far_faults") cum_idx = i;
  ASSERT_LT(cum_idx, cols.size());
  ASSERT_EQ(cols[cum_idx + 1], "far_faults_delta");

  auto cell = [](const std::string& row, std::size_t idx) {
    std::istringstream r(row);
    std::string c;
    for (std::size_t i = 0; i <= idx; ++i) std::getline(r, c, ',');
    return c;
  };
  EXPECT_EQ(cell(row0, cum_idx), "10");
  EXPECT_EQ(cell(row0, cum_idx + 1), "10");  // first row: delta == cumulative
  EXPECT_EQ(cell(row1, cum_idx), "25");
  EXPECT_EQ(cell(row1, cum_idx + 1), "15");
}

TEST(MetricsRecorder, SimulatorSamplesOnAbsoluteIntervalMultiples) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;

  auto wl = make_workload("fdtd", params);
  obs::MetricsRecorder rec;
  Simulator sim(cfg);
  RunOptions opts;
  opts.metrics = &rec;
  opts.metrics_interval = 40000;
  const RunResult r = sim.run(*wl, opts);

  ASSERT_GT(rec.samples().size(), 2u);
  Cycle prev = 0;
  for (std::size_t i = 0; i < rec.samples().size(); ++i) {
    const auto& s = rec.samples()[i];
    EXPECT_EQ(s.cycle % 40000, 0u) << "sample off the shared clock at index " << i;
    if (i > 0) {
      EXPECT_GT(s.cycle, prev);
    }
    prev = s.cycle;
  }
  // Counters are cumulative, hence monotone, and bounded by the run totals.
  for (std::size_t m = 0; m < obs::kMetricCount; ++m) {
    for (std::size_t i = 1; i < rec.samples().size(); ++i)
      EXPECT_GE(rec.samples()[i].values[m], rec.samples()[i - 1].values[m]);
    EXPECT_LE(rec.samples().back().values[m],
              obs::value(r.stats, obs::metrics()[m]))
        << obs::metrics()[m].name;
  }
}

TEST(MetricsRecorder, BatchEntriesShareTheSamplingClock) {
  std::vector<RunRequest> grid(2);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i].workload = i == 0 ? "fdtd" : "ra";
    grid[i].params.scale = 0.05;
    grid[i].config.gpu.num_sms = 4;
    grid[i].config.gpu.warps_per_sm = 2;
  }

  std::vector<obs::MetricsRecorder> recorders(grid.size());
  BatchOptions opts;
  opts.jobs = 2;
  opts.make_options = [&recorders](const RunRequest&, std::size_t index) {
    RunOptions ro;
    ro.metrics = &recorders[index];
    ro.metrics_interval = 50000;
    return ro;
  };
  const BatchResult batch = run_batch(grid, opts);
  ASSERT_TRUE(batch.all_ok());

  // Different workloads, same clock: row k of every series sits at the same
  // cycle, so the series align without resampling.
  for (const obs::MetricsRecorder& rec : recorders) ASSERT_GT(rec.samples().size(), 1u);
  const std::size_t rows =
      std::min(recorders[0].samples().size(), recorders[1].samples().size());
  for (std::size_t k = 0; k < rows; ++k)
    EXPECT_EQ(recorders[0].samples()[k].cycle, recorders[1].samples()[k].cycle) << k;
}

TEST(MetricsRecorder, ZeroIntervalIsRejected) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  auto wl = make_workload("fdtd", params);
  obs::MetricsRecorder rec;
  Simulator sim(cfg);
  RunOptions opts;
  opts.metrics = &rec;
  opts.metrics_interval = 0;
  EXPECT_THROW((void)sim.run(*wl, opts), CheckFailure);
}

}  // namespace
}  // namespace uvmsim
