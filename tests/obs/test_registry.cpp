// Registry self-tests: the one-definition-rule contract. Every SimStats
// metric appears in obs/metrics.def exactly once (uniqueness + the sizeof
// static_assert in registry.cpp), every consumer that claims to be
// registry-driven really covers the whole registry, and accumulate()/report()
// pick up a metric the moment it is registered.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/stats.hpp"

namespace uvmsim {
namespace {

TEST(MetricRegistry, CountMatchesSpanAndIsNonTrivial) {
  EXPECT_EQ(obs::metrics().size(), obs::kMetricCount);
  // 18 schema-v1 columns plus the appended v2 metrics.
  EXPECT_GE(obs::kMetricCount, 28u);
}

TEST(MetricRegistry, NamesAreUniqueAndWellFormed) {
  std::set<std::string> names;
  for (const obs::MetricDesc& d : obs::metrics()) {
    ASSERT_NE(d.name, nullptr);
    ASSERT_NE(d.category, nullptr);
    ASSERT_NE(d.doc, nullptr);
    EXPECT_FALSE(std::string(d.name).empty());
    EXPECT_FALSE(std::string(d.doc).empty());
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate metric name: " << d.name;
  }
  EXPECT_EQ(names.size(), obs::kMetricCount);
}

TEST(MetricRegistry, EveryCategoryIsRegistered) {
  std::set<std::string> cats;
  for (const char* c : obs::metric_categories()) cats.insert(c);
  for (const obs::MetricDesc& d : obs::metrics())
    EXPECT_TRUE(cats.count(d.category)) << d.name << " has unknown category " << d.category;
}

TEST(MetricRegistry, FindMetricRoundTrips) {
  for (const obs::MetricDesc& d : obs::metrics()) {
    const obs::MetricDesc* found = obs::find_metric(d.name);
    ASSERT_NE(found, nullptr) << d.name;
    EXPECT_EQ(found, &d);
  }
  EXPECT_EQ(obs::find_metric("no_such_metric"), nullptr);
  EXPECT_EQ(obs::find_metric(""), nullptr);
}

TEST(MetricRegistry, DescriptorsReadAndWriteTheField) {
  SimStats s;
  const obs::MetricDesc* d = obs::find_metric("far_faults");
  ASSERT_NE(d, nullptr);
  obs::value(s, *d) = 42;
  EXPECT_EQ(s.far_faults, 42u);
  EXPECT_EQ(obs::value(static_cast<const SimStats&>(s), *d), 42u);
}

TEST(MetricRegistry, AccumulateSumsEveryRegisteredMetric) {
  SimStats a;
  SimStats b;
  std::uint64_t i = 0;
  for (const obs::MetricDesc& d : obs::metrics()) {
    obs::value(a, d) = i + 1;
    obs::value(b, d) = 10 * (i + 1);
    ++i;
  }
  b.last_violation = "chunk 3 resident bit stale";
  a.accumulate(b);
  i = 0;
  for (const obs::MetricDesc& d : obs::metrics()) {
    EXPECT_EQ(obs::value(a, d), 11 * (i + 1)) << d.name;
    ++i;
  }
  EXPECT_EQ(a.last_violation, "chunk 3 resident bit stale");
}

TEST(MetricRegistry, AccumulateKeepsFirstViolation) {
  SimStats a;
  SimStats b;
  a.last_violation = "first";
  b.last_violation = "second";
  a.accumulate(b);
  EXPECT_EQ(a.last_violation, "first");
}

TEST(MetricRegistry, ReportMentionsEveryMetricOnce) {
  SimStats s;
  // Non-zero audit numbers so the audit category is not suppressed.
  std::uint64_t i = 0;
  for (const obs::MetricDesc& d : obs::metrics()) obs::value(s, d) = ++i;
  const std::string report = s.report();
  // Count whole-token occurrences: a preceding space distinguishes
  // `pages_thrashed=` from its appearance inside `distinct_pages_thrashed=`.
  const auto count_token = [&report](const std::string& name) {
    const std::string token = name + "=";
    std::size_t n = 0;
    for (std::size_t pos = report.find(token); pos != std::string::npos;
         pos = report.find(token, pos + 1)) {
      if (pos == 0 || report[pos - 1] == ' ') ++n;
    }
    return n;
  };
  for (const obs::MetricDesc& d : obs::metrics())
    EXPECT_EQ(count_token(d.name), 1u) << "report() must list " << d.name << " exactly once";
}

TEST(MetricRegistry, ReportSuppressesIdleAuditLine) {
  SimStats s;
  s.far_faults = 3;
  const std::string report = s.report();
  EXPECT_EQ(report.find("audit:"), std::string::npos);
  s.audit_passes = 1;
  EXPECT_NE(s.report().find("audit:"), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
