// Minimal recursive-descent JSON parser for tests only: just enough DOM to
// validate that the run-JSON exporter and the Chrome trace writer emit
// documents a real parser accepts, without adding a JSON dependency to the
// build. Throws std::runtime_error on malformed input — tests treat any
// throw as "the emitter produced invalid JSON".
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace uvmsim::test_json {

struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<ValuePtr> array;
  std::map<std::string, ValuePtr> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  [[nodiscard]] bool has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("json_lite: missing key " + key);
    return *object.at(key);
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  ValuePtr parse() {
    ValuePtr v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json_lite: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  ValuePtr parse_value() {
    skip_ws();
    auto v = std::make_shared<Value>();
    const char c = peek();
    if (c == '{') {
      v->type = Value::Type::kObject;
      parse_object(*v);
    } else if (c == '[') {
      v->type = Value::Type::kArray;
      parse_array(*v);
    } else if (c == '"') {
      v->type = Value::Type::kString;
      v->string = parse_string();
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v->type = Value::Type::kBool;
      v->boolean = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v->type = Value::Type::kBool;
    } else if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
    } else {
      v->type = Value::Type::kNumber;
      v->number = parse_number();
    }
    return v;
  }

  void parse_object(Value& v) {
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u hex digit");
          }
          // The emitters only escape codepoints < 0x20; one byte suffices.
          if (code > 0xFF) fail("unexpected wide \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("unparseable number");
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

inline ValuePtr parse(const std::string& text) { return Parser(text).parse(); }

}  // namespace uvmsim::test_json
