// Chrome trace exporter smoke + purity tests, mirroring the CI stage: an
// oversubscribed adaptive bfs run must produce a document a JSON parser
// accepts, with monotone timestamps and the event families the paper's
// mechanisms generate (fault batches, migrations, evictions, counter
// halvings) — and attaching the writer must not perturb the simulation.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/simulator.hpp"
#include "obs/registry.hpp"
#include "sim/config.hpp"
#include "workloads/workload.hpp"

#include "json_lite.hpp"

namespace uvmsim {
namespace {

SimConfig trace_config() {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  // The static-after-oversubscription policy under 133% pressure exercises
  // every event family at once: it migrates enough to fill the device and
  // evict, while the narrow 8-bit counters saturate and halve.
  cfg.policy.policy = PolicyKind::kStaticOversub;
  cfg.mem.oversubscription = 4.0 / 3.0;  // the paper's 133% pressure point
  cfg.mem.counter_count_bits = 8;
  cfg.collect_traces = true;
  return cfg;
}

RunResult traced_run(const SimConfig& cfg, TraceSink* sink) {
  WorkloadParams params;
  // At scale 0.05 the bfs footprint sits below the 2 MB capacity floor and
  // the device never fills; 0.1 is the smallest scale that evicts.
  params.scale = 0.1;
  auto wl = make_workload("bfs", params);
  Simulator sim(cfg);
  RunOptions opts;
  opts.trace_sink = sink;
  return sim.run(*wl, opts);
}

TEST(ChromeTrace, OversubscribedRunEmitsValidMonotoneTrace) {
  const SimConfig cfg = trace_config();
  obs::ChromeTraceWriter writer(cfg);
  (void)traced_run(cfg, &writer);
  ASSERT_GT(writer.event_count(), 0u);

  std::ostringstream os;
  writer.write(os);
  test_json::ValuePtr doc;
  ASSERT_NO_THROW(doc = test_json::parse(os.str()));
  ASSERT_TRUE(doc->is_object());
  ASSERT_TRUE(doc->has("traceEvents"));
  const auto& events = doc->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.array.size(), 6u);  // more than the track-name metadata

  double prev_ts = 0.0;
  std::set<std::string> names;
  for (const auto& ev : events.array) {
    ASSERT_TRUE(ev->is_object());
    const std::string ph = ev->at("ph").string;
    if (ph == "M") continue;  // metadata carries no timestamp semantics
    const double ts = ev->at("ts").number;
    EXPECT_GE(ts, prev_ts) << "timestamps must be emitted in monotone order";
    prev_ts = ts;
    names.insert(ev->at("name").string);
    if (ph == "X") {
      EXPECT_GE(ev->at("dur").number, 0.0);
    }
    if (ph == "b" || ph == "e") {
      EXPECT_TRUE(ev->has("id"));
    }
  }

  // The mechanisms this configuration exercises must all leave events.
  EXPECT_TRUE(names.count("fault_batch"));
  EXPECT_TRUE(names.count("migrate"));
  EXPECT_TRUE(names.count("evict"));
  EXPECT_TRUE(names.count("counter_halving"));
  EXPECT_TRUE(names.count("pcie_dma_occupancy"));
}

TEST(ChromeTrace, AttachingTheWriterDoesNotPerturbTheRun) {
  const SimConfig cfg = trace_config();
  obs::ChromeTraceWriter writer(cfg);
  const RunResult with_sink = traced_run(cfg, &writer);
  const RunResult without_sink = traced_run(cfg, nullptr);

  ASSERT_GT(writer.event_count(), 0u);
  for (const obs::MetricDesc& d : obs::metrics())
    EXPECT_EQ(obs::value(with_sink.stats, d), obs::value(without_sink.stats, d)) << d.name;
  EXPECT_EQ(with_sink.stats.last_violation, without_sink.stats.last_violation);
  EXPECT_EQ(with_sink.kernels.size(), without_sink.kernels.size());
}

TEST(ChromeTrace, EmptyWriterStillProducesAParseableDocument) {
  const SimConfig cfg = trace_config();
  obs::ChromeTraceWriter writer(cfg);
  std::ostringstream os;
  writer.write(os);
  test_json::ValuePtr doc;
  ASSERT_NO_THROW(doc = test_json::parse(os.str()));
  EXPECT_TRUE(doc->at("traceEvents").is_array());
}

}  // namespace
}  // namespace uvmsim
