// Round-trip coverage of the run exporters against the metric registry: the
// CSV header and the JSON keys must each cover every registered metric, the
// JSON must parse with a real (if small) parser, and the shared escaping /
// number helpers must survive hostile input. Together with the sizeof
// static_assert in obs/registry.cpp this enforces the one-definition rule:
// a SimStats field cannot exist without appearing in every sink.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "report/run_csv.hpp"
#include "report/run_json.hpp"
#include "sim/config.hpp"
#include "workloads/workload.hpp"

#include "json_lite.hpp"

namespace uvmsim {
namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) out.push_back(cell);
  return out;
}

RunResult small_run(SimConfig& cfg) {
  WorkloadParams params;
  params.scale = 0.05;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.policy.policy = PolicyKind::kAdaptive;
  auto wl = make_workload("fdtd", params);
  Simulator sim(cfg);
  return sim.run(*wl, RunOptions{});
}

TEST(RunRoundTrip, CsvHeaderCoversTheFullRegistry) {
  std::ostringstream os;
  write_run_csv_header(os);
  std::string header = os.str();
  ASSERT_FALSE(header.empty());
  ASSERT_EQ(header.back(), '\n');
  header.pop_back();
  const std::vector<std::string> cols = split_csv(header);

  // Leading configuration axes, then exactly the registry in registry order.
  const std::vector<std::string> axes = {"workload",        "policy",  "eviction",
                                         "prefetcher",      "ts",      "penalty",
                                         "oversub",         "footprint_bytes",
                                         "capacity_bytes"};
  ASSERT_EQ(cols.size(), axes.size() + obs::kMetricCount);
  for (std::size_t i = 0; i < axes.size(); ++i) EXPECT_EQ(cols[i], axes[i]) << i;
  std::size_t i = axes.size();
  for (const obs::MetricDesc& d : obs::metrics()) EXPECT_EQ(cols[i++], d.name);
}

TEST(RunRoundTrip, CsvRowMatchesHeaderAndStats) {
  SimConfig cfg;
  const RunResult r = small_run(cfg);

  std::ostringstream os;
  write_run_csv_header(os);
  append_run_csv(os, "fdtd", cfg, 0.0, r);
  std::istringstream in(os.str());
  std::string header_line, row_line;
  ASSERT_TRUE(std::getline(in, header_line));
  ASSERT_TRUE(std::getline(in, row_line));
  const std::vector<std::string> header = split_csv(header_line);
  const std::vector<std::string> row = split_csv(row_line);
  ASSERT_EQ(row.size(), header.size());

  // Every metric cell is the decimal value of the corresponding stats field.
  const std::size_t first_metric = header.size() - obs::kMetricCount;
  std::size_t i = first_metric;
  for (const obs::MetricDesc& d : obs::metrics())
    EXPECT_EQ(row[i++], std::to_string(obs::value(r.stats, d))) << d.name;
  EXPECT_EQ(row[0], "fdtd");
}

TEST(RunRoundTrip, JsonParsesAndCoversTheFullRegistry) {
  SimConfig cfg;
  const RunResult r = small_run(cfg);

  std::ostringstream os;
  write_run_json(os, "fdtd", cfg, 0.0, r);
  test_json::ValuePtr doc;
  ASSERT_NO_THROW(doc = test_json::parse(os.str())) << os.str();
  ASSERT_TRUE(doc->is_object());

  EXPECT_EQ(doc->at("workload").string, "fdtd");
  EXPECT_TRUE(doc->has("policy"));
  EXPECT_TRUE(doc->has("eviction"));
  EXPECT_TRUE(doc->has("prefetcher"));
  EXPECT_TRUE(doc->has("footprint_bytes"));
  EXPECT_TRUE(doc->has("kernel_ms"));
  for (const obs::MetricDesc& d : obs::metrics()) {
    ASSERT_TRUE(doc->has(d.name)) << "run JSON is missing " << d.name;
    EXPECT_EQ(doc->at(d.name).number, static_cast<double>(obs::value(r.stats, d)))
        << d.name;
  }
  // No audit ran: the violation text key must be absent, the counters zero.
  EXPECT_FALSE(doc->has("last_violation"));
  EXPECT_EQ(doc->at("audit_passes").number, 0.0);
}

TEST(RunRoundTrip, JsonEscapesHostileViolationText) {
  SimConfig cfg;
  RunResult r = small_run(cfg);
  r.stats.audit_passes = 1;
  r.stats.last_violation = "quote \" backslash \\ newline \n tab \t bell \x07 end";

  std::ostringstream os;
  write_run_json(os, "fdtd", cfg, 0.0, r);
  test_json::ValuePtr doc;
  ASSERT_NO_THROW(doc = test_json::parse(os.str())) << os.str();
  ASSERT_TRUE(doc->has("last_violation"));
  EXPECT_EQ(doc->at("last_violation").string, r.stats.last_violation);
}

TEST(JsonHelpers, StringEscapingRoundTrips) {
  std::string hostile;
  for (int c = 0; c < 0x20; ++c) hostile.push_back(static_cast<char>(c));
  hostile += "\"\\plain";
  std::ostringstream os;
  obs::write_json_string(os, hostile);
  const auto parsed = test_json::parse(os.str());
  ASSERT_TRUE(parsed->is_string());
  EXPECT_EQ(parsed->string, hostile);
}

TEST(JsonHelpers, NonFiniteNumbersSerializeAsNull) {
  std::ostringstream os;
  obs::write_json_number(os, std::nan(""));
  os << ' ';
  obs::write_json_number(os, HUGE_VAL);
  os << ' ';
  obs::write_json_number(os, -HUGE_VAL);
  EXPECT_EQ(os.str(), "null null null");
  std::ostringstream fine;
  obs::write_json_number(fine, 1.5);
  EXPECT_EQ(test_json::parse(fine.str())->number, 1.5);
}

TEST(PolicySlug, CoversEveryPolicyAndFeedsBothExporters) {
  const std::set<std::string> slugs = {
      policy_slug(PolicyKind::kFirstTouch), policy_slug(PolicyKind::kStaticAlways),
      policy_slug(PolicyKind::kStaticOversub), policy_slug(PolicyKind::kAdaptive)};
  EXPECT_EQ(slugs.size(), 4u) << "policy slugs must be distinct";

  SimConfig cfg;
  const RunResult r = small_run(cfg);
  std::ostringstream csv;
  append_run_csv(csv, "fdtd", cfg, 0.0, r);
  std::ostringstream json;
  write_run_json(json, "fdtd", cfg, 0.0, r);
  const std::string slug = policy_slug(cfg.policy.policy);
  EXPECT_NE(csv.str().find("," + slug + ","), std::string::npos);
  EXPECT_EQ(test_json::parse(json.str())->at("policy").string, slug);
}

}  // namespace
}  // namespace uvmsim
