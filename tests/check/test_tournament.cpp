// Tournament harness tests: deterministic artifacts for any worker count,
// a guaranteed oversubscribed thrash scenario, a full leaderboard over every
// registered policy, and the headline property — an online-adaptive policy
// beating the static threshold scheme where adaptation matters.
#include "check/tournament.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "policy/policy_registry.hpp"

namespace uvmsim {
namespace {

TournamentOptions small_options(unsigned jobs) {
  TournamentOptions o;
  o.seed = 5;
  o.scenarios = 4;
  o.jobs = jobs;
  return o;
}

std::string csv_of(const TournamentResult& r) {
  std::ostringstream os;
  write_tournament_csv(os, r);
  return os.str();
}

std::string json_of(const TournamentResult& r) {
  std::ostringstream os;
  write_tournament_json(os, r);
  return os.str();
}

TEST(Tournament, CorpusAlwaysContainsOversubscribedThrash) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto scenarios = build_tournament_scenarios(seed, 4);
    ASSERT_EQ(scenarios.size(), 4u);
    EXPECT_TRUE(std::any_of(scenarios.begin(), scenarios.end(),
                            [](const TournamentScenario& s) { return s.thrash; }))
        << "seed " << seed;
    for (const TournamentScenario& s : scenarios) {
      if (!s.thrash) continue;
      EXPECT_NE(s.label.find("thrash"), std::string::npos);
      EXPECT_GT(s.config.mem.oversubscription, 1.0);
    }
  }
}

TEST(Tournament, ScenarioCorpusIsDeterministic) {
  const auto a = build_tournament_scenarios(9, 5);
  const auto b = build_tournament_scenarios(9, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].thrash, b[i].thrash);
    EXPECT_EQ(a[i].trace->total_records(), b[i].trace->total_records());
  }
}

TEST(Tournament, FullGridCoversEveryRegisteredPolicy) {
  const TournamentResult r = run_tournament(small_options(2));
  const std::vector<std::string> slugs = PolicyRegistry::instance().slugs();
  ASSERT_GE(slugs.size(), 6u);
  EXPECT_EQ(r.leaderboard.size(), slugs.size());
  EXPECT_EQ(r.cells.size(), r.scenarios.size() * slugs.size());
  for (const TournamentCell& c : r.cells) {
    EXPECT_TRUE(c.ok) << c.policy << " scenario " << c.scenario << ": " << c.error;
  }
  // Every slug appears exactly once on the leaderboard.
  std::vector<std::string> seen;
  for (const TournamentRow& row : r.leaderboard) seen.push_back(row.policy);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, slugs);
}

TEST(Tournament, ArtifactsAreByteIdenticalAcrossJobCounts) {
  const TournamentResult serial = run_tournament(small_options(1));
  const TournamentResult parallel = run_tournament(small_options(2));
  EXPECT_EQ(csv_of(serial), csv_of(parallel));
  EXPECT_EQ(json_of(serial), json_of(parallel));
}

TEST(Tournament, PolicySubsetAndUnknownSlug) {
  TournamentOptions o = small_options(2);
  o.scenarios = 2;
  o.policies = {"baseline", "adaptive", "tuned"};
  const TournamentResult r = run_tournament(o);
  EXPECT_EQ(r.leaderboard.size(), 3u);
  EXPECT_EQ(r.cells.size(), 6u);

  o.policies = {"no-such-policy"};
  EXPECT_THROW((void)run_tournament(o), std::invalid_argument);
}

TEST(Tournament, LeaderboardRanksByFaultCost) {
  const TournamentResult r = run_tournament(small_options(2));
  for (std::size_t i = 1; i < r.leaderboard.size(); ++i) {
    EXPECT_LE(r.leaderboard[i - 1].fault_cost, r.leaderboard[i].fault_cost);
  }
  std::size_t wins = 0;
  for (const TournamentRow& row : r.leaderboard) wins += row.wins;
  EXPECT_GE(wins, r.scenarios.size());  // ties can award a scenario twice
}

// The acceptance property: on an oversubscribed thrash scenario at least one
// online-adaptive policy ("tuned" / "learned") undercuts the always-on
// static threshold scheme on fault cost.
TEST(Tournament, AdaptivePolicyBeatsStaticThresholdOnThrash) {
  TournamentOptions o;
  o.seed = 1;
  o.scenarios = 8;
  o.jobs = 2;
  const TournamentResult r = run_tournament(o);
  const std::size_t per_scenario = r.leaderboard.size();
  auto cell_for = [&](std::size_t si, const std::string& slug) -> const TournamentCell* {
    for (std::size_t pi = 0; pi < per_scenario; ++pi) {
      const TournamentCell& c = r.cells[si * per_scenario + pi];
      if (c.policy == slug) return &c;
    }
    return nullptr;
  };
  bool any_thrash = false;
  bool beaten = false;
  for (std::size_t si = 0; si < r.scenarios.size(); ++si) {
    if (!r.scenarios[si].thrash) continue;
    any_thrash = true;
    const TournamentCell* st = cell_for(si, "always");
    for (const char* slug : {"tuned", "learned"}) {
      const TournamentCell* ad = cell_for(si, slug);
      ASSERT_NE(ad, nullptr);
      ASSERT_NE(st, nullptr);
      if (ad->ok && st->ok && ad->fault_cost < st->fault_cost) beaten = true;
    }
  }
  ASSERT_TRUE(any_thrash);
  EXPECT_TRUE(beaten) << "no online-adaptive policy beat 'always' on any thrash scenario";
}

}  // namespace
}  // namespace uvmsim
