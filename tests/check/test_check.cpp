// The always-on cheap tier: UVM_CHECK must stay active in release builds
// (unlike assert), throw a typed failure that existing std::logic_error
// handlers already catch, and carry the failed expression plus formatted
// context in the message. Defining NDEBUG before the include proves the
// macro does not ride on assert().
#define NDEBUG 1
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace uvmsim {
namespace {

TEST(UvmCheck, PassingConditionHasNoEffect) {
  int evaluations = 0;
  UVM_CHECK(++evaluations == 1, "never formatted " << evaluations);
  EXPECT_EQ(evaluations, 1);
}

TEST(UvmCheck, FailureThrowsCheckFailure) {
  EXPECT_THROW(UVM_CHECK(1 + 1 == 3, "math broke"), CheckFailure);
}

TEST(UvmCheck, CheckFailureIsALogicError) {
  // Existing tests expect std::logic_error from illegal state transitions;
  // the UVM_CHECK conversion must not change their observable type.
  EXPECT_THROW(UVM_CHECK(false, "compat"), std::logic_error);
}

TEST(UvmCheck, MessageCarriesExpressionAndContext) {
  std::string message;
  const int block = 42;
  try {
    UVM_CHECK(block < 0, "block " << block << " state=" << "device");
  } catch (const CheckFailure& e) {
    message = e.what();
  }
  EXPECT_NE(message.find("block < 0"), std::string::npos) << message;
  EXPECT_NE(message.find("block 42 state=device"), std::string::npos) << message;
  EXPECT_NE(message.find("UVM_CHECK failed"), std::string::npos) << message;
}

TEST(UvmCheck, SurvivesNdebug) {
  // NDEBUG is defined at the top of this TU; the check must still fire.
#ifndef NDEBUG
  FAIL() << "test setup: NDEBUG should be defined in this TU";
#endif
  EXPECT_THROW(UVM_CHECK(false, "active under NDEBUG"), CheckFailure);
}

}  // namespace
}  // namespace uvmsim
