// Oracle self-test (fault injection): a differential fuzzer is only as good
// as its oracle, and an oracle that silently drifted into agreeing with the
// implementation detects nothing. Each test corrupts the reference model in
// one deliberate way — a flipped residency bit, one skipped counter halving,
// an off-by-one in Equation 1's round-trip term — and asserts the harness
// (a) detects the corruption within a bounded number of iterations and
// (b) auto-shrinks the finding to a replayable repro of at most 64 records.
//
// Bound rationale: 50 iterations of seed 1 detect every fault (verified;
// the bound leaves headroom for generator retuning). The 64-record shrink
// ceiling is reachable for kSkipHalving only because the generator visits
// narrow mem.counter_count_bits widths, where a single saturating record
// triggers a halving — at the hardware 27/5 split a halving needs ~67+
// records by construction.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"

namespace uvmsim {
namespace {

FuzzReport fuzz_with(InjectedFault fault) {
  FuzzOptions opts;
  opts.seed = 1;
  opts.iterations = 50;
  opts.jobs = 2;
  opts.inject = fault;
  opts.shrink = true;
  opts.max_findings = 2;  // shrinking is the slow part; two repros suffice
  return run_fuzz(opts);
}

void expect_detected_and_shrunk(InjectedFault fault) {
  const FuzzReport rep = fuzz_with(fault);
  ASSERT_GT(rep.divergences, 0u) << to_cstr(fault) << " was never detected";
  ASSERT_FALSE(rep.findings.empty());
  for (const FuzzFinding& f : rep.findings) {
    EXPECT_GE(f.reduced_records, 1u);
    EXPECT_LE(f.reduced_records, 64u)
        << to_cstr(fault) << ": shrink stalled at " << f.reduced_records << " records";
    EXPECT_LE(f.reduced_records, f.original_records);
    EXPECT_FALSE(f.message.empty());
    // The reduced case must stand alone: replaying it under the same fault
    // reproduces a divergence, and a faithful oracle accepts it.
    const CaseOutcome bad = run_case(f.reduced, fault);
    EXPECT_TRUE(bad.interesting) << to_cstr(fault) << ": reduced repro lost the divergence";
    const CaseOutcome good = run_case(f.reduced, InjectedFault::kNone);
    EXPECT_FALSE(good.interesting)
        << to_cstr(fault) << ": reduced repro diverges even unfaulted: " << good.message;
  }
}

TEST(FuzzSelfTest, DetectsFlippedResidencyBit) {
  expect_detected_and_shrunk(InjectedFault::kFlipResidency);
}

TEST(FuzzSelfTest, DetectsSkippedCounterHalving) {
  expect_detected_and_shrunk(InjectedFault::kSkipHalving);
}

TEST(FuzzSelfTest, DetectsRoundTripOffByOne) {
  expect_detected_and_shrunk(InjectedFault::kRoundTripOffByOne);
}

TEST(FuzzSelfTest, FaithfulOracleStaysSilent) {
  const FuzzReport rep = fuzz_with(InjectedFault::kNone);
  EXPECT_EQ(rep.divergences, 0u);
  for (const FuzzFinding& f : rep.findings) ADD_FAILURE() << f.message;
}

TEST(FuzzSelfTest, GenerationIsDeterministic) {
  const FuzzCase a = generate_case(42, 7);
  const FuzzCase b = generate_case(42, 7);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.trace->total_records(), b.trace->total_records());
  ASSERT_EQ(a.trace->launches.size(), b.trace->launches.size());
  for (std::size_t l = 0; l < a.trace->launches.size(); ++l) {
    const auto& ra = a.trace->launches[l].records;
    const auto& rb = b.trace->launches[l].records;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].addr, rb[i].addr);
      EXPECT_EQ(ra[i].count, rb[i].count);
      EXPECT_EQ(ra[i].type, rb[i].type);
      EXPECT_EQ(ra[i].gap, rb[i].gap);
    }
  }
}

}  // namespace
}  // namespace uvmsim
