// Trace-seeded fuzz campaigns: a campaign driven by a replayed capture
// (FuzzOptions::trace_path) must run the sim-vs-oracle lockstep divergence-
// free — the replay path feeds the differential oracle exactly like a
// generated stream does — and malformed seed traces fail loudly.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "check/fuzz.hpp"
#include "core/simulator.hpp"
#include "sim/config_parse.hpp"
#include "trace/trace_binary.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

/// Record a tiny oversubscribed run into `path` (removed by the caller).
void record_seed_trace(const std::string& path) {
  WorkloadParams params;
  params.scale = 0.02;
  const std::unique_ptr<Workload> wl = make_workload("ra", params);
  SimConfig cfg;
  cfg.mem.oversubscription = 1.3333;
  cfg.collect_traces = true;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TraceWriter writer(os, {"ra", params.seed, config_digest(cfg)});
  RunOptions opts;
  opts.trace_sink = &writer;
  (void)Simulator(cfg).run(*wl, opts);
  writer.finalize();
}

TEST(FuzzTrace, CampaignFromCapturedTraceRunsDivergenceFree) {
  const std::string path = "fuzz_seed_trace.trb";
  record_seed_trace(path);

  FuzzOptions opts;
  opts.seed = 99;
  opts.iterations = 6;  // case 0 exact replay + 5 mutants, policies rotating
  opts.jobs = 2;
  opts.shrink = false;
  opts.trace_path = path;
  const FuzzReport rep = run_fuzz(opts);
  std::remove(path.c_str());

  EXPECT_EQ(rep.iterations, 6u);
  EXPECT_EQ(rep.divergences, 0u) << (rep.findings.empty()
                                         ? std::string("(no finding message)")
                                         : rep.findings.front().message);
}

TEST(FuzzTrace, PinnedPolicyOverridesTheRotation) {
  const std::string path = "fuzz_seed_trace_pinned.trb";
  record_seed_trace(path);

  FuzzOptions opts;
  opts.seed = 7;
  opts.iterations = 3;
  opts.jobs = 1;
  opts.shrink = false;
  opts.trace_path = path;
  opts.policy_slug = "adaptive";
  const FuzzReport rep = run_fuzz(opts);
  std::remove(path.c_str());
  EXPECT_EQ(rep.divergences, 0u);
}

TEST(FuzzTrace, MalformedSeedTraceFailsLoudly) {
  const std::string path = "fuzz_seed_garbage.trb";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "this is not a trace of any kind";
  }
  FuzzOptions opts;
  opts.iterations = 2;
  opts.trace_path = path;
  EXPECT_THROW((void)run_fuzz(opts), TraceError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uvmsim
