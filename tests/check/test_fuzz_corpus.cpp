// Corpus regression: every shrunk repro in tests/data/fuzz_corpus/ replays
// through the simulator in lockstep with the reference model. With a
// faithful oracle the pair must agree (the corpus holds no real divergences
// — those would be bugs to fix, not archive); with the fault recorded in the
// entry's sidecar re-injected, the divergence that produced the entry must
// still reproduce. The second half keeps the corpus honest: an entry whose
// fault stops reproducing has been invalidated by a semantics change and
// must be re-shrunk or retired.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "check/fuzz.hpp"

namespace uvmsim {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_entries() {
  const fs::path dir = fs::path(UVMSIM_TEST_DATA_DIR) / "fuzz_corpus";
  std::vector<fs::path> traces;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".trc") traces.push_back(e.path());
  }
  std::sort(traces.begin(), traces.end());
  return traces;
}

TEST(FuzzCorpus, HasEntries) { EXPECT_GE(corpus_entries().size(), 6u); }

TEST(FuzzCorpus, FaithfulOracleAgreesOnEveryEntry) {
  for (const fs::path& trc : corpus_entries()) {
    fs::path cfg = trc;
    cfg.replace_extension(".cfg");
    ASSERT_TRUE(fs::exists(cfg)) << "missing sidecar for " << trc;
    const FuzzCase fc = load_case(trc.string(), cfg.string());
    const CaseOutcome out = run_case(fc, InjectedFault::kNone);
    EXPECT_FALSE(out.interesting) << trc << ": " << out.message;
  }
}

TEST(FuzzCorpus, RecordedFaultStillReproduces) {
  for (const fs::path& trc : corpus_entries()) {
    fs::path cfg = trc;
    cfg.replace_extension(".cfg");
    InjectedFault fault = InjectedFault::kNone;
    const FuzzCase fc = load_case(trc.string(), cfg.string(), &fault);
    if (fault == InjectedFault::kNone) continue;  // promoted real-bug repro
    const CaseOutcome out = run_case(fc, fault);
    EXPECT_TRUE(out.interesting)
        << trc << ": fault " << to_cstr(fault) << " no longer reproduces";
  }
}

TEST(FuzzCorpus, EntriesAreMinimal) {
  for (const fs::path& trc : corpus_entries()) {
    fs::path cfg = trc;
    cfg.replace_extension(".cfg");
    const FuzzCase fc = load_case(trc.string(), cfg.string());
    EXPECT_LE(fc.trace->total_records(), 64u) << trc;
    EXPECT_GE(fc.trace->total_records(), 1u) << trc;
  }
}

}  // namespace
}  // namespace uvmsim
