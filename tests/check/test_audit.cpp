// Fault-injection tests for the opt-in audit tier: corrupt each structure
// the auditor cross-validates and assert the corresponding invariant fires,
// plus clean oversubscribed end-to-end runs reporting zero violations.
#include "check/audit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "core/simulator.hpp"
#include "mem/access_counters.hpp"
#include "mem/address_space.hpp"
#include "mem/block_table.hpp"
#include "mem/device_memory.hpp"
#include "mem/eviction.hpp"
#include "sim/event_queue.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"

namespace uvmsim {
namespace {

bool mentions(const AuditReport& r, const std::string& needle) {
  for (const std::string& v : r.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() {
    space_.allocate("a", 4 * kLargePageSize);
    table_ = std::make_unique<BlockTable>(space_);
    device_ = std::make_unique<DeviceMemory>(2 * kLargePageSize);
    counters_ = std::make_unique<AccessCounterTable>(
        div_ceil(space_.span_end(), kBasicBlockSize), 16);
    eviction_ = std::make_unique<EvictionManager>(EvictionKind::kLru, kLargePageSize);
    policy_cfg_.policy = PolicyKind::kAdaptive;
    policy_ = make_policy(policy_cfg_);
  }

  /// Properly migrate one block: reserve a frame, transition the table, and
  /// stamp the recency keys — the auditor must see this as consistent.
  void migrate(BlockNum b, Cycle now) {
    table_->mark_in_flight(b);
    ASSERT_TRUE(device_->reserve(1));
    table_->mark_resident(b, now);
    table_->touch(b, AccessType::kRead, now);
  }

  [[nodiscard]] AuditScope scope() const {
    AuditScope s;
    s.table = table_.get();
    s.device = device_.get();
    s.counters = counters_.get();
    s.eviction = eviction_.get();
    s.queue = &queue_;
    s.stats = &stats_;
    s.policy = policy_.get();
    s.policy_cfg = &policy_cfg_;
    PolicyFeatures f;
    f.resident_pages = device_->used_pages();
    f.capacity_pages = device_->capacity_pages();
    f.oversubscribed = device_->ever_full();
    f.overcommitted = true;
    s.policy_features = f;
    s.historic_counters = true;
    return s;
  }

  [[nodiscard]] InvariantAuditor auditor(std::uint64_t interval = 1,
                                         bool fail_fast = true) const {
    AuditConfig cfg;
    cfg.enabled = true;
    cfg.interval_events = interval;
    cfg.fail_fast = fail_fast;
    return InvariantAuditor(cfg);
  }

  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  std::unique_ptr<DeviceMemory> device_;
  std::unique_ptr<AccessCounterTable> counters_;
  std::unique_ptr<EvictionManager> eviction_;
  PolicyConfig policy_cfg_;
  std::unique_ptr<MigrationPolicy> policy_;
  EventQueue queue_;
  SimStats stats_;
};

TEST_F(AuditTest, CleanStateAuditsClean) {
  for (BlockNum b = 0; b < kBlocksPerLargePage; ++b) migrate(b, 10 + b);
  migrate(kBlocksPerLargePage + 2, 100);  // partial chunk 1
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_TRUE(r.clean()) << r.violations.front();
  EXPECT_GT(r.checks, 0u);
  EXPECT_EQ(aud.violations(), 0u);
}

TEST_F(AuditTest, CorruptBlockResidenceIsCaught) {
  migrate(0, 5);
  // Flip a block to device-resident behind the chunk aggregate's and the
  // device free-list's back.
  table_->testonly_corrupt_residence(5, Residence::kDevice);
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "residency: chunk 0"));
  EXPECT_TRUE(mentions(r, "device:"));
}

TEST_F(AuditTest, CorruptChunkAggregateIsCaught) {
  migrate(0, 5);
  table_->chunk(0).resident_blocks = 7;  // scan says 1
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "aggregate resident_blocks=7"));
}

TEST_F(AuditTest, DirtyHostBlockIsCaught) {
  table_->testonly_corrupt_dirty(3, true);  // dirty implies device residence
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "dirty while host"));
}

TEST_F(AuditTest, DeviceAccountingLeakIsCaught) {
  migrate(0, 5);
  // Leak a frame: reserved but owned by no block and no transfer.
  ASSERT_TRUE(device_->reserve(1));
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "device: used"));
}

TEST_F(AuditTest, ForgedChunkLruKeyIsCaught) {
  migrate(0, 10);
  table_->chunk(0).last_access = 99999;  // no block carries this stamp
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "matches no mapped block"));
}

TEST_F(AuditTest, HistoricCounterRollbackIsCaught) {
  counters_->record_access(addr_of_block(0), 50);
  InvariantAuditor aud = auditor();
  EXPECT_TRUE(aud.audit_now(scope()).clean());  // snapshot pass
  // Historic counters must never be reset outside a global halving.
  counters_->reset_count(addr_of_block(0));
  const AuditReport r = aud.audit_now(scope());
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "counters: historic count"));
}

TEST_F(AuditTest, FailFastOnEventThrowsAndRecordsStats) {
  migrate(0, 5);
  table_->chunk(0).resident_blocks = 3;
  InvariantAuditor aud = auditor(/*interval=*/1, /*fail_fast=*/true);
  EXPECT_THROW(aud.on_event(scope(), stats_), CheckFailure);
  EXPECT_GE(stats_.audit_violations, 1u);
  EXPECT_FALSE(stats_.last_violation.empty());
}

TEST_F(AuditTest, NonFailFastAccumulatesViolations) {
  migrate(0, 5);
  table_->chunk(0).resident_blocks = 3;
  InvariantAuditor aud = auditor(/*interval=*/1, /*fail_fast=*/false);
  EXPECT_NO_THROW(aud.on_event(scope(), stats_));
  EXPECT_NO_THROW(aud.on_event(scope(), stats_));
  EXPECT_GE(aud.violations(), 2u);
  EXPECT_EQ(stats_.audit_passes, 2u);
}

TEST_F(AuditTest, IntervalGatesPasses) {
  InvariantAuditor aud = auditor(/*interval=*/4);
  for (int i = 0; i < 3; ++i) aud.on_event(scope(), stats_);
  EXPECT_EQ(aud.passes(), 0u);
  aud.on_event(scope(), stats_);
  EXPECT_EQ(aud.passes(), 1u);
  for (int i = 0; i < 4; ++i) aud.on_event(scope(), stats_);
  EXPECT_EQ(aud.passes(), 2u);
}

TEST_F(AuditTest, FinalizeRunsUnconditionally) {
  InvariantAuditor aud = auditor(/*interval=*/1000000);
  aud.on_event(scope(), stats_);
  EXPECT_EQ(aud.passes(), 0u);
  aud.finalize(scope(), stats_);
  EXPECT_EQ(aud.passes(), 1u);
  EXPECT_EQ(stats_.audit_passes, 1u);
}

TEST_F(AuditTest, PartialScopeSkipsAbsentStructures) {
  AuditScope s;  // everything null
  InvariantAuditor aud = auditor();
  const AuditReport r = aud.audit_now(s);
  EXPECT_TRUE(r.clean());
}

// End-to-end: a full oversubscribed simulation in audit mode must complete
// with at least one pass and zero violations — the production invariants
// hold under eviction pressure.
TEST(AuditEndToEnd, CleanOversubscribedRun) {
  SimConfig cfg;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.mem.eviction = EvictionKind::kLfu;
  cfg.audit.enabled = true;
  cfg.audit.interval_events = 512;
  WorkloadParams params;
  params.scale = 0.05;
  // 75 % residency: working set / capacity = 4/3.
  const RunResult r = run_workload("bfs", cfg, 4.0 / 3.0, params);
  EXPECT_GE(r.stats.audit_passes, 1u);
  EXPECT_EQ(r.stats.audit_violations, 0u);
  EXPECT_TRUE(r.stats.last_violation.empty()) << r.stats.last_violation;
}

TEST(AuditEndToEnd, BatchSurfacesAuditTelemetry) {
  RunRequest req;
  req.workload = "bfs";
  req.params.scale = 0.05;
  req.config.policy.policy = PolicyKind::kAdaptive;
  req.config.audit.enabled = true;
  req.config.audit.interval_events = 512;
  req.oversub = 1.5;
  BatchOptions opts;
  opts.jobs = 1;
  const BatchResult batch = run_batch({req}, opts);
  ASSERT_TRUE(batch.all_ok());
  EXPECT_GE(batch.entries[0].audit_passes, 1u);
  EXPECT_EQ(batch.entries[0].audit_violations, 0u);
  EXPECT_EQ(batch.audit_violations, 0u);
}

}  // namespace
}  // namespace uvmsim
