// Decision parity for the four paper policies re-expressed through the
// PolicyFeatures registry API: the differential oracle (check/refmodel.hpp)
// implements the paper's decision logic independently, so a lockstep run
// with zero divergence proves the registry-built policies make byte-for-byte
// the same migrate/remote calls the reference logic makes — on adversarial
// recorded fuzz streams, not hand-picked points.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/refmodel.hpp"
#include "check/streamgen.hpp"
#include "policy/policy_registry.hpp"

namespace uvmsim {
namespace {

constexpr const char* kPaperPolicies[] = {"baseline", "always", "oversub", "adaptive"};

FuzzCase forced_case(std::uint64_t seed, std::uint64_t index, const std::string& slug) {
  FuzzCase fc = generate_case(seed, index);
  if (!apply_policy_name(fc.config.policy, slug)) ADD_FAILURE() << "unknown slug " << slug;
  return fc;
}

// Every paper policy over a corpus of recorded fuzz streams: the oracle runs
// in full reference mode (it knows these four schemes) and any decision or
// write_forced mismatch is a divergence.
TEST(PolicyParity, PaperPoliciesMatchOracleOnFuzzStreams) {
  for (const char* slug : kPaperPolicies) {
    for (std::uint64_t index = 0; index < 12; ++index) {
      const FuzzCase fc = forced_case(0xca5e, index, slug);
      // The oracle must actually be checking decisions, not skipping them.
      ASSERT_TRUE(RefModel(fc.config).reference_mode()) << slug;
      const CaseOutcome out = run_case(fc, InjectedFault::kNone);
      ASSERT_FALSE(out.interesting)
          << slug << " case " << index << " (" << fc.label << "): " << out.message;
    }
  }
}

// Non-paper policies put the oracle in skip-decision mode: consultation
// inputs and memory-state invariants are still verified, the migrate/remote
// call itself is adopted from the driver.
TEST(PolicyParity, AdaptivePoliciesRunDivergenceFreeInSkipMode) {
  for (const char* slug : {"tuned", "learned"}) {
    for (std::uint64_t index = 0; index < 6; ++index) {
      const FuzzCase fc = forced_case(0xca5e, index, slug);
      ASSERT_FALSE(RefModel(fc.config).reference_mode()) << slug;
      const CaseOutcome out = run_case(fc, InjectedFault::kNone);
      ASSERT_FALSE(out.interesting)
          << slug << " case " << index << " (" << fc.label << "): " << out.message;
    }
  }
}

// run_fuzz end-to-end with a forced policy slug: the option plumbs through
// case generation and the whole batch stays divergence-free.
TEST(PolicyParity, RunFuzzHonorsForcedPolicySlug) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.iterations = 10;
  opts.jobs = 2;
  opts.policy_slug = "learned";
  const FuzzReport rep = run_fuzz(opts);
  EXPECT_EQ(rep.iterations, 10u);
  EXPECT_EQ(rep.divergences, 0u);
}

TEST(PolicyParity, RunFuzzRejectsUnknownPolicySlug) {
  FuzzOptions opts;
  opts.iterations = 1;
  opts.policy_slug = "no-such-policy";
  EXPECT_THROW((void)run_fuzz(opts), std::invalid_argument);
}

}  // namespace
}  // namespace uvmsim
