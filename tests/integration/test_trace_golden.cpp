// Golden-trace regression: the checked-in UVMTRB1 capture
// (tests/data/golden_trace_ra.trb) replayed through the batch engine must
//   (a) produce report JSON byte-identical across --jobs 1 and --jobs 2 for
//       all four paper policies, and
//   (b) under the recording configuration (adaptive, LFU, 1.3333x
//       oversubscription) match the checked-in stats JSON byte for byte
//       (tests/data/golden_trace_ra.adaptive.json, captured via
//       `uvmsim --replay ... --json`; re-captured for metric registry
//       schema v3 — the appended chunk_* granularity fields are zero with
//       mem.coalescing off, and the v2 fields were verified byte-identical
//       before re-recording).
// Together these pin the replay path end to end: reader decode, task
// hand-out, policy behavior, and report serialization.
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "policy/policy_registry.hpp"
#include "report/run_json.hpp"
#include "sim/runner.hpp"
#include "trace/replay_workload.hpp"
#include "trace/trace_binary.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

constexpr double kOversub = 1.3333;
constexpr const char* kPaperPolicies[] = {"baseline", "always", "oversub", "adaptive"};

[[nodiscard]] std::string fixture_path() {
  return std::string(UVMSIM_TEST_DATA_DIR) + "/golden_trace_ra.trb";
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

[[nodiscard]] std::vector<RunRequest> replay_grid() {
  std::vector<RunRequest> grid;
  for (const char* policy : kPaperPolicies) {
    RunRequest req;
    req.workload = "replay";
    req.params.trace_file = fixture_path();
    req.config.mem.eviction = EvictionKind::kLfu;
    req.config.mem.oversubscription = kOversub;
    EXPECT_TRUE(apply_policy_name(req.config.policy, policy));
    req.oversub = kOversub;
    req.label = policy;
    grid.push_back(std::move(req));
  }
  return grid;
}

/// Run the grid and serialize every entry exactly the way `uvmsim --replay
/// --json` does: one write_run_json() per run under the recorded workload's
/// name, concatenated in request order.
[[nodiscard]] std::string run_replay_json(unsigned jobs) {
  const std::vector<RunRequest> grid = replay_grid();
  BatchOptions opts;
  opts.jobs = jobs;
  const BatchResult batch = run_batch(grid, opts);
  EXPECT_TRUE(batch.all_ok()) << batch.failed << " of " << batch.entries.size()
                              << " replays failed";
  std::ostringstream out;
  for (const BatchEntry& e : batch.entries) {
    if (!e.ok()) continue;
    write_run_json(out, "ra", e.request.config, e.request.oversub, e.result);
  }
  return out.str();
}

TEST(TraceGolden, FixtureVerifiesAndDescribesTheRecordedRun) {
  TraceReader reader(fixture_path());
  EXPECT_NO_THROW(reader.verify());
  EXPECT_EQ(reader.meta().workload, "ra");
  EXPECT_GT(reader.meta().total_records, 0u);
  ASSERT_EQ(reader.meta().allocations.size(), 2u);
}

TEST(TraceGolden, ReplayIsByteIdenticalAcrossJobCounts) {
  const std::string serial = run_replay_json(1);
  const std::string parallel = run_replay_json(2);
  ASSERT_FALSE(serial.empty());
  EXPECT_TRUE(serial == parallel)
      << "replay JSON diverged between --jobs 1 and --jobs 2";
}

TEST(TraceGolden, AdaptiveReplayMatchesCheckedInStats) {
  const std::string golden =
      read_file(std::string(UVMSIM_TEST_DATA_DIR) + "/golden_trace_ra.adaptive.json");
  ASSERT_FALSE(golden.empty());

  RunRequest req;
  req.workload = "replay";
  req.params.trace_file = fixture_path();
  req.config.mem.eviction = EvictionKind::kLfu;
  req.config.mem.oversubscription = kOversub;
  ASSERT_TRUE(apply_policy_name(req.config.policy, "adaptive"));
  req.oversub = kOversub;
  const RunResult r = run_request(req);

  std::ostringstream out;
  write_run_json(out, "ra", req.config, req.oversub, r);
  EXPECT_TRUE(out.str() == golden)
      << "adaptive replay stats diverged from the golden capture;\n got: "
      << out.str() << "\n want: " << golden;
}

}  // namespace
}  // namespace uvmsim
