// End-to-end mechanical invariants: every benchmark x policy combination
// runs to completion and the collected statistics are self-consistent.
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

struct Combo {
  std::string workload;
  PolicyKind policy;
  EvictionKind eviction;
  double oversub;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Combo& c = info.param;
  std::string s = c.workload + "_";
  switch (c.policy) {
    case PolicyKind::kFirstTouch: s += "baseline"; break;
    case PolicyKind::kStaticAlways: s += "always"; break;
    case PolicyKind::kStaticOversub: s += "oversub"; break;
    case PolicyKind::kAdaptive: s += "adaptive"; break;
  }
  s += c.eviction == EvictionKind::kLru ? "_lru" : "_lfu";
  if (c.oversub > 0) {
    s += "_over" + std::to_string(static_cast<int>(c.oversub * 100));
  } else {
    s += "_fit";
  }
  return s;
}

class EndToEnd : public ::testing::TestWithParam<Combo> {};

TEST_P(EndToEnd, RunsAndStatsAreConsistent) {
  const Combo& c = GetParam();
  SimConfig cfg;
  cfg.policy.policy = c.policy;
  cfg.mem.eviction = c.eviction;
  WorkloadParams params;
  params.scale = 0.3;

  const RunResult r = run_workload(c.workload, cfg, c.oversub, params);

  // Completion and timing.
  EXPECT_GT(r.stats.total_accesses, 0u);
  EXPECT_GT(r.stats.kernel_cycles, 0u);
  EXPECT_LE(r.stats.kernel_cycles, r.stats.total_cycles);

  // Access accounting: every transaction is local, remote, or replayed after
  // a stall (replays complete as local DRAM accesses but are counted once).
  EXPECT_LE(r.stats.local_accesses + r.stats.remote_accesses, r.stats.total_accesses);

  // Traffic accounting.
  EXPECT_EQ(r.stats.bytes_h2d,
            (r.stats.blocks_migrated + r.stats.blocks_prefetched) * kBasicBlockSize);
  EXPECT_EQ(r.stats.bytes_d2h % kBasicBlockSize, 0u);
  EXPECT_EQ(r.stats.writeback_pages % kPagesPerBlock, 0u);

  // Eviction accounting.
  EXPECT_LE(r.stats.writeback_pages, r.stats.pages_evicted);
  EXPECT_LE(r.stats.distinct_pages_thrashed, r.stats.pages_thrashed);
  if (c.oversub <= 0) {
    // Working set fits: no oversubscription machinery may trigger.
    EXPECT_EQ(r.stats.evictions, 0u);
    EXPECT_EQ(r.stats.pages_thrashed, 0u);
  }

  // Migrated data never exceeds the VA span per migration (sanity bound).
  EXPECT_LE(r.stats.blocks_migrated + r.stats.blocks_prefetched,
            r.stats.far_faults * 64 + r.footprint_bytes / kBasicBlockSize + 1024);

  // TLB accounting: one lookup per coalesced access event, and events never
  // outnumber transactions.
  EXPECT_GT(r.stats.tlb_hits + r.stats.tlb_misses, 0u);
  EXPECT_LE(r.stats.tlb_hits + r.stats.tlb_misses, r.stats.total_accesses);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> v;
  for (const auto& w : workload_names()) {
    v.push_back({w, PolicyKind::kFirstTouch, EvictionKind::kLru, 1.25});
    v.push_back({w, PolicyKind::kAdaptive, EvictionKind::kLfu, 1.25});
  }
  // A few representative extras to cover the remaining policies/modes.
  v.push_back({"bfs", PolicyKind::kStaticAlways, EvictionKind::kLfu, 1.25});
  v.push_back({"sssp", PolicyKind::kStaticOversub, EvictionKind::kLfu, 1.25});
  v.push_back({"ra", PolicyKind::kStaticAlways, EvictionKind::kLfu, 1.25});
  v.push_back({"fdtd", PolicyKind::kStaticAlways, EvictionKind::kLfu, 1.25});
  v.push_back({"fdtd", PolicyKind::kAdaptive, EvictionKind::kLfu, 0.0});
  v.push_back({"sssp", PolicyKind::kAdaptive, EvictionKind::kLfu, 0.0});
  v.push_back({"ra", PolicyKind::kFirstTouch, EvictionKind::kLru, 1.5});
  return v;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EndToEnd, ::testing::ValuesIn(all_combos()),
                         combo_name);

TEST(EndToEndModes, BlockEvictionGranularityRuns) {
  SimConfig cfg;
  cfg.mem.eviction_granularity = kBasicBlockSize;
  cfg.mem.eviction = EvictionKind::kLfu;
  WorkloadParams params;
  params.scale = 0.3;
  const RunResult r = run_workload("ra", cfg, 1.25, params);
  EXPECT_GT(r.stats.evictions, 0u);
  // 64 KB eviction: each eviction displaces exactly one block.
  EXPECT_EQ(r.stats.pages_evicted, r.stats.evictions * kPagesPerBlock);
}

TEST(EndToEndModes, PageCounterGranularityRuns) {
  SimConfig cfg;
  cfg.mem.counter_granularity = kPageSize;
  cfg.policy.policy = PolicyKind::kAdaptive;
  WorkloadParams params;
  params.scale = 0.3;
  const RunResult r = run_workload("bfs", cfg, 1.25, params);
  EXPECT_GT(r.stats.total_accesses, 0u);
}

TEST(EndToEndModes, AlternatePrefetchersRun) {
  WorkloadParams params;
  params.scale = 0.3;
  for (const auto pf : {PrefetcherKind::kNone, PrefetcherKind::kSequential,
                        PrefetcherKind::kRandom}) {
    SimConfig cfg;
    cfg.mem.prefetcher = pf;
    const RunResult r = run_workload("fdtd", cfg, 1.25, params);
    EXPECT_GT(r.stats.kernel_cycles, 0u);
    if (pf == PrefetcherKind::kNone) {
      EXPECT_EQ(r.stats.blocks_prefetched, 0u);
    }
  }
}

TEST(EndToEndModes, TreePrefetcherReducesFaultsVersusNone) {
  WorkloadParams params;
  params.scale = 0.3;
  // Few warps: the sweep front trickles, so the prefetcher can run ahead of
  // demand instead of every block being touched in the first instants.
  SimConfig none_cfg;
  none_cfg.gpu.num_sms = 4;
  none_cfg.gpu.warps_per_sm = 2;
  SimConfig tree_cfg = none_cfg;
  none_cfg.mem.prefetcher = PrefetcherKind::kNone;
  tree_cfg.mem.prefetcher = PrefetcherKind::kTree;
  const RunResult none = run_workload("fdtd", none_cfg, 0.0, params);
  const RunResult tree = run_workload("fdtd", tree_cfg, 0.0, params);
  EXPECT_LT(tree.stats.far_faults, none.stats.far_faults / 2);
  EXPECT_LT(tree.stats.kernel_cycles, none.stats.kernel_cycles);
}

}  // namespace
}  // namespace uvmsim
