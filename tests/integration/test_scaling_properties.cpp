// Scaling and monotonicity properties of the simulator as a whole: results
// must move in physically sensible directions when first-order parameters
// change. These catch sign errors in the timing model that absolute-value
// tests cannot.
#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

SimConfig small() {
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  return cfg;
}

WorkloadParams tiny() {
  WorkloadParams p;
  p.scale = 0.1;
  return p;
}

TEST(ScalingProperties, MorePcieBandwidthNeverHurts) {
  SimConfig slow = small();
  SimConfig fast = small();
  slow.xfer.pcie_bandwidth_gbps = 8.0;
  fast.xfer.pcie_bandwidth_gbps = 32.0;
  const auto a = run_workload("fdtd", slow, 1.25, tiny()).stats.kernel_cycles;
  const auto b = run_workload("fdtd", fast, 1.25, tiny()).stats.kernel_cycles;
  EXPECT_LT(b, a);
}

TEST(ScalingProperties, HigherFaultLatencyCostsTime) {
  SimConfig quick = small();
  SimConfig slow = small();
  quick.xfer.far_fault_latency_us = 10.0;
  slow.xfer.far_fault_latency_us = 100.0;
  const auto a = run_workload("bfs", quick, 1.25, tiny()).stats.kernel_cycles;
  const auto b = run_workload("bfs", slow, 1.25, tiny()).stats.kernel_cycles;
  EXPECT_GT(b, a);
}

TEST(ScalingProperties, DeeperOversubscriptionMonotonicallyHurts) {
  Cycle prev = 0;
  for (const double oversub : {0.0, 1.1, 1.3, 1.6}) {
    const auto c = run_workload("ra", small(), oversub, tiny()).stats.kernel_cycles;
    EXPECT_GE(c, prev) << "oversub " << oversub;
    prev = c;
  }
}

TEST(ScalingProperties, LargerRemoteLatencyHurtsRemoteHeavyRuns) {
  SimConfig quick = small();
  SimConfig slow = small();
  quick.policy.policy = slow.policy.policy = PolicyKind::kAdaptive;
  quick.policy.migration_penalty = slow.policy.migration_penalty = 1048576;
  quick.xfer.remote_access_latency = 100;
  slow.xfer.remote_access_latency = 2000;
  const auto a = run_workload("ra", quick, 1.25, tiny()).stats.kernel_cycles;
  const auto b = run_workload("ra", slow, 1.25, tiny()).stats.kernel_cycles;
  EXPECT_GT(b, a);
}

TEST(ScalingProperties, BiggerDeviceAbsorbsTheWorkingSet) {
  SimConfig cfg = small();
  cfg.mem.device_capacity_bytes = 256ull << 20;
  const RunResult r = run_workload("sssp", cfg, 0.0, tiny());
  EXPECT_EQ(r.stats.evictions, 0u);
  EXPECT_EQ(r.stats.pages_thrashed, 0u);
}

TEST(ScalingProperties, FootprintScalesLinearlyWithScale) {
  // Compare at scales where the power-of-two chunk padding is a small
  // fraction of the allocation (tiny scales quantize heavily).
  WorkloadParams half = tiny(), full = tiny();
  half.scale = 0.4;
  full.scale = 0.8;
  const RunResult a = run_workload("fdtd", small(), 0.0, half);
  const RunResult b = run_workload("fdtd", small(), 0.0, full);
  EXPECT_NEAR(static_cast<double>(b.footprint_bytes) /
                  static_cast<double>(a.footprint_bytes),
              2.0, 0.25);
}

TEST(ScalingProperties, MoreIterationsScaleKernelTime) {
  WorkloadParams few = tiny(), many = tiny();
  few.iterations = 2;
  many.iterations = 8;
  const auto a = run_workload("hotspot", small(), 0.0, few).stats.kernel_cycles;
  const auto b = run_workload("hotspot", small(), 0.0, many).stats.kernel_cycles;
  EXPECT_GT(b, 3 * a / 2);
  EXPECT_LT(b, 8 * a);
}

TEST(ScalingProperties, ZeroCopyOverheadMattersForPinnedRuns) {
  SimConfig lean = small();
  SimConfig heavy = small();
  lean.policy.policy = heavy.policy.policy = PolicyKind::kAdaptive;
  lean.policy.migration_penalty = heavy.policy.migration_penalty = 1048576;
  lean.xfer.remote_overhead_bytes = 0;
  heavy.xfer.remote_overhead_bytes = 512;
  const auto a = run_workload("fdtd", lean, 1.25, tiny()).stats.kernel_cycles;
  const auto b = run_workload("fdtd", heavy, 1.25, tiny()).stats.kernel_cycles;
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace uvmsim
