// Golden-output regression for the full evaluation sweep: the grid built by
// tools/sweep_grid.hpp, run through the batch engine at scale 0.05, must
// produce a CSV byte-identical to the checked-in capture
// (tests/data/sweep_golden_scale005.csv) — and identical across --jobs
// values. This pins the hot-path overhaul (incremental eviction index, 4-ary
// event kernel) to the exact victim/fault/cycle numbers of the original
// scan-based implementation.
//
// Schema note: the capture was regenerated when the metric registry
// (src/obs/metrics.def) unified reporting. The CSV gained appended columns
// (peer_accesses .. audit_violations, registry schema v2); the original 27
// leading columns were verified byte-identical to the pre-registry capture
// before re-recording, so the simulated numbers themselves are unchanged.
// Regenerated again for registry schema v3 (appended chunk_coalesces,
// chunk_splinters, chunk_coalesced_evictions — all zero here because
// mem.coalescing defaults off, docs/GRANULARITY.md); the v2 columns were
// again verified byte-identical before re-recording.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include <uvmsim/uvmsim.hpp>

#include "../../tools/sweep_grid.hpp"
#include "report/run_csv.hpp"

namespace uvmsim {
namespace {

constexpr double kScale = 0.05;

std::string read_golden() {
  const std::string path = std::string(UVMSIM_TEST_DATA_DIR) + "/sweep_golden_scale005.csv";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string run_sweep_csv(unsigned jobs) {
  const std::vector<RunRequest> grid = tools::build_sweep_grid(kScale);
  BatchOptions opts;
  opts.jobs = jobs;
  const BatchResult batch = run_batch(grid, opts);
  EXPECT_TRUE(batch.all_ok()) << batch.failed << " of " << batch.entries.size()
                              << " runs failed";
  std::ostringstream out;
  write_run_csv_header(out);
  for (const BatchEntry& e : batch.entries) {
    if (!e.ok()) continue;
    append_run_csv(out, e.request.workload, e.request.config, e.request.oversub, e.result);
  }
  return out.str();
}

TEST(SweepGolden, SingleJobMatchesPreOverhaulCapture) {
  const std::string golden = read_golden();
  ASSERT_FALSE(golden.empty());
  const std::string fresh = run_sweep_csv(1);
  ASSERT_EQ(fresh.size(), golden.size()) << "CSV length diverged from golden";
  EXPECT_TRUE(fresh == golden) << "CSV bytes diverged from golden capture";
}

TEST(SweepGolden, ParallelJobsMatchPreOverhaulCapture) {
  const std::string golden = read_golden();
  ASSERT_FALSE(golden.empty());
  const std::string fresh = run_sweep_csv(2);
  ASSERT_EQ(fresh.size(), golden.size()) << "CSV length diverged from golden";
  EXPECT_TRUE(fresh == golden) << "CSV bytes diverged from golden capture";
}

}  // namespace
}  // namespace uvmsim
