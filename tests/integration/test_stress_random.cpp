// Randomized stress: generate arbitrary workload shapes (random allocation
// counts/sizes, random mixtures of sequential runs, strided walks, random
// probes, and writes) and check that every policy runs them to completion
// with self-consistent statistics. Catches driver state-machine bugs that
// the structured benchmarks never trigger.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "sim/rng.hpp"
#include "workloads/common.hpp"

namespace uvmsim {
namespace {

/// Workload with pseudo-random structure derived entirely from a seed.
class FuzzWorkload final : public Workload {
 public:
  explicit FuzzWorkload(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "fuzz"; }
  [[nodiscard]] bool irregular() const override { return true; }

  void build(AddressSpace& space) override {
    Rng rng(seed_);
    const auto num_allocs = 2 + rng.below(6);  // 2..7 allocations
    for (std::uint64_t i = 0; i < num_allocs; ++i) {
      // 64 KB .. 4 MB, odd sizes to exercise the chunk-rounding paths.
      const std::uint64_t bytes = kBasicBlockSize + rng.below(4 * kLargePageSize);
      regions_.push_back(make_region(space, "fuzz" + std::to_string(i), bytes));
    }
  }

  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    Rng rng(seed_ ^ 0xabcdef);
    const auto launches = 1 + rng.below(4);
    std::vector<std::shared_ptr<const Kernel>> seq;
    for (std::uint64_t l = 0; l < launches; ++l) {
      seq.push_back(std::make_shared<FuzzKernel>(regions_, seed_ + l));
    }
    return seq;
  }

 private:
  class FuzzKernel final : public Kernel {
   public:
    FuzzKernel(std::vector<Region> regions, std::uint64_t seed)
        : regions_(std::move(regions)), seed_(seed) {}
    [[nodiscard]] std::string name() const override { return "fuzz_kernel"; }
    [[nodiscard]] std::uint64_t num_tasks() const override { return 48; }

    void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
      Rng rng = task_rng(seed_, 0, task);
      const auto ops = 16 + rng.below(48);
      for (std::uint64_t i = 0; i < ops; ++i) {
        const Region& r = regions_[rng.below(regions_.size())];
        const std::uint64_t lines = r.bytes / kWarpAccessBytes;
        const auto mode = rng.below(4);
        const AccessType type = rng.chance(0.3) ? AccessType::kWrite : AccessType::kRead;
        switch (mode) {
          case 0: {  // sequential run, block-bounded
            std::uint64_t line = rng.below(lines);
            const auto run = 1 + rng.below(8);
            for (std::uint64_t j = 0; j < run; ++j) {
              const VirtAddr a = r.at(((line + j) % lines) * kWarpAccessBytes);
              out.push_back(Access{a, type, 1, static_cast<std::uint16_t>(rng.below(64))});
            }
            break;
          }
          case 1: {  // strided walk
            const std::uint64_t stride = 1 + rng.below(64);
            std::uint64_t line = rng.below(lines);
            for (int j = 0; j < 8; ++j) {
              out.push_back(Access{r.at(line * kWarpAccessBytes), type, 1, 16});
              line = (line + stride) % lines;
            }
            break;
          }
          case 2: {  // coalesced burst within one block
            const std::uint64_t block_lines = kBasicBlockSize / kWarpAccessBytes;
            const std::uint64_t base_line = rng.below(lines) / block_lines * block_lines;
            const auto count = static_cast<std::uint16_t>(1 + rng.below(16));
            if ((base_line + count) * kWarpAccessBytes <= r.bytes) {
              out.push_back(Access{r.at(base_line * kWarpAccessBytes), type, count, 8});
            }
            break;
          }
          default:  // single random probe
            out.push_back(Access{r.at(rng.below(lines) * kWarpAccessBytes), type, 1, 4});
        }
      }
    }

   private:
    std::vector<Region> regions_;
    std::uint64_t seed_;
  };

  std::uint64_t seed_;
  std::vector<Region> regions_;
};

class StressRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressRandom, EveryPolicyRunsCleanly) {
  for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                                  PolicyKind::kStaticOversub, PolicyKind::kAdaptive}) {
    for (const double oversub : {0.0, 1.4}) {
      FuzzWorkload wl(GetParam());
      SimConfig cfg;
      cfg.gpu.num_sms = 4;
      cfg.gpu.warps_per_sm = 2;
      cfg.policy.policy = policy;
      cfg.mem.eviction = policy == PolicyKind::kAdaptive ? EvictionKind::kLfu
                                                         : EvictionKind::kLru;
      cfg.mem.oversubscription = oversub;

      const RunResult r = Simulator(cfg).run(wl);
      ASSERT_GT(r.stats.total_accesses, 0u);
      ASSERT_LE(r.stats.local_accesses + r.stats.remote_accesses, r.stats.total_accesses);
      ASSERT_EQ(r.stats.bytes_h2d,
                (r.stats.blocks_migrated + r.stats.blocks_prefetched) * kBasicBlockSize);
      if (oversub == 0.0) {
        ASSERT_EQ(r.stats.pages_thrashed, 0u);
      }
    }
  }
}

TEST_P(StressRandom, TreeEvictionAndBlockGranularityAlsoSurvive) {
  FuzzWorkload wl1(GetParam()), wl2(GetParam());
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.mem.oversubscription = 1.4;

  cfg.mem.eviction = EvictionKind::kTree;
  const RunResult tree = Simulator(cfg).run(wl1);
  ASSERT_GT(tree.stats.total_accesses, 0u);

  cfg.mem.eviction = EvictionKind::kLfu;
  cfg.mem.eviction_granularity = kBasicBlockSize;
  const RunResult fine = Simulator(cfg).run(wl2);
  ASSERT_EQ(fine.stats.total_accesses, tree.stats.total_accesses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressRandom,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull, 99999ull,
                                           0xdeadbeefull));

}  // namespace
}  // namespace uvmsim
