// Cross-policy invariants: the workload-generated access stream is a pure
// function of (workload, scale, seed) — policies may only change *where*
// accesses are serviced and how long they take, never how many there are.
// Sweeps every benchmark across all four policies and checks conservation
// properties that any correct driver implementation must satisfy.
#include <gtest/gtest.h>

#include <map>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

struct Case {
  std::string workload;
  double oversub;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return info.param.workload + (info.param.oversub > 0 ? "_over" : "_fit");
}

class CrossPolicy : public ::testing::TestWithParam<Case> {};

TEST_P(CrossPolicy, AccessStreamIsPolicyInvariant) {
  const Case& c = GetParam();
  WorkloadParams params;
  params.scale = 0.1;

  std::map<PolicyKind, RunResult> results;
  for (const PolicyKind policy : {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                                  PolicyKind::kStaticOversub, PolicyKind::kAdaptive}) {
    SimConfig cfg;
    cfg.gpu.num_sms = 8;
    cfg.gpu.warps_per_sm = 2;
    cfg.policy.policy = policy;
    cfg.mem.eviction =
        policy == PolicyKind::kFirstTouch ? EvictionKind::kLru : EvictionKind::kLfu;
    results.emplace(policy, run_workload(c.workload, cfg, c.oversub, params));
  }

  const RunResult& base = results.at(PolicyKind::kFirstTouch);
  for (const auto& [policy, r] : results) {
    // Identical access totals and footprints.
    EXPECT_EQ(r.stats.total_accesses, base.stats.total_accesses);
    EXPECT_EQ(r.footprint_bytes, base.footprint_bytes);
    EXPECT_EQ(r.capacity_bytes, base.capacity_bytes);
    EXPECT_EQ(r.kernels.size(), base.kernels.size());

    // Conservation: serviced accesses (local + remote) plus faulted
    // originals cover the stream; every migrated block was paid for on the
    // wire; evictions never exceed migrations.
    EXPECT_LE(r.stats.local_accesses + r.stats.remote_accesses, r.stats.total_accesses);
    EXPECT_EQ(r.stats.bytes_h2d,
              (r.stats.blocks_migrated + r.stats.blocks_prefetched) * kBasicBlockSize);
    EXPECT_LE(r.stats.pages_evicted / kPagesPerBlock,
              r.stats.blocks_migrated + r.stats.blocks_prefetched);

    // First-touch never uses remote access; the delayed schemes may.
    if (policy == PolicyKind::kFirstTouch) {
      EXPECT_EQ(r.stats.remote_accesses, 0u);
    }
    // Fitting working sets never oversubscribe, under any policy.
    if (c.oversub <= 0) {
      EXPECT_EQ(r.stats.evictions, 0u);
      EXPECT_EQ(r.stats.pages_thrashed, 0u);
      EXPECT_EQ(r.stats.writeback_pages, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CrossPolicy,
    ::testing::Values(Case{"backprop", 1.25}, Case{"fdtd", 1.25}, Case{"hotspot", 1.25},
                      Case{"srad", 1.25}, Case{"bfs", 1.25}, Case{"nw", 1.25},
                      Case{"ra", 1.25}, Case{"sssp", 1.25}, Case{"fdtd", 0.0},
                      Case{"sssp", 0.0}, Case{"spmv", 1.25}, Case{"pagerank", 1.25},
                      Case{"kmeans", 1.25}, Case{"histogram", 1.25}),
    case_name);

}  // namespace
}  // namespace uvmsim
