// Qualitative reproduction properties: the *shape* of the paper's results at
// reduced scale. These assertions use generous margins — they pin who wins,
// not by how much (the benches in bench/ report the full-scale factors).
#include <gtest/gtest.h>

#include <map>

#include "core/simulator.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

// The benches run at scale 1.0; shape assertions must run in the same regime
// (device capacity well above the warps' concurrent sweep front).
constexpr double kScale = 1.0;

SimConfig policy_cfg(PolicyKind policy) {
  SimConfig cfg;
  cfg.policy.policy = policy;
  cfg.mem.eviction = policy == PolicyKind::kFirstTouch ? EvictionKind::kLru
                                                       : EvictionKind::kLfu;
  return cfg;
}

RunResult run(const std::string& name, PolicyKind policy, double oversub) {
  WorkloadParams params;
  params.scale = kScale;
  return run_workload(name, policy_cfg(policy), oversub, params);
}

double runtime_ratio(const RunResult& a, const RunResult& b) {
  return static_cast<double>(a.stats.kernel_cycles) /
         static_cast<double>(b.stats.kernel_cycles);
}

// --- Fig 1: oversubscription hurts, and irregular >> regular -------------

TEST(Fig1Shape, OversubscriptionDegradesEveryWorkload) {
  for (const auto& name : {"fdtd", "bfs"}) {
    const RunResult fit = run(name, PolicyKind::kFirstTouch, 0.0);
    const RunResult over = run(name, PolicyKind::kFirstTouch, 1.25);
    EXPECT_GT(runtime_ratio(over, fit), 1.05) << name;
  }
}

TEST(Fig1Shape, IrregularDegradesFarMoreThanRegular) {
  const RunResult reg_fit = run("fdtd", PolicyKind::kFirstTouch, 0.0);
  const RunResult reg_over = run("fdtd", PolicyKind::kFirstTouch, 1.25);
  const RunResult irr_fit = run("ra", PolicyKind::kFirstTouch, 0.0);
  const RunResult irr_over = run("ra", PolicyKind::kFirstTouch, 1.25);
  const double reg_slowdown = runtime_ratio(reg_over, reg_fit);
  const double irr_slowdown = runtime_ratio(irr_over, irr_fit);
  EXPECT_GT(irr_slowdown, 1.5 * reg_slowdown);
}

// --- Fig 2: hot/cold split exists for irregular, not regular -------------

TEST(Fig2Shape, SsspHasHotAndColdAllocationsFdtdDoesNot) {
  WorkloadParams params;
  params.scale = kScale;
  auto probe = [&](const std::string& name) {
    SimConfig cfg = policy_cfg(PolicyKind::kFirstTouch);
    cfg.collect_traces = true;
    auto wl = make_workload(name, params);
    // Build a parallel space only to size the histogram identically.
    AddressSpace sizing;
    make_workload(name, params)->build(sizing);
    PageHistogram hist(sizing);
    Simulator sim(cfg);
    RunOptions opts;
    opts.trace_sink = &hist;
    (void)sim.run(*wl, opts);
    return hist.summarize();
  };

  // fdtd: all allocations near-uniform access density.
  double fdtd_min = 1e300, fdtd_max = 0;
  for (const auto& s : probe("fdtd")) {
    if (s.touched_pages == 0) continue;
    fdtd_min = std::min(fdtd_min, s.mean_accesses_per_touched_page);
    fdtd_max = std::max(fdtd_max, s.mean_accesses_per_touched_page);
  }
  EXPECT_LT(fdtd_max / fdtd_min, 4.0);

  // sssp: the hot status arrays see far denser access than the cold edges,
  // and the cold allocations are read-only.
  std::map<std::string, PageHistogram::AllocSummary> sssp;
  for (const auto& s : probe("sssp")) sssp[s.name] = s;
  ASSERT_TRUE(sssp.contains("graph_edges"));
  ASSERT_TRUE(sssp.contains("dist"));
  EXPECT_GT(sssp["dist"].mean_accesses_per_touched_page,
            8 * sssp["graph_edges"].mean_accesses_per_touched_page);
  EXPECT_EQ(sssp["graph_edges"].written_pages, 0u);
  EXPECT_EQ(sssp["edge_weights"].written_pages, 0u);
  EXPECT_GT(sssp["dist"].written_pages, 0u);
}

// --- Fig 5: no oversubscription — Adaptive tracks Baseline ---------------

class NoOversubParity : public ::testing::TestWithParam<std::string> {};

TEST_P(NoOversubParity, AdaptiveMatchesBaselineWhenWorkingSetFits) {
  const RunResult base = run(GetParam(), PolicyKind::kFirstTouch, 0.0);
  const RunResult adaptive = run(GetParam(), PolicyKind::kAdaptive, 0.0);
  const double ratio = runtime_ratio(adaptive, base);
  EXPECT_GT(ratio, 0.85) << "adaptive unexpectedly much faster";
  EXPECT_LT(ratio, 1.20) << "adaptive regressed a fitting working set";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, NoOversubParity,
                         ::testing::Values("backprop", "fdtd", "hotspot", "srad", "bfs",
                                           "nw", "ra", "sssp"));

// --- Fig 6: 125 % oversubscription — Adaptive wins on irregular ----------

class AdaptiveWins : public ::testing::TestWithParam<std::string> {};

TEST_P(AdaptiveWins, AdaptiveBeatsBaselineOnIrregularUnderOversubscription) {
  const RunResult base = run(GetParam(), PolicyKind::kFirstTouch, 1.25);
  const RunResult adaptive = run(GetParam(), PolicyKind::kAdaptive, 1.25);
  EXPECT_LT(runtime_ratio(adaptive, base), 0.95) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Irregular, AdaptiveWins, ::testing::Values("bfs", "ra", "sssp"));

class RegularUnharmed : public ::testing::TestWithParam<std::string> {};

TEST_P(RegularUnharmed, AdaptiveDoesNotHurtRegularUnderOversubscription) {
  const RunResult base = run(GetParam(), PolicyKind::kFirstTouch, 1.25);
  const RunResult adaptive = run(GetParam(), PolicyKind::kAdaptive, 1.25);
  EXPECT_LT(runtime_ratio(adaptive, base), 1.15) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Regular, RegularUnharmed,
                         ::testing::Values("backprop", "fdtd", "hotspot", "srad"));

// --- Fig 7: thrash reduction ----------------------------------------------

TEST(Fig7Shape, AdaptiveReducesThrashingOnIrregular) {
  for (const auto& name : {"bfs", "ra", "sssp"}) {
    const RunResult base = run(name, PolicyKind::kFirstTouch, 1.25);
    const RunResult adaptive = run(name, PolicyKind::kAdaptive, 1.25);
    ASSERT_GT(base.stats.pages_thrashed, 0u) << name;
    EXPECT_LT(static_cast<double>(adaptive.stats.pages_thrashed),
              0.9 * static_cast<double>(base.stats.pages_thrashed))
        << name;
  }
}

TEST(Fig7Shape, BackpropNeverThrashes) {
  for (const auto policy : {PolicyKind::kFirstTouch, PolicyKind::kStaticAlways,
                            PolicyKind::kStaticOversub, PolicyKind::kAdaptive}) {
    const RunResult r = run("backprop", policy, 1.25);
    EXPECT_EQ(r.stats.pages_thrashed, 0u);
  }
}

// --- Fig 8: penalty sensitivity -------------------------------------------

TEST(Fig8Shape, LargerPenaltyReducesIrregularRuntime) {
  WorkloadParams params;
  params.scale = kScale;
  std::map<std::uint64_t, Cycle> runtime;
  for (const std::uint64_t p : {2ull, 8ull}) {
    SimConfig cfg = policy_cfg(PolicyKind::kAdaptive);
    cfg.policy.migration_penalty = p;
    runtime[p] = run_workload("ra", cfg, 1.25, params).stats.kernel_cycles;
  }
  EXPECT_LT(runtime[8], runtime[2]);
}

TEST(Fig8Shape, ExtremePenaltyHurtsRegular) {
  // backprop is the cleanest case: pure streaming, so hard host-pinning
  // (p = 2^20 never migrates anything) forfeits all bandwidth-optimized
  // local access (paper: 1.74x; fdtd is the paper's own counterexample).
  WorkloadParams params;
  params.scale = kScale;
  SimConfig cfg = policy_cfg(PolicyKind::kAdaptive);
  cfg.policy.migration_penalty = 1048576;
  const RunResult extreme = run_workload("backprop", cfg, 1.25, params);
  const RunResult base = run("backprop", PolicyKind::kFirstTouch, 1.25);
  EXPECT_GT(runtime_ratio(extreme, base), 1.2);
}

// --- Remote traffic sanity -------------------------------------------------

TEST(RemoteAccess, AdaptiveServesColdDataRemotely) {
  const RunResult base = run("ra", PolicyKind::kFirstTouch, 1.25);
  const RunResult adaptive = run("ra", PolicyKind::kAdaptive, 1.25);
  EXPECT_EQ(base.stats.remote_accesses, 0u);
  EXPECT_GT(adaptive.stats.remote_accesses, 0u);
  EXPECT_LT(adaptive.stats.bytes_h2d, base.stats.bytes_h2d);
}

}  // namespace
}  // namespace uvmsim
