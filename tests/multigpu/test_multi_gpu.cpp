#include "multigpu/multi_gpu.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workloads/common.hpp"

namespace uvmsim {
namespace {

/// Deterministic kernel emitting one access per task (task index encoded in
/// the address) — lets tests verify exact task coverage of slices.
class IndexKernel final : public Kernel {
 public:
  explicit IndexKernel(std::uint64_t tasks) : tasks_(tasks) {}
  [[nodiscard]] std::string name() const override { return "index"; }
  [[nodiscard]] std::uint64_t num_tasks() const override { return tasks_; }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    out.push_back(Access{task * kWarpAccessBytes, AccessType::kRead, 1, 0});
  }

 private:
  std::uint64_t tasks_;
};

TEST(KernelSlice, PartitionsTasksExactlyOnce) {
  auto inner = std::make_shared<IndexKernel>(10);
  std::set<VirtAddr> seen;
  std::uint64_t total = 0;
  for (std::uint32_t g = 0; g < 3; ++g) {
    KernelSlice slice(inner, g, 3);
    total += slice.num_tasks();
    std::vector<Access> buf;
    for (std::uint64_t t = 0; t < slice.num_tasks(); ++t) {
      buf.clear();
      slice.gen_task(t, buf);
      ASSERT_EQ(buf.size(), 1u);
      EXPECT_TRUE(seen.insert(buf[0].addr).second) << "task executed twice";
    }
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(KernelSlice, HandlesFewerTasksThanGpus) {
  auto inner = std::make_shared<IndexKernel>(2);
  KernelSlice s0(inner, 0, 4), s1(inner, 1, 4), s2(inner, 2, 4), s3(inner, 3, 4);
  EXPECT_EQ(s0.num_tasks(), 1u);
  EXPECT_EQ(s1.num_tasks(), 1u);
  EXPECT_EQ(s2.num_tasks(), 0u);
  EXPECT_EQ(s3.num_tasks(), 0u);
}

TEST(KernelSlice, NamesIdentifyTheGpu) {
  auto inner = std::make_shared<IndexKernel>(4);
  EXPECT_EQ(KernelSlice(inner, 1, 2).name(), "index/gpu1");
}

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  return cfg;
}

TEST(MultiGpu, RunsAllBenchmarksToCompletion) {
  WorkloadParams params;
  params.scale = 0.1;
  for (const auto& name : {"fdtd", "bfs"}) {
    auto wl = make_workload(name, params);
    MultiGpuSimulator sim(small_cfg(), MultiGpuConfig{2, true});
    const MultiGpuResult r = sim.run(*wl);
    ASSERT_EQ(r.per_gpu.size(), 2u);
    EXPECT_GT(r.makespan, 0u);
    EXPECT_GT(r.per_gpu[0].total_accesses, 0u) << name;
    EXPECT_GT(r.per_gpu[1].total_accesses, 0u) << name;
    EXPECT_EQ(r.aggregate.total_accesses,
              r.per_gpu[0].total_accesses + r.per_gpu[1].total_accesses);
  }
}

TEST(MultiGpu, MatchesSingleGpuAccessTotals) {
  WorkloadParams params;
  params.scale = 0.1;
  auto wl1 = make_workload("fdtd", params);
  auto wl2 = make_workload("fdtd", params);

  Simulator single(small_cfg());
  const RunResult sr = single.run(*wl1);

  MultiGpuSimulator multi(small_cfg(), MultiGpuConfig{2, false});
  const MultiGpuResult mr = multi.run(*wl2);

  // Same work, split two ways: transaction totals must be identical.
  EXPECT_EQ(mr.aggregate.total_accesses, sr.stats.total_accesses);
}

TEST(MultiGpu, SplitCapacityDividesDeviceMemory) {
  WorkloadParams params;
  params.scale = 0.4;  // large enough that capacity/2 stays above one chunk
  SimConfig cfg = small_cfg();
  cfg.mem.oversubscription = 1.25;

  auto wl1 = make_workload("ra", params);
  MultiGpuSimulator split(cfg, MultiGpuConfig{2, true});
  const MultiGpuResult a = split.run(*wl1);

  auto wl2 = make_workload("ra", params);
  MultiGpuSimulator full(cfg, MultiGpuConfig{2, false});
  const MultiGpuResult b = full.run(*wl2);

  EXPECT_LT(a.capacity_bytes_per_gpu, b.capacity_bytes_per_gpu);
  // With full per-GPU capacity the pressure is halved: less thrash.
  EXPECT_LE(b.aggregate.pages_thrashed, a.aggregate.pages_thrashed);
}

TEST(MultiGpu, AdaptiveReducesThrashAcrossGpus) {
  WorkloadParams params;
  params.scale = 0.4;
  SimConfig base = SimConfig{};
  base.mem.oversubscription = 1.25;
  SimConfig adaptive = base;
  adaptive.policy.policy = PolicyKind::kAdaptive;
  adaptive.mem.eviction = EvictionKind::kLfu;

  auto wl1 = make_workload("sssp", params);
  auto wl2 = make_workload("sssp", params);
  const MultiGpuResult b = MultiGpuSimulator(base, MultiGpuConfig{2, true}).run(*wl1);
  const MultiGpuResult a = MultiGpuSimulator(adaptive, MultiGpuConfig{2, true}).run(*wl2);

  EXPECT_LT(a.aggregate.pages_thrashed, b.aggregate.pages_thrashed);
  EXPECT_LT(a.makespan, b.makespan);
}

TEST(MultiGpu, DeterministicAcrossRuns) {
  WorkloadParams params;
  params.scale = 0.1;
  auto wl1 = make_workload("bfs", params);
  auto wl2 = make_workload("bfs", params);
  const MultiGpuResult a = MultiGpuSimulator(small_cfg(), MultiGpuConfig{2, true}).run(*wl1);
  const MultiGpuResult b = MultiGpuSimulator(small_cfg(), MultiGpuConfig{2, true}).run(*wl2);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.aggregate.far_faults, b.aggregate.far_faults);
}

TEST(MultiGpu, ZeroGpusRejected) {
  EXPECT_THROW(MultiGpuSimulator(small_cfg(), MultiGpuConfig{0, true}),
               std::invalid_argument);
}

}  // namespace
}  // namespace uvmsim
