#include "multigpu/peer_directory.hpp"

#include <gtest/gtest.h>

#include "multigpu/multi_gpu.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

PeerFabricConfig fabric() {
  PeerFabricConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(PeerDirectory, TracksHoldersPerGpu) {
  PeerDirectory d(16, fabric(), 1.0);
  EXPECT_FALSE(d.held_by_peer(3, 0));
  d.set_resident(3, 1);
  EXPECT_TRUE(d.held_by_peer(3, 0));
  EXPECT_FALSE(d.held_by_peer(3, 1));  // own copy is not a peer copy
  d.clear_resident(3, 1);
  EXPECT_FALSE(d.held_by_peer(3, 0));
}

TEST(PeerDirectory, MultipleHoldersClearIndependently) {
  PeerDirectory d(16, fabric(), 1.0);
  d.set_resident(5, 0);
  d.set_resident(5, 2);
  EXPECT_TRUE(d.held_by_peer(5, 1));
  d.clear_resident(5, 0);
  EXPECT_TRUE(d.held_by_peer(5, 1));  // GPU 2 still holds it
  d.clear_resident(5, 2);
  EXPECT_FALSE(d.held_by_peer(5, 1));
}

TEST(PeerDirectory, TransactionsConsumeFabricBandwidth) {
  PeerFabricConfig cfg = fabric();
  cfg.bandwidth_gbps = 1.0;  // 1 byte/cycle at 1 GHz
  cfg.latency = 10;
  cfg.overhead_bytes = 0;
  PeerDirectory d(16, cfg, 1.0);
  EXPECT_EQ(d.peer_transaction(0, 1), 128u + 10u);
  EXPECT_EQ(d.peer_transaction(0, 1), 256u + 10u);  // queued behind the first
}

TEST(PeerIntegration, SharedReadDataIsServedPeerToPeer) {
  // Two GPUs collaboratively traverse the same graph at aggregate 125 %
  // oversubscription with the adaptive driver: cold edge reads whose blocks
  // the other GPU migrated are served over NVLink.
  WorkloadParams params;
  params.scale = 0.3;
  SimConfig cfg;
  cfg.gpu.num_sms = 8;
  cfg.gpu.warps_per_sm = 2;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.mem.eviction = EvictionKind::kLfu;
  cfg.mem.oversubscription = 1.25;

  MultiGpuConfig no_peer{2, true};
  MultiGpuConfig with_peer{2, true};
  with_peer.peer = fabric();

  auto wl1 = make_workload("bfs", params);
  auto wl2 = make_workload("bfs", params);
  const MultiGpuResult base = MultiGpuSimulator(cfg, no_peer).run(*wl1);
  const MultiGpuResult peer = MultiGpuSimulator(cfg, with_peer).run(*wl2);

  EXPECT_EQ(base.aggregate.peer_accesses, 0u);
  EXPECT_GT(peer.aggregate.peer_accesses, 0u);
  // Peer-served reads replace host zero-copy reads; totals are conserved.
  EXPECT_EQ(peer.aggregate.total_accesses, base.aggregate.total_accesses);
  EXPECT_LT(peer.aggregate.remote_accesses, base.aggregate.remote_accesses);
  // NVLink is faster than PCIe zero-copy: the makespan must not regress.
  EXPECT_LE(peer.makespan, base.makespan * 11 / 10);
}

TEST(PeerIntegration, SingleGpuNeverUsesPeerPath) {
  WorkloadParams params;
  params.scale = 0.1;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.policy.policy = PolicyKind::kAdaptive;
  cfg.mem.oversubscription = 1.25;
  MultiGpuConfig mg{1, true};
  mg.peer = fabric();
  auto wl = make_workload("ra", params);
  const MultiGpuResult r = MultiGpuSimulator(cfg, mg).run(*wl);
  EXPECT_EQ(r.aggregate.peer_accesses, 0u);
}

}  // namespace
}  // namespace uvmsim
