#include "xfer/pcie.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace uvmsim {
namespace {

SimConfig test_cfg() {
  SimConfig cfg;
  cfg.gpu.core_clock_ghz = 1.0;       // 1 byte/ns per GB/s: easy arithmetic
  cfg.xfer.pcie_bandwidth_gbps = 16.0;  // 16 bytes/cycle
  cfg.xfer.pcie_latency = 100;
  return cfg;
}

TEST(Pcie, BulkTransferIncludesLatency) {
  PcieFabric p(test_cfg());
  // 64 KB at 16 B/cycle = 4096 cycles + 100 latency.
  EXPECT_EQ(p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize), 4196u);
}

TEST(Pcie, DirectionsAreIndependent) {
  PcieFabric p(test_cfg());
  const Cycle h2d = p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize);
  const Cycle d2h = p.transfer(PcieDir::kDeviceToHost, 0, 0, kBasicBlockSize);
  EXPECT_EQ(h2d, d2h);  // no cross-direction contention
  EXPECT_EQ(p.h2d().total_bytes(), kBasicBlockSize);
  EXPECT_EQ(p.d2h().total_bytes(), kBasicBlockSize);
}

TEST(Pcie, SameDirectionSerializes) {
  PcieFabric p(test_cfg());
  const Cycle first = p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize);
  const Cycle second = p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize);
  EXPECT_EQ(second, first + 4096);
}

TEST(Pcie, NotBeforeGatesTheStart) {
  PcieFabric p(test_cfg());
  // Channel free, but the transfer may not start before cycle 1000
  // (e.g. waiting on an eviction writeback).
  EXPECT_EQ(p.transfer(PcieDir::kHostToDevice, 0, 1000, 1600), 1200u);
}

TEST(Pcie, RemoteTransactionSharesChannelOccupancy) {
  PcieFabric p(test_cfg());
  p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize);  // busy until 4096
  // A zero-copy read queued behind the bulk transfer.
  const Cycle drained = p.remote_transaction(PcieDir::kHostToDevice, 0, 128);
  EXPECT_EQ(drained, 4104u);  // 4096 + 128/16
}

TEST(Pcie, RemoteTransactionHasNoBuiltInLatency) {
  PcieFabric p(test_cfg());
  EXPECT_EQ(p.remote_transaction(PcieDir::kDeviceToHost, 0, 160), 10u);
}

TEST(Pcie, TableOneBandwidth) {
  // With Table I values: 15.75 GB/s at 1.481 GHz = ~10.6 bytes/cycle, so a
  // 64 KB block takes ~6160 cycles on the wire.
  PcieFabric p{SimConfig{}};
  const Cycle done = p.transfer(PcieDir::kHostToDevice, 0, 0, kBasicBlockSize);
  const double wire = kBasicBlockSize / (15.75 / 1.481);
  EXPECT_NEAR(static_cast<double>(done), wire + 100.0, 2.0);
}

}  // namespace
}  // namespace uvmsim
