#include "xfer/bandwidth.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Bandwidth, SingleTransferTiming) {
  BandwidthRegulator r(10.0);  // 10 bytes/cycle
  EXPECT_EQ(r.acquire(0, 100), 10u);
  EXPECT_EQ(r.total_bytes(), 100u);
}

TEST(Bandwidth, BackToBackTransfersQueue) {
  BandwidthRegulator r(10.0);
  EXPECT_EQ(r.acquire(0, 100), 10u);
  EXPECT_EQ(r.acquire(0, 100), 20u);  // queued behind the first
  EXPECT_EQ(r.acquire(50, 100), 60u); // channel idle again at 20
}

TEST(Bandwidth, FractionalOccupancyAccumulates) {
  BandwidthRegulator r(10.0);
  // 4 transfers of 5 bytes = 2 cycles total, not 4.
  Cycle last = 0;
  for (int i = 0; i < 4; ++i) last = r.acquire(0, 5);
  EXPECT_EQ(last, 2u);
}

TEST(Bandwidth, LaterRequestStartsAtNow) {
  BandwidthRegulator r(2.0);
  EXPECT_EQ(r.acquire(100, 10), 105u);
  EXPECT_EQ(r.free_at(), 105u);
}

TEST(Bandwidth, BusyCyclesTrackUtilization) {
  BandwidthRegulator r(10.0);
  r.acquire(0, 100);   // 10 busy cycles
  r.acquire(100, 50);  // 5 busy cycles
  EXPECT_DOUBLE_EQ(r.busy_cycles(), 15.0);
}

TEST(Bandwidth, ZeroByteTransferIsFree) {
  BandwidthRegulator r(10.0);
  EXPECT_EQ(r.acquire(7, 0), 7u);
}

}  // namespace
}  // namespace uvmsim
