// Record→replay round-trip suite: for every registered generator family and
// every paper policy, a run recorded through TraceWriter and replayed through
// the `replay` workload must reproduce the original SimStats byte for byte
// (SimStats::operator== is defaulted member-wise equality over every field).
// This is the trace subsystem's core guarantee — hand-out-order recording at
// the task level captures everything that determines a run.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policy/policy_registry.hpp"
#include "sim/config_parse.hpp"
#include "trace/replay_workload.hpp"
#include "trace/trace_binary.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

constexpr const char* kPaperPolicies[] = {"baseline", "always", "oversub", "adaptive"};

[[nodiscard]] SimConfig oversubscribed_config(const char* policy_slug) {
  SimConfig cfg;
  cfg.mem.oversubscription = 1.3333;
  cfg.mem.eviction = EvictionKind::kLfu;
  EXPECT_TRUE(apply_policy_name(cfg.policy, policy_slug));
  return cfg;
}

struct RoundTrip {
  RunResult recorded;
  RunResult replayed;
  TraceMeta meta;
};

/// Record `workload` under `cfg`, replay the capture under the same config,
/// remove the temp file, and hand both results back for comparison.
[[nodiscard]] RoundTrip record_then_replay(Workload& workload, SimConfig cfg,
                                           const std::string& trace_path) {
  RoundTrip rt;
  {
    std::ofstream os(trace_path, std::ios::binary | std::ios::trunc);
    TraceWriter writer(os, {workload.name(), 0, config_digest(cfg)});
    SimConfig record_cfg = cfg;
    record_cfg.collect_traces = true;
    RunOptions opts;
    opts.trace_sink = &writer;
    rt.recorded = Simulator(record_cfg).run(workload, opts);
    writer.finalize();
  }
  {
    WorkloadParams params;
    params.trace_file = trace_path;
    const std::unique_ptr<Workload> replay = make_workload("replay", params);
    rt.meta = dynamic_cast<const ReplayWorkload&>(*replay).meta();
    rt.replayed = Simulator(cfg).run(*replay);
  }
  std::remove(trace_path.c_str());
  return rt;
}

class RecordReplay : public ::testing::TestWithParam<std::string> {};

TEST_P(RecordReplay, StatsAreByteIdenticalUnderEveryPaperPolicy) {
  const std::string& family = GetParam();
  WorkloadParams params;
  params.scale = 0.03;
  params.seed = 0x5eedull + 7;

  for (const char* policy : kPaperPolicies) {
    SCOPED_TRACE(std::string("policy=") + policy);
    const std::unique_ptr<Workload> wl = make_workload(family, params);
    const SimConfig cfg = oversubscribed_config(policy);
    const RoundTrip rt =
        record_then_replay(*wl, cfg, "rr_" + family + "_" + policy + ".trb");

    EXPECT_TRUE(rt.replayed.stats == rt.recorded.stats)
        << "replayed SimStats diverged from the recorded run";
    EXPECT_EQ(rt.replayed.footprint_bytes, rt.recorded.footprint_bytes);
    EXPECT_EQ(rt.replayed.capacity_bytes, rt.recorded.capacity_bytes);
    ASSERT_EQ(rt.replayed.kernels.size(), rt.recorded.kernels.size());
    for (std::size_t i = 0; i < rt.recorded.kernels.size(); ++i) {
      EXPECT_EQ(rt.replayed.kernels[i].name, rt.recorded.kernels[i].name);
      EXPECT_EQ(rt.replayed.kernels[i].start, rt.recorded.kernels[i].start);
      EXPECT_EQ(rt.replayed.kernels[i].end, rt.recorded.kernels[i].end);
    }
    // Provenance survives the round trip and the digest matches the
    // recording config (the contract uvmsim --replay warns about).
    EXPECT_EQ(rt.meta.workload, family);
    EXPECT_EQ(rt.meta.config_digest, config_digest(cfg));
    EXPECT_GT(rt.meta.total_records, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RecordReplay,
                         ::testing::ValuesIn(all_generator_workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

// ---- zero-task launches --------------------------------------------------

/// A kernel the scheduler launches but that hands out no tasks. Real
/// workloads produce these (BFS levels with an empty frontier); the launch
/// overhead they cost must survive the round trip even though no on_task
/// hook ever fires for them.
class EmptyKernel final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override { return "k_zero_tasks"; }
  [[nodiscard]] std::uint64_t num_tasks() const override { return 0; }
  void gen_task(std::uint64_t, std::vector<Access>&) const override {}
};

class TinyKernel final : public Kernel {
 public:
  [[nodiscard]] std::string name() const override { return "k_tiny"; }
  [[nodiscard]] std::uint64_t num_tasks() const override { return 4; }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    out.push_back(Access{task * 128, AccessType::kRead, 1, 10});
    out.push_back(Access{1 << 20, AccessType::kWrite, 1, 0});
  }
};

class SparseLaunchWorkload final : public Workload {
 public:
  [[nodiscard]] std::string name() const override { return "sparse_launch"; }
  [[nodiscard]] bool irregular() const override { return false; }
  void build(AddressSpace& space) override { space.allocate("buf", 2 << 20); }
  [[nodiscard]] std::vector<std::shared_ptr<const Kernel>> schedule() const override {
    return {std::make_shared<TinyKernel>(), std::make_shared<EmptyKernel>(),
            std::make_shared<TinyKernel>()};
  }
};

TEST(RecordReplayEdge, ZeroTaskLaunchesSurviveTheRoundTrip) {
  SparseLaunchWorkload wl;
  SimConfig cfg;  // fits-in-memory: launch overhead dominates the runtime
  const RoundTrip rt = record_then_replay(wl, cfg, "rr_zero_task.trb");

  ASSERT_EQ(rt.meta.launches.size(), 3u);
  EXPECT_EQ(rt.meta.launches[1].kernel, "k_zero_tasks");
  EXPECT_EQ(rt.meta.launches[1].num_tasks, 0u);
  EXPECT_EQ(rt.meta.launches[1].num_records, 0u);

  EXPECT_TRUE(rt.replayed.stats == rt.recorded.stats);
  ASSERT_EQ(rt.replayed.kernels.size(), 3u);
  EXPECT_EQ(rt.replayed.kernels[1].name, "k_zero_tasks");
}

TEST(RecordReplayEdge, ReplayUnderDifferentPolicyStillCompletes) {
  // Replaying under a config other than the recording one is supported (the
  // CLI prints a digest note); the trace is a workload, not a transcript of
  // decisions, so the run completes and produces self-consistent stats.
  WorkloadParams params;
  params.scale = 0.03;
  const std::unique_ptr<Workload> wl = make_workload("ra", params);
  const std::string path = "rr_cross_policy.trb";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    SimConfig rec_cfg = oversubscribed_config("baseline");
    TraceWriter writer(os, {"ra", params.seed, config_digest(rec_cfg)});
    rec_cfg.collect_traces = true;
    RunOptions opts;
    opts.trace_sink = &writer;
    (void)Simulator(rec_cfg).run(*wl, opts);
    writer.finalize();
  }
  WorkloadParams rp;
  rp.trace_file = path;
  const std::unique_ptr<Workload> replay = make_workload("replay", rp);
  const SimConfig cfg = oversubscribed_config("adaptive");
  const RunResult res = Simulator(cfg).run(*replay);
  std::remove(path.c_str());
  EXPECT_GT(res.stats.total_accesses, 0u);
  EXPECT_GT(res.stats.kernel_cycles, 0u);
}

}  // namespace
}  // namespace uvmsim
