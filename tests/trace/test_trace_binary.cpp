// UVMTRB1 format tests: writer/reader round-trips (including empty launches
// and multi-chunk traces), the bounded-RSS streaming property, converter
// parity with the legacy UVMTRC1 form, and the robustness contract — every
// malformed input (truncation, corrupted magic/version, garbage varints,
// out-of-range block ids, arbitrary byte flips) raises TraceError; nothing
// is silently accepted.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hpp"
#include "trace/trace_binary.hpp"

namespace uvmsim {
namespace {

/// Temp-file helper: distinct names per test (ctest runs suites in
/// parallel from the same build directory), removed on scope exit.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  void write(const std::string& bytes) const {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  [[nodiscard]] std::string read() const {
    std::ifstream is(path_, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
  }

 private:
  std::string path_;
};

Access acc(VirtAddr addr, AccessType type = AccessType::kRead, std::uint16_t count = 1,
           std::uint16_t gap = 0) {
  return Access{addr, type, count, gap};
}

/// Deterministic synthetic trace: 2 allocations, 3 launches (the middle one
/// empty), mixed read/write tasks exercising deltas in both directions,
/// multi-count and gapped records.
void write_sample(TraceWriter& w) {
  w.set_allocations({{"table", 300000}, {"out", 90000}});
  w.begin_launch("k_gather");
  w.append_task({acc(0), acc(128, AccessType::kRead, 4), acc(65536, AccessType::kWrite)});
  w.append_task({acc(262144, AccessType::kRead, 1, 500), acc(128)});
  w.begin_launch("k_empty");  // zero-task launch: preserved in the directory
  w.begin_launch("k_scatter");
  w.append_task({acc(320000, AccessType::kWrite, 2, 7)});
  w.finalize();
}

TEST(TraceBinary, Fnv1a64KnownValues) {
  // FNV-1a 64 reference values (offset basis; single 'a').
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  // Chaining splits must not change the digest.
  const char* s = "uvmtrb1";
  EXPECT_EQ(fnv1a64(s, 7), fnv1a64(s + 3, 4, fnv1a64(s, 3)));
}

TEST(TraceBinary, WriterReaderRoundTrip) {
  TempFile tf("trb_roundtrip.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"sample", 42, 0xfeedull});
    write_sample(w);
    EXPECT_TRUE(w.finalized());
    EXPECT_EQ(w.records_written(), 6u);
    EXPECT_EQ(w.tasks_written(), 3u);
  }

  TraceReader r(tf.path());
  EXPECT_NO_THROW(r.verify());
  const TraceMeta& m = r.meta();
  EXPECT_EQ(m.version, kTrbVersion);
  EXPECT_EQ(m.workload, "sample");
  EXPECT_EQ(m.seed, 42u);
  EXPECT_EQ(m.config_digest, 0xfeedull);
  EXPECT_EQ(m.total_records, 6u);
  ASSERT_EQ(m.allocations.size(), 2u);
  EXPECT_EQ(m.allocations[0].name, "table");
  EXPECT_EQ(m.allocations[0].user_size, 300000u);
  ASSERT_EQ(m.launches.size(), 3u);
  EXPECT_EQ(m.launches[0].kernel, "k_gather");
  EXPECT_EQ(m.launches[0].num_tasks, 2u);
  EXPECT_EQ(m.launches[0].num_records, 5u);
  EXPECT_EQ(m.launches[1].kernel, "k_empty");
  EXPECT_EQ(m.launches[1].num_tasks, 0u);
  EXPECT_EQ(m.launches[2].num_tasks, 1u);

  std::vector<Access> out;
  r.read_task(0, 0, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].addr, 0u);
  EXPECT_EQ(out[1].addr, 128u);
  EXPECT_EQ(out[1].count, 4u);
  EXPECT_EQ(out[2].addr, 65536u);
  EXPECT_EQ(out[2].type, AccessType::kWrite);

  out.clear();
  r.read_task(0, 1, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].addr, 262144u);
  EXPECT_EQ(out[0].gap, 500u);
  EXPECT_EQ(out[1].addr, 128u);  // negative delta (zigzag)

  out.clear();
  r.read_task(2, 0, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].addr, 320000u);
  EXPECT_EQ(out[0].count, 2u);
  EXPECT_EQ(out[0].gap, 7u);

  // Out-of-range launch / task indices are typed errors, not UB.
  out.clear();
  EXPECT_THROW(r.read_task(3, 0, out), TraceError);
  EXPECT_THROW(r.read_task(1, 0, out), TraceError);  // launch 1 has no tasks
  EXPECT_THROW(r.read_task(0, 2, out), TraceError);
}

TEST(TraceBinary, MillionRecordTraceStreamsWithBoundedMemory) {
  TempFile tf("trb_million.trb");
  constexpr std::uint64_t kTasks = 4096;
  constexpr std::uint64_t kRecordsPerTask = 256;  // 1,048,576 records total
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter::Limits lim;
    lim.max_tasks_per_chunk = 64;
    lim.soft_payload_bytes = 16 * 1024;
    TraceWriter w(os, {"big", 1, 0}, lim);
    w.set_allocations({{"span", 64ull << 20}});
    w.begin_launch("k_big");
    std::vector<Access> task;
    for (std::uint64_t t = 0; t < kTasks; ++t) {
      task.clear();
      for (std::uint64_t i = 0; i < kRecordsPerTask; ++i) {
        const VirtAddr a = ((t * 131 + i * 7) % (1ull << 19)) * 128;
        task.push_back(acc(a, i % 4 == 0 ? AccessType::kWrite : AccessType::kRead));
      }
      w.append_task(task);
    }
    w.finalize();
    EXPECT_EQ(w.records_written(), kTasks * kRecordsPerTask);
  }

  TraceReader r(tf.path());
  EXPECT_EQ(r.meta().total_records, kTasks * kRecordsPerTask);
  EXPECT_GT(r.chunks().size(), 32u);  // the payload really is chunked

  // Stream every task once; the single-chunk cache keeps the decoded
  // footprint bounded by the largest chunk, far below the whole trace.
  std::vector<Access> out;
  std::uint64_t seen = 0;
  for (std::uint64_t t = 0; t < kTasks; ++t) {
    out.clear();
    r.read_task(0, t, out);
    seen += out.size();
  }
  EXPECT_EQ(seen, kTasks * kRecordsPerTask);
  const std::uint64_t total_bytes = kTasks * kRecordsPerTask * sizeof(Access);
  EXPECT_LT(r.peak_decoded_bytes(), total_bytes / 16);
  EXPECT_GT(r.peak_decoded_bytes(), 0u);
}

TEST(TraceBinary, RandomAccessAcrossChunksIsConsistent) {
  TempFile tf("trb_random_access.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter::Limits lim;
    lim.max_tasks_per_chunk = 4;
    lim.soft_payload_bytes = 64;
    TraceWriter w(os, {"ra", 0, 0}, lim);
    w.set_allocations({{"a", 1 << 20}});
    w.begin_launch("k");
    for (std::uint64_t t = 0; t < 64; ++t) w.append_task({acc(t * 128), acc(t * 256)});
    w.finalize();
  }
  TraceReader r(tf.path());
  // Jump around (cache thrash path), then re-read forward; same contents.
  std::vector<Access> out;
  for (const std::uint64_t t : {63ull, 0ull, 31ull, 1ull, 62ull, 32ull}) {
    out.clear();
    r.read_task(0, t, out);
    ASSERT_EQ(out.size(), 2u) << "task " << t;
    EXPECT_EQ(out[0].addr, t * 128);
    EXPECT_EQ(out[1].addr, t * 256);
  }
}

TEST(TraceBinary, TruncatedFilesThrow) {
  TempFile tf("trb_trunc_src.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"t", 0, 0});
    write_sample(w);
  }
  const std::string full = tf.read();
  // The header's footer-offset field locates the boundary between the chunk
  // region and the footer; cuts placed exactly on and just past it probe the
  // reader's boundary arithmetic (footer_offset + 9 is the smallest frame a
  // construction-time parse even attempts: tag + stored hash).
  std::uint64_t footer_offset = 0;
  std::memcpy(&footer_offset, full.data() + 24, sizeof footer_offset);
  ASSERT_GT(footer_offset, 40u);
  ASSERT_LT(footer_offset + 9, full.size());
  const auto fo = static_cast<std::size_t>(footer_offset);
  // Every truncation point must fail loudly: either at construction or at
  // the verify() integrity pass (never a silent partial load).
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, std::size_t{39}, std::size_t{48}, full.size() / 2,
        fo - 1, fo, fo + 1, fo + 8, fo + 9, full.size() - 9, full.size() - 1}) {
    TempFile cut("trb_trunc_cut.trb");
    cut.write(full.substr(0, len));
    EXPECT_THROW(
        {
          TraceReader r(cut.path());
          r.verify();
        },
        TraceError)
        << "truncated to " << len << " of " << full.size();
  }
}

TEST(TraceBinary, HostileFooterOffsetsThrow) {
  TempFile tf("trb_hostile_footer_src.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"t", 0, 0});
    write_sample(w);
  }
  const std::string full = tf.read();
  // Offsets that defeat naive `offset + 9 > size` arithmetic: values near
  // 2^64 wrap the addition, and exact-boundary values (size - 9, size - 8)
  // leave a frame too small for anything but (at most) tag + hash.
  for (const std::uint64_t hostile :
       {std::uint64_t{0}, std::uint64_t{39}, ~std::uint64_t{0}, ~std::uint64_t{0} - 8,
        static_cast<std::uint64_t>(full.size()), static_cast<std::uint64_t>(full.size()) - 8}) {
    std::string bad = full;
    std::memcpy(bad.data() + 24, &hostile, sizeof hostile);
    TempFile f("trb_hostile_footer_bad.trb");
    f.write(bad);
    EXPECT_THROW(TraceReader r(f.path()), TraceError) << "footer offset " << hostile;
  }
}

TEST(TraceBinary, CorruptedMagicAndVersionThrow) {
  TempFile tf("trb_magic_src.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"t", 0, 0});
    write_sample(w);
  }
  std::string bytes = tf.read();

  {
    std::string bad = bytes;
    bad[0] = 'X';
    TempFile f("trb_magic_bad.trb");
    f.write(bad);
    EXPECT_THROW(TraceReader r(f.path()), TraceError);
  }
  {
    std::string bad = bytes;
    bad[8] = 99;  // version field
    TempFile f("trb_version_bad.trb");
    f.write(bad);
    EXPECT_THROW(TraceReader r(f.path()), TraceError);
  }
  {
    TempFile f("trb_garbage.trb");
    f.write("GARBAGEGARBAGEGARBAGEGARBAGEGARBAGEGARBAGEGARBAGEGARBAGE");
    EXPECT_THROW(TraceReader r(f.path()), TraceError);
  }
}

TEST(TraceBinary, OutOfSpanAddressesThrow) {
  // A record pointing past the rebuilt allocation span must be rejected at
  // decode time (replay would otherwise fault outside every allocation).
  TempFile tf("trb_span_src.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"t", 0, 0});
    w.set_allocations({{"tiny", 4096}});  // span: one 2 MB chunk after rounding
    w.begin_launch("k");
    w.append_task({acc(8 << 20)});  // far outside the rebuilt span
    w.finalize();
  }
  TraceReader r(tf.path());
  std::vector<Access> out;
  EXPECT_THROW(r.read_task(0, 0, out), TraceError);
  EXPECT_THROW(r.verify(), TraceError);
}

TEST(TraceBinary, EveryByteFlipIsDetected) {
  // Seeded byte-mutation fuzz: the content hash covers the entire file, so
  // any single-byte change must surface as TraceError from the constructor,
  // verify(), or task decoding — never a crash, never silent acceptance.
  TempFile tf("trb_fuzz_src.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter::Limits lim;
    lim.max_tasks_per_chunk = 8;
    lim.soft_payload_bytes = 128;
    TraceWriter w(os, {"fuzzed", 7, 0x1234ull}, lim);
    write_sample(w);
  }
  const std::string bytes = tf.read();
  ASSERT_GT(bytes.size(), 49u);

  Rng rng(0xf00dull);
  int detected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t pos = static_cast<std::size_t>(rng.below(bytes.size()));
    const char flip = static_cast<char>(1 + rng.below(255));  // guaranteed change
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ flip);

    TempFile f("trb_fuzz_mut.trb");
    f.write(mutated);
    bool threw = false;
    try {
      TraceReader r(f.path());
      std::vector<Access> out;
      for (std::uint32_t l = 0; l < r.meta().launches.size(); ++l) {
        for (std::uint64_t t = 0; t < r.meta().launches[l].num_tasks; ++t) {
          out.clear();
          r.read_task(l, t, out);
        }
      }
      r.verify();
    } catch (const TraceError&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "byte flip at offset " << pos << " (xor "
                       << static_cast<int>(flip) << ") was silently accepted";
    detected += threw ? 1 : 0;
  }
  EXPECT_EQ(detected, 400);
}

TEST(TraceBinary, ConverterRoundTripsLegacyTraces) {
  // Legacy -> binary -> legacy must preserve the record stream exactly
  // (empty launches are dropped, matching TraceWorkload::schedule()).
  RecordedTrace legacy;
  legacy.allocations = {{"a", 100000}, {"b", 50000}};
  RecordedLaunch l1;
  l1.kernel = "k1";
  for (std::uint64_t i = 0; i < 600; ++i) {
    l1.records.push_back(TraceRecord{i * 128, static_cast<std::uint16_t>(1 + i % 3),
                                     i % 5 == 0 ? AccessType::kWrite : AccessType::kRead,
                                     static_cast<std::uint16_t>(i % 7)});
  }
  RecordedLaunch empty;
  empty.kernel = "k_empty";
  RecordedLaunch l2;
  l2.kernel = "k2";
  l2.records.push_back(TraceRecord{131072, 2, AccessType::kRead, 9});
  legacy.launches = {l1, empty, l2};

  TempFile trb("trb_convert.trb");
  {
    std::ofstream os(trb.path(), std::ios::binary);
    write_trb(os, legacy, {"legacy", 0, 0}, /*records_per_task=*/256);
  }

  TraceReader r(trb.path());
  EXPECT_NO_THROW(r.verify());
  ASSERT_EQ(r.meta().launches.size(), 2u);  // empty launch dropped
  EXPECT_EQ(r.meta().launches[0].num_tasks, 3u);  // 600 records / 256 per task
  EXPECT_EQ(r.meta().total_records, 601u);

  const RecordedTrace back = read_trb_as_recorded(trb.path());
  ASSERT_EQ(back.allocations.size(), legacy.allocations.size());
  EXPECT_EQ(back.allocations[1].first, "b");
  EXPECT_EQ(back.allocations[1].second, 50000u);
  ASSERT_EQ(back.launches.size(), 2u);
  ASSERT_EQ(back.launches[0].records.size(), 600u);
  for (std::size_t i = 0; i < 600; ++i) {
    EXPECT_EQ(back.launches[0].records[i].addr, l1.records[i].addr);
    EXPECT_EQ(back.launches[0].records[i].count, l1.records[i].count);
    EXPECT_EQ(back.launches[0].records[i].type, l1.records[i].type);
    EXPECT_EQ(back.launches[0].records[i].gap, l1.records[i].gap);
  }
  EXPECT_EQ(back.launches[1].records.size(), 1u);

  // load_any_trace sniffs both formats to the same in-memory form.
  TempFile trc("trb_convert.trc");
  {
    std::ofstream os(trc.path(), std::ios::binary);
    legacy.save(os);
  }
  const RecordedTrace via_trc = load_any_trace(trc.path());
  const RecordedTrace via_trb = load_any_trace(trb.path());
  EXPECT_EQ(via_trc.total_records(), 601u);
  EXPECT_EQ(via_trb.total_records(), 601u);
}

TEST(TraceBinary, FinalizeIsRequiredAndIdempotencyGuarded) {
  TempFile tf("trb_nofinal.trb");
  {
    std::ofstream os(tf.path(), std::ios::binary);
    TraceWriter w(os, {"t", 0, 0});
    w.set_allocations({{"a", 4096}});
    w.begin_launch("k");
    w.append_task({acc(0)});
    // no finalize()
  }
  EXPECT_THROW(TraceReader r(tf.path()), TraceError);
}

}  // namespace
}  // namespace uvmsim
