#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"
#include "workloads/workload.hpp"

namespace uvmsim {
namespace {

TEST(Timeline, OccupancyComputation) {
  TimelineSample s;
  s.used_blocks = 16;
  s.capacity_blocks = 32;
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.5);
  s.capacity_blocks = 0;
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.0);
}

TEST(Timeline, CsvFormat) {
  Timeline t;
  t.add(TimelineSample{100, 8, 32, 5, 2, 16, 1024, 512, 7, 3, 9});
  std::ostringstream os;
  t.write_csv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("cycle,occupancy"), std::string::npos);
  // Header covers the migration/prefetch/peer columns added with the
  // observability layer.
  EXPECT_NE(s.find("blocks_migrated,blocks_prefetched,peer_accesses"), std::string::npos);
  EXPECT_NE(s.find("100,0.25,8,5,2,16,1024,512,7,3,9"), std::string::npos);
}

TEST(Timeline, SimulatorSamplesPeriodically) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;

  auto wl = make_workload("fdtd", params);
  Timeline timeline;
  Simulator sim(cfg);
  RunOptions opts;
  opts.timeline = &timeline;
  opts.timeline_interval = 50000;
  const RunResult r = sim.run(*wl, opts);

  ASSERT_GT(timeline.samples().size(), 2u);
  // Samples are spaced by the interval and cycles are monotone.
  for (std::size_t i = 1; i < timeline.samples().size(); ++i) {
    EXPECT_EQ(timeline.samples()[i].cycle - timeline.samples()[i - 1].cycle, 50000u);
  }
  // Counters are monotone non-decreasing.
  for (std::size_t i = 1; i < timeline.samples().size(); ++i) {
    EXPECT_GE(timeline.samples()[i].far_faults, timeline.samples()[i - 1].far_faults);
    EXPECT_GE(timeline.samples()[i].bytes_h2d, timeline.samples()[i - 1].bytes_h2d);
  }
  // The final sample's cumulative counters are bounded by the run totals.
  EXPECT_LE(timeline.samples().back().far_faults, r.stats.far_faults);
  // Occupancy eventually reflects the migrated working set.
  EXPECT_GT(timeline.samples().back().used_blocks, 0u);
}

TEST(Timeline, ShowsMemoryFillingUp) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.mem.oversubscription = 1.25;

  auto wl = make_workload("ra", params);
  Timeline timeline;
  Simulator sim(cfg);
  RunOptions opts;
  opts.timeline = &timeline;
  opts.timeline_interval = 50000;
  (void)sim.run(*wl, opts);

  ASSERT_GT(timeline.samples().size(), 2u);
  EXPECT_LT(timeline.samples().front().occupancy(), 0.5);
  EXPECT_GT(timeline.samples().back().occupancy(), 0.9);  // full under pressure
}

}  // namespace
}  // namespace uvmsim
