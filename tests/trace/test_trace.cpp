#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace uvmsim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() {
    a_ = space_.allocate("hot", kLargePageSize);
    b_ = space_.allocate("cold", kLargePageSize);
  }
  AddressSpace space_;
  AllocId a_, b_;
};

TEST_F(TraceTest, HistogramCountsReadsAndWrites) {
  PageHistogram h(space_);
  h.on_access(0, 0, AccessType::kRead, 3, true);
  h.on_access(1, 0, AccessType::kWrite, 2, true);
  h.on_access(2, kPageSize, AccessType::kRead, 1, false);
  EXPECT_EQ(h.reads(0), 3u);
  EXPECT_EQ(h.writes(0), 2u);
  EXPECT_EQ(h.total(0), 5u);
  EXPECT_EQ(h.reads(1), 1u);
}

TEST_F(TraceTest, SummaryClassifiesReadOnlyAndWrittenPages) {
  PageHistogram h(space_);
  const VirtAddr cold_base = space_.alloc(b_).base;
  // Hot allocation: page 0 read+written, page 1 read-only.
  h.on_access(0, 0, AccessType::kRead, 10, true);
  h.on_access(0, 0, AccessType::kWrite, 5, true);
  h.on_access(0, kPageSize, AccessType::kRead, 2, true);
  // Cold allocation: one read-only page.
  h.on_access(0, cold_base, AccessType::kRead, 1, true);

  const auto summaries = h.summarize();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "hot");
  EXPECT_EQ(summaries[0].touched_pages, 2u);
  EXPECT_EQ(summaries[0].written_pages, 1u);
  EXPECT_EQ(summaries[0].read_only_pages, 1u);
  EXPECT_EQ(summaries[0].total_accesses, 17u);
  EXPECT_EQ(summaries[0].max_page_accesses, 15u);
  EXPECT_EQ(summaries[1].name, "cold");
  EXPECT_EQ(summaries[1].total_accesses, 1u);
  EXPECT_EQ(summaries[1].read_only_pages, 1u);
}

TEST_F(TraceTest, TopDecileShareDetectsSkew) {
  PageHistogram uniform(space_);
  PageHistogram skewed(space_);
  for (PageNum p = 0; p < 100; ++p) {
    uniform.on_access(0, p * kPageSize, AccessType::kRead, 10, true);
    skewed.on_access(0, p * kPageSize, AccessType::kRead, p < 10 ? 1000 : 1, true);
  }
  const auto u = uniform.summarize()[0];
  const auto s = skewed.summarize()[0];
  EXPECT_NEAR(u.top_decile_share, 0.1, 0.02);
  EXPECT_GT(s.top_decile_share, 0.9);
}

TEST_F(TraceTest, HistogramCsvFormat) {
  PageHistogram h(space_);
  h.on_access(0, 0, AccessType::kRead, 2, true);
  h.on_access(0, 0, AccessType::kWrite, 1, true);
  std::ostringstream os;
  h.write_csv(os);
  EXPECT_EQ(os.str(), "allocation,page_index,reads,writes\nhot,0,2,1\n");
}

TEST_F(TraceTest, HistogramIgnoresUnmappedAddresses) {
  PageHistogram h(space_);
  h.on_access(0, space_.span_end() + kPageSize, AccessType::kRead, 1, true);
  const auto summaries = h.summarize();
  EXPECT_EQ(summaries[0].touched_pages + summaries[1].touched_pages, 0u);
}

TEST(TimeSeries, SamplesEveryStride) {
  TimeSeriesSampler ts(4);
  for (Cycle c = 0; c < 16; ++c) {
    ts.on_access(c, c * kPageSize, AccessType::kRead, 1, true);
  }
  ASSERT_EQ(ts.samples().size(), 4u);
  EXPECT_EQ(ts.samples()[0].cycle, 0u);
  EXPECT_EQ(ts.samples()[1].cycle, 4u);
  EXPECT_EQ(ts.samples()[1].page, 4u);
}

TEST(TimeSeries, TagsKernelLaunches) {
  TimeSeriesSampler ts(1);
  ts.on_kernel_begin(0, "k1");
  ts.on_access(0, 0, AccessType::kRead, 1, true);
  ts.on_kernel_begin(1, "k2");
  ts.on_access(5, kPageSize, AccessType::kWrite, 1, true);
  ASSERT_EQ(ts.samples().size(), 2u);
  EXPECT_EQ(ts.samples()[0].launch, 0u);
  EXPECT_EQ(ts.samples()[1].launch, 1u);
  EXPECT_EQ(ts.launch_names()[1], "k2");
}

TEST(TimeSeries, CsvContainsKernelNames) {
  TimeSeriesSampler ts(1);
  ts.on_kernel_begin(0, "mykernel");
  ts.on_access(7, 2 * kPageSize, AccessType::kWrite, 1, true);
  std::ostringstream os;
  ts.write_csv(os);
  EXPECT_NE(os.str().find("7,2,0,mykernel,W"), std::string::npos);
}

TEST(MultiSinkTest, FansOutToAllSinks) {
  AddressSpace space;
  space.allocate("a", kLargePageSize);
  PageHistogram h(space);
  TimeSeriesSampler ts(1);
  MultiSink multi;
  multi.add(&h);
  multi.add(&ts);
  multi.on_kernel_begin(0, "k");
  multi.on_access(3, 0, AccessType::kRead, 2, true);
  EXPECT_EQ(h.reads(0), 2u);
  EXPECT_EQ(ts.samples().size(), 1u);
}

}  // namespace
}  // namespace uvmsim
