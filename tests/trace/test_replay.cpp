#include "trace/replay.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

RecordedTrace tiny_trace() {
  RecordedTrace t;
  t.allocations = {{"a", kLargePageSize}, {"b", 3 * kBasicBlockSize}};
  t.launches.push_back(
      {"k1",
       {TraceRecord{0, 4, AccessType::kRead, 10},
        TraceRecord{kPageSize, 1, AccessType::kWrite, 0}}});
  t.launches.push_back({"k2", {TraceRecord{kLargePageSize, 2, AccessType::kRead, 5}}});
  return t;
}

TEST(RecordedTrace, SaveLoadRoundTrip) {
  const RecordedTrace t = tiny_trace();
  std::stringstream ss;
  t.save(ss);
  const RecordedTrace u = RecordedTrace::load(ss);

  ASSERT_EQ(u.allocations.size(), 2u);
  EXPECT_EQ(u.allocations[0].first, "a");
  EXPECT_EQ(u.allocations[0].second, kLargePageSize);
  ASSERT_EQ(u.launches.size(), 2u);
  EXPECT_EQ(u.launches[0].kernel, "k1");
  ASSERT_EQ(u.launches[0].records.size(), 2u);
  EXPECT_EQ(u.launches[0].records[0].addr, 0u);
  EXPECT_EQ(u.launches[0].records[0].count, 4u);
  EXPECT_EQ(u.launches[0].records[0].gap, 10u);
  EXPECT_EQ(u.launches[0].records[1].type, AccessType::kWrite);
  EXPECT_EQ(u.total_records(), 3u);
}

TEST(RecordedTrace, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACE";
  EXPECT_THROW(RecordedTrace::load(ss), std::runtime_error);
}

TEST(RecordedTrace, RejectsTruncatedInput) {
  const RecordedTrace t = tiny_trace();
  std::stringstream ss;
  t.save(ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(RecordedTrace::load(cut), std::runtime_error);
}

TEST(TraceRecorder, CapturesLayoutAndAccesses) {
  AddressSpace space;
  space.allocate("x", kLargePageSize);
  TraceRecorder rec;
  rec.capture_layout(space);
  rec.on_kernel_begin(0, "k");
  rec.on_access(100, 64, AccessType::kRead, 2, true);
  rec.on_access(200, 128, AccessType::kWrite, 1, false);

  const RecordedTrace& t = rec.trace();
  ASSERT_EQ(t.allocations.size(), 1u);
  EXPECT_EQ(t.allocations[0].first, "x");
  ASSERT_EQ(t.launches.size(), 1u);
  EXPECT_EQ(t.launches[0].records.size(), 2u);
}

TEST(TraceRecorder, AccessBeforeKernelGetsImplicitLaunch) {
  TraceRecorder rec;
  rec.on_access(1, 0, AccessType::kRead, 1, true);
  ASSERT_EQ(rec.trace().launches.size(), 1u);
  EXPECT_EQ(rec.trace().launches[0].kernel, "<implicit>");
}

TEST(TraceWorkload, ReplaysRecordedAccesses) {
  TraceWorkload wl(tiny_trace());
  AddressSpace space;
  wl.build(space);
  EXPECT_EQ(space.num_allocations(), 2u);

  const auto seq = wl.schedule();
  ASSERT_EQ(seq.size(), 2u);
  std::vector<Access> buf;
  seq[0]->gen_task(0, buf);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0].addr, 0u);
  EXPECT_EQ(buf[0].count, 4u);
  EXPECT_EQ(buf[1].type, AccessType::kWrite);
}

TEST(TraceWorkload, EmptyTraceThrows) {
  TraceWorkload wl(RecordedTrace{});
  AddressSpace space;
  EXPECT_THROW(wl.build(space), std::invalid_argument);
}

// End-to-end: record a real workload, replay it, and compare access totals.
TEST(RecordReplay, EndToEndRoundTrip) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.collect_traces = true;

  // Record.
  auto original = make_workload("fdtd", params);
  AddressSpace sizing;
  make_workload("fdtd", params)->build(sizing);
  TraceRecorder rec;
  rec.capture_layout(sizing);
  Simulator record_sim(cfg);
  RunOptions rec_opts;
  rec_opts.trace_sink = &rec;
  const RunResult recorded = record_sim.run(*original, rec_opts);

  // Serialize + reload.
  std::stringstream ss;
  rec.trace().save(ss);
  TraceWorkload replay(RecordedTrace::load(ss));

  // Replay under the same configuration.
  SimConfig replay_cfg = cfg;
  replay_cfg.collect_traces = false;
  Simulator replay_sim(replay_cfg);
  const RunResult replayed = replay_sim.run(replay);

  EXPECT_EQ(replayed.stats.total_accesses, recorded.stats.total_accesses);
  EXPECT_EQ(replayed.footprint_bytes, recorded.footprint_bytes);
  EXPECT_EQ(replayed.kernels.size(), recorded.kernels.size());
}

TEST(RecordReplay, ReplayUnderDifferentPolicies) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.collect_traces = true;
  cfg.mem.oversubscription = 1.25;

  auto original = make_workload("ra", params);
  AddressSpace sizing;
  make_workload("ra", params)->build(sizing);
  TraceRecorder rec;
  rec.capture_layout(sizing);
  Simulator record_sim(cfg);
  RunOptions rec_opts;
  rec_opts.trace_sink = &rec;
  (void)record_sim.run(*original, rec_opts);

  // The same trace, two different drivers.
  TraceWorkload replay1(rec.trace());
  TraceWorkload replay2(rec.trace());
  SimConfig base = cfg;
  base.collect_traces = false;
  SimConfig adaptive = base;
  adaptive.policy.policy = PolicyKind::kAdaptive;
  adaptive.mem.eviction = EvictionKind::kLfu;

  const RunResult rb = Simulator(base).run(replay1);
  const RunResult ra_ = Simulator(adaptive).run(replay2);
  EXPECT_EQ(rb.stats.total_accesses, ra_.stats.total_accesses);
  EXPECT_LT(ra_.stats.pages_thrashed, rb.stats.pages_thrashed);
}

}  // namespace
}  // namespace uvmsim
