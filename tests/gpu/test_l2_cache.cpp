#include "gpu/l2_cache.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace uvmsim {
namespace {

L2Config small_l2() {
  L2Config cfg;
  cfg.enabled = true;
  cfg.size_bytes = 64 * kWarpAccessBytes;  // 64 lines
  cfg.ways = 4;                            // 16 sets
  return cfg;
}

TEST(L2Cache, MissThenHit) {
  L2Cache c(small_l2());
  EXPECT_FALSE(c.access(0, false));
  EXPECT_TRUE(c.access(0, false));
  EXPECT_TRUE(c.access(64, false));  // same 128 B line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(L2Cache, SetsAreIndependent) {
  L2Cache c(small_l2());
  c.access(0, false);
  c.access(kWarpAccessBytes, false);  // next line, next set
  EXPECT_TRUE(c.access(0, false));
  EXPECT_TRUE(c.access(kWarpAccessBytes, false));
}

TEST(L2Cache, LruEvictionWithinSet) {
  L2Cache c(small_l2());  // 4 ways
  const auto line = [&](std::uint64_t i) { return i * 16 * kWarpAccessBytes; };  // same set
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_FALSE(c.access(line(i), false));
  EXPECT_TRUE(c.access(line(0), false));   // refresh line 0
  EXPECT_FALSE(c.access(line(4), false));  // evicts LRU = line 1
  EXPECT_TRUE(c.access(line(0), false));   // still present
  EXPECT_FALSE(c.access(line(1), false));  // was evicted
}

TEST(L2Cache, DirtyEvictionAccounting) {
  L2Cache c(small_l2());
  const auto line = [&](std::uint64_t i) { return i * 16 * kWarpAccessBytes; };
  c.access(line(0), true);  // dirty
  for (std::uint64_t i = 1; i <= 4; ++i) c.access(line(i), false);
  EXPECT_EQ(c.dirty_evictions(), 1u);
}

TEST(L2Cache, InvalidateBlockDropsItsLines) {
  L2Cache c(small_l2());
  c.access(0, true);
  c.access(kBasicBlockSize, false);  // a line of block 1
  c.invalidate_block(0);
  EXPECT_FALSE(c.access(0, false));             // block 0 line gone
  EXPECT_TRUE(c.access(kBasicBlockSize, false));  // block 1 untouched
}

TEST(L2Cache, RejectsDegenerateGeometry) {
  L2Config cfg;
  cfg.ways = 0;
  EXPECT_THROW(L2Cache{cfg}, std::invalid_argument);
  cfg.ways = 64;
  cfg.size_bytes = kWarpAccessBytes;  // fewer lines than ways
  EXPECT_THROW(L2Cache{cfg}, std::invalid_argument);
}

TEST(L2Integration, HitsReduceMemoryTraffic) {
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig off;
  off.gpu.num_sms = 4;
  off.gpu.warps_per_sm = 2;
  SimConfig on = off;
  on.gpu.l2.enabled = true;

  const RunResult base = run_workload("hotspot", off, 0.0, params);
  const RunResult cached = run_workload("hotspot", on, 0.0, params);

  EXPECT_EQ(base.stats.l2_hits, 0u);
  EXPECT_GT(cached.stats.l2_hits, 0u);
  // hotspot re-reads temp: with a cache, fewer transactions reach DRAM and
  // total access transactions stay identical at the front end.
  EXPECT_EQ(cached.stats.total_accesses, base.stats.total_accesses);
  EXPECT_LT(cached.stats.local_accesses, base.stats.local_accesses);
  EXPECT_LE(cached.stats.kernel_cycles, base.stats.kernel_cycles);
}

TEST(L2Integration, CoherentAfterEvictions) {
  // Under oversubscription, blocks migrate in and out; L2 must never keep
  // serving data for non-resident blocks (the invalidation hook).
  WorkloadParams params;
  params.scale = 0.05;
  SimConfig cfg;
  cfg.gpu.num_sms = 4;
  cfg.gpu.warps_per_sm = 2;
  cfg.gpu.l2.enabled = true;
  const RunResult r = run_workload("ra", cfg, 1.25, params);
  EXPECT_GT(r.stats.l2_misses, 0u);
  EXPECT_GT(r.stats.kernel_cycles, 0u);
}

}  // namespace
}  // namespace uvmsim
