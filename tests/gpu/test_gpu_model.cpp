#include "gpu/gpu_model.hpp"

#include <gtest/gtest.h>

#include "core/uvm_driver.hpp"

namespace uvmsim {
namespace {

/// Minimal kernel issuing a fixed access list split across tasks.
class ListKernel final : public Kernel {
 public:
  ListKernel(std::vector<Access> accesses, std::uint64_t per_task)
      : accesses_(std::move(accesses)), per_task_(per_task) {}
  [[nodiscard]] std::string name() const override { return "list"; }
  [[nodiscard]] std::uint64_t num_tasks() const override {
    return div_ceil(accesses_.size(), per_task_);
  }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    const std::size_t first = task * per_task_;
    const std::size_t last = std::min(accesses_.size(), first + per_task_);
    out.insert(out.end(), accesses_.begin() + static_cast<std::ptrdiff_t>(first),
               accesses_.begin() + static_cast<std::ptrdiff_t>(last));
  }

 private:
  std::vector<Access> accesses_;
  std::uint64_t per_task_;
};

class GpuModelTest : public ::testing::Test {
 protected:
  GpuModelTest() {
    cfg_.gpu.num_sms = 2;
    cfg_.gpu.warps_per_sm = 2;
    cfg_.mem.device_capacity_bytes = 8 * kLargePageSize;
    space_.allocate("a", 4 * kLargePageSize);
    driver_ = std::make_unique<UvmDriver>(cfg_, space_, cfg_.mem.device_capacity_bytes,
                                          queue_, stats_);
    gpu_ = std::make_unique<GpuModel>(cfg_, queue_, *driver_, stats_);
  }

  SimConfig cfg_;
  AddressSpace space_;
  EventQueue queue_;
  SimStats stats_;
  std::unique_ptr<UvmDriver> driver_;
  std::unique_ptr<GpuModel> gpu_;
};

TEST_F(GpuModelTest, RunsAllAccessesToCompletion) {
  std::vector<Access> accesses;
  for (std::uint64_t i = 0; i < 256; ++i) {
    accesses.push_back(Access{i * kWarpAccessBytes, AccessType::kRead, 1, 10});
  }
  ListKernel k(accesses, 32);
  bool done = false;
  gpu_->launch(k, [&] { done = true; });
  queue_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(stats_.total_accesses, 256u);
  EXPECT_FALSE(gpu_->busy());
}

TEST_F(GpuModelTest, EmptyKernelCompletes) {
  ListKernel k({}, 32);
  bool done = false;
  gpu_->launch(k, [&] { done = true; });
  queue_.run();
  EXPECT_TRUE(done);
}

TEST_F(GpuModelTest, FarFaultsStallAndReplay) {
  std::vector<Access> accesses{
      Access{0, AccessType::kRead, 1, 0},
      Access{kBasicBlockSize, AccessType::kRead, 1, 0},
  };
  ListKernel k(accesses, 2);
  bool done = false;
  gpu_->launch(k, [&] { done = true; });
  queue_.run();
  EXPECT_TRUE(done);
  EXPECT_GE(stats_.far_faults, 1u);
  EXPECT_GE(stats_.replayed_accesses, 1u);
  // Both blocks ended up resident.
  EXPECT_EQ(driver_->blocks().block(0).residence, Residence::kDevice);
}

TEST_F(GpuModelTest, SecondKernelReusesResidentData) {
  std::vector<Access> accesses{Access{0, AccessType::kRead, 1, 0}};
  ListKernel k(accesses, 1);
  bool done1 = false, done2 = false;
  gpu_->launch(k, [&] { done1 = true; });
  queue_.run();
  const auto faults_after_first = stats_.far_faults;
  gpu_->launch(k, [&] { done2 = true; });
  queue_.run();
  EXPECT_TRUE(done1);
  EXPECT_TRUE(done2);
  EXPECT_EQ(stats_.far_faults, faults_after_first);  // no new faults
  EXPECT_GE(stats_.local_accesses, 1u);
}

TEST_F(GpuModelTest, LaunchWhileBusyThrows) {
  std::vector<Access> accesses{Access{0, AccessType::kRead, 1, 0}};
  ListKernel k(accesses, 1);
  gpu_->launch(k, [] {});
  EXPECT_THROW(gpu_->launch(k, [] {}), std::logic_error);
  queue_.run();
}

TEST_F(GpuModelTest, TlbHitsOnRepeatedPageAccess) {
  std::vector<Access> accesses;
  for (int i = 0; i < 16; ++i) {
    accesses.push_back(Access{0, AccessType::kRead, 1, 0});  // same page
  }
  ListKernel k(accesses, 16);  // one task -> one warp
  gpu_->launch(k, [] {});
  queue_.run();
  EXPECT_EQ(stats_.tlb_misses, 1u);
  EXPECT_EQ(stats_.tlb_hits, 15u);
}

TEST_F(GpuModelTest, GapDelaysNextIssue) {
  // Two accesses with a large gap; the kernel cannot finish before the gap.
  std::vector<Access> accesses{
      Access{0, AccessType::kRead, 1, 5000},
      Access{128, AccessType::kRead, 1, 0},
  };
  ListKernel k(accesses, 2);
  gpu_->launch(k, [] {});
  queue_.run();
  EXPECT_GE(queue_.now(), 5000u);
}

TEST_F(GpuModelTest, ManyTasksDistributeOverWarps) {
  std::vector<Access> accesses;
  for (std::uint64_t i = 0; i < 64; ++i) {
    accesses.push_back(Access{i * kPageSize, AccessType::kRead, 1, 50});
  }
  ListKernel k(accesses, 4);  // 16 tasks over 4 warp contexts
  bool done = false;
  gpu_->launch(k, [&] { done = true; });
  queue_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(stats_.total_accesses, 64u);
}

}  // namespace
}  // namespace uvmsim
