// GPU front-end scheduling details: LSU issue serialization, warp wake
// ordering, and L2-path interaction with the warp loop.
#include <gtest/gtest.h>

#include "core/uvm_driver.hpp"
#include "gpu/gpu_model.hpp"

namespace uvmsim {
namespace {

class CountingKernel final : public Kernel {
 public:
  CountingKernel(std::uint64_t tasks, std::uint64_t accesses_per_task, std::uint16_t gap)
      : tasks_(tasks), per_task_(accesses_per_task), gap_(gap) {}
  [[nodiscard]] std::string name() const override { return "counting"; }
  [[nodiscard]] std::uint64_t num_tasks() const override { return tasks_; }
  void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
    for (std::uint64_t i = 0; i < per_task_; ++i) {
      out.push_back(Access{(task * per_task_ + i) % 512 * kWarpAccessBytes,
                           AccessType::kRead, 1, gap_});
    }
  }

 private:
  std::uint64_t tasks_, per_task_;
  std::uint16_t gap_;
};

struct Rig {
  explicit Rig(SimConfig c) : cfg(std::move(c)) {
    space.allocate("a", 4 * kLargePageSize);
    driver = std::make_unique<UvmDriver>(cfg, space, 8 * kLargePageSize, queue, stats);
    gpu = std::make_unique<GpuModel>(cfg, queue, *driver, stats);
  }
  SimConfig cfg;
  AddressSpace space;
  EventQueue queue;
  SimStats stats;
  std::unique_ptr<UvmDriver> driver;
  std::unique_ptr<GpuModel> gpu;
};

TEST(GpuScheduling, SingleSmIssueSerializes) {
  // One SM, 4 warps, zero gaps: 64 accesses cannot finish faster than one
  // issue per cycle allows.
  SimConfig cfg;
  cfg.gpu.num_sms = 1;
  cfg.gpu.warps_per_sm = 4;
  Rig rig(cfg);
  CountingKernel k(4, 16, 0);
  rig.gpu->launch(k, [] {});
  rig.queue.run();
  EXPECT_GE(rig.queue.now(), 64u);  // >= one cycle per issued access
  EXPECT_EQ(rig.stats.total_accesses, 64u);
}

TEST(GpuScheduling, MoreSmsFinishSooner) {
  auto runtime = [](std::uint32_t sms) {
    SimConfig cfg;
    cfg.gpu.num_sms = sms;
    cfg.gpu.warps_per_sm = 2;
    Rig rig(cfg);
    CountingKernel k(16, 64, 50);  // fixed total work
    rig.gpu->launch(k, [] {});
    rig.queue.run();
    return rig.queue.now();
  };
  EXPECT_LT(runtime(8), runtime(1));
}

TEST(GpuScheduling, ConcurrentFaultsBatchInsteadOfSerializing) {
  // Two warps fault on different blocks in the same instant: the fault
  // engine services them in one 45 us batch, so the kernel finishes in
  // roughly one fault-handling time, not two.
  SimConfig cfg;
  cfg.gpu.num_sms = 1;
  cfg.gpu.warps_per_sm = 2;
  Rig rig(cfg);

  class TwoFaults final : public Kernel {
   public:
    [[nodiscard]] std::string name() const override { return "two"; }
    [[nodiscard]] std::uint64_t num_tasks() const override { return 2; }
    void gen_task(std::uint64_t task, std::vector<Access>& out) const override {
      out.push_back(Access{task * kLargePageSize, AccessType::kRead, 1, 0});
      for (int i = 1; i < 32; ++i) {
        // After the fault resolves, the rest of the block is local.
        out.push_back(Access{task * kLargePageSize + static_cast<VirtAddr>(i) * 128,
                             AccessType::kRead, 1, 0});
      }
    }
  };
  TwoFaults k;
  Cycle done_at = 0;
  rig.gpu->launch(k, [&] { done_at = rig.queue.now(); });
  rig.queue.run();

  EXPECT_EQ(rig.stats.far_faults, 2u);
  EXPECT_EQ(rig.stats.fault_batches, 1u);  // batched, not serialized
  EXPECT_GT(done_at, rig.cfg.far_fault_cycles());
  EXPECT_LT(done_at, 2 * rig.cfg.far_fault_cycles());
  // 31 post-fault local accesses per warp (the faulted originals replay
  // through the waker and are counted separately).
  EXPECT_EQ(rig.stats.local_accesses, 62u);
  EXPECT_EQ(rig.stats.replayed_accesses, 2u);
}

TEST(GpuScheduling, L2AbsorbsRepeatsWithoutDriverTraffic) {
  SimConfig cfg;
  cfg.gpu.num_sms = 1;
  cfg.gpu.warps_per_sm = 1;
  cfg.gpu.l2.enabled = true;
  Rig rig(cfg);

  class RepeatKernel final : public Kernel {
   public:
    [[nodiscard]] std::string name() const override { return "repeat"; }
    [[nodiscard]] std::uint64_t num_tasks() const override { return 1; }
    void gen_task(std::uint64_t, std::vector<Access>& out) const override {
      for (int i = 0; i < 64; ++i) out.push_back(Access{0, AccessType::kRead, 1, 0});
    }
  };
  RepeatKernel k;
  rig.gpu->launch(k, [] {});
  rig.queue.run();
  EXPECT_EQ(rig.stats.total_accesses, 64u);
  EXPECT_EQ(rig.stats.l2_misses, 1u);
  EXPECT_EQ(rig.stats.l2_hits, 63u);
  // Only the single miss reached the memory system — and it far-faulted
  // (stalled accesses are counted as replays, not local hits).
  EXPECT_EQ(rig.stats.local_accesses + rig.stats.remote_accesses, 0u);
  EXPECT_EQ(rig.stats.far_faults, 1u);
  EXPECT_EQ(rig.stats.replayed_accesses, 1u);
}

TEST(GpuScheduling, L2HitsStillConsumeIssueSlots) {
  // The LSU issue slot is claimed before the TLB and L2 lookups, so accesses
  // fully absorbed by an L2 hit still serialize at one issue per SM per
  // cycle. 64 warps on one SM hammer a single cached line: plenty of warps
  // to cover the 30-cycle hit latency, so the SM's issue port is the
  // bottleneck and N all-hit accesses cannot finish in fewer than N cycles.
  SimConfig cfg;
  cfg.gpu.num_sms = 1;
  cfg.gpu.warps_per_sm = 64;
  cfg.gpu.l2.enabled = true;
  Rig rig(cfg);
  rig.driver->preload_all([](Cycle) {});
  rig.queue.run();  // everything resident: no faults below

  class OneLineKernel final : public Kernel {
   public:
    OneLineKernel(std::uint64_t tasks, std::uint64_t per_task)
        : tasks_(tasks), per_task_(per_task) {}
    [[nodiscard]] std::string name() const override { return "oneline"; }
    [[nodiscard]] std::uint64_t num_tasks() const override { return tasks_; }
    void gen_task(std::uint64_t, std::vector<Access>& out) const override {
      for (std::uint64_t i = 0; i < per_task_; ++i) {
        out.push_back(Access{0, AccessType::kRead, 1, 0});
      }
    }

   private:
    std::uint64_t tasks_, per_task_;
  };

  // Warm the line into L2 (this access is the run's only L2 miss).
  OneLineKernel warmup(1, 1);
  rig.gpu->launch(warmup, [] {});
  rig.queue.run();

  constexpr std::uint64_t kAccesses = 64 * 16;
  OneLineKernel k(64, 16);
  const Cycle start = rig.queue.now();
  rig.gpu->launch(k, [] {});
  rig.queue.run();
  const Cycle elapsed = rig.queue.now() - start;

  EXPECT_EQ(rig.stats.l2_misses, 1u);  // the warm-up access only
  EXPECT_EQ(rig.stats.l2_hits, kAccesses);
  // Lower bound: one issue slot per cycle. Upper bound: the issue port is
  // the only bottleneck, so the run is issue-limited plus one latency tail.
  EXPECT_GE(elapsed, kAccesses);
  EXPECT_LE(elapsed, kAccesses + 2 * cfg.gpu.l2.hit_latency + 64);
}

}  // namespace
}  // namespace uvmsim
