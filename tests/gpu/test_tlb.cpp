#include "gpu/tlb.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb t(16);
  EXPECT_FALSE(t.access(5));
  EXPECT_TRUE(t.access(5));
}

TEST(Tlb, DirectMappedConflict) {
  Tlb t(16);
  EXPECT_FALSE(t.access(3));
  EXPECT_FALSE(t.access(3 + 16));  // same slot, evicts
  EXPECT_FALSE(t.access(3));       // miss again
}

TEST(Tlb, DistinctSlotsCoexist) {
  Tlb t(16);
  for (PageNum p = 0; p < 16; ++p) EXPECT_FALSE(t.access(p));
  for (PageNum p = 0; p < 16; ++p) EXPECT_TRUE(t.access(p));
}

TEST(Tlb, InvalidateRemovesEntry) {
  Tlb t(16);
  t.access(7);
  t.invalidate(7);
  EXPECT_FALSE(t.access(7));
}

TEST(Tlb, InvalidateOtherPageIsNoop) {
  Tlb t(16);
  t.access(7);
  t.invalidate(7 + 16);  // same slot, different page: must not drop 7
  EXPECT_TRUE(t.access(7));
}

TEST(Tlb, FlushEmptiesEverything) {
  Tlb t(8);
  for (PageNum p = 0; p < 8; ++p) t.access(p);
  t.flush();
  for (PageNum p = 0; p < 8; ++p) EXPECT_FALSE(t.access(p));
}

}  // namespace
}  // namespace uvmsim
