#include "mem/access_counters.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

AccessCounterTable table_64k(std::uint64_t units = 16) {
  return AccessCounterTable(units, 16);  // 64 KB units
}

TEST(AccessCounters, StartsAtZero) {
  auto t = table_64k();
  for (std::uint64_t u = 0; u < t.units(); ++u) {
    EXPECT_EQ(t.count_unit(u), 0u);
    EXPECT_EQ(t.round_trips_unit(u), 0u);
  }
}

TEST(AccessCounters, UnitMappingFollowsGranularity) {
  auto t = table_64k();
  EXPECT_EQ(t.unit_of(0), 0u);
  EXPECT_EQ(t.unit_of(kBasicBlockSize - 1), 0u);
  EXPECT_EQ(t.unit_of(kBasicBlockSize), 1u);
  AccessCounterTable pages(16, 12);  // 4 KB units
  EXPECT_EQ(pages.unit_of(kPageSize), 1u);
}

TEST(AccessCounters, RecordAccessReturnsPostCount) {
  auto t = table_64k();
  EXPECT_EQ(t.record_access(0, 1), 1u);
  EXPECT_EQ(t.record_access(0, 1), 2u);
  EXPECT_EQ(t.record_access(0, 5), 7u);
  EXPECT_EQ(t.count(0), 7u);
}

TEST(AccessCounters, AddressesWithinUnitShareCounter) {
  auto t = table_64k();
  t.record_access(100, 1);
  t.record_access(kBasicBlockSize - 1, 1);
  EXPECT_EQ(t.count(0), 2u);
  EXPECT_EQ(t.count(kBasicBlockSize), 0u);
}

TEST(AccessCounters, RoundTrips) {
  auto t = table_64k();
  t.record_round_trip(0);
  t.record_round_trip(0);
  EXPECT_EQ(t.round_trips(0), 2u);
  EXPECT_EQ(t.count(0), 0u);  // trips do not disturb the count
}

TEST(AccessCounters, CountAndTripsCoexist) {
  auto t = table_64k();
  t.record_access(0, 100);
  t.record_round_trip(0);
  EXPECT_EQ(t.count(0), 100u);
  EXPECT_EQ(t.round_trips(0), 1u);
}

TEST(AccessCounters, HalvingOnCountSaturation) {
  auto t = table_64k(2);
  t.record_access(kBasicBlockSize, 1000);  // unit 1: bystander
  // Saturate unit 0.
  for (int i = 0; i < 200; ++i) {
    t.record_access(0, AccessCounterTable::kCountMax / 100);
  }
  EXPECT_GE(t.halvings(), 1u);
  // Bystander was halved too (global halving preserves relative hotness).
  EXPECT_LT(t.count(kBasicBlockSize), 1000u);
  EXPECT_GT(t.count(kBasicBlockSize), 0u);
  EXPECT_LT(t.count(0), AccessCounterTable::kCountMax);
}

TEST(AccessCounters, HalvingOnTripSaturation) {
  auto t = table_64k(2);
  t.record_access(kBasicBlockSize, 64);
  for (std::uint32_t i = 0; i < AccessCounterTable::kTripMax + 4; ++i) {
    t.record_round_trip(0);
  }
  EXPECT_GE(t.halvings(), 1u);
  EXPECT_LE(t.round_trips(0), AccessCounterTable::kTripMax);
  EXPECT_EQ(t.count(kBasicBlockSize), 32u);
}

TEST(AccessCounters, HalveAllPreservesOrder) {
  auto t = table_64k(3);
  t.record_access(0, 100);
  t.record_access(kBasicBlockSize, 50);
  t.record_access(2 * kBasicBlockSize, 7);
  t.halve_all();
  EXPECT_EQ(t.count(0), 50u);
  EXPECT_EQ(t.count(kBasicBlockSize), 25u);
  EXPECT_EQ(t.count(2 * kBasicBlockSize), 3u);
  EXPECT_GT(t.count(0), t.count(kBasicBlockSize));
  EXPECT_GT(t.count(kBasicBlockSize), t.count(2 * kBasicBlockSize));
}

TEST(AccessCounters, RangeCountSpansUnits) {
  auto t = table_64k(4);
  t.record_access(0, 10);
  t.record_access(kBasicBlockSize, 20);
  t.record_access(2 * kBasicBlockSize, 30);
  EXPECT_EQ(t.range_count(0, kBasicBlockSize), 10u);
  EXPECT_EQ(t.range_count(0, 2 * kBasicBlockSize), 30u);
  EXPECT_EQ(t.range_count(0, 3 * kBasicBlockSize), 60u);
  EXPECT_EQ(t.range_count(kBasicBlockSize + 5, 10), 20u);
  EXPECT_EQ(t.range_count(0, 0), 0u);
}

TEST(AccessCounters, FieldWidthsMatchPaper) {
  // 32-bit register: 27 bits of access count, 5 bits of round trips.
  EXPECT_EQ(AccessCounterTable::kCountBits, 27u);
  EXPECT_EQ(AccessCounterTable::kTripBits, 5u);
  EXPECT_EQ(AccessCounterTable::kCountMax, (1u << 27) - 1);
  EXPECT_EQ(AccessCounterTable::kTripMax, 31u);
}

}  // namespace
}  // namespace uvmsim
