#include "mem/device_memory.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(DeviceMemory, CapacityInBlocksAndPages) {
  DeviceMemory m(4 * kLargePageSize);
  EXPECT_EQ(m.capacity_blocks(), 4 * kBlocksPerLargePage);
  EXPECT_EQ(m.capacity_pages(), 4 * kPagesPerLargePage);
  EXPECT_EQ(m.used_blocks(), 0u);
  EXPECT_EQ(m.free_blocks(), m.capacity_blocks());
}

TEST(DeviceMemory, ReserveAndRelease) {
  DeviceMemory m(kLargePageSize);
  EXPECT_TRUE(m.reserve(10));
  EXPECT_EQ(m.used_blocks(), 10u);
  EXPECT_EQ(m.used_pages(), 160u);
  m.release(4);
  EXPECT_EQ(m.used_blocks(), 6u);
}

TEST(DeviceMemory, ReserveFailsWithoutSideEffects) {
  DeviceMemory m(kLargePageSize);  // 32 blocks
  EXPECT_TRUE(m.reserve(32));
  EXPECT_FALSE(m.reserve(1));
  EXPECT_EQ(m.used_blocks(), 32u);
}

TEST(DeviceMemory, ReleaseMoreThanUsedThrows) {
  DeviceMemory m(kLargePageSize);
  EXPECT_TRUE(m.reserve(2));
  EXPECT_THROW(m.release(3), std::logic_error);
}

TEST(DeviceMemory, EverFullIsStickyAndManual) {
  DeviceMemory m(kLargePageSize);
  EXPECT_FALSE(m.ever_full());
  // Running out does not flip the flag automatically; the driver marks it so
  // that only genuine eviction pressure counts as oversubscription.
  EXPECT_TRUE(m.reserve(32));
  EXPECT_FALSE(m.reserve(1));
  EXPECT_FALSE(m.ever_full());
  m.note_full();
  EXPECT_TRUE(m.ever_full());
  m.release(32);
  EXPECT_TRUE(m.ever_full());
}

TEST(DeviceMemory, Occupancy) {
  DeviceMemory m(2 * kLargePageSize);
  EXPECT_DOUBLE_EQ(m.occupancy(), 0.0);
  EXPECT_TRUE(m.reserve(32));
  EXPECT_DOUBLE_EQ(m.occupancy(), 0.5);
}

TEST(DeviceMemory, SubBlockCapacityThrows) {
  EXPECT_THROW(DeviceMemory m(kBasicBlockSize - 1), std::invalid_argument);
}

}  // namespace
}  // namespace uvmsim
