// Tree-based page replacement (ISCA'19 comparator): subtree-granularity
// eviction around the victim chunk's LRU block.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "mem/eviction.hpp"

namespace uvmsim {
namespace {

class TreeEvictionTest : public ::testing::Test {
 protected:
  TreeEvictionTest() : counters_(128, 16) {
    space_.allocate("a", 2 * kLargePageSize);
    table_ = std::make_unique<BlockTable>(space_);
  }

  void residency(BlockNum b, Cycle ts) {
    table_->mark_in_flight(b);
    table_->mark_resident(b, ts);
    table_->touch(b, AccessType::kRead, ts);
  }

  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  AccessCounterTable counters_;
};

TEST_F(TreeEvictionTest, EmptyChunkYieldsNothing) {
  EXPECT_TRUE(tree_eviction_subtree(0, *table_).empty());
}

TEST_F(TreeEvictionTest, LoneBlockEvictsJustItself) {
  residency(5, 10);
  const auto v = tree_eviction_subtree(0, *table_);
  EXPECT_EQ(v, (std::vector<BlockNum>{5}));
}

TEST_F(TreeEvictionTest, GrowsToLargestFullyResidentSubtree) {
  // Blocks 0..7 resident; block 2 is LRU. Subtrees {2,3}, {0..3}, {0..7} are
  // all fully resident; {0..15} is not -> evict 8 blocks.
  for (BlockNum b = 0; b < 8; ++b) residency(b, b == 2 ? 1 : 100);
  const auto v = tree_eviction_subtree(0, *table_);
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(v.front(), 0u);
  EXPECT_EQ(v.back(), 7u);
}

TEST_F(TreeEvictionTest, HoleLimitsTheSubtree) {
  // Blocks 0,1,3 resident (2 missing); LRU is 0: pair {0,1} is full, quad
  // {0..3} is not -> evict {0,1}.
  residency(0, 1);
  residency(1, 50);
  residency(3, 60);
  const auto v = tree_eviction_subtree(0, *table_);
  EXPECT_EQ(v, (std::vector<BlockNum>{0, 1}));
}

TEST_F(TreeEvictionTest, FullyResidentChunkEvictsWholeLargePage) {
  for (BlockNum b = 0; b < kBlocksPerLargePage; ++b) residency(b, b + 1);
  const auto v = tree_eviction_subtree(0, *table_);
  EXPECT_EQ(v.size(), kBlocksPerLargePage);
}

TEST_F(TreeEvictionTest, ManagerUsesSubtreeGranularity) {
  for (BlockNum b = 0; b < 8; ++b) residency(b, b == 6 ? 1 : 100);
  EvictionManager mgr(EvictionKind::kTree, kLargePageSize);
  const auto victims = mgr.select_victims(*table_, counters_, VictimQuery{});
  // LRU block 6: pair {6,7} full, quad {4..7} full, {0..7} full -> 8 blocks.
  EXPECT_EQ(victims.size(), 8u);
}

TEST(TreeEvictionIntegration, RunsEndToEndAndEvictsFinerThanLru) {
  WorkloadParams params;
  params.scale = 0.2;
  SimConfig lru;
  lru.gpu.num_sms = 8;
  lru.gpu.warps_per_sm = 2;
  SimConfig tree = lru;
  lru.mem.eviction = EvictionKind::kLru;
  tree.mem.eviction = EvictionKind::kTree;

  const RunResult a = run_workload("ra", lru, 1.25, params);
  const RunResult b = run_workload("ra", tree, 1.25, params);
  ASSERT_GT(a.stats.evictions, 0u);
  ASSERT_GT(b.stats.evictions, 0u);
  // Subtree eviction displaces fewer pages per operation on average.
  const double lru_pages_per_evict =
      static_cast<double>(a.stats.pages_evicted) / static_cast<double>(a.stats.evictions);
  const double tree_pages_per_evict =
      static_cast<double>(b.stats.pages_evicted) / static_cast<double>(b.stats.evictions);
  EXPECT_LT(tree_pages_per_evict, lru_pages_per_evict);
}

}  // namespace
}  // namespace uvmsim
