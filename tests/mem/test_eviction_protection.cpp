// The "not currently addressed by scheduled warps" approximation: chunks
// accessed within the protect window are shielded from eviction while
// anything colder exists.
#include <gtest/gtest.h>

#include "mem/eviction.hpp"

namespace uvmsim {
namespace {

class ProtectionTest : public ::testing::Test {
 protected:
  ProtectionTest() : counters_(128, 16) {
    space_.allocate("a", 4 * kLargePageSize);
    table_ = std::make_unique<BlockTable>(space_);
  }

  void fill_chunk(ChunkNum c, Cycle accessed_at) {
    const BlockNum first = first_block_of_chunk(c);
    for (BlockNum b = first; b < first + kBlocksPerLargePage; ++b) {
      table_->mark_in_flight(b);
      table_->mark_resident(b, accessed_at);
      table_->touch(b, AccessType::kRead, accessed_at);
    }
  }

  AddressSpace space_;
  std::unique_ptr<BlockTable> table_;
  AccessCounterTable counters_;
  EvictionManager mgr_{EvictionKind::kLru, kLargePageSize};
};

TEST_F(ProtectionTest, RecentChunksAreShielded) {
  fill_chunk(0, 900);   // busy: accessed within the window
  fill_chunk(1, 100);   // cold
  VictimQuery q{0, false, /*now=*/1000, /*protect_window=*/500};
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(chunk_of_block(victims.front()), 1u);
}

TEST_F(ProtectionTest, LruOrderStillAppliesAmongColdChunks) {
  fill_chunk(0, 100);
  fill_chunk(1, 50);
  fill_chunk(2, 990);  // busy
  VictimQuery q{0, false, 1000, 500};
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  EXPECT_EQ(chunk_of_block(victims.front()), 1u);
}

TEST_F(ProtectionTest, FallsBackToBusyChunksWhenNothingElseExists) {
  fill_chunk(0, 990);
  fill_chunk(1, 995);
  VictimQuery q{0, false, 1000, 500};
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  ASSERT_FALSE(victims.empty());  // progress is guaranteed
  EXPECT_EQ(chunk_of_block(victims.front()), 0u);  // LRU among the busy
}

TEST_F(ProtectionTest, ZeroWindowDisablesProtection) {
  fill_chunk(0, 999);
  fill_chunk(1, 1000);
  VictimQuery q{0, false, 1000, 0};
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  EXPECT_EQ(chunk_of_block(victims.front()), 0u);  // plain LRU
}

TEST_F(ProtectionTest, EarlyCyclesDoNotUnderflow) {
  fill_chunk(0, 5);
  VictimQuery q{0, false, /*now=*/10, /*protect_window=*/500};
  // now < window: cutoff clamps to 0 and the only chunk counts as busy but
  // is still returned via the fallback.
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  EXPECT_FALSE(victims.empty());
}

TEST_F(ProtectionTest, BusyPartialChunksAreLastResort) {
  // Busy full chunk vs busy partial chunk: prefer the full one.
  fill_chunk(0, 995);
  const BlockNum first = first_block_of_chunk(1);
  table_->mark_in_flight(first);
  table_->mark_resident(first, 990);
  table_->touch(first, AccessType::kRead, 990);
  VictimQuery q{0, false, 1000, 500};
  const auto victims = mgr_.select_victims(*table_, counters_, q);
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(chunk_of_block(victims.front()), 0u);
  EXPECT_EQ(victims.size(), kBlocksPerLargePage);
}

}  // namespace
}  // namespace uvmsim
