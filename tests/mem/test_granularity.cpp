// Mapping-granularity tests (docs/GRANULARITY.md): the BlockTable coalesce /
// splinter state machine and its gates, randomized property histories
// (membership, O(1) counter vs scan, the read-mostly invariant), atomic vs
// splintered victim emission through the EvictionManager — including
// fast-vs-reference parity while chunks are coalesced — and the auditor's
// granularity pass.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "mem/access_counters.hpp"
#include "mem/address_space.hpp"
#include "mem/block_table.hpp"
#include "mem/eviction.hpp"
#include "sim/rng.hpp"

namespace uvmsim {
namespace {

void fill_chunk(BlockTable& t, ChunkNum c, Cycle now) {
  const BlockNum first = first_block_of_chunk(c);
  for (BlockNum b = first; b < first + t.chunk_num_blocks(c); ++b) {
    if (t.residence(b) != Residence::kHost) continue;
    t.mark_in_flight(b);
    t.mark_resident(b, now);
  }
}

TEST(Granularity, CoalesceGatesAndTransitions) {
  AddressSpace space;
  space.allocate("a", 2 * kLargePageSize + 3 * kBasicBlockSize);
  BlockTable t(space);
  ASSERT_EQ(t.num_chunks(), 3u);
  EXPECT_EQ(t.coalesced_chunks(), 0u);
  EXPECT_EQ(t.granularity(0), MappingGranularity::kSplit);

  // Gate: not fully resident.
  t.mark_in_flight(0);
  t.mark_resident(0, 1);
  EXPECT_FALSE(t.try_coalesce(0));

  // Full and clean: promotes exactly once.
  fill_chunk(t, 0, 2);
  EXPECT_TRUE(t.try_coalesce(0));
  EXPECT_TRUE(t.chunk_coalesced(0));
  EXPECT_EQ(t.granularity(0), MappingGranularity::kCoalesced);
  EXPECT_EQ(t.coalesced_chunks(), 1u);
  EXPECT_FALSE(t.try_coalesce(0)) << "already coalesced";

  // Gate: written-ever chunks never coalesce (read-mostly heuristic).
  fill_chunk(t, 1, 3);
  t.touch(first_block_of_chunk(1), AccessType::kWrite, 4);
  EXPECT_FALSE(t.try_coalesce(1));

  // The partially-mapped tail chunk coalesces at its mapped count.
  fill_chunk(t, 2, 5);
  EXPECT_TRUE(t.try_coalesce(2));
  EXPECT_EQ(t.coalesced_chunks(), 2u);

  // Splinter demotes and re-arms the promote path.
  t.splinter(0);
  EXPECT_FALSE(t.chunk_coalesced(0));
  EXPECT_EQ(t.coalesced_chunks(), 1u);
  EXPECT_TRUE(t.try_coalesce(0));
}

TEST(Granularity, EvictingCoalescedBlockWithoutSplinterThrows) {
  AddressSpace space;
  space.allocate("a", kLargePageSize);
  BlockTable t(space);
  fill_chunk(t, 0, 1);
  ASSERT_TRUE(t.try_coalesce(0));
  EXPECT_THROW(t.mark_evicted(0), CheckFailure);
  t.splinter(0);
  t.mark_evicted(0);  // legal after the demotion
  EXPECT_EQ(t.chunk(0).resident_blocks, kBlocksPerLargePage - 1);
}

TEST(Granularity, SplinterOnSplitChunkThrows) {
  AddressSpace space;
  space.allocate("a", kLargePageSize);
  BlockTable t(space);
  EXPECT_THROW(t.splinter(0), CheckFailure);
}

// Randomized property history: arbitrary interleavings of migration,
// eviction (splinter-first), writes and coalesce attempts must preserve
//   * coalesced => fully resident and never written,
//   * the O(1) coalesced-chunk counter == a full scan,
//   * for_each_resident_block membership == a plain residency scan.
TEST(Granularity, RandomizedHistoryPreservesInvariants) {
  AddressSpace space;
  space.allocate("a", 5 * kLargePageSize + 7 * kBasicBlockSize);
  BlockTable t(space);
  Rng rng(0xC0A1E5CEull);
  Cycle now = 1;
  // Only mapped blocks participate: the VA span's 2 MB padding leaves the
  // tail chunk with unmapped trailing blocks the driver never migrates.
  const auto mapped = [&](BlockNum b) {
    const ChunkNum c = chunk_of_block(b);
    return b < first_block_of_chunk(c) + t.chunk_num_blocks(c);
  };
  for (int step = 0; step < 4000; ++step) {
    now += rng.below(3);
    const BlockNum b = rng.below(t.num_blocks());
    if (!mapped(b)) continue;
    const ChunkNum c = chunk_of_block(b);
    switch (rng.below(6)) {
      case 0:
      case 1:
        if (t.residence(b) == Residence::kHost) {
          t.mark_in_flight(b);
          t.mark_resident(b, now);
        }
        break;
      case 2:
        if (t.residence(b) == Residence::kDevice) {
          const AccessType type = rng.chance(0.3) ? AccessType::kWrite : AccessType::kRead;
          if (type == AccessType::kWrite && t.chunk_coalesced(c)) t.splinter(c);
          t.touch(b, type, now);
        }
        break;
      case 3:
        if (t.residence(b) == Residence::kDevice) {
          if (t.chunk_coalesced(c)) t.splinter(c);
          t.mark_evicted(b);
        }
        break;
      case 4:
        t.try_coalesce(c);
        break;
      default:
        fill_chunk(t, c, now);
        t.try_coalesce(c);
        break;
    }

    if (step % 64 != 0) continue;
    std::uint64_t coalesced = 0;
    for (ChunkNum cc = 0; cc < t.num_chunks(); ++cc) {
      const std::uint32_t mapped = t.chunk_num_blocks(cc);
      std::vector<BlockNum> scan;
      const BlockNum first = first_block_of_chunk(cc);
      for (BlockNum bb = first; bb < first + mapped; ++bb) {
        if (t.residence(bb) == Residence::kDevice) scan.push_back(bb);
      }
      std::vector<BlockNum> visited;
      t.for_each_resident_block(cc, [&](BlockNum bb) { visited.push_back(bb); });
      ASSERT_EQ(visited, scan) << "chunk " << cc << " at step " << step;
      if (t.chunk_coalesced(cc)) {
        ++coalesced;
        ASSERT_TRUE(t.chunk_fully_resident(cc)) << "chunk " << cc << " at step " << step;
        ASSERT_FALSE(t.chunk(cc).written_ever) << "chunk " << cc << " at step " << step;
      }
    }
    ASSERT_EQ(t.coalesced_chunks(), coalesced) << "step " << step;
  }
}

/// (table, counters, manager) wiring with the incremental index attached —
/// what the driver uses — for emission tests under coalescing.
struct EmissionRig {
  explicit EmissionRig(bool splinter_on_evict, std::uint64_t granularity,
                       EvictionKind kind = EvictionKind::kLru) {
    space.allocate("a", 4 * kLargePageSize);
    table = std::make_unique<BlockTable>(space);
    counters = std::make_unique<AccessCounterTable>(
        div_ceil(space.span_end(), kBasicBlockSize), kBasicBlockShift);
    mgr = std::make_unique<EvictionManager>(kind, granularity, splinter_on_evict);
    mgr->attach_index(*table, *counters);
  }
  AddressSpace space;
  std::unique_ptr<BlockTable> table;
  std::unique_ptr<AccessCounterTable> counters;
  std::unique_ptr<EvictionManager> mgr;
};

TEST(Granularity, CoalescedVictimEvictsAtomicallyAt64kGranularity) {
  // 64 KB eviction granularity normally evicts one block — but a coalesced
  // victim chunk has a single 2 MB mapping, so the whole chunk must go.
  EmissionRig rig(/*splinter_on_evict=*/false, kBasicBlockSize);
  fill_chunk(*rig.table, 0, 10);
  fill_chunk(*rig.table, 1, 20);
  ASSERT_TRUE(rig.table->try_coalesce(0));
  const VictimQuery q{2, true, 100, 0};
  const auto fast = rig.mgr->select_victims(*rig.table, *rig.counters, q);
  const auto ref = rig.mgr->select_victims_reference(*rig.table, *rig.counters, q);
  EXPECT_EQ(fast, ref);
  ASSERT_EQ(fast.size(), kBlocksPerLargePage) << "atomic whole-chunk emission";
  for (const BlockNum v : fast) EXPECT_EQ(chunk_of_block(v), 0u);
}

TEST(Granularity, SplinterOnEvictKeepsPerBlockEmission) {
  // With mem.splinter_on_evict the driver splinters the victim chunk first
  // and evicts at the configured granularity; emission ignores coalescing.
  EmissionRig rig(/*splinter_on_evict=*/true, kBasicBlockSize);
  fill_chunk(*rig.table, 0, 10);
  fill_chunk(*rig.table, 1, 20);
  ASSERT_TRUE(rig.table->try_coalesce(0));
  const VictimQuery q{2, true, 100, 0};
  const auto fast = rig.mgr->select_victims(*rig.table, *rig.counters, q);
  EXPECT_EQ(fast, rig.mgr->select_victims_reference(*rig.table, *rig.counters, q));
  ASSERT_EQ(fast.size(), 1u) << "per-block emission preserved";
  EXPECT_EQ(chunk_of_block(fast.front()), 0u);
}

TEST(Granularity, VictimSelectionOrderUnchangedByCoalescing) {
  // Coalescing must not perturb WHICH chunk is chosen — only how much of it
  // is emitted. The LRU pick with chunk 0 coalesced equals the pick without.
  for (const bool coalesce : {false, true}) {
    EmissionRig rig(/*splinter_on_evict=*/false, kLargePageSize);
    fill_chunk(*rig.table, 0, 10);
    fill_chunk(*rig.table, 1, 20);
    fill_chunk(*rig.table, 2, 30);
    if (coalesce) {
      ASSERT_TRUE(rig.table->try_coalesce(0));
    }
    const auto victims =
        rig.mgr->select_victims(*rig.table, *rig.counters, VictimQuery{3, true, 100, 0});
    ASSERT_FALSE(victims.empty());
    EXPECT_EQ(chunk_of_block(victims.front()), 0u) << "coalesce=" << coalesce;
    EXPECT_EQ(victims.size(), kBlocksPerLargePage);
  }
}

// Randomized parity + aggregate conservation under coalescing churn: the
// incremental index (check_eviction_index's subject) must keep fast ==
// reference while chunks coalesce, splinter and evict atomically.
TEST(Granularity, RandomizedCoalesceChurnKeepsIndexParity) {
  for (const bool splinter_on_evict : {false, true}) {
    EmissionRig rig(splinter_on_evict, kBasicBlockSize, EvictionKind::kLfu);
    BlockTable& t = *rig.table;
    Rng rng(splinter_on_evict ? 0xBEEF1ull : 0xBEEF2ull);
    Cycle now = 1;
    InvariantAuditor auditor(AuditConfig{});
    for (int step = 0; step < 600; ++step) {
      now += 1 + rng.below(4);
      const BlockNum b = rng.below(t.num_blocks());
      const ChunkNum c = chunk_of_block(b);
      switch (rng.below(5)) {
        case 0:
        case 1:
          if (t.residence(b) == Residence::kHost) {
            t.mark_in_flight(b);
            t.mark_resident(b, now);
            t.try_coalesce(c);
          }
          break;
        case 2:
          if (t.residence(b) == Residence::kDevice) t.touch(b, AccessType::kRead, now);
          rig.counters->record_access(addr_of_block(b),
                                      static_cast<std::uint32_t>(rng.between(1, 32)));
          break;
        case 3: {
          fill_chunk(t, c, now);
          t.try_coalesce(c);
          break;
        }
        default: {  // one full driver-style eviction round
          const VictimQuery q{c, true, now, 0};
          const auto fast = rig.mgr->select_victims(t, *rig.counters, q);
          const auto ref = rig.mgr->select_victims_reference(t, *rig.counters, q);
          ASSERT_EQ(fast, ref) << "step " << step;
          if (fast.empty()) break;
          const ChunkNum vc = chunk_of_block(fast.front());
          if (t.chunk_coalesced(vc)) t.splinter(vc);
          for (const BlockNum v : fast) {
            t.mark_evicted(v);
            rig.counters->record_round_trip(addr_of_block(v));
          }
          break;
        }
      }
      if (step % 50 == 0) {
        AuditScope s;
        s.table = &t;
        s.counters = rig.counters.get();
        s.eviction = rig.mgr.get();
        const AuditReport r = auditor.audit_now(s);
        ASSERT_TRUE(r.clean()) << "step " << step << ": " << r.violations.front();
      }
    }
  }
}

TEST(Granularity, AuditorFlagsGranularityViolations) {
  AddressSpace space;
  space.allocate("a", kLargePageSize);
  BlockTable t(space);
  fill_chunk(t, 0, 1);
  ASSERT_TRUE(t.try_coalesce(0));
  InvariantAuditor auditor(AuditConfig{});
  AuditScope s;
  s.table = &t;
  ASSERT_TRUE(auditor.audit_now(s).clean());

  // Write to a coalesced chunk without splintering: the read-mostly
  // invariant breaks and the granularity pass must say so.
  t.touch(0, AccessType::kWrite, 2);
  const AuditReport r = auditor.audit_now(s);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.violations.front().find("granularity"), std::string::npos);
}

}  // namespace
}  // namespace uvmsim
