#include "mem/address_space.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(RoundPartialChunk, PowerOfTwoMultiplesOf64K) {
  EXPECT_EQ(round_partial_chunk(0), 0u);
  EXPECT_EQ(round_partial_chunk(1), 64u * 1024);
  EXPECT_EQ(round_partial_chunk(64 * 1024), 64u * 1024);
  EXPECT_EQ(round_partial_chunk(65 * 1024), 128u * 1024);
  EXPECT_EQ(round_partial_chunk(168 * 1024), 256u * 1024);  // paper's example
  EXPECT_EQ(round_partial_chunk(300 * 1024), 512u * 1024);
  EXPECT_EQ(round_partial_chunk(kLargePageSize), kLargePageSize);
  EXPECT_EQ(round_partial_chunk(kLargePageSize - 1), kLargePageSize);
}

TEST(AddressSpace, PaperExampleChunking) {
  // 4 MB + 168 KB -> two 2 MB chunks plus one 256 KB chunk (paper §II-B).
  AddressSpace s;
  const AllocId id = s.allocate("x", 4 * kLargePageSize / 2 + 168 * 1024);
  const Allocation& a = s.alloc(id);
  ASSERT_EQ(a.chunks.size(), 3u);
  EXPECT_EQ(a.chunks[0].num_blocks, 32u);
  EXPECT_EQ(a.chunks[1].num_blocks, 32u);
  EXPECT_EQ(a.chunks[2].num_blocks, 4u);  // 256 KB / 64 KB
  EXPECT_EQ(a.padded_size, 2 * kLargePageSize + 256 * 1024);
}

TEST(AddressSpace, BasesAreLargePageAligned) {
  AddressSpace s;
  s.allocate("a", 100 * 1024);
  const AllocId b = s.allocate("b", 3 * kLargePageSize);
  EXPECT_EQ(s.alloc(b).base % kLargePageSize, 0u);
}

TEST(AddressSpace, FootprintSumsPaddedSizes) {
  AddressSpace s;
  s.allocate("a", 100 * 1024);           // pads to 128 KB
  s.allocate("b", kLargePageSize + 1);   // pads to 2 MB + 64 KB
  EXPECT_EQ(s.footprint_bytes(), 128u * 1024 + kLargePageSize + kBasicBlockSize);
}

TEST(AddressSpace, FindLocatesOwner) {
  AddressSpace s;
  const AllocId a = s.allocate("a", kLargePageSize);
  const AllocId b = s.allocate("b", kLargePageSize);
  EXPECT_EQ(s.find(s.alloc(a).base), a);
  EXPECT_EQ(s.find(s.alloc(a).base + kLargePageSize - 1), a);
  EXPECT_EQ(s.find(s.alloc(b).base), b);
  EXPECT_EQ(s.find(s.alloc(b).end()), std::nullopt);
}

TEST(AddressSpace, FindInPaddingGapReturnsNothing) {
  AddressSpace s;
  s.allocate("a", 128 * 1024);  // padded region ends before the 2 MB boundary
  s.allocate("b", kLargePageSize);
  // The hole between a's padded end and b's 2 MB-aligned base is unmapped.
  EXPECT_EQ(s.find(128 * 1024), std::nullopt);
  EXPECT_EQ(s.find(kLargePageSize - 1), std::nullopt);
}

TEST(AddressSpace, ChunkNumBlocks) {
  AddressSpace s;
  s.allocate("a", kLargePageSize + 256 * 1024);
  EXPECT_EQ(s.chunk_num_blocks(0), 32u);
  EXPECT_EQ(s.chunk_num_blocks(1), 4u);
  EXPECT_EQ(s.chunk_num_blocks(2), 0u);  // unmapped
}

TEST(AddressSpace, TotalBlocksCoversSpan) {
  AddressSpace s;
  s.allocate("a", kLargePageSize);
  s.allocate("b", kLargePageSize);
  EXPECT_EQ(s.total_blocks(), 2 * kBlocksPerLargePage);
}

TEST(AddressSpace, ZeroSizeThrows) {
  AddressSpace s;
  EXPECT_THROW(s.allocate("bad", 0), std::invalid_argument);
}

TEST(AddressSpace, FindBlockMatchesFind) {
  AddressSpace s;
  const AllocId a = s.allocate("a", kLargePageSize);
  EXPECT_EQ(s.find_block(0), a);
  EXPECT_TRUE(s.block_mapped(31));
  EXPECT_FALSE(s.block_mapped(32));
}

TEST(AddressSpace, ManyAllocationsBinarySearch) {
  AddressSpace s;
  std::vector<AllocId> ids;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t size = std::uint64_t{65536} * static_cast<std::uint64_t>(1 + i % 5);
    ids.push_back(s.allocate("r" + std::to_string(i), size));
  }
  for (const AllocId id : ids) {
    const Allocation& a = s.alloc(id);
    EXPECT_EQ(s.find(a.base), id);
    EXPECT_EQ(s.find(a.base + a.padded_size - 1), id);
  }
}

}  // namespace
}  // namespace uvmsim
